//! Loom-lite deterministic schedule exploration for the vendored pool.
//!
//! The production pool in [`crate`] runs persistent workers on real OS
//! threads, each owning a deque seeded with a contiguous block of task
//! indices; owners pop their own front and steal from the back of other
//! workers' deques when theirs runs dry. Which worker wins each pop or
//! steal is decided by the OS scheduler, so a plain test run only ever
//! observes *one* interleaving per execution. This module replaces that
//! nondeterminism with a **controlled scheduler**: under
//! [`with_schedule`], `execute` does not spawn threads at all — it
//! simulates the pool's exact state machine (pop-own-or-steal → run →
//! …, per-task panic isolation, smallest-worker-index panic
//! propagation) on the calling thread, with every scheduling decision
//! taken from an explicit [`Schedule`].
//!
//! One canonicalization: the real pool picks steal victims by a
//! randomized rotation, which is performance-only — by the determinism
//! contract, *which worker* computes a task is unobservable. The
//! simulator uses a fixed cyclic rotation (thief + 1, wrapping, first
//! nonempty deque) so schedules stay replayable, and explores every
//! *interleaving* of that canonical rule instead.
//!
//! Driving the same body through *every* schedule (bounded-exhaustive
//! via [`exhaustive_schedules`] for small task counts, seeded samples
//! via [`seeded_schedules`] beyond) and comparing outputs turns the
//! pool's determinism contract — bit-identical results at any thread
//! count and any interleaving — into a checkable property:
//! [`check_determinism`] reports the first pair of schedules whose
//! outputs diverge. A divergence is exactly a schedule-sensitive data
//! flow, i.e. a race that real threads would hit with OS-dependent
//! probability.
//!
//! The simulation also asserts the pool's structural invariants on every
//! schedule: no task is lost, no task runs twice, and a worker panic
//! kills only that worker (the rest drain its abandoned deque via
//! steals) with the original payload re-raised after the drain — the
//! same behavior the threaded implementation exhibits.
//!
//! Scope: the simulation runs on one thread, so it checks *schedule*
//! sensitivity (logical races through shared state such as `Cell`s),
//! not memory-model races — pair it with the ThreadSanitizer CI job,
//! which runs the real threaded pool under `-Zsanitizer=thread`.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};

/// One controlled interleaving of the pool.
///
/// `choices` is consumed left to right, one entry per scheduling point
/// (a point where at least one worker can take a task — from its own
/// deque or by stealing — or run the task it holds). An entry naming a
/// runnable worker selects it; any
/// other value selects `runnable[entry % runnable.len()]`, so *every*
/// `usize` sequence is a valid schedule (seeded random schedules need no
/// legality pre-pass). When `choices` runs out, the lowest-indexed
/// runnable worker acts — an empty `choices` is the deterministic
/// "worker 0 first" baseline.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schedule {
    /// Simulated worker count (≥ 1); overrides the pool's usual
    /// `current_num_threads` while the schedule is active.
    pub workers: usize,
    /// Worker chosen at each scheduling point.
    pub choices: Vec<usize>,
}

struct Playback {
    workers: usize,
    choices: Vec<usize>,
    pos: usize,
}

thread_local! {
    static ACTIVE: RefCell<Option<Playback>> = const { RefCell::new(None) };
}

/// Whether a schedule is installed on this thread (pool hook).
pub(crate) fn is_active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Run `body` with every pool execution on this thread driven by
/// `schedule` instead of real worker threads.
///
/// Choices persist across multiple executions inside `body`: a second
/// `collect` keeps consuming where the first stopped, then falls back to
/// the lowest-runnable rule. Panics from `body` (including simulated
/// worker panics) propagate after the schedule is uninstalled.
pub fn with_schedule<R>(schedule: &Schedule, body: impl FnOnce() -> R) -> R {
    assert!(schedule.workers >= 1, "schedule needs at least one worker");
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            ACTIVE.with(|a| *a.borrow_mut() = None);
        }
    }
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        assert!(slot.is_none(), "with_schedule does not nest");
        *slot =
            Some(Playback { workers: schedule.workers, choices: schedule.choices.clone(), pos: 0 });
    });
    let _reset = Reset;
    body()
}

/// Resolve the next scheduling decision against the active playback.
fn next_choice(runnable: &[usize]) -> usize {
    ACTIVE.with(|a| {
        let mut borrow = a.borrow_mut();
        let playback = borrow.as_mut().expect("schedule checker active");
        if playback.pos >= playback.choices.len() {
            return runnable[0];
        }
        let raw = playback.choices[playback.pos];
        playback.pos += 1;
        if runnable.contains(&raw) {
            raw
        } else {
            runnable[raw % runnable.len()]
        }
    })
}

enum Worker<T> {
    /// Never acted.
    Fresh,
    /// Between tasks: next productive action is a pop or a steal.
    Idle,
    /// Holding `(slot, item)`: next productive action runs it.
    Holding(usize, T),
    /// Observed every deque empty and exited its loop.
    Finished,
    /// Died running a task; its panic payload is re-raised at the end.
    /// Its abandoned deque stays stealable, exactly as in the real pool.
    Dead,
}

/// Pop the front of `slot`'s own deque, or steal from the back of the
/// first nonempty victim in cyclic order from `slot + 1` — the
/// simulator's canonical form of the pool's randomized victim rotation.
fn pop_or_steal<T>(deques: &mut [std::collections::VecDeque<T>], slot: usize) -> Option<T> {
    if let Some(task) = deques[slot].pop_front() {
        return Some(task);
    }
    let workers = deques.len();
    (1..workers).find_map(|i| deques[(slot + i) % workers].pop_back())
}

/// Simulate one pool execution under the active schedule (pool hook).
///
/// Mirrors the threaded pool exactly: `(index, item)` pairs are
/// block-distributed into per-worker deques ([`crate::pool::block_range`],
/// the same split the real pool seeds), workers pop their own front or
/// steal a victim's back one task at a time, results land in slot
/// `index`, a task panic kills its worker while the rest keep draining
/// (including the dead worker's abandoned deque), and after the drain
/// the payload of the panicked worker with the smallest index is
/// re-raised — the same payload the threaded pool propagates.
pub(crate) fn run_active<T, O, F: Fn(T) -> O>(items: Vec<T>, f: F) -> Vec<O> {
    let workers =
        ACTIVE.with(|a| a.borrow().as_ref().map(|p| p.workers)).expect("schedule checker active");
    let n = items.len();
    let mut deques: Vec<std::collections::VecDeque<(usize, T)>> = {
        let mut pairs = items.into_iter().enumerate();
        (0..workers)
            .map(|w| pairs.by_ref().take(crate::pool::block_range(n, workers, w).len()).collect())
            .collect()
    };
    let mut remaining = n;
    let mut slots: Vec<Option<O>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut pool: Vec<Worker<T>> = (0..workers).map(|_| Worker::Fresh).collect();
    let mut panics: Vec<(usize, Box<dyn std::any::Any + Send>)> = Vec::new();
    loop {
        // Workers facing all-empty deques with empty hands can only
        // observe that and exit; that commutes with everything
        // observable, so it is not a scheduling point.
        if remaining == 0 {
            for w in pool.iter_mut() {
                if matches!(w, Worker::Fresh | Worker::Idle) {
                    *w = Worker::Finished;
                }
            }
        }
        let runnable: Vec<usize> = pool
            .iter()
            .enumerate()
            .filter(|(_, w)| {
                matches!(w, Worker::Holding(..))
                    || (remaining > 0 && matches!(w, Worker::Fresh | Worker::Idle))
            })
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            break;
        }
        let chosen = next_choice(&runnable);
        match std::mem::replace(&mut pool[chosen], Worker::Idle) {
            Worker::Holding(slot, item) => {
                match panic::catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(out) => {
                        assert!(
                            slots[slot].is_none(),
                            "pool invariant violated: task {slot} executed twice"
                        );
                        slots[slot] = Some(out);
                    }
                    Err(payload) => {
                        panics.push((chosen, payload));
                        pool[chosen] = Worker::Dead;
                    }
                }
            }
            Worker::Fresh | Worker::Idle => {
                let (slot, item) = pop_or_steal(&mut deques, chosen)
                    .expect("runnable pull implies some nonempty deque");
                remaining -= 1;
                pool[chosen] = Worker::Holding(slot, item);
            }
            Worker::Finished | Worker::Dead => {
                unreachable!("finished/dead workers are never runnable")
            }
        }
    }
    if let Some((_, payload)) = panics.into_iter().min_by_key(|&(worker, _)| worker) {
        panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| panic!("pool invariant violated: task {i} was lost"))
        })
        .collect()
}

/// Every distinct interleaving of `tasks` items on a `workers`-worker
/// pool.
///
/// The enumeration walks the same deque state machine the playback
/// executes (pop-own-front / steal-victim-back / run steps, all-empty
/// exits pruned as non-observable) by DFS over per-worker deque lengths,
/// recording the worker chosen at each scheduling point. Unlike the
/// shared-queue predecessor, no fresh-worker symmetry reduction applies:
/// workers are distinguishable from the start by the deque block they
/// own, so schedules that differ only in *which* empty-handed worker
/// acts first can reach genuinely different steal patterns and must all
/// be enumerated.
///
/// Bounded-exhaustive by design: intended for `tasks ≤ 4` (typically a
/// few dozen to a few thousand schedules); use [`seeded_schedules`] for
/// larger batches.
pub fn exhaustive_schedules(workers: usize, tasks: usize) -> Vec<Schedule> {
    assert!(workers >= 1, "need at least one worker");
    #[derive(Clone, Copy, PartialEq)]
    enum S {
        Ready,
        Holding,
        Finished,
    }
    fn dfs(
        workers: usize,
        deques: Vec<usize>,
        remaining: usize,
        mut pool: Vec<S>,
        trace: &mut Vec<usize>,
        out: &mut Vec<Schedule>,
    ) {
        if remaining == 0 {
            for s in pool.iter_mut() {
                if *s == S::Ready {
                    *s = S::Finished;
                }
            }
        }
        let options: Vec<usize> = pool
            .iter()
            .enumerate()
            .filter(|&(_, s)| *s == S::Holding || (*s == S::Ready && remaining > 0))
            .map(|(i, _)| i)
            .collect();
        if options.is_empty() {
            out.push(Schedule { workers, choices: trace.clone() });
            return;
        }
        for w in options {
            let mut next_pool = pool.clone();
            let mut next_deques = deques.clone();
            let mut next_remaining = remaining;
            if next_pool[w] == S::Holding {
                next_pool[w] = S::Ready;
            } else {
                // Mirror `pop_or_steal`: own deque first, else the first
                // nonempty victim in cyclic order from w + 1.
                let source = if next_deques[w] > 0 {
                    w
                } else {
                    (1..workers)
                        .map(|i| (w + i) % workers)
                        .find(|&v| next_deques[v] > 0)
                        .expect("remaining > 0 implies a nonempty deque")
                };
                next_deques[source] -= 1;
                next_remaining -= 1;
                next_pool[w] = S::Holding;
            }
            trace.push(w);
            dfs(workers, next_deques, next_remaining, next_pool, trace, out);
            trace.pop();
        }
    }
    let deques: Vec<usize> =
        (0..workers).map(|w| crate::pool::block_range(tasks, workers, w).len()).collect();
    let mut out = Vec::new();
    dfs(workers, deques, tasks, vec![S::Ready; workers], &mut Vec::new(), &mut out);
    out
}

/// `count` pseudo-random schedules from `seed`, reproducibly.
///
/// Raw xorshift64* draws fill each choice list (long enough to cover
/// every scheduling point of a `tasks`-item run); the playback rule in
/// [`Schedule`] maps any value onto a runnable worker, so no legality
/// filtering is needed. The same `(workers, tasks, seed, count)` always
/// yields the same schedules.
pub fn seeded_schedules(workers: usize, tasks: usize, seed: u64, count: usize) -> Vec<Schedule> {
    assert!(workers >= 1, "need at least one worker");
    // splitmix64 scrambles the seed so that seed = 0 works; xorshift64*
    // generates the stream.
    let mut state = {
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) | 1
    };
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    let steps = 2 * tasks + workers;
    (0..count)
        .map(|_| Schedule { workers, choices: (0..steps).map(|_| next() as usize).collect() })
        .collect()
}

/// Two schedules whose executions of the same body produced different
/// values — evidence of schedule-sensitive (racy) data flow.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The first schedule run (the reference interleaving).
    pub baseline: Schedule,
    /// The schedule that disagreed with it.
    pub schedule: Schedule,
    /// `Debug` rendering of the baseline value.
    pub baseline_value: String,
    /// `Debug` rendering of the diverging value.
    pub value: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule {:?} produced {} but baseline {:?} produced {}",
            self.schedule.choices, self.value, self.baseline.choices, self.baseline_value
        )
    }
}

/// Run `body` under every schedule in `schedules` and require one value.
///
/// Returns the common value if every interleaving agrees, or the first
/// [`Divergence`] otherwise. Compare with `PartialEq` on something that
/// captures *bits* (e.g. map `f64`s through `to_bits`) to check the
/// repo's bit-identical determinism contract rather than approximate
/// equality. Panics from `body` propagate from the offending schedule.
pub fn check_determinism<R: PartialEq + std::fmt::Debug>(
    schedules: &[Schedule],
    body: impl Fn() -> R,
) -> Result<R, Box<Divergence>> {
    assert!(!schedules.is_empty(), "need at least one schedule");
    let mut baseline: Option<(Schedule, R)> = None;
    for schedule in schedules {
        let value = with_schedule(schedule, &body);
        match &baseline {
            None => baseline = Some((schedule.clone(), value)),
            Some((reference, expected)) => {
                if value != *expected {
                    return Err(Box::new(Divergence {
                        baseline: reference.clone(),
                        schedule: schedule.clone(),
                        baseline_value: format!("{expected:?}"),
                        value: format!("{value:?}"),
                    }));
                }
            }
        }
    }
    Ok(baseline.expect("at least one schedule ran").1)
}
