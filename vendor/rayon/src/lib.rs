//! Offline vendored implementation of the `rayon` parallel-iterator API
//! surface used by this workspace, backed by a **real** thread pool.
//!
//! Registry access is unavailable in the build container, so this crate
//! re-implements the subset of rayon the workspace calls — but unlike the
//! original seed shim it genuinely executes work on multiple OS threads:
//!
//! * A pipeline (`into_par_iter`/`par_iter` + `map`/`enumerate`/`zip`) is
//!   materialized lazily and executed at `collect`/`for_each` time on a
//!   **persistent** pool of worker threads (spawned once, parked on a
//!   condvar between calls — see [`mod@pool`]), not respawned per call.
//! * Each worker owns a Chase–Lev-style deque seeded with a contiguous
//!   block of item indices; owners pop their own front, and a worker
//!   whose deque runs dry steals from the back of a randomly-rotated
//!   victim, so uneven per-item cost is load-balanced the same way
//!   rayon's work-stealing deques balance it.
//! * The worker count honors `RAYON_NUM_THREADS` (falling back to
//!   [`std::thread::available_parallelism`]); `RAYON_NUM_THREADS=1` runs
//!   inline on the caller with zero thread overhead.
//! * `collect` is order-preserving: item `i`'s result lands in slot `i`
//!   regardless of which worker computed it, so outputs are bit-identical
//!   at every thread count.
//! * A panic in any worker is propagated to the caller (the scope resumes
//!   unwinding with the original payload).
//!
//! Swapping the real rayon back in later is a one-line manifest change —
//! the `prelude` exposes the same names, so no call sites need to change.

use std::sync::atomic::{AtomicUsize, Ordering};

#[cfg(feature = "check")]
pub mod check;
mod pool;

/// In-process worker-count override; 0 means "no override". Takes
/// precedence over `RAYON_NUM_THREADS`.
static NUM_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Override the worker count for subsequent executions in this process;
/// `0` clears the override. **Shim extension** — registry rayon has no
/// such function (its global pool is pinned at first use), so any call
/// site sweeping thread counts in-process (determinism tests, the
/// `engine` bench) will fail to compile after a swap back to the
/// registry crate and must be rethought there (e.g. as separate
/// processes). That loud failure is intentional.
///
/// Tests must use this instead of mutating `RAYON_NUM_THREADS`:
/// `std::env::set_var` while concurrent pool workers call `getenv` is
/// undefined behavior on glibc.
pub fn set_num_threads(n: usize) {
    NUM_THREADS_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Number of worker threads the pool will use for the next execution:
/// the [`set_num_threads`] override if set, else `RAYON_NUM_THREADS` if
/// set to a positive integer, else the machine's available parallelism,
/// else 1.
///
/// Re-read per execution (not cached), so experiment drivers can
/// configure the pool via `RAYON_NUM_THREADS` at process start (before
/// any worker threads exist) and tests can re-configure it between runs
/// via [`set_num_threads`].
pub fn current_num_threads() -> usize {
    let overridden = NUM_THREADS_OVERRIDE.load(Ordering::SeqCst);
    if overridden >= 1 {
        return overridden;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Execute `f` over `items` on the pool, returning results in item order.
fn execute<T, O, F>(items: Vec<T>, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    // Schedule-checker hook (test-only, `check` feature): when a
    // deterministic schedule is installed on this thread, simulate the
    // pool under it instead of spawning workers — before the
    // single-thread shortcut, so even 1-worker schedules replay through
    // the same state machine.
    #[cfg(feature = "check")]
    if check::is_active() {
        return check::run_active(items, f);
    }
    let n = items.len();
    let threads = current_num_threads().min(n);
    // Nested pipelines (a task body calling back into the pool) run
    // inline on the worker: jobs are serialized on one registry, so
    // re-entering it from a participant would deadlock, and the outer
    // pipeline already owns all the workers anyway.
    if threads <= 1 || pool::in_worker() {
        return items.into_iter().map(f).collect();
    }
    pool::run_batch(items, threads, f)
}

/// A parallel pipeline: seed items plus a composed per-item transform,
/// executed on the pool by a terminal operation (`collect`, `for_each`).
pub struct ParIter<I, O, F: Fn(I) -> O> {
    items: Vec<I>,
    f: F,
}

impl<I, O, F: Fn(I) -> O> ParIter<I, O, F> {
    /// Map each item through `g` (runs on the worker threads).
    pub fn map<R, G>(self, g: G) -> ParIter<I, R, impl Fn(I) -> R>
    where
        G: Fn(O) -> R,
    {
        let f = self.f;
        ParIter { items: self.items, f: move |x| g(f(x)) }
    }

    /// Pair each output with its position in the sequence.
    #[allow(clippy::type_complexity)]
    pub fn enumerate(self) -> ParIter<(usize, I), (usize, O), impl Fn((usize, I)) -> (usize, O)> {
        let f = self.f;
        ParIter { items: self.items.into_iter().enumerate().collect(), f: move |(i, x)| (i, f(x)) }
    }

    /// Zip with another pipeline, truncating to the shorter of the two.
    #[allow(clippy::type_complexity)]
    pub fn zip<I2, O2, F2>(
        self,
        other: ParIter<I2, O2, F2>,
    ) -> ParIter<(I, I2), (O, O2), impl Fn((I, I2)) -> (O, O2)>
    where
        F2: Fn(I2) -> O2,
    {
        let f = self.f;
        let f2 = other.f;
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
            f: move |(a, b)| (f(a), f2(b)),
        }
    }

    /// Execute the pipeline and collect the results in item order.
    pub fn collect<C>(self) -> C
    where
        I: Send,
        O: Send,
        F: Sync,
        C: FromIterator<O>,
    {
        execute(self.items, self.f).into_iter().collect()
    }

    /// Execute the pipeline for its side effects.
    pub fn for_each<G>(self, g: G)
    where
        I: Send,
        O: Send,
        F: Sync,
        G: Fn(O) + Sync,
    {
        let f = self.f;
        execute(self.items, move |x| g(f(x)));
    }

    /// Number of items in the pipeline.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.items.len()
    }
}

/// The identity pipeline over `T`'s items (what `into_par_iter` returns).
pub type BaseParIter<T> = ParIter<T, T, fn(T) -> T>;

pub mod prelude {
    pub use crate::{BaseParIter, ParIter};

    /// Entry point mirroring `rayon::prelude::IntoParallelIterator`.
    pub trait IntoParallelIterator: Sized {
        /// Item type of the parallel iterator.
        type Item;

        /// Start a parallel pipeline over `self`'s items.
        fn into_par_iter(self) -> BaseParIter<Self::Item>;
    }

    impl<C: IntoIterator> IntoParallelIterator for C {
        type Item = C::Item;

        fn into_par_iter(self) -> BaseParIter<Self::Item> {
            ParIter { items: self.into_iter().collect(), f: std::convert::identity::<Self::Item> }
        }
    }

    /// Entry point mirroring `rayon::prelude::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// Item type (a shared reference into `self`).
        type Item: 'data;

        /// Start a parallel pipeline over `&self`'s items.
        fn par_iter(&'data self) -> BaseParIter<Self::Item>;
    }

    impl<'data, T: ?Sized> IntoParallelRefIterator<'data> for T
    where
        &'data T: IntoIterator,
        T: 'data,
    {
        type Item = <&'data T as IntoIterator>::Item;

        fn par_iter(&'data self) -> BaseParIter<Self::Item> {
            self.into_iter().into_par_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn collect_preserves_order() {
        crate::set_num_threads(4);
        let out: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zip_and_enumerate_compose() {
        let a = vec![1u64, 2, 3];
        let b = vec![10u64, 20, 30];
        let out: Vec<(usize, u64)> =
            a.par_iter().zip(b.par_iter()).map(|(x, y)| x + y).enumerate().collect();
        assert_eq!(out, vec![(0, 11), (1, 22), (2, 33)]);
    }

    #[test]
    fn uses_multiple_os_threads() {
        crate::set_num_threads(4);
        let seen = Mutex::new(HashSet::new());
        (0..16u32).into_par_iter().for_each(|_| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(seen.lock().unwrap().len() >= 2, "expected >= 2 worker threads");
    }

    #[test]
    fn worker_panic_propagates() {
        crate::set_num_threads(2);
        let result = std::panic::catch_unwind(|| {
            let _: Vec<u32> = (0..8u32)
                .into_par_iter()
                .map(|i| if i == 3 { panic!("boom") } else { i })
                .collect();
        });
        assert!(result.is_err());
    }

    #[test]
    fn pool_threads_are_reused_across_executions() {
        crate::set_num_threads(4);
        let worker_ids = || {
            let seen = Mutex::new(HashSet::new());
            (0..32u32).into_par_iter().for_each(|_| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                seen.lock().unwrap().insert(std::thread::current().id());
            });
            seen.into_inner().unwrap()
        };
        let first = worker_ids();
        let second = worker_ids();
        // The persistent pool parks and re-wakes the same OS threads; a
        // regression back to respawn-per-execute yields disjoint ID sets.
        assert!(
            first.intersection(&second).next().is_some(),
            "no worker thread survived between executions: {first:?} vs {second:?}"
        );
    }

    #[test]
    fn nested_pipelines_run_inline_without_deadlock() {
        crate::set_num_threads(4);
        let out: Vec<u64> = (0..8u64)
            .into_par_iter()
            .map(|i| {
                let inner: Vec<u64> = (0..4u64).into_par_iter().map(|j| i * 10 + j).collect();
                inner.iter().sum()
            })
            .collect();
        let expect: Vec<u64> = (0..8u64).map(|i| (0..4u64).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn fallible_collect_short_circuits_to_err() {
        let out: Result<Vec<u32>, String> = (0..8u32)
            .into_par_iter()
            .map(|i| if i == 5 { Err("bad".to_string()) } else { Ok(i) })
            .collect();
        assert_eq!(out, Err("bad".to_string()));
    }
}
