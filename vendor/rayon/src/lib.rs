//! Offline vendored shim of the `rayon` API surface used by this
//! workspace. Registry access is unavailable in the build container, so
//! `par_iter`/`into_par_iter` degrade to ordinary **sequential** std
//! iterators: every adapter (`map`, `zip`, `enumerate`, `collect`, …) is
//! then just the std `Iterator` machinery, and results are identical to a
//! rayon run because all call sites here use order-independent reductions
//! with per-shard RNG streams.
//!
//! Swapping the real rayon back in later is a one-line manifest change —
//! no call sites need to be touched.

pub mod prelude {
    /// Sequential stand-in for `rayon::prelude::IntoParallelIterator`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// "Parallel" iterator over `self` (sequential in this shim).
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// Sequential stand-in for `rayon::prelude::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator type produced by [`Self::par_iter`].
        type Iter: Iterator;

        /// "Parallel" iterator over `&self` (sequential in this shim).
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: ?Sized> IntoParallelRefIterator<'data> for T
    where
        &'data T: IntoIterator,
        T: 'data,
    {
        type Iter = <&'data T as IntoIterator>::IntoIter;

        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }
}
