//! The persistent work-stealing pool behind [`crate`]'s `execute`.
//!
//! Replaces the original shim's per-call `std::thread::scope` + one
//! `Mutex<iterator>` shared queue with the two structural fixes named in
//! ROADMAP item 3(b):
//!
//! * **Persistent workers.** OS threads are spawned once (lazily, up to
//!   the largest worker count any execution has requested) and parked on
//!   a condvar between jobs. A small dispatch costs a wake/park cycle,
//!   not `threads ×` spawn/join — the `engine_pool_reuse` bench tracks
//!   the difference.
//! * **Per-worker deques + randomized stealing.** Each participating
//!   worker owns a Chase–Lev-style deque seeded with a contiguous block
//!   of task indices ([`block_range`]); the owner pops from the front of
//!   its own deque, and a worker whose deque is empty steals from the
//!   *back* of a victim chosen by a randomized rotation (xorshift,
//!   performance-only randomness). Workers only contend on a lock when
//!   they actually steal, instead of every pull serializing on one
//!   global mutex.
//!
//! The deques are `Mutex<VecDeque<usize>>` rather than lock-free CAS
//! rings: the owner's pop is an uncontended lock (a single atomic
//! exchange on the fast path), steals are rare by construction, and the
//! resulting pool is trivially ThreadSanitizer-clean — which matters
//! here, because the nightly TSan tier and the `rayon::check` simulator
//! are the regression net for the repo's bit-identical determinism
//! contract.
//!
//! ## Determinism
//!
//! Nothing in this module can affect results: task `i`'s output always
//! lands in slot `i`, and every seeded workload derives its RNG stream
//! from the task index (`ShardPlan`), never from the executing thread or
//! the steal order. The randomized victim rotation only changes *which
//! worker* computes a task, which is unobservable by contract.
//!
//! ## Nested executions
//!
//! A task body that itself calls into the pool (a nested
//! `into_par_iter().collect()`) runs that inner pipeline inline on the
//! worker. Jobs are serialized on one registry, so handing a nested job
//! to the pool from inside a worker would deadlock; inline execution is
//! deterministic, panic-transparent, and matches the contract (the
//! outer pipeline already owns all the workers).
//!
//! ## Safety
//!
//! This is the one module in the workspace that needs `unsafe`: a job
//! borrows the caller's stack (items, output slots, the user closure),
//! and the pointer handed to the persistent workers must erase that
//! lifetime. The invariants making it sound:
//!
//! * `run_job` does not return until every participating worker has
//!   checked in as finished (the `active` count under the registry
//!   lock), so the erased `JobData` pointer never outlives the frame it
//!   points into.
//! * A task index is dispensed exactly once (each index is pushed to
//!   exactly one deque, and deque pops/steals happen under that deque's
//!   mutex), so the `UnsafeCell` item/slot accesses in `run_batch` are
//!   exclusive per index.
//! * All cross-thread hand-offs (job install, task dispensation, slot
//!   writes before the final check-in) are ordered by mutex
//!   acquire/release edges — there is no unsynchronized access for TSan
//!   to find.

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// Contiguous block of task indices initially owned by `worker` when `n`
/// tasks are split across `workers` deques: near-equal blocks, the
/// remainder going to the lowest-indexed workers (the same remainder
/// rule as `ShardPlan::shard_trials`). Shared with the `check` simulator
/// so the loom-lite tier explores exactly the distribution the real pool
/// uses.
pub(crate) fn block_range(n: usize, workers: usize, worker: usize) -> Range<usize> {
    let base = n / workers;
    let rem = n % workers;
    let start = worker * base + worker.min(rem);
    let len = base + usize::from(worker < rem);
    start..start + len
}

/// One in-flight `execute` call, type-erased for the persistent workers.
struct JobData<'scope> {
    /// Per-worker deques of task indices. Owner pops the front; thieves
    /// steal the back.
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Worker panics as `(worker_slot, payload)`; after the job, the
    /// payload with the smallest slot is re-raised (the same panic the
    /// old scoped pool's in-order join loop propagated).
    panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>>,
    /// Runs one task index (takes the item, applies the user closure,
    /// stores the output slot).
    run: &'scope (dyn Fn(usize) + Sync),
}

/// Lifetime-erased pointer to the active job. Soundness: see the module
/// docs — `run_job` outlives every worker's use of the pointer.
#[derive(Clone, Copy)]
struct JobPtr(*const JobData<'static>);

// SAFETY: the pointee is only dereferenced while the owning `run_job`
// frame is blocked waiting for the job's `active` count to reach zero,
// and `JobData`'s interior is `Sync` (mutex-guarded deques/panics, a
// `Sync` closure).
unsafe impl Send for JobPtr {}
unsafe impl Sync for JobPtr {}

/// Registry state guarded by [`Registry::shared`].
struct Shared {
    /// Monotone job counter; each installed job carries its own value so
    /// a late-waking worker can never double-join an old job.
    seq: u64,
    /// The currently installed job, if any.
    job: Option<ActiveJob>,
    /// Worker threads spawned so far (worker `w` exists for `w <
    /// spawned`).
    spawned: usize,
}

struct ActiveJob {
    seq: u64,
    /// Participating workers (slots `0..workers`).
    workers: usize,
    /// Participants that have not yet checked in as finished.
    active: usize,
    job: JobPtr,
}

/// The process-wide persistent pool.
struct Registry {
    /// Serializes jobs: one `execute` owns the worker fleet at a time.
    /// Held across the whole job (install → completion), so `shared.job`
    /// transitions are simple and a second caller just queues here.
    job_lock: Mutex<()>,
    shared: Mutex<Shared>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// The caller parks here until the last participant checks in.
    done_cv: Condvar,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        job_lock: Mutex::new(()),
        shared: Mutex::new(Shared { seq: 0, job: None, spawned: 0 }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
    })
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

thread_local! {
    /// Set while a pool worker runs job tasks; nested `execute` calls on
    /// this thread run inline instead of re-entering the registry.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is a pool worker mid-job (nested pipelines
/// must run inline).
pub(crate) fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// Body of one persistent worker thread: park until a fresh job names
/// this slot as a participant, drain it, check in, repeat forever. The
/// threads are detached (never joined); at process exit they are parked
/// in `work_cv` with no job to touch.
fn worker_main(slot: usize) {
    let registry = registry();
    let mut last_seq = 0u64;
    loop {
        let (seq, job) = {
            let mut shared = lock(&registry.shared);
            loop {
                if let Some(active) = &shared.job {
                    if active.seq > last_seq && slot < active.workers {
                        break (active.seq, active.job);
                    }
                }
                shared = registry
                    .work_cv
                    .wait(shared)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
        };
        last_seq = seq;
        // SAFETY: the installing `run_job` frame blocks until this worker
        // checks in below, so the pointee is alive for the whole drain.
        let job_ref = unsafe { &*job.0 };
        IN_WORKER.with(|w| w.set(true));
        drain(job_ref, slot, seq);
        IN_WORKER.with(|w| w.set(false));
        let mut shared = lock(&registry.shared);
        if let Some(active) = &mut shared.job {
            if active.seq == seq {
                active.active -= 1;
                if active.active == 0 {
                    shared.job = None;
                    registry.done_cv.notify_all();
                }
            }
        }
    }
}

/// Drain tasks for one job from worker `slot`: pop the own deque's
/// front; when it is empty, steal from the back of a victim picked by a
/// randomized rotation. Exits when every deque is empty, or immediately
/// after a task panic (the dead worker's remaining deque entries are
/// stolen by the survivors — the same drain behavior the scoped pool
/// had when a worker thread died).
fn drain(job: &JobData<'_>, slot: usize, seq: u64) {
    let workers = job.deques.len();
    // xorshift64* state for the steal rotation — performance-only
    // randomness (the victim choice cannot affect any result).
    let mut rng: u64 = (slot as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seq | 1;
    loop {
        let task = lock(&job.deques[slot]).pop_front().or_else(|| {
            let mut next = || {
                rng ^= rng >> 12;
                rng ^= rng << 25;
                rng ^= rng >> 27;
                rng.wrapping_mul(0x2545_f491_4f6c_dd1d)
            };
            let offset = next() as usize;
            (0..workers).find_map(|i| {
                let victim = (offset + i) % workers;
                if victim == slot {
                    return None;
                }
                lock(&job.deques[victim]).pop_back()
            })
        });
        let Some(task) = task else { return };
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| (job.run)(task))) {
            lock(&job.panics).push((slot, payload));
            return;
        }
    }
}

/// Install `job` on the registry, wake `workers` participants, and block
/// until every one of them has checked in.
fn run_job(job: &JobData<'_>, workers: usize) {
    let registry = registry();
    let _fleet = lock(&registry.job_lock);
    let mut shared = lock(&registry.shared);
    while shared.spawned < workers {
        let slot = shared.spawned;
        // Worker threads are detached: they hold no job state between
        // jobs and park forever once the process stops dispatching.
        let spawned = std::thread::Builder::new()
            .name(format!("dispersal-pool-{slot}"))
            .spawn(move || worker_main(slot));
        match spawned {
            Ok(_) => shared.spawned += 1,
            Err(_) => break, // run with the workers we have
        }
    }
    let workers = workers.min(shared.spawned.max(1));
    shared.seq += 1;
    let seq = shared.seq;
    // SAFETY of the lifetime erasure: this frame does not return until
    // `active` reaches zero (loop below), which each worker only signals
    // after its last use of the pointer.
    let erased =
        JobPtr(job as *const JobData<'_> as *const JobData<'static>);
    shared.job = Some(ActiveJob { seq, workers, active: workers, job: erased });
    registry.work_cv.notify_all();
    while shared.job.as_ref().is_some_and(|active| active.seq == seq) {
        shared = registry.done_cv.wait(shared).unwrap_or_else(|poison| poison.into_inner());
    }
}

/// Slice of `UnsafeCell`s shared with the workers. Exclusivity per index
/// is guaranteed by exactly-once task dispensation (see module docs).
struct CellSlice<'a, T>(&'a [UnsafeCell<Option<T>>]);

impl<T> CellSlice<'_, T> {
    /// Raw pointer to cell `i`'s contents. Method (not field) access so
    /// closures capture the whole `Sync` wrapper, not the bare slice.
    fn cell(&self, i: usize) -> *mut Option<T> {
        self.0[i].get()
    }
}

// SAFETY: each cell is accessed by exactly one task execution, and the
// caller only reads the cells after every worker has checked in (mutex
// edges order the accesses).
unsafe impl<T: Send> Sync for CellSlice<'_, T> {}

/// Execute `f` over `items` on the persistent pool with `workers` (≥ 2)
/// participants, returning results in item order. Panics in task bodies
/// propagate with the original payload after the pool has drained.
pub(crate) fn run_batch<T, O, F>(items: Vec<T>, workers: usize, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    let n = items.len();
    let items: Vec<UnsafeCell<Option<T>>> =
        items.into_iter().map(|item| UnsafeCell::new(Some(item))).collect();
    let mut slots: Vec<UnsafeCell<Option<O>>> = Vec::with_capacity(n);
    slots.resize_with(n, || UnsafeCell::new(None));
    let items_ref = CellSlice(&items);
    let slots_ref = CellSlice(&slots);
    let run = |task: usize| {
        // SAFETY: `task` is dispensed to exactly one worker, once.
        let item = unsafe { (*items_ref.cell(task)).take() };
        let item = item.expect("pool invariant violated: task dispensed twice");
        let out = f(item);
        // SAFETY: same exclusive index; the caller reads only after the
        // job's final check-in.
        unsafe { *slots_ref.cell(task) = Some(out) };
    };
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|w| Mutex::new(block_range(n, workers, w).collect())).collect();
    let job = JobData { deques, panics: Mutex::new(Vec::new()), run: &run };
    run_job(&job, workers);
    let panics = job.panics.into_inner().unwrap_or_else(|poison| poison.into_inner());
    if let Some((_, payload)) = panics.into_iter().min_by_key(|&(slot, _)| slot) {
        panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every task index was executed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_partition_every_size() {
        for n in 0..40usize {
            for workers in 1..8usize {
                let mut covered = Vec::new();
                for w in 0..workers {
                    let range = block_range(n, workers, w);
                    covered.extend(range.clone());
                    // Near-equal: no block exceeds ceil(n / workers).
                    assert!(range.len() <= n.div_ceil(workers), "n={n} w={w}/{workers}");
                }
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} workers={workers}");
            }
        }
    }
}
