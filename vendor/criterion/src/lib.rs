//! Offline vendored stub of the `criterion` benchmarking API used by this
//! workspace. It executes each benchmark closure a small fixed number of
//! times and prints the mean wall-clock duration — enough to smoke-test
//! that the benches run and to eyeball relative costs, without the real
//! statistical engine (unavailable offline).

use std::fmt;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Number of timed iterations per benchmark in the stub harness.
const ITERATIONS: u32 = 10;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _parent: self }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub always runs a fixed
    /// iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored by the stub.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra in the stub).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter display string.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: format!("{function}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    _priv: (),
}

impl Bencher {
    /// Time `f`, running it a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..ITERATIONS {
            black_box(f());
        }
        let mean = start.elapsed() / ITERATIONS;
        println!("    bench: {mean:>12.2?}/iter over {ITERATIONS} iters");
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    println!("benchmarking {label}");
    let mut bencher = Bencher::default();
    f(&mut bencher);
}

/// Declare a group-runner function over one or more target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = { let _ = || $cfg; $crate::Criterion::default() };
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
