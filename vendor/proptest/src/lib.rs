//! Offline vendored mini-proptest.
//!
//! Provides the slice of the proptest API this workspace uses — the
//! [`proptest!`] macro, range and `collection::vec` strategies,
//! `prop_map`, `ProptestConfig { cases, .. }`, and the `prop_assert*`
//! macros — backed by deterministic ChaCha8 sampling (seeded from the
//! test name) instead of the real engine. There is **no shrinking**: a
//! failing case panics with the assertion message directly. That is a
//! deliberate trade-off to stay dependency-free in an offline container.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values (mirror of `proptest::strategy::Strategy`,
    /// without shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! numeric_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }
    numeric_range_strategies!(usize, u64, u32, u16, u8, i64, i32, i16, i8, isize, f64, f32);

    macro_rules! tuple_strategies {
        ($(($($S:ident $idx:tt),+)),+ $(,)?) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    // Tuples of strategies generate tuples of values (mirror of the real
    // crate's tuple `Strategy` impls), e.g. inside `collection::vec`.
    tuple_strategies!((A 0, B 1), (A 0, B 1, C 2), (A 0, B 1, C 2, D 3));
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of values drawn from `element`, with a length in
    /// `size` (mirror of `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Configuration accepted by `#![proptest_config(...)]`.
    ///
    /// Mirrors the commonly-set fields of the real `ProptestConfig` so
    /// struct-update syntax (`..ProptestConfig::default()`) keeps working;
    /// only `cases` affects the mini engine.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for compatibility; the mini engine never rejects cases.
        pub max_global_rejects: u32,
        /// Accepted for compatibility; the mini engine never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256, max_global_rejects: 1024, max_shrink_iters: 1024 }
        }
    }

    /// Deterministic RNG handed to strategies, seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        pub(crate) rng: ChaCha8Rng,
    }

    impl TestRng {
        /// Build the RNG for a named test: same name, same sequence.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xD15B_ED5E_ED5E_ED5Eu64;
            for b in name.bytes() {
                seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
            }
            TestRng { rng: ChaCha8Rng::seed_from_u64(seed) }
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Run each `#[test] fn name(pat in strategy, ...)` body against
/// `config.cases` random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for __case in 0..config.cases {
                    let _ = __case;
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    // Real proptest runs bodies in a closure returning
                    // `Result`, so `return Ok(())` skips a case; mirror
                    // that so such early exits type-check.
                    let __outcome: ::std::result::Result<(), ()> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    let _ = __outcome;
                }
            }
        )*
    };
}

/// Assert a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip a case that does not satisfy a precondition. The mini engine has
/// no rejection bookkeeping, so this simply ends the case early (bodies
/// run inside a `Result`-returning closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}
