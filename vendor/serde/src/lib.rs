//! Offline vendored mini-serde.
//!
//! The build container has no registry access, so this crate provides the
//! slice of serde this workspace uses: `#[derive(Serialize, Deserialize)]`
//! on plain structs and enums, round-tripped through an in-memory
//! [`Value`] tree (the sibling `serde_json` stub renders/parses that tree
//! as JSON). The derive macros live in the `serde_derive` stub and target
//! the [`Serialize::to_value`] / [`Deserialize::from_value`] model rather
//! than the real serde visitor machinery — vastly simpler, and sufficient
//! for the CSV/JSON reporting and round-trip tests in this repo.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// An in-memory tree of serialized data (analogous to `serde_json::Value`,
/// but owned by the serde stub so both crates can share it).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (kept separate so `u64::MAX` survives).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries if this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow the array elements if this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow the string if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Error produced when a [`Value`] cannot be decoded into the requested
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Build an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Look up a field of an object by name (helper used by derived code).
pub fn get_field<'v>(entries: &'v [(String, Value)], name: &str) -> Result<&'v Value, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::custom(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
int_impls!(i8, i16, i32, i64, isize);

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) if *i >= 0 => Ok(*i as $t),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(DeError::custom(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
uint_impls!(u8, u16, u32, u64, usize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(DeError::custom(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::custom("expected array for tuple"))?;
                let mut it = items.iter();
                Ok(($(
                    {
                        let _ = $idx;
                        $name::from_value(
                            it.next().ok_or_else(|| DeError::custom("tuple too short"))?,
                        )?
                    },
                )+))
            }
        }
    )+};
}
tuple_impls!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));
