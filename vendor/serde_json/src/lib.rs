//! Offline vendored JSON codec for the mini-serde stub: renders
//! [`serde::Value`] trees as JSON and parses JSON back into them.
//!
//! Float formatting uses Rust's shortest round-trip `Display`, so
//! `to_string` → `from_str` reproduces every finite `f64` bit-exactly —
//! the property the workspace's serde round-trip tests rely on.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Error for JSON encode/decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let v = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error(format!("cannot serialize non-finite float {f}")));
            }
            out.push_str(&f.to_string());
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `]` in array, found {other:?}"
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `}}` in object, found {other:?}"
                            )))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!("unexpected character {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("invalid escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                // `-0` must stay a float: collapsing it to integer zero
                // would drop the sign bit and break bit-exact round-trips.
                if i != 0 {
                    return Ok(Value::Int(i));
                }
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| Error(format!("invalid number `{text}`")))
    }
}
