//! Derive macros for the vendored mini-serde.
//!
//! `syn`/`quote` are unavailable offline, so this crate parses the derive
//! input by walking the raw [`proc_macro::TokenStream`]. It supports the
//! shapes this workspace actually uses:
//!
//! * structs with named fields (including a simple `<T>` generic list),
//! * unit structs,
//! * enums with unit, tuple, and struct variants (externally tagged).
//!
//! Generated code targets the stub's `to_value`/`from_value` model.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct(Vec<String>),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    generics: Vec<String>,
    shape: Shape,
}

/// Skip attribute tokens (`#[...]`, including expanded doc comments) and a
/// `pub` / `pub(...)` visibility prefix, starting at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Split the tokens of a brace/paren group on commas that sit outside any
/// `<...>` nesting (generic arguments expose `,` at the same token depth).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle: i32 = 0;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extract field names from the token list of a named-fields group.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    split_top_level(tokens)
        .into_iter()
        .filter_map(|chunk| {
            let i = skip_attrs_and_vis(&chunk, 0);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected type name, got {other}"),
    };
    i += 1;

    // Simple generic parameter list: `<A, B, ...>` (no bounds, as used in
    // this workspace).
    let mut generics = Vec::new();
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1;
        while depth > 0 {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Ident(id) if depth == 1 => generics.push(id.to_string()),
                _ => {}
            }
            i += 1;
        }
    }

    let shape = if kw == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::NamedStruct(parse_named_fields(&body))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("derive: unsupported struct shape near {other:?}"),
        }
    } else if kw == "enum" {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                g.stream().into_iter().collect::<Vec<TokenTree>>()
            }
            other => panic!("derive: expected enum body, got {other:?}"),
        };
        let variants = split_top_level(&body)
            .into_iter()
            .filter_map(|chunk| {
                let j = skip_attrs_and_vis(&chunk, 0);
                let vname = match chunk.get(j) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    _ => return None,
                };
                let kind = match chunk.get(j + 1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let body: Vec<TokenTree> = g.stream().into_iter().collect();
                        VariantKind::Named(parse_named_fields(&body))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let body: Vec<TokenTree> = g.stream().into_iter().collect();
                        VariantKind::Tuple(split_top_level(&body).len())
                    }
                    _ => VariantKind::Unit,
                };
                Some(Variant { name: vname, kind })
            })
            .collect();
        Shape::Enum(variants)
    } else {
        panic!("derive: expected `struct` or `enum`, got `{kw}`");
    };

    Input { name, generics, shape }
}

/// Render `impl<T: Bound, ...>` + `Type<T, ...>` header pieces.
fn impl_header(input: &Input, bound: &str) -> (String, String) {
    if input.generics.is_empty() {
        (String::new(), input.name.clone())
    } else {
        let params: Vec<String> = input.generics.iter().map(|g| format!("{g}: {bound}")).collect();
        (
            format!("<{}>", params.join(", ")),
            format!("{}<{}>", input.name, input.generics.join(", ")),
        )
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let (params, ty) = impl_header(&input, "::serde::Serialize");
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "entries.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut entries: Vec<(String, ::serde::Value)> = Vec::new(); {pushes} ::serde::Value::Object(entries)"
            )
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let name = &input.name;
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|k| format!("__f{k}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{items}]))]),",
                                items = items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n#[allow(clippy::all, unused_variables)]\nimpl{params} ::serde::Serialize for {ty} {{\n    fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}"
    )
    .parse()
    .expect("derive(Serialize): generated code failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let (params, ty) = impl_header(&input, "::serde::Deserialize");
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::get_field(entries, \"{f}\")?)?,"
                    )
                })
                .collect();
            format!(
                "let entries = v.as_object().ok_or_else(|| ::serde::DeError::custom(\"expected object for struct {name}\"))?; Ok({name} {{ {inits} }})"
            )
        }
        Shape::UnitStruct => format!("let _ = v; Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{vn}\" => return Ok({name}::{vn}),", vn = v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(n) => {
                            let gets: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!(
                                        "::serde::Deserialize::from_value(items.get({k}).ok_or_else(|| ::serde::DeError::custom(\"variant {vn}: missing element {k}\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let items = inner.as_array().ok_or_else(|| ::serde::DeError::custom(\"variant {vn}: expected array\"))?; return Ok({name}::{vn}({gets})); }}",
                                gets = gets.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(::serde::get_field(entries, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let entries = inner.as_object().ok_or_else(|| ::serde::DeError::custom(\"variant {vn}: expected object\"))?; return Ok({name}::{vn} {{ {inits} }}); }}",
                                inits = inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let Some(s) = v.as_str() {{ match s {{ {unit_arms} _ => {{}} }} }} \
                 if let Some(entries) = v.as_object() {{ if entries.len() == 1 {{ \
                 let (tag, inner) = &entries[0]; let _ = inner; match tag.as_str() {{ {tagged_arms} _ => {{}} }} }} }} \
                 Err(::serde::DeError::custom(\"no matching variant of {name}\"))"
            )
        }
    };
    format!(
        "#[automatically_derived]\n#[allow(clippy::all, unused_variables, unreachable_code)]\nimpl{params} ::serde::Deserialize for {ty} {{\n    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n}}"
    )
    .parse()
    .expect("derive(Deserialize): generated code failed to parse")
}
