//! Offline, dependency-free stub of the subset of the `rand` 0.8 API used
//! by this workspace. The container image has no registry access, so the
//! workspace vendors the handful of trait definitions and samplers it
//! needs. Semantics match rand 0.8 closely enough for the tests here:
//! uniform floats use the 53-bit mantissa construction, integer ranges use
//! rejection-free modulo reduction (bias is irrelevant for the small spans
//! used), and `seed_from_u64` expands the seed with SplitMix64 exactly like
//! `rand_core`'s default implementation.

pub mod distributions;

pub use distributions::{Distribution, Standard};

/// Low-level source of randomness (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random generator seedable from a fixed-size byte seed (mirror of
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Create a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Create a generator from a `u64`, expanding it with SplitMix64 (the
    /// same construction `rand_core` 0.6 uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(4) {
            let x = splitmix64(&mut s) as u32;
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing convenience methods (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A cheap, thread-local-ish generator for examples.
///
/// Unlike the real `rand`, this stub seeds deterministically from a
/// process-wide counter (the container offers no OS entropy guarantee and
/// the examples only need plausible randomness).
#[derive(Debug, Clone)]
pub struct ThreadRng {
    state: u64,
}

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

/// Obtain a [`ThreadRng`].
pub fn thread_rng() -> ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0x5EED_0F_C0FFEE);
    ThreadRng { state: COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed) }
}
