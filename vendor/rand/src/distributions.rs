//! Distributions: the [`Distribution`] trait, the [`Standard`]
//! distribution, and uniform range sampling.

use crate::{Rng, RngCore};

/// A distribution over values of type `T` (mirror of
/// `rand::distributions::Distribution`).
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution for each primitive type: uniform over the
/// whole domain for integers, uniform in `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1) — the rand 0.8
        // `Standard` construction.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform range sampling (mirror of `rand::distributions::uniform`).
pub mod uniform {
    use super::*;
    use std::ops::{Range, RangeInclusive};

    /// A range that can be sampled from directly via `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Sample one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range_impls {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }
    int_range_impls!(usize, u64, u32, u16, u8);

    macro_rules! signed_range_impls {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + (rng.next_u64() % (span.saturating_add(1))) as i128) as $t
                }
            }
        )*};
    }
    signed_range_impls!(i64, i32, i16, i8, isize);

    macro_rules! float_range_impls {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let u: f64 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    self.start + (self.end - self.start) * u as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let u: f64 = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                    lo + (hi - lo) * u as $t
                }
            }
        )*};
    }
    float_range_impls!(f64, f32);
}
