//! Offline vendored ChaCha8 random generator with the `rand_chacha` 0.3
//! API surface used by this workspace: [`ChaCha8Rng`] plus a `rand_core`
//! re-export module. The core is a genuine ChaCha8 keystream (4 double
//! rounds per block, 64-bit block counter), so streams derived from
//! distinct 256-bit keys are statistically independent — the property the
//! simulation crate's forkable seed streams rely on.

/// Re-export of the seeding/core traits under the path `rand_chacha 0.3`
/// exposes them at (`rand_chacha::rand_core::…`).
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha random number generator with 8 rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buffer.iter_mut().zip(state.iter().zip(input.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Self { key, counter: 0, buffer: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::from_seed([7; 32]);
        let mut b = ChaCha8Rng::from_seed([7; 32]);
        let mut c = ChaCha8Rng::from_seed([8; 32]);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn seed_from_u64_works() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
