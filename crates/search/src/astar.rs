//! Iterated-σ⋆ search: our reconstruction of the A⋆ algorithm of
//! Korman–Rodeh \[24\].
//!
//! The paper proves (Section 2.1) that σ⋆ *is* the first round of A⋆. The
//! full multi-round A⋆ is not reproduced in the paper, so we reconstruct
//! the natural extension, documented in DESIGN.md: before round `t`, the
//! posterior probability that box `x` still hides the treasure **and** is
//! undiscovered is `w_t(x) ∝ prior(x)·Π_{s<t} (1 − p_s(x))^k`; round `t`
//! plays σ⋆ on that posterior weight vector. Round 1 uses the bare prior,
//! so the identity with the paper's σ⋆ is exact where it matters.
//!
//! Because the posterior weights need not stay sorted, each round sorts the
//! weights, computes σ⋆ in sorted space, and maps back to box identities.

use crate::plan::SearchPlan;
use crate::prior::Prior;
use dispersal_core::sigma_star::sigma_star;
use dispersal_core::strategy::Strategy;
use dispersal_core::value::ValueProfile;
use dispersal_core::{Error, Result};

/// Compute σ⋆ for an *unsorted* positive weight vector by sorting, solving,
/// and undoing the permutation.
///
/// Non-finite weights are rejected *before* sorting: a NaN would otherwise
/// make the comparator fall back to `Equal` and silently produce an
/// arbitrary rank order (i.e. an arbitrary strategy). The error reports the
/// offending index in the caller's (unsorted) coordinates.
pub fn sigma_star_unsorted(weights: &[f64], k: usize) -> Result<Strategy> {
    let m = weights.len();
    if m == 0 {
        return Err(Error::EmptyProfile);
    }
    for (index, &value) in weights.iter().enumerate() {
        if !value.is_finite() {
            return Err(Error::InvalidValue { index, value });
        }
    }
    let mut order: Vec<usize> = (0..m).collect();
    order
        .sort_by(|&a, &b| weights[b].partial_cmp(&weights[a]).unwrap_or(std::cmp::Ordering::Equal));
    let sorted: Vec<f64> = order.iter().map(|&i| weights[i]).collect();
    let profile = ValueProfile::new(sorted)?;
    let star = sigma_star(&profile, k)?;
    let mut probs = vec![0.0; m];
    for (rank, &box_id) in order.iter().enumerate() {
        probs[box_id] = star.strategy.prob(rank);
    }
    Strategy::new(probs)
}

/// The iterated-σ⋆ plan (reconstruction of A⋆).
#[derive(Debug, Clone)]
pub struct IteratedSigmaStar {
    k: usize,
    /// Posterior weight that box `x` hides the treasure and is still
    /// unopened by everyone.
    weights: Vec<f64>,
    /// Memoized rounds already computed.
    rounds: Vec<Strategy>,
}

impl IteratedSigmaStar {
    /// Build the plan for `k` searchers over `prior`.
    pub fn new(prior: &Prior, k: usize) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidPlayerCount { k });
        }
        Ok(Self {
            k,
            weights: (0..prior.len()).map(|x| prior.mass(x)).collect(),
            rounds: Vec::new(),
        })
    }

    fn extend_to(&mut self, t: usize) -> Result<()> {
        while self.rounds.len() <= t {
            // Floor the weights: once a box is (almost surely) exhausted its
            // weight underflows; keep a tiny positive mass so ValueProfile
            // stays valid. These boxes get ~zero probability anyway.
            let floored: Vec<f64> = self.weights.iter().map(|&w| w.max(1e-300)).collect();
            let strategy = sigma_star_unsorted(&floored, self.k)?;
            for (w, p) in self.weights.iter_mut().zip(strategy.probs().iter()) {
                *w *= (1.0 - p).powi(self.k as i32);
            }
            self.rounds.push(strategy);
        }
        Ok(())
    }
}

impl SearchPlan for IteratedSigmaStar {
    fn round(&mut self, t: usize) -> Result<Strategy> {
        self.extend_to(t)?;
        Ok(self.rounds[t].clone())
    }

    fn name(&self) -> String {
        format!("iterated-sigma-star(k={})", self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_one_is_sigma_star_on_prior() {
        // The identity the paper states: A* round 1 == sigma*(prior).
        let prior = Prior::zipf(12, 1.0).unwrap();
        let k = 3;
        let mut plan = IteratedSigmaStar::new(&prior, k).unwrap();
        let round1 = plan.round(0).unwrap();
        let direct = sigma_star(prior.profile(), k).unwrap().strategy;
        let d = round1.linf_distance(&direct).unwrap();
        assert!(d < 1e-12, "distance {d}");
    }

    #[test]
    fn sigma_star_unsorted_matches_sorted() {
        let weights = vec![0.2, 1.0, 0.5];
        let k = 2;
        let s = sigma_star_unsorted(&weights, k).unwrap();
        let sorted_profile = ValueProfile::new(vec![1.0, 0.5, 0.2]).unwrap();
        let sorted = sigma_star(&sorted_profile, k).unwrap().strategy;
        // Box 1 (weight 1.0) should carry the top-rank probability, etc.
        assert!((s.prob(1) - sorted.prob(0)).abs() < 1e-12);
        assert!((s.prob(2) - sorted.prob(1)).abs() < 1e-12);
        assert!((s.prob(0) - sorted.prob(2)).abs() < 1e-12);
    }

    #[test]
    fn sigma_star_unsorted_validates() {
        assert!(sigma_star_unsorted(&[], 2).is_err());
        assert!(IteratedSigmaStar::new(&Prior::uniform(3).unwrap(), 0).is_err());
    }

    #[test]
    fn sigma_star_unsorted_rejects_non_finite_weights_at_original_index() {
        // Regression: pre-fix, the NaN-tolerant comparator sorted the
        // infinity to rank 0 and the error (if any) surfaced from sorted
        // space with the wrong index. The finiteness scan must reject in
        // the caller's coordinates: the bad weight sits at index 1.
        let err = sigma_star_unsorted(&[1.0, f64::INFINITY, 0.5], 2).unwrap_err();
        match err {
            Error::InvalidValue { index, value } => {
                assert_eq!(index, 1, "must report the unsorted index");
                assert!(value.is_infinite());
            }
            other => panic!("expected InvalidValue, got {other:?}"),
        }
        let err = sigma_star_unsorted(&[0.3, 0.7, f64::NAN], 2).unwrap_err();
        match err {
            Error::InvalidValue { index, value } => {
                assert_eq!(index, 2);
                assert!(value.is_nan());
            }
            other => panic!("expected InvalidValue, got {other:?}"),
        }
    }

    #[test]
    fn posterior_weights_shift_mass_to_unexplored_boxes() {
        // With a steep prior, round 1 concentrates on the top boxes; later
        // rounds must spread to the tail as the top is exhausted.
        let prior = Prior::geometric(10, 0.5).unwrap();
        let k = 2;
        let mut plan = IteratedSigmaStar::new(&prior, k).unwrap();
        let r0 = plan.round(0).unwrap();
        // The sigma-star support of this steep prior is 2 boxes, so round 1
        // ignores boxes 2.. entirely; as those top boxes are exhausted the
        // posterior pushes probability beyond the initial support.
        let support0 = r0.support_size(1e-12);
        assert_eq!(support0, 2, "initial support");
        let r8 = plan.round(8).unwrap();
        let beyond_r0: f64 = (support0..10).map(|x| r0.prob(x)).sum();
        let beyond_r8: f64 = (support0..10).map(|x| r8.prob(x)).sum();
        assert_eq!(beyond_r0, 0.0);
        assert!(beyond_r8 > 0.0, "mass beyond the initial support should grow: {beyond_r8}");
    }

    #[test]
    fn rounds_are_memoized_and_stable() {
        let prior = Prior::uniform(5).unwrap();
        let mut plan = IteratedSigmaStar::new(&prior, 2).unwrap();
        let a = plan.round(2).unwrap();
        let b = plan.round(2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_prior_stays_uniform() {
        // Symmetry: with a uniform prior every round is uniform.
        let prior = Prior::uniform(6).unwrap();
        let mut plan = IteratedSigmaStar::new(&prior, 3).unwrap();
        for t in 0..4 {
            let r = plan.round(t).unwrap();
            for x in 0..6 {
                assert!((r.prob(x) - 1.0 / 6.0).abs() < 1e-9, "round {t} box {x}: {}", r.prob(x));
            }
        }
    }
}
