//! Shared-tree parallel best-first search over mechanism space.
//!
//! The searcher grows one shared tree of [`ParamBox`] nodes. Each
//! iteration selects a **wave** of up to `wave` frontier nodes by
//! best-first priority, expands the whole wave concurrently on the
//! persistent work-stealing pool (`dispersal_sim::engine::par_map`), and
//! merges the children back in wave order. One expansion = one
//! policy-major `GBatch` tile: the children of a node are evaluated as a
//! single batched response matrix (one shared Bernstein basis column for
//! the whole sibling set), then scored exactly by
//! [`dispersal_mech::scoring::score_table`] — whose ESS probe routes every
//! mutant payoff through the shared `PbCache` ledger.
//!
//! **Virtual loss** (the holmes `ParallelMonteCarloSearchServer` trick,
//! adapted to waves): when a node is claimed for the current wave, its
//! parent takes a temporary score penalty, pushing later picks in the
//! *same* wave away from the claimed node's siblings and into different
//! subtrees — workers diverge without locking the frontier. Losses are
//! cleared at the wave barrier, so they shape concurrency, never totals.
//!
//! **Determinism contract** (pinned by `determinism_mech_search` tests):
//! selection is a sequential scan with total tie-breaks (objective score,
//! then batched response mass, then lowest node id), expansion results
//! come back in submission order (`par_map` is order-preserving), and
//! per-node ESS seeds derive only from `(seed, parent id, child index)` —
//! so the certificate is bit-identical for a fixed seed at any
//! `RAYON_NUM_THREADS`, including 1 and 8.

use crate::mech_space::{root_boxes, MechPoint, ParamBox};
use dispersal_core::kernel::GBatch;
use dispersal_core::value::ValueProfile;
use dispersal_core::{Error, Result};
use dispersal_mech::scoring::{score_table, MechScore};
use dispersal_sim::engine;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What the search maximizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Maximize equilibrium welfare (value-weighted coverage).
    Welfare,
    /// Minimize the selfish price of anarchy.
    Spoa,
}

impl Objective {
    /// Parse `"welfare"` / `"spoa"`.
    pub fn parse(spec: &str) -> Result<Self> {
        match spec {
            "welfare" => Ok(Objective::Welfare),
            "spoa" => Ok(Objective::Spoa),
            other => {
                Err(Error::InvalidArgument(format!("unknown objective '{other}' (welfare|spoa)")))
            }
        }
    }

    /// Higher-is-better score of a scorecard under this objective.
    fn score(&self, ms: &MechScore) -> f64 {
        match self {
            Objective::Welfare => ms.welfare,
            Objective::Spoa => -ms.spoa,
        }
    }
}

/// Search configuration.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Player count the mechanisms are designed for.
    pub k: usize,
    /// Site-value profile welfare is measured against.
    pub profile: ValueProfile,
    /// Objective to optimize (always subject to ESS feasibility when
    /// `ess_mutants > 0`).
    pub objective: Objective,
    /// Expansion budget: total number of tree nodes expanded.
    pub budget: usize,
    /// Wave width: frontier nodes expanded concurrently per iteration.
    pub wave: usize,
    /// Children per expansion (slabs the node's box is split into).
    pub children: usize,
    /// Random mutant strategies probed per candidate for ESS
    /// feasibility; `0` skips the probe (certificates then carry no ESS
    /// guarantee).
    pub ess_mutants: usize,
    /// Master seed; with `budget`, `wave`, `children` it fully
    /// determines the certificate bits.
    pub seed: u64,
}

impl SearchConfig {
    /// Conventional defaults for everything but the game itself.
    pub fn new(k: usize, profile: ValueProfile) -> Self {
        SearchConfig {
            k,
            profile,
            objective: Objective::Welfare,
            budget: 48,
            wave: 4,
            children: 4,
            ess_mutants: 16,
            seed: 42,
        }
    }
}

/// The best-found mechanism with its certificate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Certificate {
    /// Family spec of the winning point, e.g. `piecewise:t=8,c1=0,d=0`.
    pub spec: String,
    /// Family label.
    pub family: String,
    /// Raw parameter vector.
    pub params: Vec<f64>,
    /// Welfare (equilibrium value-weighted coverage).
    pub welfare: f64,
    /// Coverage of the welfare optimum (shared SPoA numerator).
    pub optimal_coverage: f64,
    /// Selfish price of anarchy.
    pub spoa: f64,
    /// Worst resident-vs-mutant ESS margin over the probed mutants.
    pub ess_margin: f64,
    /// Whether every probed mutant was repelled.
    pub ess_passed: bool,
    /// Id of the tree node that produced the point.
    pub node_id: usize,
}

/// Search result: the certificate plus tree statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Best-found mechanism.
    pub best: Certificate,
    /// Nodes expanded (≤ budget).
    pub expansions: usize,
    /// Candidate mechanisms scored (root bootstrap + children).
    pub evaluations: usize,
    /// Frontier nodes left unexpanded when the budget ran out.
    pub frontier_remaining: usize,
}

/// One node of the shared tree.
#[derive(Debug, Clone)]
struct Node {
    parent: Option<usize>,
    bx: ParamBox,
    /// Objective score of the box center (`-inf` if infeasible).
    score: f64,
    /// Mean batched response `g` over the tile grid — the deterministic
    /// tie-break between equal-score plateau siblings.
    response_mass: f64,
    /// Normalized longest edge; refinement stops below `MIN_DIAMETER`.
    diameter: f64,
}

/// The shared best-first tree: nodes, the unexpanded frontier, and the
/// per-wave virtual-loss ledger.
#[derive(Debug, Default)]
pub struct SharedTree {
    nodes: Vec<Node>,
    frontier: Vec<usize>,
    /// Virtual losses keyed by *parent* id (`usize::MAX` for roots):
    /// claiming a node discounts its siblings for the rest of the wave.
    virtual_loss: BTreeMap<usize, u32>,
}

/// Refinement floor: boxes whose normalized longest edge is below this
/// are scored but never re-expanded.
const MIN_DIAMETER: f64 = 1e-3;
/// Exploration bonus per unit of normalized box diameter, as a fraction
/// of the profile's total value (the welfare scale).
const EXPLORE_BONUS: f64 = 0.02;
/// Virtual-loss penalty per claimed sibling, same scale.
const VIRTUAL_LOSS_PENALTY: f64 = 0.05;

impl SharedTree {
    fn parent_key(&self, id: usize) -> usize {
        self.nodes[id].parent.unwrap_or(usize::MAX)
    }

    /// Effective best-first priority of a frontier node during wave
    /// selection.
    fn priority(&self, id: usize, scale: f64) -> f64 {
        let node = &self.nodes[id];
        let loss = *self.virtual_loss.get(&self.parent_key(id)).unwrap_or(&0);
        node.score + EXPLORE_BONUS * scale * node.diameter
            - VIRTUAL_LOSS_PENALTY * scale * loss as f64
    }

    /// Claim up to `want` nodes for one wave. Deterministic: a
    /// sequential scan picks the maximum `(priority, response_mass,
    /// lowest id)` each time, then charges a virtual loss against the
    /// claimed node's parent so the next pick diverges from its
    /// siblings.
    fn select_wave(&mut self, want: usize, scale: f64) -> Vec<(usize, ParamBox)> {
        let mut wave = Vec::new();
        while wave.len() < want && !self.frontier.is_empty() {
            let mut best_pos = 0usize;
            let mut best_key = (f64::NEG_INFINITY, f64::NEG_INFINITY, usize::MAX);
            for (pos, &id) in self.frontier.iter().enumerate() {
                let key = (self.priority(id, scale), self.nodes[id].response_mass, id);
                // Total order: higher priority, then higher response
                // mass, then *lower* id.
                let better = key.0 > best_key.0
                    || (key.0 == best_key.0
                        && (key.1 > best_key.1 || (key.1 == best_key.1 && key.2 < best_key.2)));
                if better {
                    best_key = key;
                    best_pos = pos;
                }
            }
            let id = self.frontier.remove(best_pos);
            *self.virtual_loss.entry(self.parent_key(id)).or_insert(0) += 1;
            wave.push((id, self.nodes[id].bx.clone()));
        }
        // Wave barrier: losses shaped this wave's divergence only.
        self.virtual_loss.clear();
        wave
    }
}

/// One evaluated child, produced inside a pool worker.
struct ChildEval {
    bx: ParamBox,
    point: MechPoint,
    score: Option<MechScore>,
    response_mass: f64,
    diameter: f64,
}

/// Derive the per-candidate ESS seed from the tree coordinates alone
/// (splitmix64), so scoring is independent of thread schedule.
fn child_seed(seed: u64, parent: usize, child: usize) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul((parent as u64).wrapping_add(1)))
        .wrapping_add(0x632be59bd9b4e019u64.wrapping_mul((child as u64).wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Evaluate a sibling set of boxes as **one** policy-major `GBatch`
/// tile: every child is a row, the response matrix shares one Bernstein
/// basis column per grid point, and each row's coefficients then feed
/// the exact scorer. Children whose equilibrium fails to solve are
/// reported with `score: None` (infeasible, still counted).
fn evaluate_boxes(
    cfg: &SearchConfig,
    parent: Option<usize>,
    boxes: Vec<ParamBox>,
) -> Result<Vec<ChildEval>> {
    if boxes.is_empty() {
        return Ok(Vec::new());
    }
    let points: Vec<MechPoint> = boxes.iter().map(ParamBox::center).collect();
    let tables: Result<Vec<Vec<f64>>> = points.iter().map(|p| p.table(cfg.k)).collect();
    let batch = GBatch::from_rows(tables?)?;
    // The batched response tile: one fused pass over all children.
    let qs: Vec<f64> = (0..=RESPONSE_GRID).map(|i| i as f64 / RESPONSE_GRID as f64).collect();
    let grid = batch.eval_grid(&qs);
    let parent_id = parent.unwrap_or(usize::MAX);
    let mut out = Vec::with_capacity(boxes.len());
    for (r, (bx, point)) in boxes.into_iter().zip(points).enumerate() {
        let row = &grid[r * qs.len()..(r + 1) * qs.len()];
        let response_mass = row.iter().sum::<f64>() / qs.len() as f64;
        let spec = point.spec();
        let score = score_table(
            &spec,
            batch.row_coefficients(r),
            &cfg.profile,
            cfg.k,
            cfg.ess_mutants,
            child_seed(cfg.seed, parent_id, r),
        )
        .ok();
        let diameter = bx.diameter(cfg.k)?;
        out.push(ChildEval { bx, point, score, response_mass, diameter });
    }
    Ok(out)
}

const RESPONSE_GRID: usize = 32;

fn validate(cfg: &SearchConfig) -> Result<()> {
    if cfg.k == 0 {
        return Err(Error::InvalidPlayerCount { k: cfg.k });
    }
    if cfg.budget == 0 || cfg.wave == 0 || cfg.children < 2 {
        return Err(Error::InvalidArgument(
            "search needs budget ≥ 1, wave ≥ 1, children ≥ 2".into(),
        ));
    }
    Ok(())
}

/// Run the parallel best-first search and return the best certificate.
///
/// Bootstraps the tree with [`root_boxes`] (full family ranges plus
/// exact catalog anchors, all scored as one batched tile), then expands
/// waves until the budget is spent or the frontier drains.
pub fn search_mechanisms(cfg: &SearchConfig) -> Result<SearchOutcome> {
    validate(cfg)?;
    let scale: f64 = cfg.profile.values().iter().sum();
    let mut tree = SharedTree::default();
    let mut best: Option<(f64, Certificate)> = None;
    let mut evaluations = 0usize;

    // Wave 0: score every root box center in one batched tile.
    let roots = root_boxes(cfg.k)?;
    let rooted = evaluate_boxes(cfg, None, roots)?;
    merge_children(cfg, &mut tree, &mut best, &mut evaluations, None, rooted);

    let mut expansions = 0usize;
    while expansions < cfg.budget && !tree.frontier.is_empty() {
        let want = cfg.wave.min(cfg.budget - expansions);
        let wave = tree.select_wave(want, scale);
        if wave.is_empty() {
            break;
        }
        expansions += wave.len();
        // The whole wave fans out on the persistent work-stealing pool;
        // par_map preserves submission order, keeping merges (and node
        // ids) schedule-independent.
        let expanded: Vec<(usize, Vec<ChildEval>)> = engine::par_map(wave, |(id, bx)| {
            let children = evaluate_boxes(cfg, Some(id), bx.split(cfg.children, cfg.k)?)?;
            Ok((id, children))
        })?;
        for (parent, children) in expanded {
            merge_children(cfg, &mut tree, &mut best, &mut evaluations, Some(parent), children);
        }
    }

    let frontier_remaining = tree.frontier.len();
    match best {
        Some((_, certificate)) => {
            Ok(SearchOutcome { best: certificate, expansions, evaluations, frontier_remaining })
        }
        None => Err(Error::InvalidArgument(
            "search scored no feasible mechanism (ESS probe rejected every candidate)".into(),
        )),
    }
}

/// Merge one expansion's children into the shared tree, in child order:
/// assign ids, update the incumbent certificate, and enqueue boxes still
/// worth refining.
fn merge_children(
    cfg: &SearchConfig,
    tree: &mut SharedTree,
    best: &mut Option<(f64, Certificate)>,
    evaluations: &mut usize,
    parent: Option<usize>,
    children: Vec<ChildEval>,
) {
    for child in children {
        let id = tree.nodes.len();
        *evaluations += 1;
        let mut node_score = f64::NEG_INFINITY;
        if let Some(ms) = &child.score {
            node_score = cfg.objective.score(ms);
            let certified = ms.ess_passed || cfg.ess_mutants == 0;
            let improves = match best {
                None => true,
                Some((incumbent, _)) => node_score > *incumbent,
            };
            if certified && improves {
                *best = Some((
                    node_score,
                    Certificate {
                        spec: ms.name.clone(),
                        family: child.point.family.label().to_string(),
                        params: child.point.params.clone(),
                        welfare: ms.welfare,
                        optimal_coverage: ms.optimal_coverage,
                        spoa: ms.spoa,
                        ess_margin: ms.ess_margin,
                        ess_passed: ms.ess_passed,
                        node_id: id,
                    },
                ));
            }
        }
        let expandable = child.score.is_some() && child.diameter > MIN_DIAMETER;
        tree.nodes.push(Node {
            parent,
            bx: child.bx,
            score: node_score,
            response_mass: child.response_mass,
            diameter: child.diameter,
        });
        if expandable {
            tree.frontier.push(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dispersal_mech::scoring::score_catalog;

    fn tiny_config() -> SearchConfig {
        SearchConfig {
            budget: 6,
            wave: 3,
            children: 3,
            ess_mutants: 8,
            ..SearchConfig::new(6, ValueProfile::zipf(10, 1.0, 1.0).unwrap())
        }
    }

    fn certificate_bits(outcome: &SearchOutcome) -> Vec<u64> {
        let c = &outcome.best;
        let mut bits = vec![
            c.welfare.to_bits(),
            c.optimal_coverage.to_bits(),
            c.spoa.to_bits(),
            c.ess_margin.to_bits(),
            c.node_id as u64,
            u64::from(c.ess_passed),
        ];
        bits.extend(c.params.iter().map(|p| p.to_bits()));
        bits
    }

    #[test]
    fn search_beats_or_matches_the_catalog() {
        let cfg = tiny_config();
        let outcome = search_mechanisms(&cfg).unwrap();
        let catalog = score_catalog(&cfg.profile, cfg.k, cfg.ess_mutants, cfg.seed).unwrap();
        let best_catalog = catalog.iter().map(|s| s.welfare).fold(f64::NEG_INFINITY, f64::max);
        assert!(
            outcome.best.welfare >= best_catalog - 1e-9,
            "searched {} < catalog best {best_catalog}",
            outcome.best.welfare
        );
        assert!(outcome.best.ess_passed);
        assert_eq!(outcome.expansions, cfg.budget);
        assert!(outcome.evaluations > cfg.budget);
    }

    #[test]
    fn certificates_are_bit_identical_across_thread_counts() {
        let cfg = tiny_config();
        rayon::set_num_threads(1);
        let single = search_mechanisms(&cfg).unwrap();
        rayon::set_num_threads(8);
        let eight = search_mechanisms(&cfg).unwrap();
        assert_eq!(single.best.spec, eight.best.spec);
        assert_eq!(certificate_bits(&single), certificate_bits(&eight));
        assert_eq!(single.expansions, eight.expansions);
        assert_eq!(single.evaluations, eight.evaluations);
    }

    #[test]
    fn spoa_objective_reaches_unit_spoa() {
        let cfg = SearchConfig { objective: Objective::Spoa, ..tiny_config() };
        let outcome = search_mechanisms(&cfg).unwrap();
        // The exclusive anchor has SPoA ≈ 1, the best possible.
        assert!(outcome.best.spoa < 1.0 + 1e-6, "spoa {}", outcome.best.spoa);
    }

    #[test]
    fn virtual_loss_spreads_a_wave_across_parents() {
        // Build a frontier of two sibling pairs with near-equal scores;
        // a 2-wave must claim one node from each pair, not both
        // top-scored siblings.
        let cfg = tiny_config();
        let mut tree = SharedTree::default();
        let bx = ParamBox::root(crate::mech_space::MechFamily::PowerLaw, cfg.k).unwrap();
        for (id, (parent, score)) in
            [(Some(10), 1.00), (Some(10), 0.99), (Some(11), 0.98), (Some(11), 0.97)]
                .into_iter()
                .enumerate()
        {
            tree.nodes.push(Node {
                parent,
                bx: bx.clone(),
                score,
                response_mass: 0.0,
                diameter: 0.0,
            });
            tree.frontier.push(id);
        }
        let wave = tree.select_wave(2, 1.0);
        let parents: Vec<Option<usize>> =
            wave.iter().map(|(id, _)| tree.nodes[*id].parent).collect();
        assert_eq!(parents, vec![Some(10), Some(11)], "virtual loss must diversify the wave");
    }

    #[test]
    fn config_validation() {
        let mut cfg = tiny_config();
        cfg.budget = 0;
        assert!(search_mechanisms(&cfg).is_err());
        let mut cfg = tiny_config();
        cfg.children = 1;
        assert!(search_mechanisms(&cfg).is_err());
        let mut cfg = tiny_config();
        cfg.k = 0;
        assert!(search_mechanisms(&cfg).is_err());
        assert!(Objective::parse("welfare").is_ok());
        assert!(Objective::parse("spoa").is_ok());
        assert!(Objective::parse("entropy").is_err());
    }
}
