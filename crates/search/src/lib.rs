//! # dispersal-search
//!
//! Bayesian parallel-search substrate: the treasure-hunt game of
//! Fraigniaud–Korman–Rodeh that the paper connects to σ⋆ ("algorithm σ⋆ is
//! actually identical to the first round of the algorithm A⋆ used in \[24\]",
//! Section 2.1).
//!
//! `k` searchers open boxes in parallel rounds, without coordination; a
//! treasure is hidden per a known prior. [`astar::IteratedSigmaStar`]
//! realizes the σ⋆-per-round reconstruction of A⋆ (round 1 is *exactly*
//! σ⋆, the property the paper uses); [`baselines`] supplies uniform,
//! prior-proportional, and deterministic-sweep comparators; [`game`]
//! evaluates plans analytically and by Monte Carlo.
//!
//! The crate also hosts the *mechanism-space* search: [`mech_space`]
//! defines parameterized congestion families as subdividable parameter
//! boxes, and [`parallel`] runs a shared-tree, wave-synchronous best-first
//! search over them (virtual-loss diversified, `GBatch`-tiled, bit-
//! deterministic at any thread count).

#![warn(missing_docs)]

pub mod analysis;
pub mod astar;
pub mod baselines;
pub mod game;
pub mod mech_space;
pub mod parallel;
pub mod plan;
pub mod prior;

/// Common imports for search workflows.
pub mod prelude {
    pub use crate::analysis::{round_success_probability, speedup_curve, SpeedupPoint};
    pub use crate::astar::{sigma_star_unsorted, IteratedSigmaStar};
    pub use crate::baselines::{ProportionalPlan, SweepPlan, UniformPlan};
    pub use crate::game::{
        evaluate_plan, simulate_detection_time, simulate_detection_time_with_memory,
        SearchEvaluation,
    };
    pub use crate::mech_space::{root_boxes, MechFamily, MechPoint, ParamBox};
    pub use crate::parallel::{
        search_mechanisms, Certificate, Objective, SearchConfig, SearchOutcome,
    };
    pub use crate::plan::{SchedulePlan, SearchPlan};
    pub use crate::prior::Prior;
}
