//! Analytic bridges between the search game and the coverage objective,
//! plus speedup accounting.
//!
//! The key identity: the probability that *some* searcher finds the
//! treasure in round 1 equals the coverage functional of the round-1
//! strategy under the prior —
//! `P[found in round 1] = Σ_x q(x)·(1 − (1 − p(x))^k) = Cover_q(p)`.
//! Maximizing immediate detection *is* the coverage problem of the
//! dispersal game, which is exactly why σ⋆ shows up as round 1 of A⋆.

use crate::plan::SearchPlan;
use crate::prior::Prior;
use dispersal_core::coverage::coverage;
use dispersal_core::strategy::Strategy;
use dispersal_core::{Error, Result};
use serde::{Deserialize, Serialize};

/// Probability that at least one of `k` searchers playing `p` finds the
/// treasure in a single round, under `prior` — the coverage of `p` w.r.t.
/// the prior weights.
pub fn round_success_probability(prior: &Prior, p: &Strategy, k: usize) -> Result<f64> {
    coverage(prior.profile(), p, k)
}

/// One point of a speedup curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupPoint {
    /// Searcher count.
    pub k: usize,
    /// Expected detection rounds.
    pub expected_rounds: f64,
    /// Speedup relative to `k = 1`.
    pub speedup: f64,
    /// Parallel efficiency `speedup / k`.
    pub efficiency: f64,
}

/// Compute the speedup curve of a plan family over searcher counts.
///
/// `make_plan(k)` builds the plan for each `k` (plans typically depend on
/// `k`, e.g. iterated σ⋆).
pub fn speedup_curve<F>(
    prior: &Prior,
    ks: &[usize],
    horizon: usize,
    mut make_plan: F,
) -> Result<Vec<SpeedupPoint>>
where
    F: FnMut(usize) -> Result<Box<dyn SearchPlan>>,
{
    if ks.is_empty() {
        return Err(Error::InvalidArgument("speedup curve needs at least one k".into()));
    }
    let mut base_plan = make_plan(1)?;
    let base = crate::game::evaluate_plan(base_plan.as_mut(), prior, 1, horizon)?.expected_rounds;
    ks.iter()
        .map(|&k| {
            let mut plan = make_plan(k)?;
            let eval = crate::game::evaluate_plan(plan.as_mut(), prior, k, horizon)?;
            let speedup = base / eval.expected_rounds;
            Ok(SpeedupPoint {
                k,
                expected_rounds: eval.expected_rounds,
                speedup,
                efficiency: speedup / k as f64,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::IteratedSigmaStar;
    use dispersal_core::sigma_star::sigma_star;

    #[test]
    fn round_success_is_coverage_of_the_prior() {
        let prior = Prior::zipf(10, 1.0).unwrap();
        let k = 3;
        let star = sigma_star(prior.profile(), k).unwrap().strategy;
        let p_success = round_success_probability(&prior, &star, k).unwrap();
        // Identity: this is Cover_q(sigma*), and sigma* maximizes it.
        let direct = coverage(prior.profile(), &star, k).unwrap();
        assert!((p_success - direct).abs() < 1e-15);
        // It's a probability.
        assert!(p_success > 0.0 && p_success < 1.0);
        // No other strategy detects faster in round 1 (Theorem 4 again).
        let uniform = Strategy::uniform(10).unwrap();
        assert!(round_success_probability(&prior, &uniform, k).unwrap() <= p_success);
    }

    #[test]
    fn speedup_monotone_and_efficiency_at_most_one_ish() {
        let prior = Prior::zipf(40, 1.0).unwrap();
        let curve = speedup_curve(&prior, &[1, 2, 4, 8], 400, |k| {
            Ok(Box::new(IteratedSigmaStar::new(&prior, k)?) as Box<dyn SearchPlan>)
        })
        .unwrap();
        assert_eq!(curve.len(), 4);
        assert!((curve[0].speedup - 1.0).abs() < 1e-9);
        // Memoryless randomization costs something at k = 2 (a single
        // searcher degenerates to the deterministic greedy sweep), but from
        // k = 2 on, larger teams never search slower.
        for w in curve[1..].windows(2) {
            assert!(
                w[1].expected_rounds <= w[0].expected_rounds + 1e-9,
                "k = {} slower than k = {}",
                w[1].k,
                w[0].k
            );
        }
        // And a big team is strictly faster than the lone searcher.
        assert!(curve[3].expected_rounds < curve[0].expected_rounds);
        // Independent searchers cannot be superlinearly efficient by much.
        for p in &curve {
            assert!(p.efficiency <= 1.5, "k = {}: efficiency {}", p.k, p.efficiency);
        }
    }

    #[test]
    fn empty_ks_rejected() {
        let prior = Prior::uniform(4).unwrap();
        let res = speedup_curve(&prior, &[], 10, |k| {
            Ok(Box::new(IteratedSigmaStar::new(&prior, k)?) as Box<dyn SearchPlan>)
        });
        assert!(res.is_err());
    }
}
