//! Parameterized congestion-mechanism families and the box-subdivision
//! geometry the mechanism-space search explores.
//!
//! Three families, each mapping a low-dimensional parameter vector to a
//! coefficient table `[C(1), …, C(k)]` (always `C(1) = 1`, always
//! non-increasing, always finite — the invariants `TableCongestion`
//! demands and the crate's proptests pin):
//!
//! * **piecewise** `(t, c₁, d)` — `C(ℓ) = c₁` for `2 ≤ ℓ ≤ t`, dropping
//!   to `c₁ − d` beyond. Contains the paper's distinguished policies as
//!   exact points: `c₁ = 0, d = 0` is *exclusive*, `t = k, d = 0` is
//!   *two-level:c₁*.
//! * **power-law** `(β)` — `C(ℓ) = ℓ^{−β}`; `β = 1` is *sharing* (up to
//!   `powf` rounding).
//! * **budget-normed** `(B, γ)` — a tail budget `B` spread over levels
//!   `2..k` proportionally to `ℓ^{−γ}` and clamped to `C(ℓ) ≤ 1`:
//!   `C(ℓ) = min(1, B·ℓ^{−γ} / Σ_{j=2..k} j^{−γ})`.
//!
//! The search space is a forest of axis-aligned parameter boxes
//! ([`ParamBox`]); expanding a node splits its box along the longest
//! (normalized) dimension and evaluates the children's center points as
//! one batched kernel tile.

use dispersal_core::{Error, Result};
use serde::{Deserialize, Serialize};

/// A parameterized congestion family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MechFamily {
    /// `(t, c1, d)`: plateau `c1` through level `t`, then `c1 − d`.
    Piecewise,
    /// `(beta)`: `C(ℓ) = ℓ^{−β}`.
    PowerLaw,
    /// `(B, gamma)`: normalized `ℓ^{−γ}` tail scaled to budget `B`.
    BudgetNormed,
}

impl MechFamily {
    /// Number of parameters of this family.
    pub fn dims(&self) -> usize {
        match self {
            MechFamily::Piecewise => 3,
            MechFamily::PowerLaw => 1,
            MechFamily::BudgetNormed => 2,
        }
    }

    /// Stable identifier used in specs, CSVs, and certificates.
    pub fn label(&self) -> &'static str {
        match self {
            MechFamily::Piecewise => "piecewise",
            MechFamily::PowerLaw => "power-law",
            MechFamily::BudgetNormed => "budget-normed",
        }
    }
}

/// One concrete mechanism: a family plus a parameter vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MechPoint {
    /// The family.
    pub family: MechFamily,
    /// Parameters, in the family's canonical order.
    pub params: Vec<f64>,
}

impl MechPoint {
    /// Validate dimensionality and finiteness.
    pub fn validate(&self) -> Result<()> {
        if self.params.len() != self.family.dims() {
            return Err(Error::InvalidArgument(format!(
                "{} expects {} parameters, got {}",
                self.family.label(),
                self.family.dims(),
                self.params.len()
            )));
        }
        for (index, &value) in self.params.iter().enumerate() {
            if !value.is_finite() {
                return Err(Error::InvalidValue { index, value });
            }
        }
        Ok(())
    }

    /// Human/machine-readable spec, e.g. `piecewise:t=4,c1=0.25,d=0.1`.
    pub fn spec(&self) -> String {
        match self.family {
            MechFamily::Piecewise => format!(
                "piecewise:t={},c1={},d={}",
                round_level(self.params[0]),
                self.params[1],
                self.params[2]
            ),
            MechFamily::PowerLaw => format!("power-law:beta={}", self.params[0]),
            MechFamily::BudgetNormed => {
                format!("budget-normed:B={},gamma={}", self.params[0], self.params[1])
            }
        }
    }

    /// Expand into the coefficient table `[C(1), …, C(k)]`.
    ///
    /// Guaranteed (and proptested): `C(1) = 1`, every entry finite, and
    /// the table non-increasing — so the table is always accepted by
    /// `TableCongestion`/`GBatch` regardless of where in its box the
    /// parameter point sits.
    pub fn table(&self, k: usize) -> Result<Vec<f64>> {
        self.validate()?;
        if k == 0 {
            return Err(Error::InvalidPlayerCount { k });
        }
        let mut table = Vec::with_capacity(k);
        table.push(1.0);
        match self.family {
            MechFamily::Piecewise => {
                let t = round_level(self.params[0]);
                let c1 = self.params[1].min(1.0);
                let d = self.params[2].max(0.0);
                for ell in 2..=k {
                    table.push(if ell <= t { c1 } else { c1 - d });
                }
            }
            MechFamily::PowerLaw => {
                let beta = self.params[0].max(0.0);
                for ell in 2..=k {
                    table.push((ell as f64).powf(-beta));
                }
            }
            MechFamily::BudgetNormed => {
                let budget = self.params[0].max(0.0);
                let gamma = self.params[1].max(0.0);
                let norm: f64 = (2..=k).map(|j| (j as f64).powf(-gamma)).sum();
                for ell in 2..=k {
                    let share = if norm > 0.0 { (ell as f64).powf(-gamma) / norm } else { 0.0 };
                    table.push((budget * share).min(1.0));
                }
            }
        }
        Ok(table)
    }
}

/// Round a continuous "level" parameter to its plateau length `≥ 2`.
fn round_level(t: f64) -> usize {
    t.round().max(2.0) as usize
}

/// An axis-aligned box of parameters within one family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamBox {
    /// The family the box parameterizes.
    pub family: MechFamily,
    /// Per-dimension lower bounds.
    pub lo: Vec<f64>,
    /// Per-dimension upper bounds (`lo[i] ≤ hi[i]`; equality makes the
    /// box a single anchor point).
    pub hi: Vec<f64>,
}

impl ParamBox {
    /// Construct, validating shape and ordering.
    pub fn new(family: MechFamily, lo: Vec<f64>, hi: Vec<f64>) -> Result<Self> {
        if lo.len() != family.dims() || hi.len() != family.dims() {
            return Err(Error::InvalidArgument(format!(
                "{} box needs {} bounds, got lo={} hi={}",
                family.label(),
                family.dims(),
                lo.len(),
                hi.len()
            )));
        }
        for (index, (&l, &h)) in lo.iter().zip(hi.iter()).enumerate() {
            if !l.is_finite() {
                return Err(Error::InvalidValue { index, value: l });
            }
            if !h.is_finite() || h < l {
                return Err(Error::InvalidValue { index, value: h });
            }
        }
        Ok(Self { family, lo, hi })
    }

    /// A zero-volume box anchored at `point` — used to seed the search
    /// with exact catalog-equivalent mechanisms.
    pub fn anchor(point: &MechPoint) -> Result<Self> {
        point.validate()?;
        Self::new(point.family, point.params.clone(), point.params.clone())
    }

    /// The default search box for `family` at player count `k`.
    pub fn root(family: MechFamily, k: usize) -> Result<Self> {
        match family {
            MechFamily::Piecewise => {
                Self::new(family, vec![2.0, -0.5, 0.0], vec![k.max(2) as f64, 1.0, 1.0])
            }
            MechFamily::PowerLaw => Self::new(family, vec![0.0], vec![6.0]),
            MechFamily::BudgetNormed => Self::new(family, vec![0.0, 0.0], vec![2.0, 3.0]),
        }
    }

    /// The box's center point — the representative the search scores.
    pub fn center(&self) -> MechPoint {
        let params = self.lo.iter().zip(self.hi.iter()).map(|(&l, &h)| l + 0.5 * (h - l)).collect();
        MechPoint { family: self.family, params }
    }

    /// Normalized edge lengths (relative to the family's root box), so
    /// "longest dimension" is meaningful across differently-scaled axes.
    fn normalized_edges(&self, k: usize) -> Result<Vec<f64>> {
        let root = ParamBox::root(self.family, k)?;
        Ok(self
            .lo
            .iter()
            .zip(self.hi.iter())
            .zip(root.lo.iter().zip(root.hi.iter()))
            .map(|((&l, &h), (&rl, &rh))| {
                let scale = (rh - rl).max(1e-12);
                (h - l) / scale
            })
            .collect())
    }

    /// Largest normalized edge — the search's refinement-progress measure.
    pub fn diameter(&self, k: usize) -> Result<f64> {
        Ok(self.normalized_edges(k)?.iter().cloned().fold(0.0, f64::max))
    }

    /// Split into `children ≥ 2` slabs along the longest normalized
    /// dimension (deterministic: ties break to the lowest axis index).
    /// A zero-volume anchor box returns no children.
    pub fn split(&self, children: usize, k: usize) -> Result<Vec<ParamBox>> {
        let edges = self.normalized_edges(k)?;
        let mut axis = 0usize;
        for (i, &e) in edges.iter().enumerate() {
            if e > edges[axis] {
                axis = i;
            }
        }
        if edges[axis] <= 0.0 {
            return Ok(Vec::new());
        }
        let n = children.max(2);
        let lo = self.lo[axis];
        let width = (self.hi[axis] - lo) / n as f64;
        (0..n)
            .map(|i| {
                let mut child_lo = self.lo.clone();
                let mut child_hi = self.hi.clone();
                child_lo[axis] = lo + i as f64 * width;
                child_hi[axis] =
                    if i + 1 == n { self.hi[axis] } else { lo + (i + 1) as f64 * width };
                ParamBox::new(self.family, child_lo, child_hi)
            })
            .collect()
    }
}

/// The root forest the search starts from: one full-range box per family
/// plus zero-volume anchors at the catalog-equivalent parameter points
/// (exclusive, the two-level ladder, the catalog's power-law exponents).
/// The anchors make the hand-written catalog *representable*: the search
/// can never score below the best catalog mechanism it can express.
pub fn root_boxes(k: usize) -> Result<Vec<ParamBox>> {
    let kf = k.max(2) as f64;
    let mut roots = vec![
        ParamBox::root(MechFamily::Piecewise, k)?,
        ParamBox::root(MechFamily::PowerLaw, k)?,
        ParamBox::root(MechFamily::BudgetNormed, k)?,
    ];
    // exclusive == piecewise(t=k, c1=0, d=0)
    roots.push(ParamBox::anchor(&MechPoint {
        family: MechFamily::Piecewise,
        params: vec![kf, 0.0, 0.0],
    })?);
    // two-level:c == piecewise(t=k, c1=c, d=0)
    for c in [-0.5, -0.25, 0.25, 0.5] {
        roots.push(ParamBox::anchor(&MechPoint {
            family: MechFamily::Piecewise,
            params: vec![kf, c, 0.0],
        })?);
    }
    // catalog power-law entries (sharing is beta = 1 up to powf rounding)
    for beta in [0.5, 1.0, 2.0] {
        roots.push(ParamBox::anchor(&MechPoint {
            family: MechFamily::PowerLaw,
            params: vec![beta],
        })?);
    }
    Ok(roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dispersal_core::policy::{validate_congestion, Exclusive, TableCongestion, TwoLevel};

    #[test]
    fn piecewise_anchor_reproduces_exclusive_bits() {
        let k = 6;
        let anchor = MechPoint { family: MechFamily::Piecewise, params: vec![k as f64, 0.0, 0.0] };
        let table = anchor.table(k).unwrap();
        let reference = validate_congestion(&Exclusive, k).unwrap();
        assert_eq!(table.len(), reference.len());
        for (a, b) in table.iter().zip(reference.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn piecewise_anchor_reproduces_two_level_bits() {
        let k = 5;
        for c in [-0.5, 0.25] {
            let anchor =
                MechPoint { family: MechFamily::Piecewise, params: vec![k as f64, c, 0.0] };
            let table = anchor.table(k).unwrap();
            let reference = validate_congestion(&TwoLevel { c }, k).unwrap();
            for (a, b) in table.iter().zip(reference.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn every_family_table_is_accepted_by_table_congestion() {
        let k = 8;
        for bx in root_boxes(k).unwrap() {
            let table = bx.center().table(k).unwrap();
            TableCongestion::new(table, bx.center().spec()).unwrap();
        }
    }

    #[test]
    fn split_covers_the_box_and_anchors_are_terminal() {
        let k = 8;
        let root = ParamBox::root(MechFamily::Piecewise, k).unwrap();
        let children = root.split(4, k).unwrap();
        assert_eq!(children.len(), 4);
        // The split axis is the normalized-longest: children partition it.
        assert_eq!(children[0].lo, root.lo);
        assert_eq!(children[3].hi, root.hi);
        let anchor =
            ParamBox::anchor(&MechPoint { family: MechFamily::PowerLaw, params: vec![1.0] })
                .unwrap();
        assert!(anchor.split(4, k).unwrap().is_empty());
        assert_eq!(anchor.diameter(k).unwrap(), 0.0);
    }

    #[test]
    fn budget_normed_is_monotone_and_clamped() {
        let k = 10;
        let point = MechPoint { family: MechFamily::BudgetNormed, params: vec![1.8, 0.7] };
        let table = point.table(k).unwrap();
        assert_eq!(table[0], 1.0);
        for w in table.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "not monotone: {table:?}");
        }
        assert!(table.iter().all(|v| v.is_finite() && *v <= 1.0));
    }

    #[test]
    fn validation_rejects_bad_points_and_boxes() {
        let bad = MechPoint { family: MechFamily::PowerLaw, params: vec![f64::NAN] };
        assert!(bad.table(4).is_err());
        let wrong_dims = MechPoint { family: MechFamily::Piecewise, params: vec![1.0] };
        assert!(wrong_dims.validate().is_err());
        assert!(ParamBox::new(MechFamily::PowerLaw, vec![2.0], vec![1.0]).is_err());
        let point = MechPoint { family: MechFamily::PowerLaw, params: vec![1.0] };
        assert!(point.table(0).is_err());
    }
}
