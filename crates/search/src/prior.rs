//! Bayesian priors over treasure locations.
//!
//! The search game of Fraigniaud–Korman–Rodeh (\[14\], \[24\] in the paper): a
//! treasure is hidden in one of `M` boxes according to a known prior; `k`
//! searchers open boxes in parallel rounds without coordination. A
//! [`Prior`] is a normalized, non-increasing probability vector over boxes
//! — structurally a [`ValueProfile`] whose total is 1, and the paper's
//! observation is that σ⋆ on the prior *is* the first round of the optimal
//! non-coordinating algorithm A⋆.

use dispersal_core::value::ValueProfile;
use dispersal_core::{Error, Result};
use serde::{Deserialize, Serialize};

/// A normalized prior over boxes, sorted non-increasing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prior {
    profile: ValueProfile,
}

impl Prior {
    /// Build from arbitrary positive weights: sorts and normalizes.
    pub fn from_weights(weights: Vec<f64>) -> Result<Self> {
        let profile = ValueProfile::from_unsorted(weights)?;
        let total = profile.total();
        Ok(Self { profile: profile.scaled(1.0 / total)? })
    }

    /// Build from an already sorted profile, normalizing the total mass.
    pub fn from_profile(profile: &ValueProfile) -> Result<Self> {
        let total = profile.total();
        Ok(Self { profile: profile.scaled(1.0 / total)? })
    }

    /// Uniform prior over `m` boxes.
    pub fn uniform(m: usize) -> Result<Self> {
        Self::from_weights(vec![1.0; m.max(1)]).and_then(|p| {
            if m == 0 {
                Err(Error::EmptyProfile)
            } else {
                Ok(p)
            }
        })
    }

    /// Zipf prior with exponent `s`.
    pub fn zipf(m: usize, s: f64) -> Result<Self> {
        Self::from_profile(&ValueProfile::zipf(m, 1.0, s)?)
    }

    /// Geometric prior with ratio `rho`.
    pub fn geometric(m: usize, rho: f64) -> Result<Self> {
        Self::from_profile(&ValueProfile::geometric(m, 1.0, rho)?)
    }

    /// Number of boxes.
    pub fn len(&self) -> usize {
        self.profile.len()
    }

    /// True when there are no boxes (not constructible).
    pub fn is_empty(&self) -> bool {
        self.profile.is_empty()
    }

    /// Probability the treasure is in box `x` (0-based, sorted order).
    pub fn mass(&self, x: usize) -> f64 {
        self.profile.value(x)
    }

    /// The underlying sorted profile (for σ⋆ computations).
    pub fn profile(&self) -> &ValueProfile {
        &self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_weights_sorts_and_normalizes() {
        let p = Prior::from_weights(vec![1.0, 3.0, 2.0]).unwrap();
        assert!((p.mass(0) - 0.5).abs() < 1e-12);
        assert!((p.mass(1) - 2.0 / 6.0).abs() < 1e-12);
        assert!((p.mass(2) - 1.0 / 6.0).abs() < 1e-12);
        let total: f64 = (0..3).map(|x| p.mass(x)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_prior() {
        let p = Prior::uniform(4).unwrap();
        for x in 0..4 {
            assert!((p.mass(x) - 0.25).abs() < 1e-12);
        }
        assert!(Prior::uniform(0).is_err());
    }

    #[test]
    fn zipf_and_geometric_normalized() {
        for p in [Prior::zipf(10, 1.0).unwrap(), Prior::geometric(10, 0.5).unwrap()] {
            let total: f64 = (0..10).map(|x| p.mass(x)).sum();
            assert!((total - 1.0).abs() < 1e-12);
            assert!(!p.is_empty());
            assert_eq!(p.len(), 10);
        }
    }

    #[test]
    fn rejects_invalid_weights() {
        assert!(Prior::from_weights(vec![]).is_err());
        assert!(Prior::from_weights(vec![1.0, -1.0]).is_err());
    }
}
