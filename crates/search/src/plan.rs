//! Search plans: per-round sampling distributions for non-coordinating
//! searchers.
//!
//! A [`SearchPlan`] produces, for each round `t`, the distribution from
//! which *every* searcher independently samples its box to open that round
//! (the searchers cannot coordinate, so within a round they are exchangeable
//! — exactly the symmetric-strategy restriction of the dispersal game).

use dispersal_core::strategy::Strategy;
use dispersal_core::Result;

/// A (possibly adaptive) plan assigning a sampling distribution to every
/// round. Plans observe only *time*, not outcomes: the searchers learn
/// nothing before the treasure is found, matching the model of \[24\].
pub trait SearchPlan {
    /// The distribution for round `t` (0-based). Fallible: adaptive plans
    /// (e.g. iterated σ⋆) recompute posteriors whose validation can fail.
    fn round(&mut self, t: usize) -> Result<Strategy>;

    /// Human-readable name for reports.
    fn name(&self) -> String;
}

/// A plan given by a fixed precomputed schedule; repeats the last round's
/// distribution if queried beyond the schedule.
#[derive(Debug, Clone)]
pub struct SchedulePlan {
    label: String,
    rounds: Vec<Strategy>,
}

impl SchedulePlan {
    /// Build from an explicit non-empty schedule.
    pub fn new(label: impl Into<String>, rounds: Vec<Strategy>) -> Self {
        assert!(!rounds.is_empty(), "schedule must contain at least one round");
        Self { label: label.into(), rounds }
    }

    /// Number of distinct scheduled rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether the schedule is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }
}

impl SearchPlan for SchedulePlan {
    fn round(&mut self, t: usize) -> Result<Strategy> {
        Ok(self.rounds[t.min(self.rounds.len() - 1)].clone())
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_repeats_last_round() {
        let a = Strategy::delta(2, 0).unwrap();
        let b = Strategy::delta(2, 1).unwrap();
        let mut plan = SchedulePlan::new("test", vec![a.clone(), b.clone()]);
        assert_eq!(plan.round(0).unwrap(), a);
        assert_eq!(plan.round(1).unwrap(), b);
        assert_eq!(plan.round(7).unwrap(), b);
        assert_eq!(plan.name(), "test");
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    #[should_panic]
    fn empty_schedule_panics() {
        SchedulePlan::new("empty", vec![]);
    }
}
