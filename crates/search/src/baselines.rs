//! Baseline non-coordinating search plans to compare against iterated σ⋆.

use crate::plan::SearchPlan;
use crate::prior::Prior;
use dispersal_core::strategy::Strategy;
use dispersal_core::Result;

/// Every round, every searcher samples uniformly over all boxes.
#[derive(Debug, Clone)]
pub struct UniformPlan {
    m: usize,
}

impl UniformPlan {
    /// Build over `m` boxes.
    pub fn new(m: usize) -> Self {
        assert!(m > 0);
        Self { m }
    }
}

impl SearchPlan for UniformPlan {
    fn round(&mut self, _t: usize) -> Result<Strategy> {
        Strategy::uniform(self.m)
    }

    fn name(&self) -> String {
        "uniform".to_string()
    }
}

/// Every round, every searcher samples proportionally to the prior — the
/// "probability matching" heuristic.
#[derive(Debug, Clone)]
pub struct ProportionalPlan {
    strategy: Strategy,
}

impl ProportionalPlan {
    /// Build over a prior. Fails only if the prior's masses do not form a
    /// distribution (cannot happen for a validated [`Prior`]).
    pub fn new(prior: &Prior) -> Result<Self> {
        let probs: Vec<f64> = (0..prior.len()).map(|x| prior.mass(x)).collect();
        Ok(Self { strategy: Strategy::new(probs)? })
    }
}

impl SearchPlan for ProportionalPlan {
    fn round(&mut self, _t: usize) -> Result<Strategy> {
        Ok(self.strategy.clone())
    }

    fn name(&self) -> String {
        "prior-proportional".to_string()
    }
}

/// Deterministic sweep: in round `t` everyone opens box `t mod M` — the
/// fully-colliding baseline a coordinated group would never use, isolating
/// the cost of total overlap.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    m: usize,
}

impl SweepPlan {
    /// Build over `m` boxes.
    pub fn new(m: usize) -> Self {
        assert!(m > 0);
        Self { m }
    }
}

impl SearchPlan for SweepPlan {
    fn round(&mut self, t: usize) -> Result<Strategy> {
        Strategy::delta(self.m, t % self.m)
    }

    fn name(&self) -> String {
        "deterministic-sweep".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_plan_rounds() {
        let mut plan = UniformPlan::new(4);
        let r = plan.round(0).unwrap();
        assert_eq!(r.probs(), &[0.25; 4]);
        assert_eq!(plan.name(), "uniform");
    }

    #[test]
    fn proportional_plan_matches_prior() {
        let prior = Prior::from_weights(vec![3.0, 1.0]).unwrap();
        let mut plan = ProportionalPlan::new(&prior).unwrap();
        let r = plan.round(5).unwrap();
        assert!((r.prob(0) - 0.75).abs() < 1e-12);
        assert_eq!(plan.name(), "prior-proportional");
    }

    #[test]
    fn sweep_plan_cycles() {
        let mut plan = SweepPlan::new(3);
        assert_eq!(plan.round(0).unwrap().prob(0), 1.0);
        assert_eq!(plan.round(1).unwrap().prob(1), 1.0);
        assert_eq!(plan.round(3).unwrap().prob(0), 1.0);
    }

    #[test]
    #[should_panic]
    fn uniform_plan_rejects_zero_boxes() {
        UniformPlan::new(0);
    }
}
