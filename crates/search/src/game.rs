//! The parallel treasure-hunt game: analytic and Monte-Carlo evaluation of
//! search plans.
//!
//! `k` searchers follow a common [`SearchPlan`]; the treasure sits in box
//! `x` with the prior probability. The figure of merit is the expected
//! number of rounds until *some* searcher opens the treasure box.
//! Conditioned on the treasure being at `x`, the survival probability
//! through round `t` is `Π_{s ≤ t} (1 − p_s(x))^k`, giving a closed-form
//! expectation that the Monte-Carlo path cross-validates.

use crate::plan::SearchPlan;
use crate::prior::Prior;
use dispersal_core::strategy::StrategySampler;
use dispersal_core::{Error, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Evaluation of one plan on one prior.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchEvaluation {
    /// Plan name.
    pub plan: String,
    /// Expected detection time in rounds (analytic, truncated at
    /// `max_rounds` with the residual tail reported separately).
    pub expected_rounds: f64,
    /// Probability the treasure is found within `max_rounds`.
    pub success_probability: f64,
    /// Success probability after each round `1..=horizon_recorded`.
    pub success_by_round: Vec<f64>,
    /// Truncation horizon used.
    pub max_rounds: usize,
}

/// Analytically evaluate a plan: expected detection round and per-round
/// success CDF, truncated at `max_rounds`.
pub fn evaluate_plan(
    plan: &mut dyn SearchPlan,
    prior: &Prior,
    k: usize,
    max_rounds: usize,
) -> Result<SearchEvaluation> {
    if k == 0 {
        return Err(Error::InvalidPlayerCount { k });
    }
    if max_rounds == 0 {
        return Err(Error::InvalidArgument("max_rounds must be positive".into()));
    }
    let m = prior.len();
    // survival[x] = P[treasure at x not found so far] (conditioned mass).
    let mut survival: Vec<f64> = (0..m).map(|x| prior.mass(x)).collect();
    let mut expected = 0.0;
    let mut found_total = 0.0;
    let mut success_by_round = Vec::with_capacity(max_rounds);
    for t in 0..max_rounds {
        let p = plan.round(t)?;
        if p.len() != m {
            return Err(Error::DimensionMismatch { strategy: p.len(), profile: m });
        }
        let mut found_this_round = 0.0;
        for (x, surv) in survival.iter_mut().enumerate() {
            let miss = (1.0 - p.prob(x)).powi(k as i32);
            found_this_round += *surv * (1.0 - miss);
            *surv *= miss;
        }
        found_total += found_this_round;
        expected += (t as f64 + 1.0) * found_this_round;
        success_by_round.push(found_total);
    }
    // Residual tail: treat undiscovered mass as found at max_rounds + 1
    // (a lower bound on its true cost; reported via success_probability).
    let residual: f64 = survival.iter().sum();
    expected += (max_rounds as f64 + 1.0) * residual;
    Ok(SearchEvaluation {
        plan: plan.name(),
        expected_rounds: expected,
        success_probability: found_total,
        success_by_round,
        max_rounds,
    })
}

/// Monte-Carlo detection-time estimate: simulates `trials` independent
/// hunts and returns the mean detection round (counting from 1), with
/// hunts exceeding `max_rounds` truncated to `max_rounds + 1`.
pub fn simulate_detection_time<R: Rng + ?Sized>(
    plan: &mut dyn SearchPlan,
    prior: &Prior,
    k: usize,
    trials: u64,
    max_rounds: usize,
    rng: &mut R,
) -> Result<f64> {
    if k == 0 {
        return Err(Error::InvalidPlayerCount { k });
    }
    let m = prior.len();
    // Pre-sample round strategies once (plans are outcome-oblivious).
    let mut samplers = Vec::with_capacity(max_rounds);
    for t in 0..max_rounds {
        let p = plan.round(t)?;
        if p.len() != m {
            return Err(Error::DimensionMismatch { strategy: p.len(), profile: m });
        }
        samplers.push(StrategySampler::new(&p));
    }
    let prior_strategy =
        dispersal_core::strategy::Strategy::new((0..m).map(|x| prior.mass(x)).collect())?;
    let treasure_sampler = StrategySampler::new(&prior_strategy);
    let mut total = 0.0;
    for _ in 0..trials {
        let treasure = treasure_sampler.sample(rng);
        let mut detected = max_rounds + 1;
        'rounds: for (t, sampler) in samplers.iter().enumerate() {
            for _ in 0..k {
                if sampler.sample(rng) == treasure {
                    detected = t + 1;
                    break 'rounds;
                }
            }
        }
        total += detected as f64;
    }
    Ok(total / trials as f64)
}

/// Monte-Carlo detection time for searchers **with private memory**: each
/// searcher samples from the round distribution *conditioned on the boxes it
/// has not yet opened itself* (rejection sampling with a renormalization
/// fallback). This is the closer match to the A⋆ model of \[24\], where a
/// searcher never wastes a round re-opening its own boxes; the memoryless
/// variant ([`simulate_detection_time`]) lower-bounds it.
pub fn simulate_detection_time_with_memory<R: Rng + ?Sized>(
    plan: &mut dyn SearchPlan,
    prior: &Prior,
    k: usize,
    trials: u64,
    max_rounds: usize,
    rng: &mut R,
) -> Result<f64> {
    if k == 0 {
        return Err(Error::InvalidPlayerCount { k });
    }
    let m = prior.len();
    let mut rounds = Vec::with_capacity(max_rounds);
    for t in 0..max_rounds {
        let p = plan.round(t)?;
        if p.len() != m {
            return Err(Error::DimensionMismatch { strategy: p.len(), profile: m });
        }
        rounds.push(p);
    }
    let prior_strategy =
        dispersal_core::strategy::Strategy::new((0..m).map(|x| prior.mass(x)).collect())?;
    let treasure_sampler = StrategySampler::new(&prior_strategy);
    let mut total = 0.0;
    // opened[searcher][box]
    let mut opened = vec![vec![false; m]; k];
    for _ in 0..trials {
        for row in opened.iter_mut() {
            row.iter_mut().for_each(|b| *b = false);
        }
        let treasure = treasure_sampler.sample(rng);
        let mut detected = max_rounds + 1;
        'rounds: for (t, p) in rounds.iter().enumerate() {
            for (searcher, history) in opened.iter_mut().enumerate() {
                let _ = searcher;
                // Conditional sample: restrict p to unopened boxes.
                let mass: f64 = p
                    .probs()
                    .iter()
                    .zip(history.iter())
                    .filter(|(_, &h)| !h)
                    .map(|(&q, _)| q)
                    .sum();
                let site = if mass <= 1e-14 {
                    // Round distribution exhausted for this searcher: fall
                    // back to the first unopened box (if any).
                    match history.iter().position(|&h| !h) {
                        Some(x) => x,
                        None => continue, // opened everything already
                    }
                } else {
                    let mut u = rng.gen::<f64>() * mass;
                    let mut chosen = m - 1;
                    for (x, (&q, &h)) in p.probs().iter().zip(history.iter()).enumerate() {
                        if h {
                            continue;
                        }
                        u -= q;
                        if u <= 0.0 {
                            chosen = x;
                            break;
                        }
                    }
                    chosen
                };
                history[site] = true;
                if site == treasure {
                    detected = t + 1;
                    break 'rounds;
                }
            }
        }
        total += detected as f64;
    }
    Ok(total / trials as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::IteratedSigmaStar;
    use crate::baselines::{ProportionalPlan, SweepPlan, UniformPlan};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_prior_uniform_plan_closed_form() {
        // P[find per round | at x] = 1 - (1 - 1/m)^k; geometric detection.
        let m = 8;
        let k = 2;
        let prior = Prior::uniform(m).unwrap();
        let mut plan = UniformPlan::new(m);
        let eval = evaluate_plan(&mut plan, &prior, k, 400).unwrap();
        let q = 1.0 - (1.0 - 1.0 / m as f64).powi(k as i32);
        let geometric_mean = 1.0 / q;
        assert!(
            (eval.expected_rounds - geometric_mean).abs() < 0.05,
            "{} vs {geometric_mean}",
            eval.expected_rounds
        );
        assert!(eval.success_probability > 0.999);
    }

    #[test]
    fn success_by_round_is_monotone_cdf() {
        let prior = Prior::zipf(10, 1.0).unwrap();
        let mut plan = IteratedSigmaStar::new(&prior, 3).unwrap();
        let eval = evaluate_plan(&mut plan, &prior, 3, 50).unwrap();
        let mut prev = 0.0;
        for &s in &eval.success_by_round {
            assert!(s >= prev - 1e-12);
            assert!(s <= 1.0 + 1e-12);
            prev = s;
        }
    }

    #[test]
    fn iterated_sigma_star_beats_baselines_on_skewed_prior() {
        let prior = Prior::geometric(20, 0.6).unwrap();
        let k = 3;
        let horizon = 200;
        let mut astar = IteratedSigmaStar::new(&prior, k).unwrap();
        let astar_eval = evaluate_plan(&mut astar, &prior, k, horizon).unwrap();
        let mut uniform = UniformPlan::new(20);
        let uniform_eval = evaluate_plan(&mut uniform, &prior, k, horizon).unwrap();
        let mut sweep = SweepPlan::new(20);
        let sweep_eval = evaluate_plan(&mut sweep, &prior, k, horizon).unwrap();
        assert!(
            astar_eval.expected_rounds < uniform_eval.expected_rounds,
            "astar {} vs uniform {}",
            astar_eval.expected_rounds,
            uniform_eval.expected_rounds
        );
        assert!(
            astar_eval.expected_rounds < sweep_eval.expected_rounds,
            "astar {} vs sweep {}",
            astar_eval.expected_rounds,
            sweep_eval.expected_rounds
        );
    }

    #[test]
    fn iterated_sigma_star_beats_probability_matching() {
        let prior = Prior::zipf(15, 1.5).unwrap();
        let k = 2;
        let mut astar = IteratedSigmaStar::new(&prior, k).unwrap();
        let mut prop = ProportionalPlan::new(&prior).unwrap();
        let a = evaluate_plan(&mut astar, &prior, k, 300).unwrap();
        let p = evaluate_plan(&mut prop, &prior, k, 300).unwrap();
        assert!(
            a.expected_rounds < p.expected_rounds,
            "{} vs {}",
            a.expected_rounds,
            p.expected_rounds
        );
    }

    #[test]
    fn monte_carlo_agrees_with_analytic() {
        let prior = Prior::geometric(6, 0.5).unwrap();
        let k = 2;
        let mut plan = IteratedSigmaStar::new(&prior, k).unwrap();
        let eval = evaluate_plan(&mut plan, &prior, k, 100).unwrap();
        let mut plan2 = IteratedSigmaStar::new(&prior, k).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let mc = simulate_detection_time(&mut plan2, &prior, k, 60_000, 100, &mut rng).unwrap();
        assert!(
            (mc - eval.expected_rounds).abs() < 0.05,
            "MC {mc} vs analytic {}",
            eval.expected_rounds
        );
    }

    #[test]
    fn validates_inputs() {
        let prior = Prior::uniform(3).unwrap();
        let mut plan = UniformPlan::new(3);
        assert!(evaluate_plan(&mut plan, &prior, 0, 10).is_err());
        assert!(evaluate_plan(&mut plan, &prior, 2, 0).is_err());
        let mut wrong = UniformPlan::new(4);
        assert!(evaluate_plan(&mut wrong, &prior, 2, 10).is_err());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(simulate_detection_time(&mut plan, &prior, 0, 10, 10, &mut rng).is_err());
    }

    #[test]
    fn memory_strictly_helps() {
        // Never re-opening your own boxes cannot hurt and typically helps a
        // randomized plan.
        let prior = Prior::zipf(12, 1.0).unwrap();
        let k = 2;
        let mut plan_a = IteratedSigmaStar::new(&prior, k).unwrap();
        let mut plan_b = IteratedSigmaStar::new(&prior, k).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let memoryless =
            simulate_detection_time(&mut plan_a, &prior, k, 40_000, 200, &mut rng).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let with_memory =
            simulate_detection_time_with_memory(&mut plan_b, &prior, k, 40_000, 200, &mut rng)
                .unwrap();
        assert!(with_memory < memoryless, "memory should help: {with_memory} vs {memoryless}");
    }

    #[test]
    fn memory_single_searcher_sweeps_like_greedy() {
        // One searcher with memory following iterated sigma* on a steep
        // prior visits boxes nearly in prior order: expected time close to
        // the expected rank of the treasure.
        let prior = Prior::geometric(10, 0.5).unwrap();
        let expected_rank: f64 = (0..10).map(|x| (x as f64 + 1.0) * prior.mass(x)).sum();
        let mut plan = IteratedSigmaStar::new(&prior, 1).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let t = simulate_detection_time_with_memory(&mut plan, &prior, 1, 40_000, 100, &mut rng)
            .unwrap();
        assert!((t - expected_rank).abs() < 0.2, "time {t} vs expected rank {expected_rank}");
    }

    #[test]
    fn memory_validates_inputs() {
        let prior = Prior::uniform(3).unwrap();
        let mut plan = UniformPlan::new(3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(
            simulate_detection_time_with_memory(&mut plan, &prior, 0, 10, 10, &mut rng).is_err()
        );
        let mut wrong = UniformPlan::new(4);
        assert!(
            simulate_detection_time_with_memory(&mut wrong, &prior, 2, 10, 10, &mut rng).is_err()
        );
    }

    #[test]
    fn single_searcher_on_point_prior_finds_immediately() {
        // Prior concentrated on one box; sigma* sends the searcher there.
        let prior = Prior::from_weights(vec![1.0, 1e-9, 1e-9]).unwrap();
        let mut plan = IteratedSigmaStar::new(&prior, 1).unwrap();
        let eval = evaluate_plan(&mut plan, &prior, 1, 50).unwrap();
        assert!(eval.expected_rounds < 1.1, "expected {}", eval.expected_rounds);
    }
}
