//! Crate-level property tests for `dispersal-search`.

use dispersal_search::analysis::round_success_probability;
use dispersal_search::astar::IteratedSigmaStar;
use dispersal_search::baselines::UniformPlan;
use dispersal_search::game::evaluate_plan;
use dispersal_search::mech_space::{MechFamily, MechPoint};
use dispersal_search::plan::SearchPlan;
use dispersal_search::prior::Prior;
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;

fn weights() -> impl PropStrategy<Value = Vec<f64>> {
    proptest::collection::vec(0.05f64..5.0, 2..=12)
}

/// Map a family selector plus unit-cube coordinates onto a mechanism
/// point inside that family's root box — `table()` must accept every
/// interior point without per-child rescue paths.
fn mech_point(family: usize, u: (f64, f64, f64)) -> MechPoint {
    match family % 3 {
        0 => MechPoint {
            family: MechFamily::Piecewise,
            params: vec![2.0 + u.0 * 14.0, -0.5 + u.1 * 1.5, u.2],
        },
        1 => MechPoint { family: MechFamily::PowerLaw, params: vec![u.0 * 6.0] },
        _ => MechPoint { family: MechFamily::BudgetNormed, params: vec![u.0 * 2.0, u.1 * 3.0] },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn round_one_maximizes_round_success(ws in weights(), k in 1usize..=6) {
        // Round 1 of the plan maximizes the single-round detection
        // probability among the tested alternatives (it IS the coverage
        // optimizer).
        let prior = Prior::from_weights(ws).unwrap();
        let mut plan = IteratedSigmaStar::new(&prior, k).unwrap();
        let round1 = plan.round(0).unwrap();
        let star_success = round_success_probability(&prior, &round1, k).unwrap();
        let m = prior.len();
        let alternatives = [
            dispersal_core::strategy::Strategy::uniform(m).unwrap(),
            dispersal_core::strategy::Strategy::delta(m, 0).unwrap(),
            dispersal_core::strategy::Strategy::uniform_on_top(m, k.min(m)).unwrap(),
        ];
        for alt in &alternatives {
            let alt_success = round_success_probability(&prior, alt, k).unwrap();
            prop_assert!(alt_success <= star_success + 1e-9);
        }
        prop_assert!(star_success > 0.0 && star_success <= 1.0 + 1e-12);
    }

    #[test]
    fn expected_rounds_at_least_one_and_success_valid(ws in weights(), k in 1usize..=5) {
        let prior = Prior::from_weights(ws).unwrap();
        let mut plan = IteratedSigmaStar::new(&prior, k).unwrap();
        let eval = evaluate_plan(&mut plan, &prior, k, 80).unwrap();
        prop_assert!(eval.expected_rounds >= 1.0 - 1e-12);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&eval.success_probability));
        prop_assert_eq!(eval.success_by_round.len(), 80);
    }

    #[test]
    fn astar_never_slower_than_uniform(ws in weights(), k in 1usize..=5) {
        let prior = Prior::from_weights(ws).unwrap();
        let m = prior.len();
        let mut astar = IteratedSigmaStar::new(&prior, k).unwrap();
        let a = evaluate_plan(&mut astar, &prior, k, 200).unwrap();
        let mut uni = UniformPlan::new(m);
        let u = evaluate_plan(&mut uni, &prior, k, 200).unwrap();
        prop_assert!(
            a.expected_rounds <= u.expected_rounds + 1e-6,
            "astar {} vs uniform {}",
            a.expected_rounds,
            u.expected_rounds
        );
    }

    #[test]
    fn mech_family_tables_are_always_valid_congestion_tables(
        family in 0usize..3,
        u in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
        k in 2usize..=16,
    ) {
        let point = mech_point(family, u);
        // Every point of every family expands to a table TableCongestion
        // accepts: C(1) = 1 exactly, every entry finite, non-increasing
        // (monotone where the family claims it). This is the invariant
        // the mechanism-space search relies on to batch arbitrary
        // sibling sets into one GBatch tile without per-child rescue
        // paths.
        let table = point.table(k).unwrap();
        prop_assert_eq!(table.len(), k);
        prop_assert_eq!(table[0].to_bits(), 1.0f64.to_bits());
        for v in &table {
            prop_assert!(v.is_finite(), "non-finite entry in {table:?}");
        }
        for w in table.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12, "increasing table {table:?}");
        }
        dispersal_core::policy::TableCongestion::new(table, point.spec()).unwrap();
    }

    #[test]
    fn mech_points_reject_non_finite_parameters(
        family in 0usize..3,
        u in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
        bad_index in 0usize..3,
    ) {
        let mut broken = mech_point(family, u);
        let i = bad_index % broken.params.len();
        broken.params[i] = f64::NAN;
        prop_assert!(broken.validate().is_err());
        prop_assert!(broken.table(8).is_err());
    }

    #[test]
    fn round_distributions_always_valid(ws in weights(), k in 1usize..=4, t in 0usize..20) {
        let prior = Prior::from_weights(ws).unwrap();
        let mut plan = IteratedSigmaStar::new(&prior, k).unwrap();
        let r = plan.round(t).unwrap();
        let sum: f64 = r.probs().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(r.probs().iter().all(|&p| p >= 0.0));
    }
}
