//! Crate-level property tests for `dispersal-search`.

use dispersal_search::analysis::round_success_probability;
use dispersal_search::astar::IteratedSigmaStar;
use dispersal_search::baselines::UniformPlan;
use dispersal_search::game::evaluate_plan;
use dispersal_search::plan::SearchPlan;
use dispersal_search::prior::Prior;
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;

fn weights() -> impl PropStrategy<Value = Vec<f64>> {
    proptest::collection::vec(0.05f64..5.0, 2..=12)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn round_one_maximizes_round_success(ws in weights(), k in 1usize..=6) {
        // Round 1 of the plan maximizes the single-round detection
        // probability among the tested alternatives (it IS the coverage
        // optimizer).
        let prior = Prior::from_weights(ws).unwrap();
        let mut plan = IteratedSigmaStar::new(&prior, k).unwrap();
        let round1 = plan.round(0);
        let star_success = round_success_probability(&prior, &round1, k).unwrap();
        let m = prior.len();
        let alternatives = [
            dispersal_core::strategy::Strategy::uniform(m).unwrap(),
            dispersal_core::strategy::Strategy::delta(m, 0).unwrap(),
            dispersal_core::strategy::Strategy::uniform_on_top(m, k.min(m)).unwrap(),
        ];
        for alt in &alternatives {
            let alt_success = round_success_probability(&prior, alt, k).unwrap();
            prop_assert!(alt_success <= star_success + 1e-9);
        }
        prop_assert!(star_success > 0.0 && star_success <= 1.0 + 1e-12);
    }

    #[test]
    fn expected_rounds_at_least_one_and_success_valid(ws in weights(), k in 1usize..=5) {
        let prior = Prior::from_weights(ws).unwrap();
        let mut plan = IteratedSigmaStar::new(&prior, k).unwrap();
        let eval = evaluate_plan(&mut plan, &prior, k, 80).unwrap();
        prop_assert!(eval.expected_rounds >= 1.0 - 1e-12);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&eval.success_probability));
        prop_assert_eq!(eval.success_by_round.len(), 80);
    }

    #[test]
    fn astar_never_slower_than_uniform(ws in weights(), k in 1usize..=5) {
        let prior = Prior::from_weights(ws).unwrap();
        let m = prior.len();
        let mut astar = IteratedSigmaStar::new(&prior, k).unwrap();
        let a = evaluate_plan(&mut astar, &prior, k, 200).unwrap();
        let mut uni = UniformPlan::new(m);
        let u = evaluate_plan(&mut uni, &prior, k, 200).unwrap();
        prop_assert!(
            a.expected_rounds <= u.expected_rounds + 1e-6,
            "astar {} vs uniform {}",
            a.expected_rounds,
            u.expected_rounds
        );
    }

    #[test]
    fn round_distributions_always_valid(ws in weights(), k in 1usize..=4, t in 0usize..20) {
        let prior = Prior::from_weights(ws).unwrap();
        let mut plan = IteratedSigmaStar::new(&prior, k).unwrap();
        let r = plan.round(t);
        let sum: f64 = r.probs().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(r.probs().iter().all(|&p| p >= 0.0));
    }
}
