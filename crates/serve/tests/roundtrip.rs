//! Daemon round-trip integration tests: every reply served over the
//! socket — through admission batching and the shared caches — must be
//! bit-identical (`to_bits`) to the same computation done as a direct
//! library call.

use dispersal_core::kernel::GTable;
use dispersal_core::policy::validate_congestion;
use dispersal_core::prelude::*;
use dispersal_mech::catalog::{parse_policy, parse_profile, standard_catalog};
use dispersal_mech::evaluator::catalog_response_matrix;
use dispersal_serve::client::Client;
use dispersal_serve::server::{Server, ServerConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Value;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

fn lookup(value: &Value, name: &str) -> Value {
    let entries = value.as_object().unwrap_or_else(|| panic!("not an object: {value:?}"));
    entries
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| panic!("missing field {name:?} in {value:?}"))
}

fn floats(value: &Value) -> Vec<f64> {
    value
        .as_array()
        .unwrap_or_else(|| panic!("not an array: {value:?}"))
        .iter()
        .map(|v| match v {
            Value::Float(f) => *f,
            Value::Int(i) => *i as f64,
            Value::UInt(u) => *u as f64,
            other => panic!("not a number: {other:?}"),
        })
        .collect()
}

fn uint(value: &Value) -> u64 {
    match value {
        Value::UInt(u) => *u,
        Value::Int(i) if *i >= 0 => *i as u64,
        other => panic!("not an unsigned integer: {other:?}"),
    }
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{what}: bit divergence at index {i}: {g} vs {w}");
    }
}

/// The daemon's exact response path, done directly: reference-mode
/// `GTable` evaluation of the policy's Bernstein coefficients.
fn direct_exact_curve(spec: &str, k: usize, resolution: usize) -> Vec<f64> {
    let policy = parse_policy(spec).unwrap();
    let coeffs = validate_congestion(policy.as_ref(), k).unwrap();
    let table = GTable::from_coefficients(coeffs).unwrap();
    let mut scratch = table.scratch();
    let qs: Vec<f64> = (0..=resolution).map(|i| i as f64 / resolution as f64).collect();
    let mut g = vec![0.0; qs.len()];
    table.eval_many_with(&mut scratch, &qs, &mut g).unwrap();
    g
}

#[test]
fn concurrent_response_burst_is_bit_identical_and_coalesced() {
    const CLIENTS: usize = 8;
    const K: usize = 16;
    const RESOLUTION: usize = 64;
    let specs = ["sharing", "two-level:-0.3", "power:2.0", "exclusive"];

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        // Generous window so a barrier-released burst reliably lands in
        // one admission batch even on a loaded CI box.
        batch_window: Duration::from_millis(50),
        max_batch: 256,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let spec = specs[i % specs.len()];
                let mut client = Client::connect(&addr).unwrap();
                barrier.wait();
                let line = format!(
                    "{{\"id\":{},\"cmd\":\"response\",\"policy\":\"{}\",\"k\":{},\"resolution\":{}}}",
                    i + 1,
                    spec,
                    K,
                    RESOLUTION
                );
                let result = client.request(&line).unwrap();
                (spec, result)
            })
        })
        .collect();

    for handle in handles {
        let (spec, result) = handle.join().unwrap();
        let got = floats(&lookup(&result, "g"));
        let want = direct_exact_curve(spec, K, RESOLUTION);
        assert_bits_eq(&got, &want, &format!("response({spec}) over the daemon"));
        assert_eq!(uint(&lookup(&result, "k")) as usize, K);
        assert_eq!(floats(&lookup(&result, "qs")).len(), RESOLUTION + 1);
    }

    // The barrier-released burst must actually have been coalesced into
    // shared kernel tiles, not answered one-by-one.
    let metrics = server.metrics();
    assert_eq!(metrics.response_requests, CLIENTS as u64);
    assert!(
        metrics.avg_occupancy() >= 2.0,
        "expected cross-request batching, got occupancy {:.2} ({} requests / {} tiles)",
        metrics.avg_occupancy(),
        metrics.response_requests,
        metrics.response_groups
    );
    server.shutdown();
}

#[test]
fn interpolated_responses_share_the_grid_cache_and_match_direct_grids() {
    const K: usize = 12;
    const RESOLUTION: usize = 48;
    const TOL: f64 = 1e-9;
    let server = Server::bind(ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    for round in 0..2 {
        for (i, spec) in ["sharing", "two-level:-0.3"].iter().enumerate() {
            let line = format!(
                "{{\"id\":{},\"cmd\":\"response\",\"policy\":\"{}\",\"k\":{},\
                 \"resolution\":{},\"tol\":{}}}",
                10 * round + i,
                spec,
                K,
                RESOLUTION,
                TOL
            );
            let result = client.request(&line).unwrap();
            let got = floats(&lookup(&result, "g"));

            let policy = parse_policy(spec).unwrap();
            let coeffs = validate_congestion(policy.as_ref(), K).unwrap();
            let table = GTable::from_coefficients(coeffs).unwrap().with_grid(TOL).unwrap();
            let mut scratch = table.scratch();
            let qs: Vec<f64> = (0..=RESOLUTION).map(|i| i as f64 / RESOLUTION as f64).collect();
            let mut want = vec![0.0; qs.len()];
            table.eval_fast_many_with(&mut scratch, &qs, &mut want).unwrap();
            assert_bits_eq(&got, &want, &format!("interpolated response({spec})"));
        }
    }
    // Two distinct (policy, tol) grids, each built exactly once across
    // both rounds: the daemon's cache is warm after round 0.
    let (grid_stats, _) = server.cache_stats();
    assert_eq!(grid_stats.misses, 2, "each grid refined once");
    assert_eq!(grid_stats.hits, 2, "round two served from the warm cache");
    server.shutdown();
}

#[test]
fn equilibrium_ess_catalog_and_errors_round_trip() {
    let server = Server::bind(ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Equilibrium vs a direct IFD solve.
    let result = client
        .request(r#"{"id":1,"cmd":"equilibrium","policy":"sharing","profile":"zipf:12:1.1","k":6}"#)
        .unwrap();
    let policy = parse_policy("sharing").unwrap();
    let f = parse_profile("zipf:12:1.1").unwrap();
    let ifd = solve_ifd_allow_degenerate(policy.as_ref(), &f, 6).unwrap();
    let cover = coverage(&f, &ifd.strategy, 6).unwrap();
    let ctx = PayoffContext::new(policy.as_ref(), 6).unwrap();
    let payoff = ctx.symmetric_payoff(&f, &ifd.strategy).unwrap();
    assert_bits_eq(&floats(&lookup(&result, "probs")), ifd.strategy.probs(), "equilibrium probs");
    assert_bits_eq(&[lookup_f64(&result, "coverage")], &[cover], "coverage");
    assert_bits_eq(&[lookup_f64(&result, "payoff")], &[payoff], "payoff");
    assert_bits_eq(&[lookup_f64(&result, "residual")], &[ifd.residual], "residual");
    assert_eq!(uint(&lookup(&result, "support")) as usize, ifd.support);

    // ESS probe vs a direct seeded probe.
    let result = client
        .request(r#"{"id":2,"cmd":"ess","profile":"zipf:10:1.0","k":4,"mutants":20,"seed":7}"#)
        .unwrap();
    let f = parse_profile("zipf:10:1.0").unwrap();
    let star = sigma_star(&f, 4).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let report = probe_ess_k(&Exclusive, &f, &star.strategy, 20, &mut rng, 4).unwrap();
    assert_eq!(lookup(&result, "passed"), Value::Bool(report.passed()));
    assert_eq!(uint(&lookup(&result, "mutants")) as usize, report.mutants_tested);
    assert_eq!(uint(&lookup(&result, "repelled")) as usize, report.repelled);
    assert_bits_eq(&[lookup_f64(&result, "worst_margin")], &[report.worst_margin], "worst margin");

    // Catalog scan vs the direct matrix.
    let result = client.request(r#"{"id":3,"cmd":"catalog","k":6,"resolution":32}"#).unwrap();
    let direct = catalog_response_matrix(&standard_catalog(), 6, 32).unwrap();
    assert_bits_eq(&floats(&lookup(&result, "tolerance")), &direct.tolerance_score, "catalog");
    let names = lookup(&result, "names");
    assert_eq!(names.as_array().unwrap().len(), direct.names.len());

    // Per-request errors: bad specs and bad JSON answer in place without
    // harming the connection.
    let err =
        client.request(r#"{"id":4,"cmd":"response","policy":"warp-core","k":8}"#).unwrap_err();
    assert!(err.contains("warp"), "unexpected error text: {err}");
    let raw = client.call("this is not json").unwrap();
    assert!(raw.contains("\"ok\":false"), "malformed line must get an error reply: {raw}");

    // Stats, then a protocol-level shutdown; join() returns the final
    // metrics.
    let stats = client.request(r#"{"id":5,"cmd":"stats"}"#).unwrap();
    assert!(uint(&lookup(&stats, "requests")) >= 5);
    let bye = client.request(r#"{"id":6,"cmd":"shutdown"}"#).unwrap();
    assert_eq!(lookup(&bye, "stopping"), Value::Bool(true));
    let metrics = server.join();
    assert!(metrics.replies >= 7);
    assert!(metrics.errors >= 2);
}

#[test]
fn scenario_round_trip_matches_direct_tracking() {
    use dispersal_sim::replicator::ReplicatorConfig;
    use dispersal_sim::scenario::{run_scenario_replicator, Scenario, TrafficEvent};

    let server = Server::bind(ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let result = client
        .request(
            r#"{"id":1,"cmd":"scenario","policy":"sharing","profile":"zipf:5:1.0","k":3,"epochs":4,"explore":1e-4,"events":[{"type":"daily","amplitude":0.2,"period":4},{"type":"shock","epoch":2,"site":4,"factor":3.0}]}"#,
        )
        .unwrap();

    let policy = parse_policy("sharing").unwrap();
    let f = parse_profile("zipf:5:1.0").unwrap();
    let scenario = Scenario::new(
        f,
        4,
        vec![
            TrafficEvent::Daily { amplitude: 0.2, period: 4 },
            TrafficEvent::Shock { epoch: 2, site: 4, factor: 3.0 },
        ],
    )
    .unwrap();
    let start = Strategy::uniform(5).unwrap();
    let want = run_scenario_replicator(
        policy.as_ref(),
        &scenario,
        &start,
        3,
        1e-4,
        ReplicatorConfig::default(),
    )
    .unwrap();

    let distances: Vec<f64> = want.records.iter().map(|r| r.ifd_distance).collect();
    assert_bits_eq(&floats(&lookup(&result, "ifd_distance")), &distances, "scenario distances");
    assert_bits_eq(
        &floats(&lookup(&result, "final_state")),
        want.final_state.probs(),
        "scenario final state",
    );
    let steps: Vec<u64> = floats(&lookup(&result, "steps")).iter().map(|&s| s as u64).collect();
    assert_eq!(steps, want.records.iter().map(|r| r.steps as u64).collect::<Vec<_>>());
    assert_eq!(lookup(&result, "converged"), Value::Bool(want.records.iter().all(|r| r.converged)));
    assert_eq!(uint(&lookup(&result, "epochs")), 4);

    // Scenario-level validation errors answer in place.
    let err = client
        .request(
            r#"{"id":2,"cmd":"scenario","policy":"sharing","profile":"zipf:5:1.0","k":3,"epochs":4,"events":[{"type":"drift","site":9,"rate":0.1}]}"#,
        )
        .unwrap_err();
    assert!(err.contains("out of range"), "unexpected error text: {err}");
    server.shutdown();
}

#[cfg(unix)]
#[test]
fn unix_socket_round_trip() {
    let path =
        std::env::temp_dir().join(format!("dispersal-serve-test-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let addr = format!("unix:{}", path.display());
    let server = Server::bind(ServerConfig { addr, ..ServerConfig::default() }).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let result = client
        .request(r#"{"id":1,"cmd":"response","policy":"power:2.0","k":8,"resolution":16}"#)
        .unwrap();
    let got = floats(&lookup(&result, "g"));
    assert_bits_eq(&got, &direct_exact_curve("power:2.0", 8, 16), "unix-socket response");
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

fn lookup_f64(value: &Value, name: &str) -> f64 {
    match lookup(value, name) {
        Value::Float(f) => f,
        Value::Int(i) => i as f64,
        Value::UInt(u) => u as f64,
        other => panic!("field {name:?} is not a number: {other:?}"),
    }
}
