//! Malformed-input robustness: the daemon must answer garbage with a
//! protocol-level error object — never a panic, never a dropped
//! connection (except where dropping is the *point*: oversized lines are
//! refused in place, silent connections are reaped by the idle timeout).

use dispersal_serve::client::Client;
use dispersal_serve::server::{Server, ServerConfig};
use std::io::Read;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn bounded_server(max_line_bytes: usize) -> Server {
    Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        max_line_bytes,
        ..ServerConfig::default()
    })
    .unwrap()
}

#[test]
fn oversized_line_is_refused_but_the_connection_survives() {
    // Regression for the unbounded `read_line`: before the line cap, a
    // client could stream an arbitrarily long line into server memory —
    // and an oversized *valid* request was simply answered. With
    // `max_line_bytes` set, the same request must get a protocol error
    // naming the limit, and the connection must stay usable.
    let server = bounded_server(1024);
    let mut client = Client::connect(server.addr()).unwrap();

    let request = r#"{"id":7,"cmd":"response","policy":"sharing","k":4,"resolution":8}"#;
    let oversized = format!("{}{request}", " ".repeat(4096));
    let raw = client.call(&oversized).unwrap();
    assert!(raw.contains("\"ok\":false"), "oversized line must be refused: {raw}");
    assert!(raw.contains("limit"), "the error should name the byte limit: {raw}");

    // Same connection, normal-sized request: still served.
    let result = client.request(request).unwrap();
    let text = format!("{result:?}");
    assert!(text.contains("g"), "connection must survive the refusal: {text}");

    let metrics = server.metrics();
    assert!(metrics.errors >= 1, "the refusal must be counted: {metrics:?}");
    server.shutdown();
}

#[test]
fn oversized_line_discard_is_bounded_not_buffered() {
    // The refused line's excess bytes are discarded in chunks, not
    // accumulated: a multi-megabyte line on a 256-byte budget comes back
    // with an error naming the discarded excess.
    let server = bounded_server(256);
    let mut client = Client::connect(server.addr()).unwrap();
    let huge = "x".repeat(2 * 1024 * 1024);
    let raw = client.call(&huge).unwrap();
    assert!(raw.contains("\"ok\":false"), "huge line must be refused: {raw}");
    assert!(raw.contains("excess"), "the reply should report discarded bytes: {raw}");
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped_by_the_read_timeout() {
    // Regression for the missing idle timeout: a client that connects
    // and sends nothing used to pin its reader thread forever. With
    // `read_timeout` set, the server closes the socket (client sees EOF).
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        read_timeout: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let start = Instant::now();
    let mut buf = [0u8; 16];
    let n = stream.read(&mut buf).unwrap();
    assert_eq!(n, 0, "server must close the idle connection (EOF), got {n} bytes");
    assert!(
        start.elapsed() < Duration::from_secs(8),
        "idle reap took {:?} — timeout not applied?",
        start.elapsed()
    );
    server.shutdown();
}

#[test]
fn malformed_requests_answer_in_place_without_panicking() {
    let server = bounded_server(1 << 20);
    let mut client = Client::connect(server.addr()).unwrap();

    // Truncated JSON.
    let raw = client.call(r#"{"id":1,"cmd":"respo"#).unwrap();
    assert!(raw.contains("\"ok\":false"), "truncated JSON: {raw}");
    // Non-finite numeric literal (JSON has no NaN) — parse error, not a
    // crash.
    let raw =
        client.call(r#"{"id":2,"cmd":"response","policy":"sharing","k":4,"tol":NaN}"#).unwrap();
    assert!(raw.contains("\"ok\":false"), "NaN literal: {raw}");
    // Unknown command.
    let err = client.request(r#"{"id":3,"cmd":"warp"}"#).unwrap_err();
    assert!(err.contains("warp"), "unknown command: {err}");
    // Non-finite spec arguments are rejected by the typed parsers.
    let err =
        client.request(r#"{"id":4,"cmd":"response","policy":"two-level:NaN","k":4}"#).unwrap_err();
    assert!(err.contains("finite"), "non-finite policy arg: {err}");
    let err = client
        .request(r#"{"id":5,"cmd":"equilibrium","policy":"sharing","profile":"zipf:8:inf","k":4}"#)
        .unwrap_err();
    assert!(err.contains("non-finite"), "non-finite profile arg: {err}");

    // After all of that, the connection still serves real work.
    let result = client
        .request(r#"{"id":6,"cmd":"response","policy":"sharing","k":4,"resolution":8}"#)
        .unwrap();
    assert!(format!("{result:?}").contains("g"), "connection must still work: {result:?}");

    let metrics = server.metrics();
    assert!(metrics.errors >= 5, "each refusal must be counted: {metrics:?}");
    server.shutdown();
}
