//! The long-lived evaluation daemon: socket front end, admission queue,
//! batched dispatch, and demultiplexed replies.
//!
//! ## Lifecycle
//!
//! [`Server::bind`] opens the listener (TCP, or a Unix socket for
//! `unix:<path>` addresses), then spawns two service threads:
//!
//! * the **acceptor** hands each connection a reader thread that parses
//!   request lines and pushes them onto the shared admission queue;
//! * the **dispatcher** wakes on the first arrival, holds the queue open
//!   for the configured batching window so a concurrent burst can pile
//!   up, then drains the batch: response requests are grouped by
//!   `(k, resolution, tol)` ([`crate::batch::plan_groups`]) and each
//!   group runs as **one** policy-major `GBatch` tile; everything else
//!   (equilibrium solves, ESS probes, catalog scans) runs as singleton
//!   work items. The whole batch fans out on the persistent
//!   work-stealing pool (`dispersal_sim::engine::par_map`), and replies
//!   are demultiplexed to each requester's connection by `id`.
//!
//! All evaluation flows through the daemon-lifetime shared caches
//! ([`ServeCaches`]): warm interpolation grids and catalog tiles are
//! shared across requests, connections, and worker threads. On
//! `shutdown` the dispatcher prints a summary — request/batch counters
//! plus one [`CacheStats`] line per cache.

use crate::batch::{self, ResponseJob};
use crate::protocol::{self, Request};
use dispersal_core::kernel::cache::CacheStats;
use dispersal_core::prelude::*;
use dispersal_mech::catalog::{parse_policy, parse_profile, standard_catalog};
use dispersal_mech::evaluator::{catalog_response_matrix_cached, ResponseCache};
use dispersal_sim::engine;
use dispersal_sim::replicator::ReplicatorConfig;
use dispersal_sim::scenario::{run_scenario_replicator, Scenario};
use dispersal_sim::sweep::SharedGridCache;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Value;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address: a TCP `host:port` (use port `0` for an ephemeral
    /// port), or `unix:<path>` for a Unix-domain socket.
    pub addr: String,
    /// How long the dispatcher holds the admission queue open after the
    /// first arrival, letting a concurrent burst coalesce into one
    /// batch. Zero disables batching (every request dispatches alone).
    pub batch_window: Duration,
    /// Maximum requests drained into one admission batch.
    pub max_batch: usize,
    /// Longest request line accepted, in bytes. Longer lines are consumed
    /// and discarded without buffering (bounded memory) and answered with
    /// a protocol-level error; the connection stays open and the stream
    /// stays line-synchronized.
    pub max_line_bytes: usize,
    /// Idle read timeout: a connection that sends no bytes for this long
    /// is closed, releasing its reader thread. `None` (or a zero
    /// duration) disables the timeout.
    pub read_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            batch_window: Duration::from_millis(2),
            max_batch: 256,
            max_line_bytes: 1 << 20,
            read_timeout: Some(Duration::from_secs(120)),
        }
    }
}

/// The daemon-lifetime shared caches every request is served through.
#[derive(Debug, Default)]
pub struct ServeCaches {
    /// Interpolation grids for `tol`-mode response requests.
    pub grids: SharedGridCache,
    /// Policy-major catalog tiles for `catalog` requests.
    pub catalog: ResponseCache,
}

/// Monotone service counters (snapshot of the daemon's atomics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Request lines received (including malformed ones).
    pub requests: u64,
    /// Reply lines written.
    pub replies: u64,
    /// Error replies among them.
    pub errors: u64,
    /// Admission batches dispatched.
    pub admissions: u64,
    /// Response requests that went through group batching.
    pub response_requests: u64,
    /// Distinct `(k, resolution, tol)` groups those formed.
    pub response_groups: u64,
}

impl Metrics {
    /// Average response-batch occupancy: requests per kernel tile. `1.0`
    /// means no cross-request coalescing happened; the serve-smoke CI
    /// gate asserts `≥ 2` under a concurrent burst.
    pub fn avg_occupancy(&self) -> f64 {
        if self.response_groups == 0 {
            0.0
        } else {
            self.response_requests as f64 / self.response_groups as f64
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    replies: AtomicU64,
    errors: AtomicU64,
    admissions: AtomicU64,
    response_requests: AtomicU64,
    response_groups: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> Metrics {
        Metrics {
            requests: self.requests.load(Ordering::Relaxed),
            replies: self.replies.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            admissions: self.admissions.load(Ordering::Relaxed),
            response_requests: self.response_requests.load(Ordering::Relaxed),
            response_groups: self.response_groups.load(Ordering::Relaxed),
        }
    }
}

/// A connection's reply sink, shared between its reader thread (parse
/// errors) and the dispatcher (results).
type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// One admitted request waiting in the queue.
struct Pending {
    id: u64,
    request: Request,
    writer: SharedWriter,
}

struct Inner {
    caches: ServeCaches,
    counters: Counters,
    config: ServerConfig,
    stop: AtomicBool,
    queue: Mutex<VecDeque<Pending>>,
    arrivals: Condvar,
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// A running daemon. Dropping the handle (or calling
/// [`Server::shutdown`]) stops the service threads; [`Server::join`]
/// blocks until a client's `shutdown` request stops them.
pub struct Server {
    inner: Arc<Inner>,
    addr: String,
    threads: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind the listener and start the acceptor + dispatcher threads.
    pub fn bind(config: ServerConfig) -> Result<Server> {
        let listener = if let Some(path) = config.addr.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                let listener = UnixListener::bind(path).map_err(Error::from)?;
                listener.set_nonblocking(true).map_err(Error::from)?;
                Listener::Unix(listener)
            }
            #[cfg(not(unix))]
            {
                return Err(Error::InvalidArgument(format!(
                    "unix sockets unsupported on this platform: {path}"
                )));
            }
        } else {
            let listener = TcpListener::bind(config.addr.as_str()).map_err(Error::from)?;
            listener.set_nonblocking(true).map_err(Error::from)?;
            Listener::Tcp(listener)
        };
        let addr = match &listener {
            Listener::Tcp(l) => l.local_addr().map_err(Error::from)?.to_string(),
            #[cfg(unix)]
            Listener::Unix(_) => config.addr.clone(),
        };
        let inner = Arc::new(Inner {
            caches: ServeCaches::default(),
            counters: Counters::default(),
            config,
            stop: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            arrivals: Condvar::new(),
        });
        let acceptor = {
            let inner = Arc::clone(&inner);
            thread::spawn(move || accept_loop(&inner, listener))
        };
        let dispatcher = {
            let inner = Arc::clone(&inner);
            thread::spawn(move || dispatch_loop(&inner))
        };
        Ok(Server { inner, addr, threads: vec![acceptor, dispatcher] })
    }

    /// The bound address clients should connect to — the resolved
    /// `host:port` for TCP (ephemeral port filled in), the configured
    /// `unix:<path>` for Unix sockets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Snapshot of the service counters.
    pub fn metrics(&self) -> Metrics {
        self.inner.counters.snapshot()
    }

    /// Snapshots of the daemon's shared caches: `(grids, catalog)`.
    pub fn cache_stats(&self) -> (CacheStats, CacheStats) {
        (self.inner.caches.grids.stats(), self.inner.caches.catalog.stats())
    }

    /// Request a stop (idempotent); service threads exit promptly but
    /// asynchronously — follow with [`Server::join`] to wait for them.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.arrivals.notify_all();
    }

    /// Block until the daemon stops (a client `shutdown` request or a
    /// prior [`Server::shutdown`] call), then join the service threads.
    pub fn join(mut self) -> Metrics {
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        self.inner.counters.snapshot()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: Listener) {
    while !inner.stop.load(Ordering::SeqCst) {
        let accepted: std::io::Result<()> = match &listener {
            Listener::Tcp(l) => l.accept().map(|(stream, _)| spawn_tcp_reader(inner, stream)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(stream, _)| spawn_unix_reader(inner, stream)),
        };
        match accepted {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

fn spawn_tcp_reader(inner: &Arc<Inner>, stream: TcpStream) {
    // Replies are small one-line writes; without TCP_NODELAY, Nagle's
    // algorithm holds them hostage to the peer's delayed ACKs (tens of
    // milliseconds per round trip on a persistent connection).
    let _ = stream.set_nodelay(true);
    if let Some(timeout) = inner.config.read_timeout.filter(|t| !t.is_zero()) {
        let _ = stream.set_read_timeout(Some(timeout));
    }
    let Ok(write_half) = stream.try_clone() else { return };
    let writer: SharedWriter = Arc::new(Mutex::new(Box::new(write_half)));
    let inner = Arc::clone(inner);
    thread::spawn(move || read_requests(&inner, BufReader::new(stream), writer));
}

#[cfg(unix)]
fn spawn_unix_reader(inner: &Arc<Inner>, stream: UnixStream) {
    if let Some(timeout) = inner.config.read_timeout.filter(|t| !t.is_zero()) {
        let _ = stream.set_read_timeout(Some(timeout));
    }
    let Ok(write_half) = stream.try_clone() else { return };
    let writer: SharedWriter = Arc::new(Mutex::new(Box::new(write_half)));
    let inner = Arc::clone(inner);
    thread::spawn(move || read_requests(&inner, BufReader::new(stream), writer));
}

fn write_line(writer: &SharedWriter, line: &str) {
    if let Ok(mut sink) = writer.lock() {
        let _ = sink.write_all(line.as_bytes());
        let _ = sink.write_all(b"\n");
        let _ = sink.flush();
    }
}

/// Outcome of one bounded line read.
enum LineRead {
    /// A complete line (newline and any trailing `\r` stripped).
    Line(String),
    /// The line exceeded the cap; `discarded` bytes beyond it were
    /// consumed and thrown away to keep the stream line-synchronized.
    TooLong { discarded: usize },
    /// End of stream (or an unrecoverable read error).
    Eof,
    /// The socket's read timeout elapsed (idle connection).
    TimedOut,
}

/// Read one `\n`-terminated line while retaining at most `max` bytes:
/// an attacker streaming an unterminated line costs `max` bytes of
/// buffer, not unbounded memory as with `BufRead::lines`/`read_line`.
/// A terminal unterminated fragment still counts as a line (parity with
/// `BufRead::lines`).
fn read_bounded_line<R: Read>(reader: &mut BufReader<R>, max: usize) -> LineRead {
    let mut line: Vec<u8> = Vec::new();
    let mut discarded = 0usize;
    loop {
        let (consumed, terminated) = {
            let buf = match reader.fill_buf() {
                Ok(buf) => buf,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return LineRead::TimedOut;
                }
                Err(_) => return LineRead::Eof,
            };
            if buf.is_empty() {
                return if discarded > 0 {
                    LineRead::TooLong { discarded }
                } else if line.is_empty() {
                    LineRead::Eof
                } else {
                    finish_line(line)
                };
            }
            let newline = buf.iter().position(|&b| b == b'\n');
            let content = newline.unwrap_or(buf.len());
            let keep = content.min(max.saturating_sub(line.len()));
            if keep > 0 {
                line.extend_from_slice(&buf[..keep]);
            }
            discarded += content - keep;
            (newline.map_or(buf.len(), |i| i + 1), newline.is_some())
        };
        reader.consume(consumed);
        if terminated {
            return if discarded > 0 { LineRead::TooLong { discarded } } else { finish_line(line) };
        }
    }
}

fn finish_line(mut line: Vec<u8>) -> LineRead {
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    match String::from_utf8(line) {
        Ok(text) => LineRead::Line(text),
        // Invalid UTF-8 closed the connection under `lines()` too.
        Err(_) => LineRead::Eof,
    }
}

fn read_requests<R: Read>(inner: &Arc<Inner>, mut reader: BufReader<R>, writer: SharedWriter) {
    let max_line = inner.config.max_line_bytes.max(1);
    loop {
        match read_bounded_line(&mut reader, max_line) {
            LineRead::Eof | LineRead::TimedOut => break,
            LineRead::TooLong { discarded } => {
                // Protocol-level error: the peer learns its request was
                // dropped and the connection stays usable.
                inner.counters.requests.fetch_add(1, Ordering::Relaxed);
                inner.counters.errors.fetch_add(1, Ordering::Relaxed);
                inner.counters.replies.fetch_add(1, Ordering::Relaxed);
                let message = format!(
                    "request line exceeds the {max_line}-byte limit \
                     ({discarded} excess bytes discarded)"
                );
                write_line(&writer, &protocol::err_reply(0, &message));
            }
            LineRead::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                inner.counters.requests.fetch_add(1, Ordering::Relaxed);
                let (id, parsed) = protocol::parse_line(&line);
                match parsed {
                    Err(message) => {
                        // Malformed requests are answered straight from the
                        // reader thread — they carry no work to batch.
                        inner.counters.errors.fetch_add(1, Ordering::Relaxed);
                        inner.counters.replies.fetch_add(1, Ordering::Relaxed);
                        write_line(&writer, &protocol::err_reply(id, &message));
                    }
                    Ok(request) => {
                        let pending = Pending { id, request, writer: Arc::clone(&writer) };
                        if let Ok(mut queue) = inner.queue.lock() {
                            queue.push_back(pending);
                        }
                        inner.arrivals.notify_all();
                    }
                }
            }
        }
    }
}

fn dispatch_loop(inner: &Arc<Inner>) {
    loop {
        // Sleep until the first arrival (or stop).
        {
            let Ok(mut queue) = inner.queue.lock() else { break };
            while queue.is_empty() && !inner.stop.load(Ordering::SeqCst) {
                match inner.arrivals.wait_timeout(queue, Duration::from_millis(50)) {
                    Ok((guard, _)) => queue = guard,
                    Err(_) => return,
                }
            }
            if queue.is_empty() {
                break; // stop requested with nothing left to serve
            }
        }
        // Admission window: let the rest of a concurrent burst arrive
        // so it can be coalesced into shared kernel tiles.
        if !inner.config.batch_window.is_zero() {
            thread::sleep(inner.config.batch_window);
        }
        let batch: Vec<Pending> = {
            let Ok(mut queue) = inner.queue.lock() else { break };
            let take = queue.len().min(inner.config.max_batch.max(1));
            queue.drain(..take).collect()
        };
        if batch.is_empty() {
            continue;
        }
        inner.counters.admissions.fetch_add(1, Ordering::Relaxed);
        let stopping = process_batch(inner, &batch);
        if stopping {
            inner.stop.store(true, Ordering::SeqCst);
            print_summary(inner);
            break;
        }
    }
}

/// One unit of pool work: a coalesced response group, or a singleton.
enum WorkItem {
    Group(batch::Group),
    Single(usize),
}

/// Evaluate and answer one admission batch. Returns whether a
/// `shutdown` request was part of it.
fn process_batch(inner: &Arc<Inner>, admitted: &[Pending]) -> bool {
    // Split response requests (batchable) from singleton work.
    let mut jobs: Vec<ResponseJob> = Vec::new();
    let mut job_owner: Vec<usize> = Vec::new(); // job index -> admitted index
    let mut items: Vec<WorkItem> = Vec::new();
    for (index, pending) in admitted.iter().enumerate() {
        match &pending.request {
            Request::Response { k, resolution, tol, .. } => {
                jobs.push(ResponseJob { k: *k, resolution: *resolution, tol: *tol });
                job_owner.push(index);
            }
            _ => items.push(WorkItem::Single(index)),
        }
    }
    let groups = batch::plan_groups(&jobs);
    inner.counters.response_groups.fetch_add(groups.len() as u64, Ordering::Relaxed);
    inner.counters.response_requests.fetch_add(jobs.len() as u64, Ordering::Relaxed);
    items.extend(groups.into_iter().map(WorkItem::Group));

    // Fan the whole batch out on the persistent pool. Each item returns
    // its own (admitted index, per-request outcome) pairs; a failed
    // request never fails the batch.
    let evaluated: Vec<Vec<(usize, std::result::Result<Value, String>)>> =
        match engine::par_map(items, |item| {
            Ok(match item {
                WorkItem::Single(index) => {
                    vec![(index, eval_single(inner, &admitted[index].request))]
                }
                WorkItem::Group(group) => eval_group(inner, &group, &job_owner, admitted),
            })
        }) {
            Ok(results) => results,
            Err(e) => {
                // The pool itself failed (never expected): answer every
                // request with the error so no client hangs.
                let message = format!("dispatch failed: {e}");
                (0..admitted.len()).map(|i| vec![(i, Err(message.clone()))]).collect()
            }
        };

    for (index, outcome) in evaluated.into_iter().flatten() {
        let pending = &admitted[index];
        let line = match outcome {
            Ok(result) => protocol::ok_reply(pending.id, result),
            Err(message) => {
                inner.counters.errors.fetch_add(1, Ordering::Relaxed);
                protocol::err_reply(pending.id, &message)
            }
        };
        inner.counters.replies.fetch_add(1, Ordering::Relaxed);
        write_line(&pending.writer, &line);
    }
    admitted.iter().any(|p| p.request == Request::Shutdown)
}

/// Evaluate one coalesced response group as a single kernel tile.
fn eval_group(
    inner: &Arc<Inner>,
    group: &batch::Group,
    job_owner: &[usize],
    admitted: &[Pending],
) -> Vec<(usize, std::result::Result<Value, String>)> {
    // Parse each member's policy spec; spec errors stay per-member.
    let mut owners: Vec<usize> = Vec::with_capacity(group.members.len());
    let mut policies: Vec<Box<dyn Congestion>> = Vec::with_capacity(group.members.len());
    let mut out: Vec<(usize, std::result::Result<Value, String>)> = Vec::new();
    for &job_index in &group.members {
        let owner = job_owner[job_index];
        let Request::Response { policy, .. } = &admitted[owner].request else {
            continue; // unreachable: groups are planned from Response jobs
        };
        match parse_policy(policy) {
            Ok(parsed) => {
                owners.push(owner);
                policies.push(parsed);
            }
            Err(e) => out.push((owner, Err(e.to_string()))),
        }
    }
    if policies.is_empty() {
        return out;
    }
    let refs: Vec<&dyn Congestion> = policies.iter().map(|p| p.as_ref()).collect();
    let qs = batch::group_qs(group.resolution);
    let curves = match group.tol_bits {
        None => batch::eval_exact_tile(&refs, group.k, group.resolution),
        Some(bits) => batch::eval_interp_tile(
            &refs,
            group.k,
            group.resolution,
            f64::from_bits(bits),
            &inner.caches.grids,
        ),
    };
    match curves {
        Ok(curves) => {
            for ((owner, policy), g) in owners.iter().zip(refs.iter()).zip(curves) {
                out.push((
                    *owner,
                    Ok(protocol::object(vec![
                        ("policy", Value::Str(policy.name())),
                        ("k", Value::UInt(group.k as u64)),
                        ("qs", protocol::float_array(&qs)),
                        ("g", protocol::float_array(&g)),
                    ])),
                ));
            }
        }
        Err(e) => {
            // A tile-level failure (bad k, bad tolerance) addresses every
            // member — their requests share the failing shape.
            let message = e.to_string();
            out.extend(owners.iter().map(|&owner| (owner, Err(message.clone()))));
        }
    }
    out
}

/// Evaluate one non-response request.
fn eval_single(inner: &Arc<Inner>, request: &Request) -> std::result::Result<Value, String> {
    match request {
        Request::Response { .. } => Err("response requests are batched".into()), // unreachable
        Request::Equilibrium { policy, profile, k } => {
            let policy = parse_policy(policy).map_err(|e| e.to_string())?;
            let f = parse_profile(profile).map_err(|e| e.to_string())?;
            let ifd =
                solve_ifd_allow_degenerate(policy.as_ref(), &f, *k).map_err(|e| e.to_string())?;
            let cover = coverage(&f, &ifd.strategy, *k).map_err(|e| e.to_string())?;
            let ctx = PayoffContext::new(policy.as_ref(), *k).map_err(|e| e.to_string())?;
            let payoff = ctx.symmetric_payoff(&f, &ifd.strategy).map_err(|e| e.to_string())?;
            Ok(protocol::object(vec![
                ("policy", Value::Str(policy.name())),
                ("k", Value::UInt(*k as u64)),
                ("coverage", Value::Float(cover)),
                ("payoff", Value::Float(payoff)),
                ("support", Value::UInt(ifd.support as u64)),
                ("residual", Value::Float(ifd.residual)),
                ("probs", protocol::float_array(ifd.strategy.probs())),
            ]))
        }
        Request::Ess { profile, k, mutants, seed } => {
            let f = parse_profile(profile).map_err(|e| e.to_string())?;
            let star = sigma_star(&f, *k).map_err(|e| e.to_string())?;
            let mut rng = ChaCha8Rng::seed_from_u64(*seed);
            let report = probe_ess_k(&Exclusive, &f, &star.strategy, *mutants, &mut rng, *k)
                .map_err(|e| e.to_string())?;
            Ok(protocol::object(vec![
                ("passed", Value::Bool(report.passed())),
                ("mutants", Value::UInt(report.mutants_tested as u64)),
                ("repelled", Value::UInt(report.repelled as u64)),
                ("worst_margin", Value::Float(report.worst_margin)),
            ]))
        }
        Request::Catalog { k, resolution } => {
            let catalog = standard_catalog();
            let response =
                catalog_response_matrix_cached(&catalog, *k, *resolution, &inner.caches.catalog)
                    .map_err(|e| e.to_string())?;
            Ok(protocol::object(vec![
                (
                    "names",
                    Value::Array(response.names.iter().map(|n| Value::Str(n.clone())).collect()),
                ),
                ("k", Value::UInt(*k as u64)),
                ("tolerance", protocol::float_array(&response.tolerance_score)),
            ]))
        }
        Request::Stats => Ok(metrics_value(inner)),
        Request::Shutdown => Ok(protocol::object(vec![("stopping", Value::Bool(true))])),
        Request::Scenario { policy, profile, k, epochs, events, explore } => {
            let policy = parse_policy(policy).map_err(|e| e.to_string())?;
            let f = parse_profile(profile).map_err(|e| e.to_string())?;
            let scenario = Scenario::new(f, *epochs, events.clone()).map_err(|e| e.to_string())?;
            let start = Strategy::uniform(scenario.sites()).map_err(|e| e.to_string())?;
            let run = run_scenario_replicator(
                policy.as_ref(),
                &scenario,
                &start,
                *k,
                *explore,
                ReplicatorConfig::default(),
            )
            .map_err(|e| e.to_string())?;
            let distances: Vec<f64> = run.records.iter().map(|r| r.ifd_distance).collect();
            Ok(protocol::object(vec![
                ("policy", Value::Str(policy.name())),
                ("k", Value::UInt(*k as u64)),
                ("epochs", Value::UInt(*epochs)),
                ("ifd_distance", protocol::float_array(&distances)),
                (
                    "steps",
                    Value::Array(run.records.iter().map(|r| Value::UInt(r.steps as u64)).collect()),
                ),
                ("converged", Value::Bool(run.records.iter().all(|r| r.converged))),
                ("worst_distance", Value::Float(run.worst_distance())),
                ("final_state", protocol::float_array(run.final_state.probs())),
            ]))
        }
    }
}

fn cache_stats_value(stats: CacheStats) -> Value {
    protocol::object(vec![
        ("hits", Value::UInt(stats.hits)),
        ("misses", Value::UInt(stats.misses)),
        ("evictions", Value::UInt(stats.evictions)),
        ("entries", Value::UInt(stats.entries as u64)),
        ("capacity", Value::UInt(stats.capacity as u64)),
    ])
}

fn metrics_value(inner: &Arc<Inner>) -> Value {
    let metrics = inner.counters.snapshot();
    protocol::object(vec![
        ("requests", Value::UInt(metrics.requests)),
        ("replies", Value::UInt(metrics.replies)),
        ("errors", Value::UInt(metrics.errors)),
        ("admissions", Value::UInt(metrics.admissions)),
        ("response_requests", Value::UInt(metrics.response_requests)),
        ("response_groups", Value::UInt(metrics.response_groups)),
        ("avg_occupancy", Value::Float(metrics.avg_occupancy())),
        (
            "caches",
            protocol::object(vec![
                ("grid", cache_stats_value(inner.caches.grids.stats())),
                ("catalog", cache_stats_value(inner.caches.catalog.stats())),
            ]),
        ),
    ])
}

fn print_summary(inner: &Arc<Inner>) {
    let metrics = inner.counters.snapshot();
    println!(
        "serve: {} requests ({} errors) in {} admission batches; \
         {} response requests over {} kernel tiles (avg occupancy {:.2})",
        metrics.requests,
        metrics.errors,
        metrics.admissions,
        metrics.response_requests,
        metrics.response_groups,
        metrics.avg_occupancy()
    );
    println!("serve: grid cache    {}", inner.caches.grids.stats());
    println!("serve: catalog cache {}", inner.caches.catalog.stats());
}
