//! Admission batching: coalesce concurrent response requests that share
//! `(k, tol, resolution)` into one policy-major
//! [`GBatch`](dispersal_core::kernel::GBatch) tile.
//!
//! This is the daemon's key scaling move (the worker/batch-capacity
//! pattern of holmes' `ParallelMonteCarloSearchServer`): N requests that
//! arrive inside one admission window and agree on the player count,
//! tolerance mode, and grid become *one* kernel dispatch — the Bernstein
//! basis column is computed once per grid point for the whole group
//! instead of once per request — and the results are demultiplexed back
//! to their requesters row by row.
//!
//! Determinism: exact groups run
//! [`GBatch::eval_many_with`](dispersal_core::kernel::GBatch::eval_many_with),
//! whose output is **bit-identical per row** to the per-policy
//! [`GTable`](dispersal_core::kernel::GTable) reference
//! path *regardless of batch composition* — so whether a request was
//! answered alone, grouped with 3 strangers, or grouped with 63, its
//! curve bits are the same, and equal to a direct reference-mode
//! `sweep::ResponseRequest` library call. Interpolated groups share warm
//! [`SharedGridCache`] grids, which likewise changes only who builds a
//! grid, never its values.

use dispersal_core::kernel::GridSpec;
use dispersal_core::policy::Congestion;
use dispersal_core::Result;
use dispersal_sim::sweep::{ResponseRequest, SharedGridCache};
use std::collections::BTreeMap;

/// One response request, reduced to its batching-relevant shape.
#[derive(Debug, Clone)]
pub struct ResponseJob {
    /// Player count.
    pub k: usize,
    /// Grid resolution (`resolution + 1` points over `[0, 1]`).
    pub resolution: usize,
    /// Interpolation tolerance; `None` = exact reference path.
    pub tol: Option<f64>,
}

/// One admission group: the indices (into the submitted job slice) of
/// every request sharing a `(k, resolution, tol)` evaluation shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Shared player count.
    pub k: usize,
    /// Shared grid resolution.
    pub resolution: usize,
    /// Shared tolerance bits (`None` = exact mode).
    pub tol_bits: Option<u64>,
    /// Indices of the grouped jobs, in submission order.
    pub members: Vec<usize>,
}

/// Partition `jobs` into admission groups. Grouping is deterministic:
/// keys are visited in `BTreeMap` order and members keep submission
/// order, so the same burst always produces the same dispatch plan.
pub fn plan_groups(jobs: &[ResponseJob]) -> Vec<Group> {
    let mut by_shape: BTreeMap<(usize, usize, Option<u64>), Vec<usize>> = BTreeMap::new();
    for (index, job) in jobs.iter().enumerate() {
        let key = (job.k, job.resolution, job.tol.map(f64::to_bits));
        by_shape.entry(key).or_default().push(index);
    }
    by_shape
        .into_iter()
        .map(|((k, resolution, tol_bits), members)| Group { k, resolution, tol_bits, members })
        .collect()
}

/// The shared uniform evaluation grid for a group.
pub fn group_qs(resolution: usize) -> Vec<f64> {
    (0..=resolution).map(|i| i as f64 / resolution as f64).collect()
}

/// Evaluate an **exact** group as one reference-mode tile through the
/// unified [`ResponseRequest`] API (`.reference()` forces the per-row
/// `GBatch::eval_many_with` path). Returns each policy's curve in input
/// order; every curve is bit-identical to a stand-alone
/// `GTable::eval_with` walk of the same points, whatever the group
/// composition.
pub fn eval_exact_tile(
    policies: &[&dyn Congestion],
    k: usize,
    resolution: usize,
) -> Result<Vec<Vec<f64>>> {
    let curves = ResponseRequest::policies(policies)
        .ks(&[k])
        .resolution(resolution)
        .reference()
        .evaluate()?;
    Ok(curves.into_iter().map(|curve| curve.g).collect())
}

/// Evaluate an **interpolated** group through the unified
/// [`ResponseRequest`] API against the shared grid cache: each policy's
/// `O(1)`-per-point grid is pulled from (or built into) `cache`, so a
/// warm daemon answers the whole group without a single refinement pass.
pub fn eval_interp_tile(
    policies: &[&dyn Congestion],
    k: usize,
    resolution: usize,
    tol: f64,
    cache: &SharedGridCache,
) -> Result<Vec<Vec<f64>>> {
    let curves = ResponseRequest::policies(policies)
        .ks(&[k])
        .resolution(resolution)
        .grid(GridSpec::Interpolated { tol })
        .cache(cache)
        .evaluate()?;
    Ok(curves.into_iter().map(|curve| curve.g).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dispersal_core::policy::{PowerLaw, Sharing, TwoLevel};

    #[test]
    fn grouping_is_deterministic_and_shape_keyed() {
        let jobs = vec![
            ResponseJob { k: 64, resolution: 128, tol: None },
            ResponseJob { k: 8, resolution: 128, tol: None },
            ResponseJob { k: 64, resolution: 128, tol: None },
            ResponseJob { k: 64, resolution: 128, tol: Some(1e-9) },
            ResponseJob { k: 64, resolution: 128, tol: None },
        ];
        let groups = plan_groups(&jobs);
        assert_eq!(groups.len(), 3);
        // BTreeMap order: k = 8 first; exact (None) sorts before Some.
        assert_eq!(groups[0].members, vec![1]);
        assert_eq!(
            (groups[1].k, groups[1].tol_bits, groups[1].members.clone()),
            (64, None, vec![0, 2, 4])
        );
        assert_eq!(groups[2].tol_bits, Some(1e-9f64.to_bits()));
        assert_eq!(plan_groups(&jobs), groups, "same burst, same plan");
    }

    #[test]
    fn exact_tile_is_bit_identical_per_row_regardless_of_company() {
        let policies: Vec<&dyn Congestion> =
            vec![&Sharing, &TwoLevel { c: -0.3 }, &PowerLaw { beta: 2.0 }];
        let grouped = eval_exact_tile(&policies, 16, 64).unwrap();
        for (r, c) in policies.iter().enumerate() {
            let alone = eval_exact_tile(&[*c], 16, 64).unwrap();
            for (a, b) in grouped[r].iter().zip(alone[0].iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {r} diverged under batching");
            }
        }
    }

    #[test]
    fn interp_tile_warms_and_reuses_the_shared_cache() {
        let cache = SharedGridCache::new();
        let policies: Vec<&dyn Congestion> = vec![&Sharing, &TwoLevel { c: -0.3 }];
        let first = eval_interp_tile(&policies, 8, 32, 1e-9, &cache).unwrap();
        assert_eq!(cache.builds(), 2);
        let second = eval_interp_tile(&policies, 8, 32, 1e-9, &cache).unwrap();
        assert_eq!(cache.builds(), 2, "warm daemon must not re-refine");
        assert_eq!(cache.hits(), 2);
        for (a, b) in first.iter().flatten().zip(second.iter().flatten()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
