//! Dispersal-as-a-service: a long-lived evaluation daemon with
//! cross-request admission batching over the shared kernel caches.
//!
//! The one-shot `dispersal` CLI pays the full startup bill — process
//! spawn, thread-pool construction, cold caches — on every invocation.
//! This crate keeps all of that warm in a daemon: a [`server::Server`]
//! owns the persistent work-stealing pool, a shared interpolation-grid
//! cache, and a shared catalog-tile cache for its whole lifetime, and
//! speaks a line-JSON protocol ([`protocol`]) over TCP or Unix sockets.
//!
//! Its distinguishing move is **admission batching** ([`batch`]):
//! requests are held for a short window (~2 ms) so a concurrent burst
//! coalesces; response requests that share `(k, resolution, tol)` are
//! evaluated as *one* policy-major `GBatch` kernel tile and the rows are
//! demultiplexed back to their requesters. Batching changes only who
//! computes what — every reply is bit-identical to the same request
//! served alone, and to a direct library call (the round-trip
//! integration test enforces this with `to_bits` equality).
//!
//! Start a daemon in-process (the `dispersal serve` subcommand does the
//! same):
//!
//! ```
//! use dispersal_serve::client::Client;
//! use dispersal_serve::server::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let reply = client
//!     .request(r#"{"id":1,"cmd":"response","policy":"sharing","k":8,"resolution":16}"#)
//!     .unwrap();
//! assert!(reply.as_object().is_some());
//! server.shutdown();
//! ```

pub mod batch;
pub mod client;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use protocol::Request;
pub use server::{Metrics, ServeCaches, Server, ServerConfig};
