//! A minimal blocking client for the line-JSON daemon.
//!
//! [`Client::connect`] dials the address a [`crate::server::Server`]
//! reports (`host:port` TCP, or `unix:<path>`); [`Client::call`] writes
//! one request line and blocks for the matching reply line. The client
//! is deliberately thin — one in-flight request per connection — because
//! the daemon's concurrency comes from *many connections* arriving
//! inside one admission window, which is exactly what the loadgen and
//! the round-trip test exercise.

use serde::Value;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;

enum Stream {
    Tcp {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    },
    #[cfg(unix)]
    Unix {
        reader: BufReader<UnixStream>,
        writer: UnixStream,
    },
}

/// One blocking connection to the daemon.
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Connect to `addr`: a TCP `host:port`, or `unix:<path>`.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = if let Some(path) = addr.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                let writer = UnixStream::connect(path)?;
                let reader = BufReader::new(writer.try_clone()?);
                Stream::Unix { reader, writer }
            }
            #[cfg(not(unix))]
            {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    format!("unix sockets unsupported on this platform: {path}"),
                ));
            }
        } else {
            let writer = TcpStream::connect(addr)?;
            // One-line requests must leave immediately, not sit in a
            // Nagle buffer waiting for the previous reply's ACK.
            writer.set_nodelay(true)?;
            let reader = BufReader::new(writer.try_clone()?);
            Stream::Tcp { reader, writer }
        };
        Ok(Client { stream })
    }

    /// Send one request line (newline appended) without waiting for the
    /// reply. Pipelining: several `send`s followed by as many [`recv`]s
    /// puts the whole burst into one admission window; replies carry the
    /// request `id`, and within one connection arrive in an order
    /// consistent with the daemon's deterministic dispatch plan.
    ///
    /// [`recv`]: Client::recv
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        let writer: &mut dyn Write = match &mut self.stream {
            Stream::Tcp { writer, .. } => writer,
            #[cfg(unix)]
            Stream::Unix { writer, .. } => writer,
        };
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()
    }

    /// Block for the next reply line.
    pub fn recv(&mut self) -> io::Result<String> {
        let mut reply = String::new();
        match &mut self.stream {
            Stream::Tcp { reader, .. } => reader.read_line(&mut reply)?,
            #[cfg(unix)]
            Stream::Unix { reader, .. } => reader.read_line(&mut reply)?,
        };
        if reply.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection without replying",
            ));
        }
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(reply)
    }

    /// Send one request line and block for the reply line. The daemon
    /// answers every addressed request — including malformed ones — so a
    /// clean connection always gets a line back.
    pub fn call(&mut self, line: &str) -> io::Result<String> {
        self.send(line)?;
        self.recv()
    }

    /// [`Client::call`], then parse the reply: `Ok(result)` for
    /// `{"ok":true}` replies, `Err(message)` for `{"ok":false}` ones.
    /// I/O and protocol violations surface as `Err` too, so callers can
    /// treat every failure uniformly.
    pub fn request(&mut self, line: &str) -> Result<Value, String> {
        let reply = self.call(line).map_err(|e| format!("transport error: {e}"))?;
        let value: Value =
            serde_json::from_str(&reply).map_err(|e| format!("bad reply JSON: {e}"))?;
        let entries = value.as_object().ok_or("reply is not a JSON object")?.to_vec();
        let lookup = |name: &str| {
            entries.iter().find(|(key, _)| key == name).map(|(_, value)| value.clone())
        };
        match lookup("ok") {
            Some(Value::Bool(true)) => {
                lookup("result").ok_or_else(|| "reply missing result".into())
            }
            Some(Value::Bool(false)) => match lookup("error") {
                Some(Value::Str(message)) => Err(message),
                _ => Err("unspecified daemon error".into()),
            },
            _ => Err("reply missing \"ok\" field".into()),
        }
    }
}
