//! Line-JSON wire protocol for the dispersal daemon.
//!
//! One request per line, one reply per line, over any byte stream (TCP
//! or Unix socket). Requests are JSON objects with two required fields —
//! `"id"` (echoed verbatim on the reply, so clients can pipeline) and
//! `"cmd"` — plus per-command parameters:
//!
//! ```text
//! {"id":1,"cmd":"response","policy":"sharing","k":64}            exact curve
//! {"id":2,"cmd":"response","policy":"power:2.0","k":64,
//!         "resolution":256,"tol":1e-9}                           interpolated
//! {"id":3,"cmd":"equilibrium","policy":"sharing",
//!         "profile":"zipf:20:1.0","k":8}                         IFD solve
//! {"id":4,"cmd":"ess","profile":"zipf:20:1.0","k":8,
//!         "mutants":50,"seed":42}                                ESS probe
//! {"id":5,"cmd":"catalog","k":8,"resolution":256}                catalog scan
//! {"id":6,"cmd":"stats"}                                         metrics
//! {"id":7,"cmd":"shutdown"}                                      stop daemon
//! {"id":8,"cmd":"scenario","policy":"sharing",
//!         "profile":"zipf:5:1.0","k":3,"epochs":8,"explore":1e-4,
//!         "events":[{"type":"daily","amplitude":0.25,"period":8},
//!                   {"type":"drift","site":1,"rate":-0.05},
//!                   {"type":"shock","epoch":4,"site":2,"factor":2.0}]}
//! ```
//!
//! Replies are `{"id":N,"ok":true,"result":{…}}` on success and
//! `{"id":N,"ok":false,"error":"…"}` on failure (per request — a bad
//! request never takes down a batch, a connection, or the daemon).
//! Policy and profile specs are the `dispersal` CLI spec strings
//! (`dispersal_mech::catalog::parse_policy` / `parse_profile`).
//!
//! All floats round-trip bit-exactly through the vendored codec, which
//! is what lets the round-trip integration test compare daemon replies
//! against direct library calls with `to_bits` equality.

use dispersal_sim::scenario::TrafficEvent;
use serde::Value;

/// Default evaluation-grid resolution when a request omits
/// `"resolution"` (matches the `dispersal responses` CLI).
pub const DEFAULT_RESOLUTION: usize = 256;

/// Default mutant count for `"ess"` requests.
pub const DEFAULT_MUTANTS: usize = 50;

/// Default RNG seed for `"ess"` requests (matches the CLI).
pub const DEFAULT_SEED: u64 = 42;

/// A parsed request body (everything except the echoed `id`).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// One congestion-response curve. With `tol` the daemon serves it
    /// from the shared interpolation-grid cache (`O(1)` per point,
    /// ≤ `tol × scale` from exact); without, the exact reference path
    /// (reference-mode `sweep::ResponseRequest`, bit-identical to the
    /// scalar `PayoffContext::g`).
    Response {
        /// Policy spec string (e.g. `"sharing"`, `"two-level:-0.25"`).
        policy: String,
        /// Player count.
        k: usize,
        /// Grid resolution (the curve has `resolution + 1` points).
        resolution: usize,
        /// Interpolation tolerance; `None` selects the exact path.
        tol: Option<f64>,
    },
    /// IFD equilibrium of a policy on a profile.
    Equilibrium {
        /// Policy spec string.
        policy: String,
        /// Profile spec string (e.g. `"zipf:20:1.0"`).
        profile: String,
        /// Player count.
        k: usize,
    },
    /// ESS probe of `sigma*` under the exclusive policy (the CLI's
    /// `dispersal ess` semantics).
    Ess {
        /// Profile spec string.
        profile: String,
        /// Player count.
        k: usize,
        /// Number of random mutants to probe.
        mutants: usize,
        /// RNG seed for the mutant stream.
        seed: u64,
    },
    /// Score the standard mechanism catalog (warm `ResponseCache` tile).
    Catalog {
        /// Player count.
        k: usize,
        /// Grid resolution.
        resolution: usize,
    },
    /// Metrics snapshot: request/batch counters plus cache stats.
    Stats,
    /// Graceful stop; the daemon replies, then prints its summary.
    Shutdown,
    /// Time-varying traffic tracking: replicator dynamics follow a
    /// scenario's moving equilibrium
    /// ([`dispersal_sim::scenario::run_scenario_replicator`]).
    Scenario {
        /// Policy spec string.
        policy: String,
        /// Profile spec string (the scenario's base values).
        profile: String,
        /// Player count.
        k: usize,
        /// Number of epochs in the schedule.
        epochs: u64,
        /// Traffic events perturbing the base values (may be empty).
        events: Vec<TrafficEvent>,
        /// Exploration floor mixed in at epoch boundaries (default 0).
        explore: f64,
    },
}

/// Read a `u64` out of a JSON number value.
fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(u) => Some(*u),
        Value::Int(i) if *i >= 0 => Some(*i as u64),
        _ => None,
    }
}

/// Read an `f64` out of a JSON number value.
fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        _ => None,
    }
}

fn field<'v>(entries: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    entries.iter().find(|(key, _)| key == name).map(|(_, value)| value)
}

fn require_str(entries: &[(String, Value)], name: &str) -> Result<String, String> {
    field(entries, name)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field \"{name}\""))
}

fn require_usize(entries: &[(String, Value)], name: &str) -> Result<usize, String> {
    field(entries, name)
        .and_then(as_u64)
        .map(|u| u as usize)
        .ok_or_else(|| format!("missing or non-integer field \"{name}\""))
}

fn optional_usize(
    entries: &[(String, Value)],
    name: &str,
    default: usize,
) -> Result<usize, String> {
    match field(entries, name) {
        None => Ok(default),
        Some(v) => {
            as_u64(v).map(|u| u as usize).ok_or_else(|| format!("non-integer field \"{name}\""))
        }
    }
}

fn require_u64(entries: &[(String, Value)], name: &str) -> Result<u64, String> {
    field(entries, name)
        .and_then(as_u64)
        .ok_or_else(|| format!("missing or non-integer field \"{name}\""))
}

fn require_f64(entries: &[(String, Value)], name: &str) -> Result<f64, String> {
    field(entries, name)
        .and_then(as_f64)
        .ok_or_else(|| format!("missing or non-number field \"{name}\""))
}

/// Parse one `"events"` entry: an object tagged by `"type"` —
/// `daily {amplitude, period}`, `drift {site, rate}`, or
/// `shock {epoch, site, factor}`. Range validation (amplitude bounds,
/// positive factors, site indices) is the scenario engine's job; the
/// protocol only checks shape.
fn parse_event(value: &Value) -> Result<TrafficEvent, String> {
    let Some(entries) = value.as_object() else {
        return Err("each event must be a JSON object".into());
    };
    match require_str(entries, "type")?.as_str() {
        "daily" => Ok(TrafficEvent::Daily {
            amplitude: require_f64(entries, "amplitude")?,
            period: require_u64(entries, "period")?,
        }),
        "drift" => Ok(TrafficEvent::Drift {
            site: require_usize(entries, "site")?,
            rate: require_f64(entries, "rate")?,
        }),
        "shock" => Ok(TrafficEvent::Shock {
            epoch: require_u64(entries, "epoch")?,
            site: require_usize(entries, "site")?,
            factor: require_f64(entries, "factor")?,
        }),
        other => Err(format!("unknown event type \"{other}\"")),
    }
}

/// Parse one request line. Returns the request `id` (0 when the line is
/// malformed beyond recovery) plus either the parsed body or the error
/// message the reply should carry — so a bad line still yields an
/// addressed error reply instead of a dropped connection.
pub fn parse_line(line: &str) -> (u64, Result<Request, String>) {
    let value: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => return (0, Err(format!("bad JSON: {e}"))),
    };
    let Some(entries) = value.as_object() else {
        return (0, Err("request must be a JSON object".into()));
    };
    let id = field(entries, "id").and_then(as_u64).unwrap_or(0);
    let cmd = match require_str(entries, "cmd") {
        Ok(c) => c,
        Err(e) => return (id, Err(e)),
    };
    let body = match cmd.as_str() {
        "response" => (|| {
            Ok(Request::Response {
                policy: require_str(entries, "policy")?,
                k: require_usize(entries, "k")?,
                resolution: optional_usize(entries, "resolution", DEFAULT_RESOLUTION)?,
                tol: match field(entries, "tol") {
                    None => None,
                    Some(v) => Some(as_f64(v).ok_or("non-number field \"tol\"".to_string())?),
                },
            })
        })(),
        "equilibrium" => (|| {
            Ok(Request::Equilibrium {
                policy: require_str(entries, "policy")?,
                profile: require_str(entries, "profile")?,
                k: require_usize(entries, "k")?,
            })
        })(),
        "ess" => (|| {
            Ok(Request::Ess {
                profile: require_str(entries, "profile")?,
                k: require_usize(entries, "k")?,
                mutants: optional_usize(entries, "mutants", DEFAULT_MUTANTS)?,
                seed: field(entries, "seed")
                    .map(|v| as_u64(v).ok_or("non-integer field \"seed\"".to_string()))
                    .transpose()?
                    .unwrap_or(DEFAULT_SEED),
            })
        })(),
        "catalog" => (|| {
            Ok(Request::Catalog {
                k: require_usize(entries, "k")?,
                resolution: optional_usize(entries, "resolution", DEFAULT_RESOLUTION)?,
            })
        })(),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "scenario" => (|| {
            let events = match field(entries, "events") {
                None => Vec::new(),
                Some(Value::Array(items)) => {
                    items.iter().map(parse_event).collect::<Result<Vec<_>, _>>()?
                }
                Some(_) => return Err("field \"events\" must be an array".to_string()),
            };
            Ok(Request::Scenario {
                policy: require_str(entries, "policy")?,
                profile: require_str(entries, "profile")?,
                k: require_usize(entries, "k")?,
                epochs: require_u64(entries, "epochs")?,
                events,
                explore: match field(entries, "explore") {
                    None => 0.0,
                    Some(v) => as_f64(v).ok_or("non-number field \"explore\"".to_string())?,
                },
            })
        })(),
        other => Err(format!("unknown cmd \"{other}\"")),
    };
    (id, body)
}

/// Build an object `Value` from field pairs (order-preserving).
pub fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(name, value)| (name.to_string(), value)).collect())
}

/// A float array as a JSON value.
pub fn float_array(values: &[f64]) -> Value {
    Value::Array(values.iter().map(|&v| Value::Float(v)).collect())
}

/// Render the success reply line for `id` (no trailing newline).
pub fn ok_reply(id: u64, result: Value) -> String {
    render(object(vec![("id", Value::UInt(id)), ("ok", Value::Bool(true)), ("result", result)]))
}

/// Render the error reply line for `id` (no trailing newline).
pub fn err_reply(id: u64, message: &str) -> String {
    render(object(vec![
        ("id", Value::UInt(id)),
        ("ok", Value::Bool(false)),
        ("error", Value::Str(message.to_string())),
    ]))
}

fn render(value: Value) -> String {
    // The only way the codec can fail is a non-finite float; surface it
    // as an addressed error line rather than a protocol violation.
    serde_json::to_string(&value).unwrap_or_else(|e| {
        format!("{{\"id\":0,\"ok\":false,\"error\":\"unencodable reply: {e}\"}}")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        let (id, req) = parse_line(r#"{"id":1,"cmd":"response","policy":"sharing","k":64}"#);
        assert_eq!(id, 1);
        assert_eq!(
            req.unwrap(),
            Request::Response {
                policy: "sharing".into(),
                k: 64,
                resolution: DEFAULT_RESOLUTION,
                tol: None
            }
        );
        let (_, req) = parse_line(
            r#"{"id":2,"cmd":"response","policy":"power:2.0","k":8,"resolution":32,"tol":1e-9}"#,
        );
        assert_eq!(
            req.unwrap(),
            Request::Response { policy: "power:2.0".into(), k: 8, resolution: 32, tol: Some(1e-9) }
        );
        let (_, req) = parse_line(
            r#"{"id":3,"cmd":"equilibrium","policy":"sharing","profile":"zipf:5:1.0","k":4}"#,
        );
        assert_eq!(
            req.unwrap(),
            Request::Equilibrium { policy: "sharing".into(), profile: "zipf:5:1.0".into(), k: 4 }
        );
        let (_, req) = parse_line(r#"{"id":4,"cmd":"ess","profile":"zipf:5:1.0","k":4}"#);
        assert_eq!(
            req.unwrap(),
            Request::Ess {
                profile: "zipf:5:1.0".into(),
                k: 4,
                mutants: DEFAULT_MUTANTS,
                seed: DEFAULT_SEED
            }
        );
        let (_, req) = parse_line(r#"{"id":5,"cmd":"catalog","k":6}"#);
        assert_eq!(req.unwrap(), Request::Catalog { k: 6, resolution: DEFAULT_RESOLUTION });
        assert_eq!(parse_line(r#"{"id":6,"cmd":"stats"}"#).1.unwrap(), Request::Stats);
        assert_eq!(parse_line(r#"{"id":7,"cmd":"shutdown"}"#).1.unwrap(), Request::Shutdown);
        let (_, req) = parse_line(
            r#"{"id":8,"cmd":"scenario","policy":"sharing","profile":"zipf:5:1.0","k":3,
                "epochs":8,"explore":1e-4,
                "events":[{"type":"daily","amplitude":0.25,"period":8},
                          {"type":"drift","site":1,"rate":-0.05},
                          {"type":"shock","epoch":4,"site":2,"factor":2.0}]}"#,
        );
        assert_eq!(
            req.unwrap(),
            Request::Scenario {
                policy: "sharing".into(),
                profile: "zipf:5:1.0".into(),
                k: 3,
                epochs: 8,
                events: vec![
                    TrafficEvent::Daily { amplitude: 0.25, period: 8 },
                    TrafficEvent::Drift { site: 1, rate: -0.05 },
                    TrafficEvent::Shock { epoch: 4, site: 2, factor: 2.0 },
                ],
                explore: 1e-4,
            }
        );
        // Events and explore are optional; epochs is not.
        let (_, req) = parse_line(
            r#"{"id":9,"cmd":"scenario","policy":"sharing","profile":"zipf:5:1.0","k":3,"epochs":2}"#,
        );
        assert_eq!(
            req.unwrap(),
            Request::Scenario {
                policy: "sharing".into(),
                profile: "zipf:5:1.0".into(),
                k: 3,
                epochs: 2,
                events: vec![],
                explore: 0.0,
            }
        );
        let (_, req) = parse_line(
            r#"{"id":10,"cmd":"scenario","policy":"sharing","profile":"zipf:5:1.0","k":3}"#,
        );
        assert!(req.unwrap_err().contains("epochs"));
        let (_, req) = parse_line(
            r#"{"id":11,"cmd":"scenario","policy":"s","profile":"p","k":3,"epochs":2,
                "events":[{"type":"quake","site":0}]}"#,
        );
        assert!(req.unwrap_err().contains("unknown event type"));
    }

    #[test]
    fn malformed_lines_keep_their_id_when_possible() {
        let (id, req) = parse_line(r#"{"id":9,"cmd":"warp"}"#);
        assert_eq!(id, 9);
        assert!(req.unwrap_err().contains("unknown cmd"));
        let (id, req) = parse_line(r#"{"id":10,"cmd":"response","k":4}"#);
        assert_eq!(id, 10);
        assert!(req.unwrap_err().contains("policy"));
        let (id, req) = parse_line("not json at all");
        assert_eq!(id, 0);
        assert!(req.is_err());
        let (_, req) = parse_line(r#"{"cmd":"response","policy":"sharing","k":-3}"#);
        assert!(req.unwrap_err().contains('k'));
    }

    #[test]
    fn replies_round_trip_floats_bit_exactly() {
        let tricky = [0.1 + 0.2, f64::MIN_POSITIVE, 1.0 / 3.0, -0.0];
        let line = ok_reply(3, object(vec![("g", float_array(&tricky))]));
        let value: Value = serde_json::from_str(&line).unwrap();
        let entries = value.as_object().unwrap();
        assert_eq!(field(entries, "ok"), Some(&Value::Bool(true)));
        let result = field(entries, "result").unwrap().as_object().unwrap();
        let g = field(result, "g").unwrap().as_array().unwrap();
        for (orig, got) in tricky.iter().zip(g.iter()) {
            let Value::Float(f) = got else { panic!("not a float: {got:?}") };
            assert_eq!(orig.to_bits(), f.to_bits());
        }
        let err = err_reply(4, "boom");
        assert!(err.contains("\"ok\":false") && err.contains("boom"));
    }
}
