//! CLI for the project lint pass: `cargo run -p analysis -- check`.
//!
//! Subcommands:
//!
//! * `check [--json] [--root DIR]` — run every lint over the workspace.
//!   Text findings (`file:line: [lint] excerpt`) go to stdout; `--json`
//!   switches stdout to the machine-readable report. Exit code 1 on any
//!   non-allowlisted violation or stale allowlist entry, 2 on usage/IO
//!   errors.
//! * `lints` — print the lint catalog.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: analysis <check [--json] [--root DIR] | lints>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lints") => {
            for lint in analysis::Lint::all() {
                println!("{:<26} {}", lint.name(), lint.describe());
            }
            ExitCode::SUCCESS
        }
        Some("check") => {
            let mut json = false;
            // Default root: the workspace this binary was built from.
            let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--json" => {
                        json = true;
                        i += 1;
                    }
                    "--root" => {
                        let Some(dir) = args.get(i + 1) else {
                            eprintln!("analysis: --root needs a value");
                            return usage();
                        };
                        root = PathBuf::from(dir);
                        i += 2;
                    }
                    other => {
                        eprintln!("analysis: unknown flag {other}");
                        return usage();
                    }
                }
            }
            match analysis::run_check(&root) {
                Ok(report) => {
                    if json {
                        print!("{}", report.to_json());
                    } else {
                        print!("{}", report.render_text());
                    }
                    if report.failing() {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    eprintln!("analysis: error scanning {}: {e}", root.display());
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}
