//! Project-specific static analysis for the selfish-explorers workspace.
//!
//! The whole performance trajectory of this repo rests on one promise:
//! **bit-identical outputs at any thread count**. That promise is easy to
//! break silently — an `unwrap()` that panics only under a rare shard
//! error, a `HashMap` iterated in an output path (iteration order is
//! randomized per process), a naive `f64` sum whose rounding depends on
//! accumulation order. This crate is a token-level scanner (no rustc
//! plugin, no syn — it walks the workspace source the same way
//! `check_bench_json` walks the `BENCH_*.json` trajectories) enforcing
//! four project lints:
//!
//! * [`Lint::NoUnwrapInLib`] — forbid `.unwrap()` / `.expect(` /
//!   `panic!` / `unreachable!` / `todo!` / `unimplemented!` in non-test
//!   library code of `crates/core`, `crates/sim`, and `crates/mech`.
//!   Library entry points return typed `dispersal_core::Error` values;
//!   panicking belongs to tests and binaries. A checked-in allowlist
//!   (`crates/analysis/allowlist.txt`) exists to burn down — it ships
//!   empty.
//! * [`Lint::DeterministicIteration`] — forbid iterating a `HashMap` /
//!   `HashSet` (`.iter()`, `.keys()`, `.values()`, `.drain()`,
//!   `for _ in &map`, …) in non-test code. Hash iteration order is
//!   process-randomized, so anything it feeds (manifests, error strings,
//!   CSV rows, merge order) silently loses determinism. Keyed lookups
//!   (`get` / `insert` / `contains_key` / `entry` / `len`) are fine —
//!   that is how `GridCache` and `PbCache` stay deterministic — and
//!   `BTreeMap` / `BTreeSet` iterate in sorted order and are never
//!   flagged.
//! * [`Lint::FloatReduction`] — forbid naive `.sum()` reductions and
//!   `fold(0.0, …)` accumulators inside the numerics hot files
//!   (`kernel.rs`, `numerics.rs`, `simd.rs`) outside the approved
//!   compensated helpers (`kahan_sum`). Naive summation makes results
//!   depend on term order, which is exactly what batched/parallel
//!   evaluation reshuffles.
//! * [`Lint::BenchGuardCoverage`] — every `BENCH_*.json` trajectory at
//!   the repo root must have a bench target with a `--quick` guard mode
//!   (`guard::quick_mode`) and a CI invocation of it, so no recorded
//!   trajectory can regress unguarded. Trajectories with named per-lane
//!   floors ([`REQUIRED_GUARD_LABELS`]: the engine pool-reuse floor, the
//!   batch AVX2-vs-scalar floor, the serve admission-batching floor, the
//!   search batched-expansion floor, the kernel fused-path and
//!   nonuniform-grid-build floors)
//!   must keep those labels in their guard — deleting a floor is a lint
//!   failure, not a silent coverage loss.
//!
//! The scanner strips comments, strings, and character literals first
//! (so doc-prose `panic!` or a `"HashMap"` string literal never fire) and
//! masks `#[cfg(test)]` items. [`run_check`] drives the filesystem walk;
//! every lint body is a pure function over in-memory text so the unit
//! tests can seed violations without touching disk. Output is
//! `file:line` text plus machine-readable JSON ([`Report::to_json`]);
//! the process exits non-zero on any non-allowlisted violation **or any
//! stale allowlist entry** (burn-down entries must be deleted once
//! clean).

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The lint catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lint {
    /// Panicking calls in library code that should return typed errors.
    NoUnwrapInLib,
    /// Iteration over randomized-order hash collections.
    DeterministicIteration,
    /// Order-sensitive naive float reductions in the numerics hot files.
    FloatReduction,
    /// A recorded bench trajectory without a wired `--quick` CI guard.
    BenchGuardCoverage,
}

impl Lint {
    /// Stable machine-readable lint name (used in reports and the
    /// allowlist file).
    pub fn name(self) -> &'static str {
        match self {
            Lint::NoUnwrapInLib => "no-unwrap-in-lib",
            Lint::DeterministicIteration => "deterministic-iteration",
            Lint::FloatReduction => "float-reduction",
            Lint::BenchGuardCoverage => "bench-guard-coverage",
        }
    }

    /// One-line description for `analysis lints`.
    pub fn describe(self) -> &'static str {
        match self {
            Lint::NoUnwrapInLib => {
                "unwrap()/expect()/panic! in core/sim/mech non-test library code"
            }
            Lint::DeterministicIteration => {
                "HashMap/HashSet iteration in non-test code (order is process-randomized)"
            }
            Lint::FloatReduction => {
                "naive .sum()/fold(0.0, ..) in kernel.rs/numerics.rs outside kahan_sum"
            }
            Lint::BenchGuardCoverage => {
                "BENCH_*.json trajectory without a --quick bench guard wired into CI"
            }
        }
    }

    /// Every lint, in report order.
    pub fn all() -> [Lint; 4] {
        [
            Lint::NoUnwrapInLib,
            Lint::DeterministicIteration,
            Lint::FloatReduction,
            Lint::BenchGuardCoverage,
        ]
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: a lint fired at `file:line`.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which lint fired.
    pub lint: Lint,
    /// Workspace-relative path (always `/`-separated).
    pub file: String,
    /// 1-based line number (0 for whole-file findings like missing bench
    /// guards).
    pub line: usize,
    /// The offending source line (trimmed), or a synthesized message.
    pub excerpt: String,
    /// Whether an allowlist entry covers this finding (reported, but not
    /// failing).
    pub allowed: bool,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.allowed { " (allowlisted)" } else { "" };
        write!(f, "{}:{}: [{}]{} {}", self.file, self.line, self.lint, tag, self.excerpt)
    }
}

// ---------------------------------------------------------------------------
// Token-level source preparation
// ---------------------------------------------------------------------------

/// Blank out comments (line, nested block, doc), string literals (plain,
/// raw, byte, C), and character literals, preserving byte offsets and
/// newlines so line numbers survive. Lifetimes (`'a`, `'static`) are kept
/// as-is; `'x'` / `b'x'` literals are blanked.
pub fn strip_source(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    let n = bytes.len();
    // Blank `count` bytes starting at `i`, preserving newlines.
    fn blank(out: &mut Vec<u8>, bytes: &[u8], from: usize, to: usize) {
        for &b in &bytes[from..to] {
            out.push(if b == b'\n' { b'\n' } else { b' ' });
        }
    }
    while i < n {
        let b = bytes[i];
        // Line comment (also covers /// and //! doc comments).
        if b == b'/' && i + 1 < n && bytes[i + 1] == b'/' {
            let end = bytes[i..].iter().position(|&c| c == b'\n').map_or(n, |p| i + p);
            blank(&mut out, bytes, i, end);
            i = end;
            continue;
        }
        // Block comment, nested.
        if b == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if bytes[j] == b'/' && j + 1 < n && bytes[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == b'*' && j + 1 < n && bytes[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            blank(&mut out, bytes, i, j);
            i = j;
            continue;
        }
        // Raw strings: r"..."  r#"..."#  (and br / cr prefixes).
        let raw_start = if b == b'r' {
            Some(i + 1)
        } else if (b == b'b' || b == b'c') && i + 1 < n && bytes[i + 1] == b'r' {
            Some(i + 2)
        } else {
            None
        };
        if let Some(mut j) = raw_start {
            // Only a raw string if hashes-then-quote follows.
            let mut hashes = 0usize;
            while j < n && bytes[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < n && bytes[j] == b'"' {
                j += 1;
                // Scan for `"` followed by `hashes` hashes.
                while j < n {
                    if bytes[j] == b'"'
                        && bytes[j + 1..].iter().take(hashes).filter(|&&c| c == b'#').count()
                            == hashes
                    {
                        j += 1 + hashes;
                        break;
                    }
                    j += 1;
                }
                blank(&mut out, bytes, i, j.min(n));
                i = j.min(n);
                continue;
            }
        }
        // Plain / byte strings with escapes.
        if b == b'"' || (b == b'b' && i + 1 < n && bytes[i + 1] == b'"') {
            let mut j = if b == b'"' { i + 1 } else { i + 2 };
            while j < n {
                if bytes[j] == b'\\' {
                    j += 2;
                } else if bytes[j] == b'"' {
                    j += 1;
                    break;
                } else {
                    j += 1;
                }
            }
            blank(&mut out, bytes, i, j.min(n));
            i = j.min(n);
            continue;
        }
        // Char literal vs lifetime.
        if b == b'\'' || (b == b'b' && i + 1 < n && bytes[i + 1] == b'\'') {
            let q = if b == b'\'' { i } else { i + 1 };
            let is_char = if q + 1 >= n {
                false
            } else if bytes[q + 1] == b'\\' {
                true
            } else {
                // `'a` with no closing quote two ahead is a lifetime.
                q + 2 < n && bytes[q + 2] == b'\''
            };
            if is_char {
                let mut j = q + 1;
                while j < n {
                    if bytes[j] == b'\\' {
                        j += 2;
                    } else if bytes[j] == b'\'' {
                        j += 1;
                        break;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, bytes, i, j.min(n));
                i = j.min(n);
                continue;
            }
        }
        out.push(b);
        i += 1;
    }
    // The scanner only ever blanks whole ASCII-delimited regions, so the
    // result is valid UTF-8 whenever the input was.
    String::from_utf8(out).unwrap_or_default()
}

/// Byte spans of `#[cfg(test)]`-gated items (typically `mod tests { … }`)
/// in **stripped** source: from the attribute to the matching close brace
/// (or the terminating `;` for brace-less items).
pub fn test_spans(stripped: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let bytes = stripped.as_bytes();
    for pat in ["#[cfg(test)]", "#[cfg(all(test"] {
        let mut from = 0;
        while let Some(rel) = stripped[from..].find(pat) {
            let start = from + rel;
            // Find the end of this attribute ( `]` matching its `[` ).
            let mut j = start + 1; // at '['
            let mut depth = 0i32;
            while j < bytes.len() {
                match bytes[j] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            // Skip whitespace and any further attributes, then span the
            // item body: first `{ … }` at depth 0, or a `;` before it.
            let mut k = j;
            let mut end = bytes.len();
            let mut brace = 0i32;
            while k < bytes.len() {
                match bytes[k] {
                    b'#' if brace == 0 && k + 1 < bytes.len() && bytes[k + 1] == b'[' => {
                        // Nested attribute: skip to its matching ']'.
                        let mut d = 0i32;
                        while k < bytes.len() {
                            match bytes[k] {
                                b'[' => d += 1,
                                b']' => {
                                    d -= 1;
                                    if d == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                    }
                    b';' if brace == 0 => {
                        end = k + 1;
                        break;
                    }
                    b'{' => brace += 1,
                    b'}' => {
                        brace -= 1;
                        if brace == 0 {
                            end = k + 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            spans.push((start, end));
            from = end.max(start + 1);
        }
    }
    spans.sort_unstable();
    spans
}

fn in_spans(spans: &[(usize, usize)], offset: usize) -> bool {
    spans.iter().any(|&(a, b)| (a..b).contains(&offset))
}

fn line_of(src: &str, offset: usize) -> usize {
    src.as_bytes()[..offset.min(src.len())].iter().filter(|&&b| b == b'\n').count() + 1
}

fn excerpt_at(original: &str, offset: usize) -> String {
    let line = line_of(original, offset);
    let text = original.lines().nth(line - 1).unwrap_or("").trim();
    let mut s = text.to_string();
    if s.len() > 120 {
        s.truncate(117);
        s.push_str("...");
    }
    s
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// All match offsets of `pat` in `hay`, with a word-boundary check on the
/// left when the pattern itself starts with an identifier byte (so
/// `panic!` does not match inside `foo_panic!`, but `.unwrap()` — whose
/// preceding byte is legitimately the receiver — always matches).
fn boundary_matches(hay: &str, pat: &str) -> Vec<usize> {
    let needs_boundary = pat.bytes().next().is_some_and(is_ident_byte);
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = hay[from..].find(pat) {
        let at = from + rel;
        if !needs_boundary || at == 0 || !is_ident_byte(hay.as_bytes()[at - 1]) {
            out.push(at);
        }
        from = at + 1;
    }
    out
}

// ---------------------------------------------------------------------------
// Lint: no-unwrap-in-lib
// ---------------------------------------------------------------------------

/// Panicking constructs forbidden in library code.
const PANIC_PATTERNS: [&str; 6] =
    [".unwrap()", ".expect(", "panic!", "unreachable!", "todo!", "unimplemented!"];

/// Scan one library file for panicking constructs outside `#[cfg(test)]`
/// items. `file` is the workspace-relative path used in reports.
pub fn lint_no_unwrap(file: &str, src: &str) -> Vec<Violation> {
    let stripped = strip_source(src);
    let tests = test_spans(&stripped);
    let mut out = Vec::new();
    for pat in PANIC_PATTERNS {
        for at in boundary_matches(&stripped, pat) {
            if in_spans(&tests, at) {
                continue;
            }
            out.push(Violation {
                lint: Lint::NoUnwrapInLib,
                file: file.to_string(),
                line: line_of(&stripped, at),
                excerpt: excerpt_at(src, at),
                allowed: false,
            });
        }
    }
    out.sort_by_key(|v| v.line);
    out
}

// ---------------------------------------------------------------------------
// Lint: deterministic-iteration
// ---------------------------------------------------------------------------

/// Iteration methods that expose hash ordering.
const HASH_ITER_METHODS: [&str; 8] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
    ".retain(",
];

/// Identifiers bound to `HashMap` / `HashSet` in `stripped` source:
/// `let (mut) name = HashMap::…`, `name: HashMap<…>` fields and
/// parameters (including `std::collections::`-qualified paths). Purely
/// heuristic and line-oriented — good enough for this workspace's idiom,
/// and unit-tested against the shapes that actually occur.
fn hash_bound_idents(stripped: &str) -> Vec<String> {
    let mut idents: Vec<String> = Vec::new();
    for line in stripped.lines() {
        if !(line.contains("HashMap") || line.contains("HashSet")) {
            continue;
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
            continue;
        }
        let mut found: Vec<String> = Vec::new();
        if let Some(pos) = trimmed.find("let ") {
            // `let mut name = HashMap::new()` / `let name: HashMap<…>`
            let rest = trimmed[pos + 4..].trim_start();
            let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
            let len = rest.bytes().take_while(|&b| is_ident_byte(b)).count();
            if len > 0 {
                found.push(rest[..len].to_string());
            }
        } else {
            // `name: HashMap<…>` (struct field / fn parameter). Scope the
            // type check to each comma-separated segment so an unrelated
            // parameter on a line whose *return type* mentions a hash
            // collection is not captured.
            for segment in trimmed.split(',') {
                if !(segment.contains("HashMap") || segment.contains("HashSet")) {
                    continue;
                }
                // The declaring `name:` colon, not a `::` path separator.
                let Some(colon) = segment
                    .char_indices()
                    .find(|&(i, c)| {
                        c == ':'
                            && segment.as_bytes().get(i + 1) != Some(&b':')
                            && (i == 0 || segment.as_bytes()[i - 1] != b':')
                    })
                    .map(|(i, _)| i)
                else {
                    continue;
                };
                if !(segment[colon..].contains("HashMap") || segment[colon..].contains("HashSet")) {
                    continue;
                }
                let head = segment[..colon].trim_end();
                let start = head.bytes().rposition(|b| !is_ident_byte(b)).map_or(0, |p| p + 1);
                if start < head.len() {
                    found.push(head[start..].to_string());
                }
            }
        }
        for name in found {
            if !idents.contains(&name) {
                idents.push(name);
            }
        }
    }
    idents
}

/// Scan one file for iteration over hash-ordered collections outside
/// `#[cfg(test)]` items.
pub fn lint_deterministic_iteration(file: &str, src: &str) -> Vec<Violation> {
    let stripped = strip_source(src);
    let tests = test_spans(&stripped);
    let idents = hash_bound_idents(&stripped);
    let mut out = Vec::new();
    let mut push = |at: usize| {
        if !in_spans(&tests, at) {
            out.push(Violation {
                lint: Lint::DeterministicIteration,
                file: file.to_string(),
                line: line_of(&stripped, at),
                excerpt: excerpt_at(src, at),
                allowed: false,
            });
        }
    };
    for ident in &idents {
        // Method-call iteration: `map.iter()`, `self.map.values()`, …
        for method in HASH_ITER_METHODS {
            let pat = format!("{ident}{method}");
            for at in boundary_matches(&stripped, &pat) {
                push(at);
            }
        }
    }
    // `for … in &map { … }` loops (line-oriented): the expression between
    // ` in ` and the opening brace mentions a hash-bound identifier.
    let mut offset = 0usize;
    for line in stripped.lines() {
        let has_for = line.trim_start().starts_with("for ") || line.contains(" for ");
        if has_for {
            if let Some(pos) = line.find(" in ") {
                let expr = line[pos + 4..].split('{').next().unwrap_or("");
                for ident in &idents {
                    for rel in boundary_matches(expr, ident) {
                        // Whole-word check on the tail too.
                        let after = expr.as_bytes().get(rel + ident.len()).copied();
                        if after.is_none_or(|b| !is_ident_byte(b)) {
                            push(offset + pos + 4 + rel);
                        }
                    }
                }
            }
        }
        offset += line.len() + 1;
    }
    out.sort_by_key(|v| (v.line, v.excerpt.clone()));
    out.dedup_by(|a, b| a.line == b.line && a.excerpt == b.excerpt);
    out
}

// ---------------------------------------------------------------------------
// Lint: float-reduction
// ---------------------------------------------------------------------------

/// Order-sensitive reduction patterns.
const FLOAT_PATTERNS: [&str; 3] = [".sum::<", ".sum()", "fold(0.0"];

/// Compensated helpers whose bodies may accumulate freely.
const APPROVED_REDUCERS: [&str; 2] = ["kahan_sum", "neumaier_sum"];

/// Byte spans of `fn <name> … { … }` bodies in stripped source.
fn fn_spans(stripped: &str, names: &[&str]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let bytes = stripped.as_bytes();
    for name in names {
        let pat = format!("fn {name}");
        for at in boundary_matches(stripped, &pat) {
            // Guard against prefix collisions (`fn kahan_summary`).
            let after = bytes.get(at + pat.len()).copied();
            if after.is_some_and(is_ident_byte) {
                continue;
            }
            // Find the body's opening brace, then match it.
            let mut j = at;
            while j < bytes.len() && bytes[j] != b'{' {
                j += 1;
            }
            let mut depth = 0i32;
            let mut end = bytes.len();
            while j < bytes.len() {
                match bytes[j] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            end = j + 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            spans.push((at, end));
        }
    }
    spans
}

/// Scan one numerics hot file for naive float reductions outside the
/// approved compensated helpers and outside `#[cfg(test)]` items.
pub fn lint_float_reduction(file: &str, src: &str) -> Vec<Violation> {
    let stripped = strip_source(src);
    let tests = test_spans(&stripped);
    let approved = fn_spans(&stripped, &APPROVED_REDUCERS);
    let mut out = Vec::new();
    for pat in FLOAT_PATTERNS {
        let mut from = 0;
        while let Some(rel) = stripped[from..].find(pat) {
            let at = from + rel;
            from = at + 1;
            if in_spans(&tests, at) || in_spans(&approved, at) {
                continue;
            }
            out.push(Violation {
                lint: Lint::FloatReduction,
                file: file.to_string(),
                line: line_of(&stripped, at),
                excerpt: excerpt_at(src, at),
                allowed: false,
            });
        }
    }
    out.sort_by_key(|v| v.line);
    out
}

// ---------------------------------------------------------------------------
// Lint: bench-guard-coverage
// ---------------------------------------------------------------------------

/// Inputs for the bench-guard lint, gathered by the driver (pure data so
/// tests can seed them without a filesystem).
#[derive(Debug, Clone)]
pub struct BenchGuardInput {
    /// Trajectory name: `BENCH_<name>.json`.
    pub name: String,
    /// Contents of `crates/bench/benches/<name>.rs`, if the file exists.
    pub bench_source: Option<String>,
    /// Contents of `.github/workflows/ci.yml`.
    pub ci_text: String,
}

/// Named floors that must stay wired inside specific benches' quick
/// guards. A guard that merely *exists* can still silently lose a floor
/// (e.g. the AVX2 lane check deleted during a refactor while the
/// gemm-vs-loop floor keeps the guard "present"); pinning the guard
/// labels here makes that a lint failure. Labels are the exact strings
/// passed to `guard::check_speedup` / `guard::check_overhead`.
pub const REQUIRED_GUARD_LABELS: [(&str, &[&str]); 5] = [
    ("batch", &["batch gemm_speedup", "batch gbatch_gemm avx2-vs-scalar"]),
    ("engine", &["engine pool_overhead", "engine pool_reuse dispatch-vs-respawn"]),
    ("serve", &["serve admission-batch-vs-sequential"]),
    ("search", &["search batched-vs-sequential-expansion"]),
    ("kernel", &["kernel fused_speedup k=64", "kernel nonuniform-vs-uniform-grid-build"]),
];

/// Check that every recorded bench trajectory has a quick guard wired
/// into CI: a bench target of the same name that consults
/// `guard::quick_mode`, a `--bench <name> -- --quick` CI invocation, and
/// (for trajectories listed in [`REQUIRED_GUARD_LABELS`]) every named
/// per-lane floor still present in the guard source.
pub fn lint_bench_guards(inputs: &[BenchGuardInput]) -> Vec<Violation> {
    let mut out = Vec::new();
    for input in inputs {
        let file = format!("BENCH_{}.json", input.name);
        let mut fail = |excerpt: String| {
            out.push(Violation {
                lint: Lint::BenchGuardCoverage,
                file: file.clone(),
                line: 0,
                excerpt,
                allowed: false,
            });
        };
        match &input.bench_source {
            None => fail(format!(
                "no bench target crates/bench/benches/{}.rs for this trajectory",
                input.name
            )),
            Some(src) if !src.contains("quick_mode") => fail(format!(
                "crates/bench/benches/{}.rs has no --quick guard (guard::quick_mode)",
                input.name
            )),
            Some(src) => {
                for (bench, labels) in REQUIRED_GUARD_LABELS {
                    if bench != input.name {
                        continue;
                    }
                    for label in labels {
                        if !src.contains(label) {
                            fail(format!(
                                "crates/bench/benches/{}.rs quick guard lost its `{label}` floor",
                                input.name
                            ));
                        }
                    }
                }
            }
        }
        let ci_call = format!("--bench {} -- --quick", input.name);
        if !input.ci_text.contains(&ci_call) {
            fail(format!("ci.yml never runs `cargo bench … {ci_call}`"));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------------------

/// One burn-down entry: suppress failures for `(lint, file)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Lint name as written in the file.
    pub lint: String,
    /// Workspace-relative path.
    pub file: String,
}

impl fmt::Display for AllowEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.lint, self.file)
    }
}

/// Parse the allowlist format: one `<lint-name> <path>` pair per line,
/// `#` comments and blank lines ignored.
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some(lint), Some(file)) = (parts.next(), parts.next()) {
            out.push(AllowEntry { lint: lint.to_string(), file: file.to_string() });
        }
    }
    out
}

/// Mark allowlisted violations and report stale entries (entries that
/// matched nothing — they must be deleted, keeping the burn-down
/// honest). Returns the stale entries.
pub fn apply_allowlist(violations: &mut [Violation], allowlist: &[AllowEntry]) -> Vec<AllowEntry> {
    let mut stale = Vec::new();
    for entry in allowlist {
        let mut hit = false;
        for v in violations.iter_mut() {
            if v.lint.name() == entry.lint && v.file == entry.file {
                v.allowed = true;
                hit = true;
            }
        }
        if !hit {
            stale.push(entry.clone());
        }
    }
    stale
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// Everything one `check` run found.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, allowlisted ones included.
    pub violations: Vec<Violation>,
    /// Allowlist entries that matched nothing (these fail the check).
    pub stale_allowlist: Vec<AllowEntry>,
    /// Number of source files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the check should exit non-zero.
    pub fn failing(&self) -> bool {
        self.violations.iter().any(|v| !v.allowed) || !self.stale_allowlist.is_empty()
    }

    /// Human-readable `file:line` listing plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&v.to_string());
            out.push('\n');
        }
        for entry in &self.stale_allowlist {
            out.push_str(&format!(
                "allowlist: stale entry `{entry}` matched nothing — delete it\n"
            ));
        }
        let failing = self.violations.iter().filter(|v| !v.allowed).count();
        let allowed = self.violations.len() - failing;
        out.push_str(&format!(
            "analysis: {} file(s) scanned, {failing} violation(s), {allowed} allowlisted, {} stale allowlist entr(ies)\n",
            self.files_scanned,
            self.stale_allowlist.len(),
        ));
        out
    }

    /// Machine-readable JSON (hand-rolled, matching the vendored codec's
    /// conventions; no dependencies).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let violations: Vec<String> = self
            .violations
            .iter()
            .map(|v| {
                format!(
                    "    {{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"allowed\": {}, \"excerpt\": \"{}\"}}",
                    v.lint,
                    esc(&v.file),
                    v.line,
                    v.allowed,
                    esc(&v.excerpt)
                )
            })
            .collect();
        let stale: Vec<String> =
            self.stale_allowlist.iter().map(|e| format!("\"{}\"", esc(&e.to_string()))).collect();
        format!(
            "{{\n  \"ok\": {},\n  \"files_scanned\": {},\n  \"violations\": [\n{}\n  ],\n  \"stale_allowlist\": [{}]\n}}\n",
            !self.failing(),
            self.files_scanned,
            violations.join(",\n"),
            stale.join(", ")
        )
    }
}

// ---------------------------------------------------------------------------
// Filesystem driver
// ---------------------------------------------------------------------------

/// Directories whose non-test code must be panic-free (library crates of
/// the analytic stack).
const UNWRAP_ROOTS: [&str; 4] =
    ["crates/core/src", "crates/sim/src", "crates/search/src", "crates/mech/src"];

/// Directories scanned for hash-iteration (everything that produces
/// output, including the bench bins and this crate).
const ITERATION_ROOTS: [&str; 8] = [
    "src",
    "crates/core/src",
    "crates/sim/src",
    "crates/search/src",
    "crates/mech/src",
    "crates/bench/src",
    "crates/serve/src",
    "crates/analysis/src",
];

/// The numerics hot files held to compensated-reduction discipline.
/// `simd.rs` holds both lanes of every kernel hot loop: its reductions
/// are explicit blocked accumulator chains (the documented lane
/// contracts), never ambient `.sum()` folds.
const FLOAT_FILES: [&str; 3] =
    ["crates/core/src/kernel.rs", "crates/core/src/numerics.rs", "crates/core/src/simd.rs"];

/// Recursively collect `.rs` files under `dir`, workspace-relative,
/// sorted (the scanner's own output must be deterministic).
fn walk_rs(root: &Path, rel_dir: &str, out: &mut Vec<String>) -> io::Result<()> {
    let dir = root.join(rel_dir);
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        fs::read_dir(&dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        let rel = format!("{rel_dir}/{name}");
        if path.is_dir() {
            walk_rs(root, &rel, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Run every lint over the workspace rooted at `root` and apply the
/// checked-in allowlist.
pub fn run_check(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    let mut scanned: Vec<String> = Vec::new();

    // no-unwrap-in-lib over the library crates.
    let mut unwrap_files = Vec::new();
    for dir in UNWRAP_ROOTS {
        walk_rs(root, dir, &mut unwrap_files)?;
    }
    for rel in &unwrap_files {
        let src = fs::read_to_string(root.join(rel))?;
        report.violations.extend(lint_no_unwrap(rel, &src));
        scanned.push(rel.clone());
    }

    // deterministic-iteration over everything that produces output.
    let mut iter_files = Vec::new();
    for dir in ITERATION_ROOTS {
        walk_rs(root, dir, &mut iter_files)?;
    }
    for rel in &iter_files {
        let src = fs::read_to_string(root.join(rel))?;
        report.violations.extend(lint_deterministic_iteration(rel, &src));
        if !scanned.contains(rel) {
            scanned.push(rel.clone());
        }
    }

    // float-reduction over the numerics hot files.
    for rel in FLOAT_FILES {
        let path = root.join(rel);
        if path.is_file() {
            let src = fs::read_to_string(path)?;
            report.violations.extend(lint_float_reduction(rel, &src));
        }
    }

    // bench-guard-coverage over the recorded trajectories.
    let ci_text = fs::read_to_string(root.join(".github/workflows/ci.yml")).unwrap_or_default();
    let mut names: Vec<String> = Vec::new();
    for entry in fs::read_dir(root)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(stem) = name.strip_prefix("BENCH_").and_then(|s| s.strip_suffix(".json")) {
            names.push(stem.to_string());
        }
    }
    names.sort();
    let inputs: Vec<BenchGuardInput> = names
        .into_iter()
        .map(|name| {
            let bench_source =
                fs::read_to_string(root.join(format!("crates/bench/benches/{name}.rs"))).ok();
            BenchGuardInput { name, bench_source, ci_text: ci_text.clone() }
        })
        .collect();
    report.violations.extend(lint_bench_guards(&inputs));

    // Allowlist.
    let allow_text =
        fs::read_to_string(root.join("crates/analysis/allowlist.txt")).unwrap_or_default();
    let allowlist = parse_allowlist(&allow_text);
    report.stale_allowlist = apply_allowlist(&mut report.violations, &allowlist);

    report.violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report.files_scanned = scanned.len();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    // ---- source preparation -------------------------------------------

    #[test]
    fn strip_blanks_comments_strings_and_chars() {
        let src = r##"let a = "panic!(inside string)"; // panic! in comment
/* block panic! */ let b = 'x'; let c = r#"raw panic!"#;
let lt: &'static str = unrelated;"##;
        let stripped = strip_source(src);
        assert!(!stripped.contains("panic!"), "stripped: {stripped}");
        assert!(stripped.contains("let a ="));
        assert!(stripped.contains("'static"), "lifetimes must survive");
        assert_eq!(stripped.lines().count(), src.lines().count(), "line structure preserved");
    }

    #[test]
    fn strip_handles_escaped_quotes() {
        let src = "let s = \"a\\\"b.unwrap()\"; x.real();";
        let stripped = strip_source(src);
        assert!(!stripped.contains(".unwrap()"));
        assert!(stripped.contains("x.real()"));
    }

    #[test]
    fn test_spans_cover_cfg_test_mod() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let stripped = strip_source(src);
        let spans = test_spans(&stripped);
        assert_eq!(spans.len(), 1);
        let at = stripped.find(".unwrap()").expect("present");
        assert!(in_spans(&spans, at));
        let tail = stripped.find("fn tail").expect("present");
        assert!(!in_spans(&spans, tail));
    }

    // ---- no-unwrap-in-lib ---------------------------------------------

    #[test]
    fn seeded_unwrap_violation_is_caught() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let v = lint_no_unwrap("crates/core/src/seed.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].lint, Lint::NoUnwrapInLib);
    }

    #[test]
    fn unwrap_in_tests_and_prose_is_ignored() {
        let src = "/// Calling this can `panic!` — no it can't, that's prose.\npub fn f() {}\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); panic!(\"x\") }\n}\n";
        assert!(lint_no_unwrap("x.rs", src).is_empty());
    }

    #[test]
    fn expect_and_panic_variants_fire() {
        let src =
            "fn a() { x.expect(\"m\"); }\nfn b() { panic!(\"m\"); }\nfn c() { unreachable!() }\n";
        let v = lint_no_unwrap("x.rs", src);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn unwrap_or_family_is_not_flagged() {
        let src = "fn a(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n";
        assert!(lint_no_unwrap("x.rs", src).is_empty());
    }

    // ---- deterministic-iteration --------------------------------------

    #[test]
    fn seeded_hashmap_iteration_is_caught() {
        let src = "use std::collections::HashMap;\nfn f() {\n    let mut m: HashMap<String, u32> = HashMap::new();\n    for (k, v) in m.iter() { out(k, v); }\n}\n";
        let v = lint_deterministic_iteration("x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn for_loop_over_hash_field_is_caught() {
        let src = "struct C { map: HashMap<u64, u64> }\nimpl C {\n    fn dump(&self) {\n        for (k, v) in &self.map { out(k, v); }\n    }\n}\n";
        let v = lint_deterministic_iteration("x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn keyed_lookups_and_btreemap_are_clean() {
        let src = "fn f(flags: &BTreeMap<String, String>) {\n    let mut m = HashMap::new();\n    m.insert(1, 2);\n    let _ = m.get(&1).copied();\n    assert!(m.contains_key(&1));\n    for (k, v) in flags.iter() { out(k, v); }\n}\n";
        assert!(lint_deterministic_iteration("x.rs", src).is_empty());
    }

    #[test]
    fn hash_iteration_in_tests_is_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {\n        let m = HashMap::new();\n        for x in m.keys() {}\n    }\n}\n";
        assert!(lint_deterministic_iteration("x.rs", src).is_empty());
    }

    // ---- float-reduction ----------------------------------------------

    #[test]
    fn seeded_naive_sum_is_caught() {
        let src = "pub fn dot(a: &[f64], b: &[f64]) -> f64 {\n    a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>()\n}\n";
        let v = lint_float_reduction("crates/core/src/kernel.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn sums_inside_approved_helpers_are_clean() {
        let src = "pub fn kahan_sum<I>(items: I) -> f64 {\n    items.fold(0.0, |a, x| a + x) // compensated in the real impl\n}\npub fn user() -> f64 { kahan_sum(v.iter()) }\n";
        assert!(lint_float_reduction("x.rs", src).is_empty());
    }

    #[test]
    fn fold_zero_accumulator_is_caught() {
        let src = "fn total(v: &[f64]) -> f64 { v.iter().fold(0.0, |a, x| a + x) }\n";
        let v = lint_float_reduction("x.rs", src);
        assert_eq!(v.len(), 1);
    }

    // ---- bench-guard-coverage -----------------------------------------

    fn guard_input(name: &str, bench: Option<&str>, ci: &str) -> BenchGuardInput {
        BenchGuardInput {
            name: name.to_string(),
            bench_source: bench.map(|s| s.to_string()),
            ci_text: ci.to_string(),
        }
    }

    #[test]
    fn seeded_unguarded_trajectory_is_caught() {
        // No bench file at all.
        let v = lint_bench_guards(&[guard_input("ghost", None, "")]);
        assert_eq!(v.len(), 2, "{v:?}"); // missing bench + missing CI call
                                         // Bench exists but has no quick guard, CI runs it anyway.
        let v = lint_bench_guards(&[guard_input(
            "kernel",
            Some("criterion_main!(benches);"),
            "cargo bench -p dispersal-bench --bench kernel -- --quick",
        )]);
        assert_eq!(v.len(), 1);
        assert!(v[0].excerpt.contains("no --quick guard"));
    }

    #[test]
    fn guarded_trajectory_is_clean() {
        let v = lint_bench_guards(&[guard_input(
            "kernel",
            Some(
                "if guard::quick_mode() { \
                 check_speedup(\"kernel fused_speedup k=64\", a, b); \
                 check_speedup(\"kernel nonuniform-vs-uniform-grid-build\", c, d); } \
                 criterion_main!(benches);",
            ),
            "run: cargo bench -p dispersal-bench --bench kernel -- --quick",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn missing_required_guard_label_is_caught() {
        // The batch guard exists and runs in CI, but the AVX2-lane floor
        // was deleted — exactly the silent coverage loss the label table
        // exists to catch.
        let v = lint_bench_guards(&[guard_input(
            "batch",
            Some(
                "if guard::quick_mode() { check_speedup(\"batch gemm_speedup p=16 k=64\", a, b); }",
            ),
            "run: cargo bench -p dispersal-bench --bench batch -- --quick",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].excerpt.contains("batch gbatch_gemm avx2-vs-scalar"), "{v:?}");
    }

    #[test]
    fn required_guard_labels_present_is_clean() {
        let engine_src = "if guard::quick_mode() { \
            check_overhead(\"engine pool_overhead 4-thread\", s, p, 4.0); \
            check_speedup(\"engine pool_reuse dispatch-vs-respawn\", r, d); }";
        let v = lint_bench_guards(&[guard_input(
            "engine",
            Some(engine_src),
            "run: cargo bench -p dispersal-bench --bench engine -- --quick",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    // ---- allowlist ----------------------------------------------------

    #[test]
    fn allowlist_suppresses_and_detects_stale() {
        let mut violations = lint_no_unwrap("crates/sim/src/x.rs", "fn f() { y.unwrap() }\n");
        assert_eq!(violations.len(), 1);
        let allow = parse_allowlist(
            "# burn-down\nno-unwrap-in-lib crates/sim/src/x.rs\nno-unwrap-in-lib crates/sim/src/gone.rs\n",
        );
        let stale = apply_allowlist(&mut violations, &allow);
        assert!(violations[0].allowed);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].file, "crates/sim/src/gone.rs");
        let report = Report { violations, stale_allowlist: stale, files_scanned: 1 };
        assert!(report.failing(), "stale entries must fail the check");
    }

    #[test]
    fn report_json_shape() {
        let report = Report {
            violations: lint_no_unwrap("a.rs", "fn f() { x.unwrap() }\n"),
            ..Default::default()
        };
        let json = report.to_json();
        assert!(json.contains("\"ok\": false"));
        assert!(json.contains("\"lint\": \"no-unwrap-in-lib\""));
        assert!(json.contains("\"line\": 1"));
        let clean = Report::default().to_json();
        assert!(clean.contains("\"ok\": true"));
    }

    // ---- the real workspace must be clean -----------------------------

    #[test]
    fn workspace_passes_with_empty_core_allowlist() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = run_check(&root).expect("scan workspace");
        let text = report.render_text();
        assert!(!report.failing(), "workspace must be lint-clean:\n{text}");
        // The acceptance bar: no allowlist entry shadows crates/core.
        assert!(
            !report.violations.iter().any(|v| v.allowed && v.file.starts_with("crates/core/")),
            "crates/core must need no allowlist entries:\n{text}"
        );
        assert!(report.files_scanned > 30, "walk found {} files", report.files_scanned);
    }
}
