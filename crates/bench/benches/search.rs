//! Benchmark: the search substrate — per-round σ⋆ recomputation on the
//! shifting posterior, and plan evaluation over a horizon.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dispersal_search::astar::IteratedSigmaStar;
use dispersal_search::game::evaluate_plan;
use dispersal_search::plan::SearchPlan;
use dispersal_search::prior::Prior;

fn bench_plan_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("astar_50_rounds");
    group.sample_size(20);
    for &m in &[20usize, 100, 500] {
        let prior = Prior::zipf(m, 1.0).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                let mut plan = IteratedSigmaStar::new(&prior, 4).unwrap();
                plan.round(49)
            })
        });
    }
    group.finish();
}

fn bench_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluate_plan_horizon200");
    group.sample_size(20);
    let prior = Prior::zipf(100, 1.0).unwrap();
    for &k in &[1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut plan = IteratedSigmaStar::new(&prior, k).unwrap();
                evaluate_plan(&mut plan, &prior, k, 200).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plan_rounds, bench_evaluate);
criterion_main!(benches);
