//! Benchmark: the search substrate — per-round σ⋆ recomputation on the
//! shifting posterior, plan evaluation over a horizon, and the
//! mechanism-space search's batched expansion tile (one `GBatch` over a
//! sibling set vs one `GTable` per child), the trajectory recorded in
//! `BENCH_search.json` at the repo root.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use dispersal_core::kernel::{GBatch, GTable};
use dispersal_search::astar::IteratedSigmaStar;
use dispersal_search::game::evaluate_plan;
use dispersal_search::mech_space::{MechFamily, ParamBox};
use dispersal_search::plan::SearchPlan;
use dispersal_search::prior::Prior;

fn bench_plan_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("astar_50_rounds");
    group.sample_size(20);
    for &m in &[20usize, 100, 500] {
        let prior = Prior::zipf(m, 1.0).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                let mut plan = IteratedSigmaStar::new(&prior, 4).unwrap();
                plan.round(49).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluate_plan_horizon200");
    group.sample_size(20);
    let prior = Prior::zipf(100, 1.0).unwrap();
    for &k in &[1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut plan = IteratedSigmaStar::new(&prior, k).unwrap();
                evaluate_plan(&mut plan, &prior, k, 200).unwrap()
            })
        });
    }
    group.finish();
}

/// The grid the mechanism search evaluates per expansion tile
/// (`parallel::RESPONSE_GRID` + 1 points).
const TILE_GRID: usize = 33;

fn tile_qs() -> Vec<f64> {
    (0..TILE_GRID).map(|i| i as f64 / (TILE_GRID - 1) as f64).collect()
}

/// One expansion's sibling set: the piecewise root box split into
/// `children` slabs, each child expanded to its center's coefficient
/// table.
fn sibling_tables(children: usize, k: usize) -> Vec<Vec<f64>> {
    let root = ParamBox::root(MechFamily::Piecewise, k).unwrap();
    root.split(children, k).unwrap().iter().map(|bx| bx.center().table(k).unwrap()).collect()
}

/// Batched expansion: one `GBatch` over the whole sibling set — one
/// `ln_binom` setup and one shared basis column per grid point.
fn expand_batched(rows: &[Vec<f64>], qs: &[f64]) -> f64 {
    let batch = GBatch::from_rows(rows.to_vec()).unwrap();
    let grid = batch.eval_grid(qs);
    grid[grid.len() / 2]
}

/// Sequential expansion: the pre-batch formulation — every child builds
/// its own `GTable` (its own `ln_binom` walk) and evaluates its own
/// curve.
fn expand_sequential(rows: &[Vec<f64>], qs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for row in rows {
        let table = GTable::from_coefficients(row.clone()).unwrap();
        let mut out = vec![0.0; qs.len()];
        table.eval_fused_many_into(qs, &mut out).unwrap();
        acc += out[qs.len() / 2];
    }
    acc
}

fn bench_mech_tile(c: &mut Criterion) {
    let qs = tile_qs();
    let mut group = c.benchmark_group("mech_expansion_tile");
    group.sample_size(20);
    for &(children, k) in &[(4usize, 8usize), (16, 16), (16, 64)] {
        let rows = sibling_tables(children, k);
        let label = format!("b{children}_k{k}");
        group.bench_with_input(BenchmarkId::new("batched", &label), &children, |b, _| {
            b.iter(|| black_box(expand_batched(black_box(&rows), &qs)))
        });
        group.bench_with_input(BenchmarkId::new("sequential", &label), &children, |b, _| {
            b.iter(|| black_box(expand_sequential(black_box(&rows), &qs)))
        });
    }
    group.finish();
}

/// CI guard mode (`-- --quick`): the mechanism search's batched
/// expansion tile must not regress below per-child sequential
/// evaluation. This floor is core-count independent — the win is
/// construction/basis amortization (one `ln_binom` table and one basis
/// walk per grid point for the whole sibling set), not parallelism — so
/// it holds on the single-core CI host.
fn quick_guard() -> ! {
    use dispersal_bench::guard;
    let qs = tile_qs();
    let (children, k) = (16usize, 64usize);
    let rows = sibling_tables(children, k);
    let sequential_time = guard::time_per_call(200, || {
        black_box(expand_sequential(black_box(&rows), &qs));
    });
    let batched_time = guard::time_per_call(200, || {
        black_box(expand_batched(black_box(&rows), &qs));
    });
    let ok = guard::check_speedup(
        "search batched-vs-sequential-expansion b=16 k=64",
        sequential_time,
        batched_time,
    );
    guard::finish(ok)
}

criterion_group!(benches, bench_plan_rounds, bench_evaluate, bench_mech_tile);

fn main() {
    if dispersal_bench::guard::quick_mode() {
        quick_guard();
    }
    benches();
}
