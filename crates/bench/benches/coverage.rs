//! Benchmark: coverage evaluation and the two optimal-coverage solvers
//! (KKT water-filling vs projected gradient).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dispersal_core::coverage::coverage;
use dispersal_core::optimal::{optimal_coverage_gradient, optimal_coverage_waterfill};
use dispersal_core::strategy::Strategy;
use dispersal_core::value::ValueProfile;

fn bench_coverage_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("coverage_eval");
    for &m in &[100usize, 10_000] {
        let f = ValueProfile::zipf(m, 1.0, 0.8).unwrap();
        let p = Strategy::proportional(f.values()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| coverage(black_box(&f), black_box(&p), 16).unwrap())
        });
    }
    group.finish();
}

fn bench_optimizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimal_coverage");
    group.sample_size(20);
    let f = ValueProfile::zipf(100, 1.0, 0.9).unwrap();
    let k = 8;
    group.bench_function("waterfill", |b| {
        b.iter(|| optimal_coverage_waterfill(black_box(&f), k).unwrap())
    });
    group.bench_function("projected_gradient", |b| {
        b.iter(|| optimal_coverage_gradient(black_box(&f), k).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_coverage_eval, bench_optimizers);
criterion_main!(benches);
