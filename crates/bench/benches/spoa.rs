//! Benchmark: SPoA evaluation and the adversarial instance search inner
//! loop (Theorem 6 tooling).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dispersal_core::policy::Sharing;
use dispersal_core::spoa::spoa;
use dispersal_core::value::ValueProfile;
use dispersal_mech::adversarial::{adversarial_spoa, AdversarialConfig};
use dispersal_mech::evaluator::evaluate_policy;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_spoa_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("spoa_point");
    for &m in &[10usize, 100] {
        let f = ValueProfile::zipf(m, 1.0, 0.5).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| spoa(&Sharing, black_box(&f), 8).unwrap())
        });
    }
    group.finish();
}

fn bench_adversarial(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversarial_search");
    group.sample_size(10);
    group.bench_function("m16_30iters", |b| {
        b.iter(|| {
            adversarial_spoa(
                &Sharing,
                4,
                AdversarialConfig { m: 16, random_starts: 2, iterations: 30, step: 0.2, seed: 5 },
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_full_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_scorecard");
    group.sample_size(10);
    let f = ValueProfile::zipf(20, 1.0, 0.8).unwrap();
    group.bench_function("sharing_m20_k6", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            evaluate_policy("sharing", &Sharing, &f, 6, 0, &mut rng).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_spoa_point, bench_adversarial, bench_full_evaluation);
criterion_main!(benches);
