//! Benchmark: Monte-Carlo throughput (trials/sec) through the unified
//! `sim::engine` at 1 vs N worker threads — the parallel-speedup
//! trajectory recorded in `BENCH_engine.json` at the repo root — plus
//! the `pool_reuse` dispatch cost of the persistent work-stealing pool.
//!
//! The thread count is swept with `rayon::set_num_threads`, an atomic
//! override specific to the vendored pool (registry rayon pins its global
//! pool at first use — there this file fails to compile, on purpose, so
//! the sweep is not silently reduced to one pool size). On a single-core
//! host the multi-thread rows measure pool overhead, not speedup; record
//! the host core count next to any number you archive.
//!
//! `pool_reuse` measures the per-`execute()` dispatch cost of a small
//! (64-item, trivial-work) batch at 4 workers. Before the persistent
//! pool, every `execute()` spawned and joined its scoped workers, so this
//! cost was bounded below by 4 × thread spawn/join; with the persistent
//! deque pool it is a wake/steal/park cycle on already-running threads.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use dispersal_core::policy::Exclusive;
use dispersal_core::strategy::Strategy;
use dispersal_core::value::ValueProfile;
use dispersal_sim::montecarlo::{estimate_symmetric, McConfig};

const TRIALS: u64 = 200_000;

/// One small parallel dispatch: 64 near-trivial items, the regime where
/// per-`execute()` fixed costs (historically: thread respawn) dominate.
fn small_dispatch() -> f64 {
    use rayon::prelude::*;
    let out: Vec<f64> = (0..64u64).into_par_iter().map(|i| (i as f64 + 1.0).sqrt()).collect();
    out[63]
}

/// The fixed cost the pre-persistent pool paid on every `execute()`:
/// spawning and joining one scoped OS thread per worker.
fn spawn_join_4_threads() {
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| black_box(0u64));
        }
    });
}

fn bench_engine_thread_sweep(c: &mut Criterion) {
    let f = ValueProfile::zipf(20, 1.0, 1.0).unwrap();
    let p = Strategy::proportional(f.values()).unwrap();
    let mut group = c.benchmark_group("engine_mc_200k_trials");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        rayon::set_num_threads(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| {
                black_box(
                    estimate_symmetric(
                        &f,
                        &Exclusive,
                        &p,
                        8,
                        McConfig { trials: TRIALS, seed: 2, shards: 64 },
                    )
                    .unwrap(),
                )
            })
        });
    }
    rayon::set_num_threads(0);
    group.finish();
}

fn bench_pool_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_pool_reuse");
    rayon::set_num_threads(4);
    group.bench_function("dispatch_64_items_4_threads", |b| b.iter(|| black_box(small_dispatch())));
    rayon::set_num_threads(0);
    group.bench_function("spawn_join_4_threads", |b| b.iter(spawn_join_4_threads));
    group.finish();
}

/// CI guard mode (`-- --quick`), two floors:
///
/// 1. The 4-thread pool must stay within a coarse overhead bound of the
///    1-thread run on the same workload. CI runners may be single-core,
///    so a parallel *speedup* cannot be required — but queue/lock
///    pathology (a regression serializing workers behind contention)
///    shows up as a blown overhead ratio on any host. The two runs must
///    also agree bit-for-bit (the pool's determinism contract), checked
///    before any timing verdict.
/// 2. `pool_reuse`: dispatching a small batch on the persistent pool must
///    beat the old per-`execute()` price of spawning + joining 4 OS
///    threads, measured live on the same host. A regression back to
///    respawn-per-execute (or a wake path slower than spawning) fails
///    the build host-independently.
fn quick_guard() -> ! {
    use dispersal_bench::guard;
    let f = ValueProfile::zipf(20, 1.0, 1.0).unwrap();
    let p = Strategy::proportional(f.values()).unwrap();
    let cfg = McConfig { trials: 20_000, seed: 2, shards: 64 };
    let run = || estimate_symmetric(&f, &Exclusive, &p, 8, cfg).unwrap();
    rayon::set_num_threads(1);
    let reference = run();
    let single = guard::time_per_call(5, || {
        black_box(run());
    });
    rayon::set_num_threads(4);
    let pooled_out = run();
    let pooled = guard::time_per_call(5, || {
        black_box(run());
    });
    if pooled_out.payoff.mean.to_bits() != reference.payoff.mean.to_bits() {
        eprintln!(
            "quick-guard engine: 4-thread mean {} != 1-thread mean {} (determinism break)",
            pooled_out.payoff.mean, reference.payoff.mean
        );
        std::process::exit(1);
    }
    let overhead_ok = guard::check_overhead("engine pool_overhead 4-thread", single, pooled, 4.0);
    // pool_reuse floor: persistent dispatch vs live spawn/join cost.
    let dispatch = guard::time_per_call(200, || {
        black_box(small_dispatch());
    });
    rayon::set_num_threads(0);
    let respawn = guard::time_per_call(200, spawn_join_4_threads);
    let reuse_ok = guard::check_speedup("engine pool_reuse dispatch-vs-respawn", respawn, dispatch);
    guard::finish(overhead_ok && reuse_ok)
}

criterion_group!(benches, bench_engine_thread_sweep, bench_pool_reuse);

fn main() {
    if dispersal_bench::guard::quick_mode() {
        quick_guard();
    }
    benches();
}
