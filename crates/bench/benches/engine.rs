//! Benchmark: Monte-Carlo throughput (trials/sec) through the unified
//! `sim::engine` at 1 vs N worker threads — the parallel-speedup
//! trajectory recorded in `BENCH_engine.json` at the repo root.
//!
//! The thread count is swept with `rayon::set_num_threads`, an atomic
//! override specific to the vendored pool (registry rayon pins its global
//! pool at first use — there this file fails to compile, on purpose, so
//! the sweep is not silently reduced to one pool size). On a single-core
//! host the multi-thread rows measure pool overhead, not speedup; record
//! the host core count next to any number you archive.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dispersal_core::policy::Exclusive;
use dispersal_core::strategy::Strategy;
use dispersal_core::value::ValueProfile;
use dispersal_sim::montecarlo::{estimate_symmetric, McConfig};

const TRIALS: u64 = 200_000;

fn bench_engine_thread_sweep(c: &mut Criterion) {
    let f = ValueProfile::zipf(20, 1.0, 1.0).unwrap();
    let p = Strategy::proportional(f.values()).unwrap();
    let mut group = c.benchmark_group("engine_mc_200k_trials");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4] {
        rayon::set_num_threads(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| {
                black_box(
                    estimate_symmetric(
                        &f,
                        &Exclusive,
                        &p,
                        8,
                        McConfig { trials: TRIALS, seed: 2, shards: 64 },
                    )
                    .unwrap(),
                )
            })
        });
    }
    rayon::set_num_threads(0);
    group.finish();
}

criterion_group!(benches, bench_engine_thread_sweep);
criterion_main!(benches);
