//! Benchmark: the kernel-backed ESS checker vs the pre-kernel scalar
//! path — full `k`-level payoff ledgers and invasion-barrier grid walks
//! at k ∈ {16, 64, 256}, the trajectory recorded in `BENCH_ess.json` at
//! the repo root.
//!
//! Variants per k:
//!
//! * `ledger/scalar` — the pre-kernel formulation
//!   (`dispersal_core::ess::reference_ledger`, the shared equivalence
//!   baseline): every ledger level rebuilds the `O(k²)` Poisson–binomial
//!   DP per site per column (`O(M·k³)` for a full ledger);
//! * `ledger/kernel` — `ess_ledger`: per-site `PbTable`s built once
//!   (shared across equal-`σ(x)` sites via `PbCache`), then one `O(k)`
//!   `replace` rank update per site per level (`O(M·k²)` total);
//! * `ledger/evaluator` — `LedgerEvaluator::ledger` with the baseline
//!   tables amortized across calls, the `probe_ess_k` regime where one
//!   resident faces many mutants;
//! * `barrier/scalar` — invasion barrier via two `mixture_payoff`
//!   evaluations per grid point (two site-value passes + allocations);
//! * `barrier/kernel` — the rewired `invasion_barrier`: one shared
//!   scratch, one site-value pass per point (bit-identical results).

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use dispersal_core::ess::{ess_ledger, invasion_barrier, reference_ledger, LedgerEvaluator};
use dispersal_core::payoff::PayoffContext;
use dispersal_core::policy::Exclusive;
use dispersal_core::sigma_star::sigma_star;
use dispersal_core::strategy::Strategy;
use dispersal_core::value::ValueProfile;

const SITES: usize = 6;
const BARRIER_GRID: usize = 64;

/// The pre-kernel barrier: two mixture payoffs per grid point.
fn scalar_barrier(
    ctx: &PayoffContext,
    f: &ValueProfile,
    sigma: &Strategy,
    pi: &Strategy,
    grid: usize,
) -> f64 {
    let mut last_good = 0.0;
    for i in 1..=grid {
        let eps = i as f64 / grid as f64;
        let u_sigma = ctx.mixture_payoff(f, sigma, sigma, pi, eps).unwrap();
        let u_pi = ctx.mixture_payoff(f, pi, sigma, pi, eps).unwrap();
        if u_sigma - u_pi > 0.0 {
            last_good = eps;
        } else {
            break;
        }
    }
    last_good
}

fn bench_ess(c: &mut Criterion) {
    let f = ValueProfile::zipf(SITES, 1.0, 1.0).unwrap();
    let pi = Strategy::uniform(SITES).unwrap();

    let mut group = c.benchmark_group("ess_ledger");
    group.sample_size(10);
    for &k in &[16usize, 64, 256] {
        let ctx = PayoffContext::new(&Exclusive, k).unwrap();
        let sigma = sigma_star(&f, k).unwrap().strategy;
        group.bench_with_input(BenchmarkId::new("scalar", k), &k, |b, _| {
            b.iter(|| black_box(reference_ledger(&ctx, &f, &sigma, black_box(&pi)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("kernel", k), &k, |b, _| {
            b.iter(|| black_box(ess_ledger(&ctx, &f, &sigma, black_box(&pi)).unwrap()))
        });
        let evaluator = LedgerEvaluator::new(&ctx, &f, &sigma).unwrap();
        group.bench_with_input(BenchmarkId::new("evaluator", k), &k, |b, _| {
            b.iter(|| black_box(evaluator.ledger(black_box(&pi)).unwrap()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("invasion_barrier");
    group.sample_size(10);
    for &k in &[16usize, 64, 256] {
        let ctx = PayoffContext::new(&Exclusive, k).unwrap();
        let sigma = sigma_star(&f, k).unwrap().strategy;
        group.bench_with_input(BenchmarkId::new("scalar", k), &k, |b, _| {
            b.iter(|| black_box(scalar_barrier(&ctx, &f, &sigma, black_box(&pi), BARRIER_GRID)))
        });
        group.bench_with_input(BenchmarkId::new("kernel", k), &k, |b, _| {
            b.iter(|| {
                black_box(invasion_barrier(&ctx, &f, &sigma, black_box(&pi), BARRIER_GRID).unwrap())
            })
        });
    }
    group.finish();
}

/// CI guard mode (`-- --quick`): the pre-kernel scalar ledger vs the
/// `PbTable` rank-update ledger at `k = 32`; fails the process if the
/// kernel path has regressed below the scalar one.
fn quick_guard() -> ! {
    use dispersal_bench::guard;
    let f = ValueProfile::zipf(SITES, 1.0, 1.0).unwrap();
    let pi = Strategy::uniform(SITES).unwrap();
    let k = 32;
    let ctx = PayoffContext::new(&Exclusive, k).unwrap();
    let sigma = sigma_star(&f, k).unwrap().strategy;
    let scalar = guard::time_per_call(10, || {
        black_box(reference_ledger(&ctx, &f, &sigma, black_box(&pi)).unwrap());
    });
    let kernel = guard::time_per_call(10, || {
        black_box(ess_ledger(&ctx, &f, &sigma, black_box(&pi)).unwrap());
    });
    guard::finish(guard::check_speedup("ess ledger_kernel_speedup k=32", scalar, kernel))
}

criterion_group!(benches, bench_ess);

fn main() {
    if dispersal_bench::guard::quick_mode() {
        quick_guard();
    }
    benches();
}
