//! Benchmark: payoff kernels — the congestion response `g_C`, symmetric
//! payoffs, and the exact Poisson–binomial heterogeneous evaluator that the
//! ESS checker leans on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dispersal_core::numerics::poisson_binomial_pmf;
use dispersal_core::payoff::PayoffContext;
use dispersal_core::policy::Sharing;
use dispersal_core::strategy::Strategy;
use dispersal_core::value::ValueProfile;

fn bench_g(c: &mut Criterion) {
    let mut group = c.benchmark_group("congestion_response_g");
    for &k in &[2usize, 16, 128] {
        let ctx = PayoffContext::new(&Sharing, k).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| ctx.g(black_box(0.37)).unwrap())
        });
    }
    group.finish();
}

fn bench_symmetric_payoff(c: &mut Criterion) {
    let f = ValueProfile::zipf(200, 1.0, 1.0).unwrap();
    let p = Strategy::proportional(f.values()).unwrap();
    let ctx = PayoffContext::new(&Sharing, 16).unwrap();
    c.bench_function("symmetric_payoff_m200_k16", |b| {
        b.iter(|| ctx.symmetric_payoff(black_box(&f), black_box(&p)).unwrap())
    });
}

fn bench_ess_payoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("ess_payoff");
    group.sample_size(30);
    let f = ValueProfile::zipf(30, 1.0, 1.0).unwrap();
    let sigma = Strategy::proportional(f.values()).unwrap();
    let pi = Strategy::uniform(30).unwrap();
    for &k in &[4usize, 16, 64] {
        let ctx = PayoffContext::new(&Sharing, k).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                ctx.ess_payoff(black_box(&f), &sigma, &sigma, k / 2, &pi, k - 1 - k / 2).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_poisson_binomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("poisson_binomial_dp");
    for &n in &[8usize, 64, 256] {
        let probs: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) / (2.0 * n as f64)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| poisson_binomial_pmf(black_box(&probs)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_g,
    bench_symmetric_payoff,
    bench_ess_payoff,
    bench_poisson_binomial
);
criterion_main!(benches);
