//! Benchmark: the policy-batched `GBatch` GEMM evaluator vs the
//! per-policy `GTable` loop — evaluating a shared 1024-point q-grid
//! against P policies at once, the trajectory recorded in
//! `BENCH_batch.json` at the repo root.
//!
//! Four variants per `(P, k)` cell, all producing the full `P × 1024`
//! policy-major response matrix:
//!
//! * `gtable_loop` — the pre-batch formulation: one `GTable` per policy,
//!   each curve through `eval_many_with` (every policy pays its own
//!   per-point PMF recurrence: `P × O(k)` transcendentals per grid
//!   point);
//! * `gtable_fused_loop` — per-policy `eval_fused_many_into` (the
//!   strongest per-policy loop: still `P` basis walks per point);
//! * `gbatch_ref` — `GBatch::eval_many_with`: the shared basis column is
//!   built **once** per point, every row finished with the reference
//!   Kahan dot (outputs bit-identical to `gtable_loop`);
//! * `gbatch_gemm` — `GBatch::eval_fused_many_into`: one fused basis walk
//!   per point plus a blocked matrix–vector product (4 independent
//!   accumulator chains per row block).
//!
//! Throughput is rows/sec = `P × 1024 / wall`; speedup columns in the
//! JSON are against `gtable_loop`.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use dispersal_core::kernel::{GBatch, GTable};

const GRID: usize = 1024;

fn qs() -> Vec<f64> {
    (0..GRID).map(|i| (i as f64 + 0.5) / GRID as f64).collect()
}

/// `count` distinct monotone congestion rows at player count `k`: a
/// power-law family `C(ℓ) = ℓ^{−β}` with `β` swept per row — the shape of
/// a mechanism catalog sharing one `k`.
fn policy_rows(count: usize, k: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| {
            let beta = 0.25 + i as f64 * 0.125;
            (1..=k).map(|ell| (ell as f64).powf(-beta)).collect()
        })
        .collect()
}

fn bench_batch(c: &mut Criterion) {
    let qs = qs();
    let mut group = c.benchmark_group("batch_grid_1024");
    group.sample_size(10);
    for &(p, k) in &[(4usize, 64usize), (16, 64), (64, 64), (16, 256)] {
        let rows = policy_rows(p, k);
        let tables: Vec<GTable> =
            rows.iter().map(|r| GTable::from_coefficients(r.clone()).unwrap()).collect();
        let batch = GBatch::from_rows(rows).unwrap();
        let mut out = vec![0.0; p * GRID];
        let label = format!("p{p}_k{k}");
        group.bench_with_input(BenchmarkId::new("gtable_loop", &label), &p, |b, _| {
            b.iter(|| {
                for (r, table) in tables.iter().enumerate() {
                    let mut scratch = table.scratch();
                    table
                        .eval_many_with(
                            &mut scratch,
                            black_box(&qs),
                            &mut out[r * GRID..(r + 1) * GRID],
                        )
                        .unwrap();
                }
                black_box(out[GRID / 2])
            })
        });
        group.bench_with_input(BenchmarkId::new("gtable_fused_loop", &label), &p, |b, _| {
            b.iter(|| {
                for (r, table) in tables.iter().enumerate() {
                    table
                        .eval_fused_many_into(black_box(&qs), &mut out[r * GRID..(r + 1) * GRID])
                        .unwrap();
                }
                black_box(out[GRID / 2])
            })
        });
        let mut scratch = batch.scratch();
        group.bench_with_input(BenchmarkId::new("gbatch_ref", &label), &p, |b, _| {
            b.iter(|| {
                batch.eval_many_with(&mut scratch, black_box(&qs), &mut out).unwrap();
                black_box(out[GRID / 2])
            })
        });
        group.bench_with_input(BenchmarkId::new("gbatch_gemm", &label), &p, |b, _| {
            b.iter(|| {
                batch.eval_fused_many_into(&mut scratch, black_box(&qs), &mut out).unwrap();
                black_box(out[GRID / 2])
            })
        });
    }
    group.finish();
}

/// CI guard mode (`-- --quick`), one floor per lane width:
///
/// * **scalar lane** — the per-policy `GTable` loop vs the `GBatch` GEMM
///   at the acceptance cell (16 policies, k = 64); fails the process if
///   the batched path has regressed below the per-policy loop. (On a
///   force-scalar or non-AVX2 run this times the scalar GEMM; on an
///   AVX2 host it times the dispatched lane — the floor holds either
///   way, so a dispatch regression to a slower path fails here too.)
/// * **AVX2 lane** — `simd::gemv_block4_avx2` vs `gemv_block4_scalar`
///   on the same policy-major matrix shape at k = 256 (wide dots, where
///   the lane difference is signal rather than loop overhead): the
///   intrinsics must beat the scalar unroll outright. Skipped (with a
///   note) on hosts without AVX2+FMA, where both entry points run the
///   identical scalar code.
fn quick_guard() -> ! {
    use dispersal_bench::guard;
    use dispersal_core::simd;
    let qs = qs();
    let (p, k) = (16usize, 64usize);
    let rows = policy_rows(p, k);
    let tables: Vec<GTable> =
        rows.iter().map(|r| GTable::from_coefficients(r.clone()).unwrap()).collect();
    let batch = GBatch::from_rows(rows).unwrap();
    let mut out = vec![0.0; p * GRID];
    let loop_time = guard::time_per_call(10, || {
        for (r, table) in tables.iter().enumerate() {
            let mut scratch = table.scratch();
            table
                .eval_many_with(&mut scratch, black_box(&qs), &mut out[r * GRID..(r + 1) * GRID])
                .unwrap();
        }
        black_box(out[GRID / 2]);
    });
    let mut scratch = batch.scratch();
    let gemm_time = guard::time_per_call(10, || {
        batch.eval_fused_many_into(&mut scratch, black_box(&qs), &mut out).unwrap();
        black_box(out[GRID / 2]);
    });
    let gemm_ok = guard::check_speedup("batch gemm_speedup p=16 k=64", loop_time, gemm_time);
    let lane_ok = if simd::avx2_available() {
        let (lp, lk) = (16usize, 256usize);
        let lane_rows = policy_rows(lp, lk);
        let padded = lp.div_ceil(simd::GEMV_BLOCK) * simd::GEMV_BLOCK;
        let mut matrix = vec![0.0f64; padded * lk];
        for (r, row) in lane_rows.iter().enumerate() {
            matrix[r * lk..(r + 1) * lk].copy_from_slice(row);
        }
        let basis: Vec<f64> = (0..lk).map(|j| ((j as f64) + 0.5) / lk as f64).collect();
        let mut lane_out = vec![0.0f64; lp];
        let scalar_time = guard::time_per_call(2000, || {
            simd::gemv_block4_scalar(
                black_box(&matrix),
                lk,
                lp,
                black_box(&basis),
                1.0,
                &mut lane_out,
            );
            black_box(lane_out[0]);
        });
        let avx2_time = guard::time_per_call(2000, || {
            simd::gemv_block4_avx2(
                black_box(&matrix),
                lk,
                lp,
                black_box(&basis),
                1.0,
                &mut lane_out,
            );
            black_box(lane_out[0]);
        });
        guard::check_speedup("batch gbatch_gemm avx2-vs-scalar p=16 k=256", scalar_time, avx2_time)
    } else {
        println!("quick-guard batch: AVX2 lane floor skipped (host lacks avx2+fma)");
        true
    };
    guard::finish(gemm_ok && lane_ok)
}

criterion_group!(benches, bench_batch);

fn main() {
    if dispersal_bench::guard::quick_mode() {
        quick_guard();
    }
    benches();
}
