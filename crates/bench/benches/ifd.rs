//! Benchmark: the general IFD water-filling solver across (M, k) and
//! policies — the kernel behind the red curve of Figure 1 and every SPoA
//! evaluation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dispersal_core::ifd::solve_ifd;
use dispersal_core::policy::{Exclusive, Sharing, TwoLevel};
use dispersal_core::value::ValueProfile;

fn bench_ifd_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ifd_solve");
    for &m in &[10usize, 100, 1000] {
        for &k in &[2usize, 8, 32] {
            let f = ValueProfile::zipf(m, 1.0, 1.0).unwrap();
            group.bench_with_input(BenchmarkId::new(format!("sharing_m{m}"), k), &k, |b, &k| {
                b.iter(|| solve_ifd(&Sharing, black_box(&f), k).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_ifd_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ifd_policy");
    let f = ValueProfile::zipf(200, 1.0, 0.9).unwrap();
    let k = 8;
    group.bench_function("exclusive", |b| {
        b.iter(|| solve_ifd(&Exclusive, black_box(&f), k).unwrap())
    });
    group.bench_function("sharing", |b| b.iter(|| solve_ifd(&Sharing, black_box(&f), k).unwrap()));
    group.bench_function("aggressive", |b| {
        b.iter(|| solve_ifd(&TwoLevel { c: -0.5 }, black_box(&f), k).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_ifd_scaling, bench_ifd_policies);
criterion_main!(benches);
