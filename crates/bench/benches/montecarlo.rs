//! Benchmark: one-shot Monte-Carlo throughput — serial single plays vs the
//! sharded Rayon estimator (the parallelism ablation for S11).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dispersal_core::policy::Exclusive;
use dispersal_core::strategy::Strategy;
use dispersal_core::value::ValueProfile;
use dispersal_sim::montecarlo::{estimate_symmetric, McConfig};
use dispersal_sim::oneshot::OneShotGame;
use dispersal_sim::rng::Seed;

fn bench_single_play(c: &mut Criterion) {
    let mut group = c.benchmark_group("oneshot_play");
    for &k in &[2usize, 16, 128] {
        let f = ValueProfile::zipf(50, 1.0, 1.0).unwrap();
        let p = Strategy::proportional(f.values()).unwrap();
        let mut game = OneShotGame::symmetric(&f, &Exclusive, &p, k).unwrap();
        let mut rng = Seed(1).rng();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(game.play_coverage(&mut rng)))
        });
    }
    group.finish();
}

fn bench_parallel_estimator(c: &mut Criterion) {
    let mut group = c.benchmark_group("mc_estimate_100k");
    group.sample_size(10);
    let f = ValueProfile::zipf(20, 1.0, 1.0).unwrap();
    let p = Strategy::proportional(f.values()).unwrap();
    for &shards in &[1u64, 8, 64] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            b.iter(|| {
                estimate_symmetric(
                    &f,
                    &Exclusive,
                    &p,
                    8,
                    McConfig { trials: 100_000, seed: 2, shards },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_play, bench_parallel_estimator);
criterion_main!(benches);
