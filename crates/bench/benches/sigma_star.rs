//! Benchmark: the closed-form σ⋆ construction vs the general solver — the
//! cost of the paper's algorithm as M grows.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dispersal_core::ifd::solve_ifd;
use dispersal_core::policy::Exclusive;
use dispersal_core::sigma_star::sigma_star;
use dispersal_core::value::ValueProfile;

fn bench_sigma_star(c: &mut Criterion) {
    let mut group = c.benchmark_group("sigma_star");
    for &m in &[10usize, 100, 1000, 10_000] {
        let f = ValueProfile::zipf(m, 1.0, 1.0).unwrap();
        group.bench_with_input(BenchmarkId::new("closed_form", m), &m, |b, _| {
            b.iter(|| sigma_star(black_box(&f), 16).unwrap())
        });
    }
    group.finish();
}

fn bench_closed_form_vs_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("sigma_star_vs_solver");
    let f = ValueProfile::zipf(500, 1.0, 1.0).unwrap();
    let k = 8;
    group.bench_function("closed_form", |b| b.iter(|| sigma_star(black_box(&f), k).unwrap()));
    group.bench_function("waterfill_solver", |b| {
        b.iter(|| solve_ifd(&Exclusive, black_box(&f), k).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_sigma_star, bench_closed_form_vs_solver);
criterion_main!(benches);
