//! Benchmark: the daemon's admission batching — N concurrent response
//! requests sharing `(k, resolution, tol)` evaluated as **one**
//! policy-major `GBatch` tile — vs answering the same N requests
//! sequentially, each as its own single-row tile (what a daemon without
//! an admission window, or N one-shot CLI invocations minus process
//! startup, would do). The serving trajectory lives in
//! `BENCH_serve.json` at the repo root.
//!
//! Both variants produce bit-identical curves (`GBatch::eval_many_with`
//! is bit-identical per row regardless of batch composition), so the
//! difference is pure mechanism: the coalesced tile builds the shared
//! Bernstein basis column once per grid point for the whole group, while
//! the sequential path rebuilds it per request.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use dispersal_core::policy::{Congestion, PowerLaw};
use dispersal_serve::batch::eval_exact_tile;

const K: usize = 64;
const RESOLUTION: usize = 256;

/// A burst of `count` distinct response requests sharing one `(k, tol)`
/// shape: a power-law mechanism family with `β` swept per request.
fn burst_policies(count: usize) -> Vec<PowerLaw> {
    (0..count).map(|i| PowerLaw { beta: 0.25 + i as f64 * 0.125 }).collect()
}

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_admission");
    group.sample_size(10);
    for &n in &[4usize, 16, 64] {
        let burst = burst_policies(n);
        let refs: Vec<&dyn Congestion> = burst.iter().map(|p| p as &dyn Congestion).collect();
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| {
                for policy in &refs {
                    black_box(eval_exact_tile(&[*policy], K, black_box(RESOLUTION)).unwrap());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, _| {
            b.iter(|| black_box(eval_exact_tile(&refs, K, black_box(RESOLUTION)).unwrap()))
        });
    }
    group.finish();
}

/// CI guard mode (`-- --quick`): one floor at the acceptance cell — a
/// 16-request burst answered as one coalesced tile must beat the same
/// burst answered request-by-request. A regression here means the
/// admission window buys nothing and the daemon has lost its reason to
/// exist.
fn quick_guard() -> ! {
    use dispersal_bench::guard;
    let burst = burst_policies(16);
    let refs: Vec<&dyn Congestion> = burst.iter().map(|p| p as &dyn Congestion).collect();
    let sequential_time = guard::time_per_call(10, || {
        for policy in &refs {
            black_box(eval_exact_tile(&[*policy], K, black_box(RESOLUTION)).unwrap());
        }
    });
    let batched_time = guard::time_per_call(10, || {
        black_box(eval_exact_tile(&refs, K, black_box(RESOLUTION)).unwrap());
    });
    let ok =
        guard::check_speedup("serve admission-batch-vs-sequential", sequential_time, batched_time);
    guard::finish(ok)
}

criterion_group!(benches, bench_serve);

fn main() {
    if dispersal_bench::guard::quick_mode() {
        quick_guard();
    }
    benches();
}
