//! Benchmark: the tabulated congestion-response kernel vs the scalar
//! reference path — grid evaluation of `g_C` over 1024 points at
//! k ∈ {4, 16, 64, 256}, the trajectory recorded in `BENCH_kernel.json`
//! at the repo root.
//!
//! Three variants per k:
//!
//! * `scalar` — per-point `PayoffContext::g`, which rebuilds the binomial
//!   PMF (three `ln`-factorial walks plus an allocation) on every call;
//! * `kernel` — `GTable::eval_many_with`: one O(k) setup at table build,
//!   then the allocation-free O(k) ratio recurrence per point
//!   (bit-identical results);
//! * `fused` — `GTable::eval_fused_many_into`: pre-divided recurrence
//!   factors and a fused dot product (agrees to ~1e-14, not bitwise);
//! * `interp` — the optional dense cubic-Hermite grid: O(1) per point
//!   within a measured 1e-12 error bound.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use dispersal_core::kernel::{GTable, GridSpec};
use dispersal_core::payoff::PayoffContext;
use dispersal_core::policy::Sharing;

const GRID: usize = 1024;

fn qs() -> Vec<f64> {
    (0..GRID).map(|i| (i as f64 + 0.5) / GRID as f64).collect()
}

fn bench_g_grid(c: &mut Criterion) {
    let qs = qs();
    let mut group = c.benchmark_group("g_grid_1024");
    group.sample_size(20);
    for &k in &[4usize, 16, 64, 256] {
        let ctx = PayoffContext::new(&Sharing, k).unwrap();
        group.bench_with_input(BenchmarkId::new("scalar", k), &k, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for &q in &qs {
                    acc += ctx.g(black_box(q)).unwrap();
                }
                black_box(acc)
            })
        });
        let table = ctx.kernel();
        let mut scratch = table.scratch();
        let mut out = vec![0.0; GRID];
        group.bench_with_input(BenchmarkId::new("kernel", k), &k, |b, _| {
            b.iter(|| {
                table.eval_many_with(&mut scratch, black_box(&qs), &mut out).unwrap();
                black_box(out[GRID / 2])
            })
        });
        group.bench_with_input(BenchmarkId::new("fused", k), &k, |b, _| {
            b.iter(|| {
                table.eval_fused_many_into(black_box(&qs), &mut out).unwrap();
                black_box(out[GRID / 2])
            })
        });
        let gridded = GTable::new(&Sharing, k).unwrap().with_grid(1e-12).unwrap();
        let mut gscratch = gridded.scratch();
        group.bench_with_input(BenchmarkId::new("interp", k), &k, |b, _| {
            b.iter(|| {
                gridded.eval_fast_many_with(&mut gscratch, black_box(&qs), &mut out).unwrap();
                black_box(out[GRID / 2])
            })
        });
    }
    group.finish();
}

/// CI guard mode (`-- --quick`): two floors, both required by the
/// analysis lint's `REQUIRED_GUARD_LABELS`:
///
/// * scalar reference vs the fused kernel at `k = 64` over the 1024-point
///   grid (`fused_speedup` must stay above 1);
/// * adaptive non-uniform grid build vs the uniform cell-doubling build
///   at `k = 2048`, `tol = 1e-7` — the large-`k` regime where the uniform
///   build burns tens of thousands of `O(k)` node evaluations resolving
///   the boundary layer while adaptive bisection places a few hundred.
fn quick_guard() -> ! {
    use dispersal_bench::guard;
    let qs = qs();
    let ctx = PayoffContext::new(&Sharing, 64).unwrap();
    let table = ctx.kernel();
    let mut out = vec![0.0; GRID];
    let scalar = guard::time_per_call(20, || {
        let mut acc = 0.0;
        for &q in &qs {
            acc += ctx.g(black_box(q)).unwrap();
        }
        black_box(acc);
    });
    let fused = guard::time_per_call(20, || {
        table.eval_fused_many_into(black_box(&qs), &mut out).unwrap();
        black_box(out[GRID / 2]);
    });
    let fused_ok = guard::check_speedup("kernel fused_speedup k=64", scalar, fused);

    const BUILD_K: usize = 2048;
    const BUILD_TOL: f64 = 1e-7;
    let uniform = guard::time_per_call(3, || {
        let t = GTable::new(&Sharing, BUILD_K)
            .unwrap()
            .with_spec(GridSpec::Interpolated { tol: BUILD_TOL })
            .unwrap();
        black_box(t.grid_cells());
    });
    let adaptive = guard::time_per_call(3, || {
        let t = GTable::new(&Sharing, BUILD_K)
            .unwrap()
            .with_spec(GridSpec::NonUniform { tol: BUILD_TOL })
            .unwrap();
        black_box(t.grid_cells());
    });
    let build_ok =
        guard::check_speedup("kernel nonuniform-vs-uniform-grid-build", uniform, adaptive);
    guard::finish(fused_ok && build_ok)
}

criterion_group!(benches, bench_g_grid);

fn main() {
    if dispersal_bench::guard::quick_mode() {
        quick_guard();
    }
    benches();
}
