//! Benchmark: evolutionary dynamics — RK4 replicator steps and the logit
//! map, as a function of the number of sites.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dispersal_core::policy::Sharing;
use dispersal_core::strategy::Strategy;
use dispersal_core::value::ValueProfile;
use dispersal_sim::dynamics::{run_logit, DynamicsConfig};
use dispersal_sim::replicator::{run_replicator, ReplicatorConfig};

fn bench_replicator(c: &mut Criterion) {
    let mut group = c.benchmark_group("replicator_1k_steps");
    group.sample_size(20);
    for &m in &[4usize, 32, 256] {
        let f = ValueProfile::zipf(m, 1.0, 1.0).unwrap();
        let start = Strategy::uniform(m).unwrap();
        let config = ReplicatorConfig { max_steps: 1_000, velocity_tol: 0.0, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| run_replicator(&Sharing, &f, &start, 8, config).unwrap())
        });
    }
    group.finish();
}

fn bench_logit(c: &mut Criterion) {
    let mut group = c.benchmark_group("logit_1k_steps");
    group.sample_size(20);
    for &m in &[4usize, 32, 256] {
        let f = ValueProfile::zipf(m, 1.0, 1.0).unwrap();
        let start = Strategy::uniform(m).unwrap();
        let config = DynamicsConfig { max_steps: 1_000, tol: 0.0, beta: 100.0, damping: 0.1 };
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| run_logit(&Sharing, &f, &start, 8, config).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replicator, bench_logit);
criterion_main!(benches);
