//! Shared helpers for the experiment binaries of `dispersal-bench`.
//!
//! Every binary regenerates one experiment from EXPERIMENTS.md, writing CSV
//! (and ASCII plots) under `results/` at the workspace root and echoing a
//! summary to stdout.

use std::path::PathBuf;

/// Resolve the `results/` directory: respects `DISPERSAL_RESULTS_DIR`, else
/// walks up from the current directory to the workspace root (detected by
/// the presence of `Cargo.toml` + `crates/`), else uses `./results`.
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("DISPERSAL_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir.join("results");
        }
        if !dir.pop() {
            return PathBuf::from("results");
        }
    }
}

/// Write `contents` to `results/<name>`, creating the directory if needed.
/// Returns the full path written.
pub fn write_result(name: &str, contents: &str) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_env_override() {
        std::env::set_var("DISPERSAL_RESULTS_DIR", "/tmp/dispersal-test-results");
        assert_eq!(results_dir(), PathBuf::from("/tmp/dispersal-test-results"));
        std::env::remove_var("DISPERSAL_RESULTS_DIR");
    }

    #[test]
    fn write_result_roundtrip() {
        std::env::set_var("DISPERSAL_RESULTS_DIR", "/tmp/dispersal-test-results-rt");
        let path = write_result("probe.txt", "hello").unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "hello");
        std::env::remove_var("DISPERSAL_RESULTS_DIR");
        let _ = std::fs::remove_dir_all("/tmp/dispersal-test-results-rt");
    }
}
