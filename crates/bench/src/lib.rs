//! Shared helpers for the experiment binaries of `dispersal-bench`.
//!
//! Every binary regenerates one experiment from EXPERIMENTS.md, writing CSV
//! (and ASCII plots) under `results/` at the workspace root and echoing a
//! summary to stdout. The [`runner`] module is the shared driver: common
//! flag parsing (`--trials/--seed/--jobs/--out-dir`), wall-clock
//! reporting, and per-run JSON manifests. The [`guard`] module backs the
//! benches' `--quick` CI mode (speedup floors over scalar baselines).

pub mod guard;
pub mod runner;

use std::path::PathBuf;

/// Walk up from the current directory to the workspace root, detected by
/// the presence of `Cargo.toml` + `crates/`. `None` when no ancestor
/// matches. The single root-detection rule shared by [`results_dir`] and
/// the `check_bench_json` trajectory guard.
pub fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Resolve the `results/` directory: respects `DISPERSAL_RESULTS_DIR`,
/// else [`workspace_root`]`/results`, else `./results`.
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("DISPERSAL_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    workspace_root().map_or_else(|| PathBuf::from("results"), |root| root.join("results"))
}

/// Write `contents` to `results/<name>`, creating the directory if needed.
/// Returns the full path written.
pub fn write_result(name: &str, contents: &str) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// `DISPERSAL_RESULTS_DIR` is process-global; tests that touch it run
    /// in parallel threads, so they serialize on this lock (and restore
    /// the variable on drop).
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    struct EnvGuard {
        previous: Option<String>,
        _lock: MutexGuard<'static, ()>,
    }

    impl EnvGuard {
        fn set(value: Option<&str>) -> Self {
            let lock = ENV_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            let previous = std::env::var("DISPERSAL_RESULTS_DIR").ok();
            match value {
                Some(v) => std::env::set_var("DISPERSAL_RESULTS_DIR", v),
                None => std::env::remove_var("DISPERSAL_RESULTS_DIR"),
            }
            EnvGuard { previous, _lock: lock }
        }
    }

    impl Drop for EnvGuard {
        fn drop(&mut self) {
            match &self.previous {
                Some(v) => std::env::set_var("DISPERSAL_RESULTS_DIR", v),
                None => std::env::remove_var("DISPERSAL_RESULTS_DIR"),
            }
        }
    }

    #[test]
    fn results_dir_env_override() {
        let _guard = EnvGuard::set(Some("/tmp/dispersal-test-results"));
        assert_eq!(results_dir(), PathBuf::from("/tmp/dispersal-test-results"));
    }

    #[test]
    fn results_dir_walks_up_to_workspace_root() {
        let _guard = EnvGuard::set(None);
        // Tests run with the crate directory as cwd; the workspace root is
        // two levels up and is recognized by `Cargo.toml` + `crates/`.
        let dir = results_dir();
        assert!(dir.ends_with("results"), "unexpected results dir {}", dir.display());
        let root = dir.parent().expect("results dir must have a parent");
        assert!(
            root.join("Cargo.toml").exists() && root.join("crates").exists(),
            "walk-up did not find the workspace root (got {})",
            root.display()
        );
        // The walk-up must find the *workspace* root, not the crate dir
        // (the crate manifest lives next to src/, not next to crates/).
        assert!(!root.join("src").join("bin").exists());
    }

    #[test]
    fn write_result_roundtrip() {
        let _guard = EnvGuard::set(Some("/tmp/dispersal-test-results-rt"));
        let path = write_result("probe.txt", "hello").unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "hello");
        let _ = std::fs::remove_dir_all("/tmp/dispersal-test-results-rt");
    }
}
