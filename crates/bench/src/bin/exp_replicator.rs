//! Experiment DYN — dynamic equilibrium selection: replicator, logit, and
//! fictitious-play dynamics all converge to the IFD.
//!
//! For the policy catalog × an instance grid, integrates each dynamic from
//! an interior start and reports the distance to the analytically solved
//! IFD. Output: `results/replicator.csv`.

use dispersal_bench::runner::{experiment_main, RunContext};
use dispersal_core::prelude::*;
use dispersal_mech::catalog::standard_catalog;
use dispersal_mech::report::to_csv;
use dispersal_sim::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    experiment_main("exp_replicator", run)
}

fn run(ctx: &mut RunContext) -> Result<()> {
    let instances: Vec<(String, ValueProfile, usize)> = vec![
        ("fig1-left k=2".into(), ValueProfile::new(vec![1.0, 0.3])?, 2),
        ("4 sites k=4".into(), ValueProfile::new(vec![1.0, 0.6, 0.3, 0.1])?, 4),
        ("zipf M=10 k=3".into(), ValueProfile::zipf(10, 1.0, 1.0)?, 3),
    ];
    let mut rows: Vec<Vec<f64>> = Vec::new();
    println!("DYN: convergence of three dynamics to the IFD");
    for (name, f, k) in &instances {
        let start = Strategy::from_weights((1..=f.len()).map(|i| 1.0 + 0.01 * i as f64).collect())?;
        for named in standard_catalog() {
            // Skip degenerate policies: their IFD is a boundary point the
            // interior dynamics only approach asymptotically.
            let ctx = PayoffContext::new(named.policy.as_ref(), *k)?;
            if ctx.is_degenerate() {
                continue;
            }
            let ifd = solve_ifd(named.policy.as_ref(), f, *k)?;
            let rep = run_replicator(
                named.policy.as_ref(),
                f,
                &start,
                *k,
                ReplicatorConfig { velocity_tol: 1e-11, ..Default::default() },
            )?;
            let rep_d = rep.state.tv_distance(&ifd.strategy)?;
            let logit = run_logit(
                named.policy.as_ref(),
                f,
                &start,
                *k,
                DynamicsConfig { beta: 400.0, max_steps: 400_000, ..Default::default() },
            )?;
            let logit_d = logit.state.tv_distance(&ifd.strategy)?;
            let fp = run_fictitious_play(
                named.policy.as_ref(),
                f,
                &start,
                *k,
                DynamicsConfig {
                    beta: 400.0,
                    max_steps: 200_000,
                    tol: 1e-10,
                    ..Default::default()
                },
            )?;
            let fp_d = fp.state.tv_distance(&ifd.strategy)?;
            rows.push(vec![*k as f64, rep_d, logit_d, fp_d]);
            println!(
                "  {name} / {}: replicator tv {rep_d:.1e}, logit tv {logit_d:.1e}, \
                 fictitious-play tv {fp_d:.1e}",
                named.name
            );
            assert!(rep_d < 1e-3, "{name}/{}: replicator missed the IFD ({rep_d})", named.name);
            assert!(logit_d < 0.05, "{name}/{}: logit missed the IFD ({logit_d})", named.name);
        }
    }
    let csv = to_csv(&["k", "replicator_tv", "logit_tv", "fictitious_tv"], &rows);
    let path = ctx.write_result("replicator.csv", &csv)?;
    println!("DYN: wrote {} (all dynamics land on the IFD)", path.display());
    Ok(())
}
