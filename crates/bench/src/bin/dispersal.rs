//! `dispersal` — command-line front end to the library, for downstream
//! users who want answers without writing Rust.
//!
//! ```text
//! dispersal solve      --policy <spec> --profile <spec> -k <n>
//! dispersal sigma-star --profile <spec> -k <n>
//! dispersal optimal    --profile <spec> -k <n>
//! dispersal spoa       --policy <spec> --profile <spec> -k <n>
//! dispersal ess        --profile <spec> -k <n> [--mutants <n>]
//! dispersal evaluate   --profile <spec> -k <n>          # whole catalog
//! dispersal responses  -k <n>           # catalog g-curves, one GBatch row each
//! dispersal serve      [--addr <host:port|unix:path>] [--batch-window <ms>]
//! dispersal search-mech --profile <spec> -k <n> [--objective welfare|spoa]
//! ```
//!
//! Policy specs: `exclusive | sharing | constant | two-level:<c> |
//! power:<beta> | linear:<slope> | cooperative:<theta>`.
//! Profile specs: `zipf:<M>:<s> | geometric:<M>:<rho> |
//! linear:<M>:<hi>:<lo> | uniform:<M>:<v> | slow-decay:<M>:<k> |
//! values:<v1>,<v2>,…`.

use dispersal_bench::runner::parse_flags;
use dispersal_core::prelude::*;
use dispersal_mech::catalog::{parse_policy, parse_profile, standard_catalog};
use dispersal_mech::evaluator::{catalog_response_matrix, evaluate_catalog};
use dispersal_serve::server::ServerConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::process::ExitCode;

const USAGE: &str =
    "usage: dispersal <solve|sigma-star|optimal|spoa|ess|evaluate|responses|serve|search-mech> \
                     [--policy <spec>] [--profile <spec>] -k <n> [--mutants <n>] [--seed <n>]\n\
                     serve flags: [--addr <host:port|unix:path>] [--batch-window <ms>] \
                     [--max-batch <n>] [--max-line-bytes <n>] [--read-timeout <secs, 0 = off>]\n\
                     search-mech flags: [--objective welfare|spoa] [--budget <n>] [--wave <n>] \
                     [--children <n>] [--mutants <n>] [--seed <n>]\n\
                     run `dispersal help` for spec syntax";

/// Flag table for the shared parser in `dispersal_bench::runner`.
const FLAG_SPEC: &[(&str, &str)] = &[
    ("--policy", "policy"),
    ("--profile", "profile"),
    ("-k", "k"),
    ("--players", "k"),
    ("--mutants", "mutants"),
    ("--seed", "seed"),
    ("--addr", "addr"),
    ("--batch-window", "batch-window"),
    ("--max-batch", "max-batch"),
    ("--max-line-bytes", "max-line-bytes"),
    ("--read-timeout", "read-timeout"),
    ("--objective", "objective"),
    ("--budget", "budget"),
    ("--wave", "wave"),
    ("--children", "children"),
];

fn get_k(flags: &BTreeMap<String, String>) -> Result<usize> {
    flags
        .get("k")
        .ok_or_else(|| Error::InvalidArgument("missing -k <players>".into()))?
        .parse::<usize>()
        .map_err(|e| Error::InvalidArgument(format!("bad -k value: {e}")))
}

fn get_profile(flags: &BTreeMap<String, String>) -> Result<ValueProfile> {
    parse_profile(
        flags
            .get("profile")
            .ok_or_else(|| Error::InvalidArgument("missing --profile <spec>".into()))?,
    )
}

fn print_strategy(label: &str, f: &ValueProfile, s: &Strategy, k: usize) -> Result<()> {
    println!("{label}:");
    for x in 0..s.len().min(20) {
        println!("  site {:>3}  f = {:>9.5}  p = {:.6}", x + 1, f.value(x), s.prob(x));
    }
    if s.len() > 20 {
        println!("  … ({} more sites)", s.len() - 20);
    }
    println!("  coverage  = {:.6}", coverage(f, s, k)?);
    Ok(())
}

fn run() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return Err(Error::InvalidArgument(USAGE.into()));
    };
    if command == "help" || command == "--help" {
        println!("{USAGE}");
        return Ok(());
    }
    let flags = parse_flags(&args[1..], FLAG_SPEC)?;
    match command.as_str() {
        "solve" => {
            let f = get_profile(&flags)?;
            let k = get_k(&flags)?;
            let policy = parse_policy(
                flags
                    .get("policy")
                    .ok_or_else(|| Error::InvalidArgument("missing --policy <spec>".into()))?,
            )?;
            let ifd = solve_ifd_allow_degenerate(policy.as_ref(), &f, k)?;
            print_strategy(&format!("IFD of {} (k = {k})", policy.name()), &f, &ifd.strategy, k)?;
            let ctx = PayoffContext::new(policy.as_ref(), k)?;
            println!("  payoff    = {:.6}", ctx.symmetric_payoff(&f, &ifd.strategy)?);
            println!("  support   = {}", ifd.support);
            println!("  residual  = {:.2e}", ifd.residual);
        }
        "sigma-star" => {
            let f = get_profile(&flags)?;
            let k = get_k(&flags)?;
            let star = sigma_star(&f, k)?;
            print_strategy(&format!("sigma* (k = {k})"), &f, &star.strategy, k)?;
            println!("  W         = {}", star.support);
            println!("  alpha     = {:.6}", star.alpha);
            println!("  nu        = {:.6}", star.equilibrium_value());
        }
        "optimal" => {
            let f = get_profile(&flags)?;
            let k = get_k(&flags)?;
            let opt = optimal_coverage(&f, k)?;
            print_strategy(&format!("optimal-coverage strategy (k = {k})"), &f, &opt.strategy, k)?;
            println!("  obs-1 bound = {:.6}", observation1_bound(&f, k));
        }
        "spoa" => {
            let f = get_profile(&flags)?;
            let k = get_k(&flags)?;
            let policy = parse_policy(
                flags
                    .get("policy")
                    .ok_or_else(|| Error::InvalidArgument("missing --policy <spec>".into()))?,
            )?;
            let point = spoa(policy.as_ref(), &f, k)?;
            println!("policy              = {}", policy.name());
            println!("optimal coverage    = {:.6}", point.optimal_coverage);
            println!("equilibrium coverage= {:.6}", point.equilibrium_coverage);
            println!("SPoA                = {:.6}", point.ratio);
        }
        "ess" => {
            let f = get_profile(&flags)?;
            let k = get_k(&flags)?;
            let mutants = flags
                .get("mutants")
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|e| Error::InvalidArgument(format!("bad --mutants: {e}")))?
                .unwrap_or(100);
            let seed = flags
                .get("seed")
                .map(|s| s.parse::<u64>())
                .transpose()
                .map_err(|e| Error::InvalidArgument(format!("bad --seed: {e}")))?
                .unwrap_or(42);
            let star = sigma_star(&f, k)?;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let report = probe_ess_k(&Exclusive, &f, &star.strategy, mutants, &mut rng, k)?;
            println!("candidate           = sigma* (k = {k})");
            println!("mutants tested      = {}", report.mutants_tested);
            println!("repelled            = {}", report.repelled);
            println!("indistinguishable   = {}", report.indistinguishable);
            println!("invasions           = {}", report.invasions.len());
            println!("worst margin        = {:.3e}", report.worst_margin);
            println!(
                "verdict             = {}",
                if report.passed() { "ESS (no invasion found)" } else { "NOT an ESS" }
            );
        }
        "evaluate" => {
            let f = get_profile(&flags)?;
            let k = get_k(&flags)?;
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let evals = evaluate_catalog(&f, k, 0, &mut rng)?;
            println!(
                "{:<20} {:>10} {:>10} {:>8} {:>9} {:>8}",
                "policy", "eq-cover", "opt-cover", "SPoA", "payoff", "support"
            );
            for e in evals {
                println!(
                    "{:<20} {:>10.5} {:>10.5} {:>8.4} {:>9.5} {:>8}",
                    e.policy,
                    e.equilibrium_coverage,
                    e.optimal_coverage,
                    e.spoa,
                    e.equilibrium_payoff,
                    e.ifd_support
                );
            }
        }
        "responses" => {
            // The whole catalog evaluated as one policy-major GBatch: every
            // mechanism is one row against a shared Bernstein basis column.
            // With --policy, just that one curve — the one-shot equivalent
            // of a single daemon response request (the serve loadgen's
            // baseline).
            let k = get_k(&flags)?;
            let catalog = match flags.get("policy") {
                None => standard_catalog(),
                Some(spec) => vec![dispersal_mech::catalog::NamedPolicy {
                    name: spec.clone(),
                    policy: parse_policy(spec)?,
                }],
            };
            let resolution = 256;
            let response = catalog_response_matrix(&catalog, k, resolution)?;
            println!(
                "{:<20} {:>10} {:>10} {:>10} {:>11}",
                "policy", "g(0.25)", "g(0.5)", "g(0.75)", "tolerance"
            );
            for (r, name) in response.names.iter().enumerate() {
                let row = response.row(r);
                println!(
                    "{:<20} {:>10.5} {:>10.5} {:>10.5} {:>11.5}",
                    name,
                    row[resolution / 4],
                    row[resolution / 2],
                    row[3 * resolution / 4],
                    response.tolerance_score[r]
                );
            }
        }
        "search-mech" => {
            // Parallel best-first search over mechanism space: maximize
            // welfare (or minimize SPoA) over parameterized congestion
            // families, subject to ESS feasibility.
            let f = get_profile(&flags)?;
            let k = get_k(&flags)?;
            let parse_usize = |name: &str, default: usize| -> Result<usize> {
                flags
                    .get(name)
                    .map(|s| s.parse::<usize>())
                    .transpose()
                    .map_err(|e| Error::InvalidArgument(format!("bad --{name}: {e}")))
                    .map(|v| v.unwrap_or(default))
            };
            let mut cfg = dispersal_search::parallel::SearchConfig::new(k, f);
            if let Some(spec) = flags.get("objective") {
                cfg.objective = dispersal_search::parallel::Objective::parse(spec)?;
            }
            cfg.budget = parse_usize("budget", cfg.budget)?;
            cfg.wave = parse_usize("wave", cfg.wave)?;
            cfg.children = parse_usize("children", cfg.children)?;
            cfg.ess_mutants = parse_usize("mutants", cfg.ess_mutants)?;
            cfg.seed = flags
                .get("seed")
                .map(|s| s.parse::<u64>())
                .transpose()
                .map_err(|e| Error::InvalidArgument(format!("bad --seed: {e}")))?
                .unwrap_or(cfg.seed);
            let outcome = dispersal_search::parallel::search_mechanisms(&cfg)?;
            let best = &outcome.best;
            println!("best mechanism      = {}", best.spec);
            println!("family              = {}", best.family);
            println!("params              = {:?}", best.params);
            println!("welfare             = {:.6}", best.welfare);
            println!("optimal coverage    = {:.6}", best.optimal_coverage);
            println!("SPoA                = {:.6}", best.spoa);
            println!("ESS margin          = {:.3e}", best.ess_margin);
            println!(
                "ESS certified       = {}",
                if best.ess_passed { "yes" } else { "no (probe skipped)" }
            );
            println!("node id             = {}", best.node_id);
            println!(
                "expansions          = {} ({} evaluations, {} frontier left)",
                outcome.expansions, outcome.evaluations, outcome.frontier_remaining
            );
        }
        "serve" => {
            // Grow the one-shot CLI into a long-lived daemon: warm caches,
            // a persistent pool, and cross-request admission batching.
            // Runs until a client sends {"cmd":"shutdown"}.
            let addr = flags.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:4891".to_string());
            let window_ms = flags
                .get("batch-window")
                .map(|s| s.parse::<u64>())
                .transpose()
                .map_err(|e| Error::InvalidArgument(format!("bad --batch-window: {e}")))?
                .unwrap_or(2);
            let max_batch = flags
                .get("max-batch")
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|e| Error::InvalidArgument(format!("bad --max-batch: {e}")))?
                .unwrap_or(256);
            let defaults = ServerConfig::default();
            let max_line_bytes = flags
                .get("max-line-bytes")
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|e| Error::InvalidArgument(format!("bad --max-line-bytes: {e}")))?
                .unwrap_or(defaults.max_line_bytes);
            let read_timeout = flags
                .get("read-timeout")
                .map(|s| s.parse::<u64>())
                .transpose()
                .map_err(|e| Error::InvalidArgument(format!("bad --read-timeout: {e}")))?
                .map_or(defaults.read_timeout, |secs| {
                    // 0 disables the idle timeout.
                    (secs > 0).then(|| std::time::Duration::from_secs(secs))
                });
            let server = dispersal_serve::server::Server::bind(ServerConfig {
                addr,
                batch_window: std::time::Duration::from_millis(window_ms),
                max_batch,
                max_line_bytes,
                read_timeout,
            })?;
            println!("listening on {}", server.addr());
            server.join();
        }
        other => {
            return Err(Error::InvalidArgument(format!("unknown command '{other}'\n{USAGE}")));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
