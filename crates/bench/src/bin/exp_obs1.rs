//! Experiment OBS1 — Observation 1: the optimal symmetric coverage always
//! exceeds `(1 − 1/e)·Σ_{x ≤ k} f(x)`.
//!
//! Sweeps profile families × (M, k) and tabulates the realized ratio
//! `Cover(p⋆) / Σ_{x ≤ k} f(x)` against the bound `1 − 1/e ≈ 0.6321`.
//! Output: `results/obs1.csv` + Markdown table on stdout.

use dispersal_bench::runner::{experiment_main, RunContext};
use dispersal_core::prelude::*;
use dispersal_mech::report::{markdown_table, to_csv};
use std::process::ExitCode;

fn main() -> ExitCode {
    experiment_main("exp_obs1", run)
}

fn run(ctx: &mut RunContext) -> Result<()> {
    let bound = 1.0 - (-1.0f64).exp();
    type FamilyFn = Box<dyn Fn(usize) -> Result<ValueProfile>>;
    let families: Vec<(String, FamilyFn)> = vec![
        ("uniform".into(), Box::new(|m| ValueProfile::uniform(m, 1.0))),
        ("zipf(1.0)".into(), Box::new(|m| ValueProfile::zipf(m, 1.0, 1.0))),
        ("zipf(0.3)".into(), Box::new(|m| ValueProfile::zipf(m, 1.0, 0.3))),
        ("geometric(0.9)".into(), Box::new(|m| ValueProfile::geometric(m, 1.0, 0.9))),
        ("geometric(0.5)".into(), Box::new(|m| ValueProfile::geometric(m, 1.0, 0.5))),
        ("linear(0.05)".into(), Box::new(|m| ValueProfile::linear(m, 1.0, 0.05))),
    ];
    let ms = [10usize, 100, 1000];
    let ks = [2usize, 5, 10, 50];
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut md_rows: Vec<Vec<String>> = Vec::new();
    let mut worst_ratio = f64::INFINITY;
    let mut violations = 0usize;
    for (name, family) in &families {
        for &m in &ms {
            for &k in &ks {
                if k > m {
                    continue;
                }
                let f = family(m)?;
                let opt = optimal_coverage(&f, k)?;
                let topk = f.top_sum(k);
                let ratio = opt.coverage / topk;
                if ratio <= bound {
                    violations += 1;
                }
                worst_ratio = worst_ratio.min(ratio);
                rows.push(vec![m as f64, k as f64, ratio, bound]);
                md_rows.push(vec![
                    name.clone(),
                    m.to_string(),
                    k.to_string(),
                    format!("{ratio:.4}"),
                    format!("{bound:.4}"),
                    if ratio > bound { "ok".into() } else { "VIOLATED".into() },
                ]);
            }
        }
    }
    let csv = to_csv(&["m", "k", "coverage_over_topk", "bound"], &rows);
    let path = ctx.write_result("obs1.csv", &csv)?;
    println!(
        "{}",
        markdown_table(
            &["family", "M", "k", "Cover(p*)/top-k", "bound (1-1/e)", "status"],
            &md_rows
        )
    );
    println!("OBS1: wrote {}", path.display());
    println!(
        "OBS1: worst ratio {worst_ratio:.4} vs bound {bound:.4}; violations: {violations} (paper predicts 0)"
    );
    assert_eq!(violations, 0, "Observation 1 violated");
    Ok(())
}
