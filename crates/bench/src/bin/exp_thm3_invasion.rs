//! Experiment THM3 — Theorem 3: σ⋆ is an ESS under the exclusive policy.
//!
//! Three layers of evidence:
//! 1. exact ESS-characterization checks of σ⋆ against structured + random
//!    mutants (Poisson–binomial payoffs, machine precision);
//! 2. invasion barriers `ε_π` estimated from Eq. (3);
//! 3. finite-population Monte-Carlo invasions: mutant minorities earn
//!    strictly less than σ⋆ residents.
//!
//! Output: `results/thm3.csv` + summary.

use dispersal_bench::runner::{experiment_main, RunContext};
use dispersal_core::prelude::*;
use dispersal_mech::report::to_csv;
use dispersal_sim::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::process::ExitCode;

fn main() -> ExitCode {
    experiment_main("exp_thm3_invasion", run)
}

fn run(ctx: &mut RunContext) -> Result<()> {
    let instances: Vec<(String, ValueProfile, usize)> = vec![
        ("fig1-left k=2".into(), ValueProfile::new(vec![1.0, 0.3])?, 2),
        ("fig1-right k=2".into(), ValueProfile::new(vec![1.0, 0.5])?, 2),
        ("3 sites k=3".into(), ValueProfile::new(vec![1.0, 0.5, 0.25])?, 3),
        ("zipf M=8 k=4".into(), ValueProfile::zipf(8, 1.0, 1.0)?, 4),
        ("geometric M=6 k=5".into(), ValueProfile::geometric(6, 1.0, 0.7)?, 5),
    ];
    let mut rows: Vec<Vec<f64>> = Vec::new();
    println!("THM3: ESS verification of sigma* under the exclusive policy");
    for (name, f, k) in &instances {
        let star = sigma_star(f, *k)?;
        let mut rng = ChaCha8Rng::seed_from_u64(2024);
        let report = probe_ess_k(&Exclusive, f, &star.strategy, 200, &mut rng, *k)?;
        assert!(report.passed(), "{name}: mutants invaded: {:?}", report.invasions);

        // Invasion barrier against the uniform mutant.
        let payoff_ctx = PayoffContext::new(&Exclusive, *k)?;
        let mutant = Strategy::uniform(f.len())?;
        let barrier = invasion_barrier(&payoff_ctx, f, &star.strategy, &mutant, 200)?;

        // Finite-sample invasion: epsilon = 0.1 mutants.
        let inv = run_invasion(
            &Exclusive,
            f,
            &star.strategy,
            &mutant,
            *k,
            InvasionConfig {
                epsilon: 0.1,
                matches: ctx.trials_or(400_000),
                seed: ctx.seed_or(7),
                shards: 16,
            },
        )?;
        rows.push(vec![
            *k as f64,
            report.mutants_tested as f64,
            report.worst_margin,
            barrier,
            inv.advantage,
            inv.analytic_advantage,
        ]);
        println!(
            "  {name}: {} mutants probed, all repelled (worst margin {:.2e}); \
             uniform-mutant barrier eps = {barrier:.2}; empirical advantage at eps=0.1: \
             {:+.5} (analytic {:+.5})",
            report.mutants_tested, report.worst_margin, inv.advantage, inv.analytic_advantage
        );
    }
    let csv = to_csv(
        &["k", "mutants", "worst_margin", "uniform_barrier", "mc_advantage", "analytic_advantage"],
        &rows,
    );
    let path = ctx.write_result("thm3.csv", &csv)?;
    println!("THM3: wrote {} (sigma* is an ESS on every instance)", path.display());
    Ok(())
}
