//! Experiment KO2 — the Kleinberg–Oren / Vetta bound: `SPoA(C_share) ≤ 2`.
//!
//! Runs the adversarial instance search for the sharing policy at several
//! player counts; the largest ratio found must stay below 2, and should
//! grow with `k` toward its asymptote. Also demonstrates the
//! Kleinberg–Oren reward-design escape hatch: with designed rewards the
//! sharing equilibrium recovers optimal coverage (at the cost of knowing
//! `k`). Output: `results/spoa_sharing.csv`.

use dispersal_bench::runner::{experiment_main, RunContext};
use dispersal_core::prelude::*;
use dispersal_mech::adversarial::{adversarial_spoa, AdversarialConfig};
use dispersal_mech::kleinberg_oren::{design_rewards, verify_design};
use dispersal_mech::report::to_csv;
use std::process::ExitCode;

fn main() -> ExitCode {
    experiment_main("exp_spoa_sharing", run)
}

fn run(ctx: &mut RunContext) -> Result<()> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    println!("KO2: adversarial SPoA of the sharing policy (bound: 2)");
    for &k in &[2usize, 3, 5, 8] {
        let result = adversarial_spoa(
            &Sharing,
            k,
            AdversarialConfig {
                m: 6 * k,
                random_starts: 6,
                iterations: 250,
                step: 0.2,
                seed: ctx.seed_or(1234),
            },
        )?;
        println!(
            "  k = {k}: max SPoA found {:.5} (< 2: {})",
            result.best_ratio,
            result.best_ratio < 2.0
        );
        assert!(result.best_ratio < 2.0 + 1e-9, "Vetta bound violated at k = {k}");
        assert!(result.best_ratio > 1.0, "sharing should be suboptimal somewhere");
        rows.push(vec![k as f64, result.best_ratio, 2.0]);
    }
    // Reward-design escape hatch on a representative instance.
    let k = 4usize;
    let f = ValueProfile::zipf(12, 1.0, 0.8)?;
    let star = sigma_star(&f, k)?.strategy;
    let design = design_rewards(&Sharing, &star, k, 1.0)?;
    let err = verify_design(&Sharing, &design, &star)?;
    let opt = optimal_coverage(&f, k)?.coverage;
    let plain_eq = solve_ifd(&Sharing, &f, k)?;
    let plain_cov = coverage(&f, &plain_eq.strategy, k)?;
    println!(
        "KO2: sharing with designed rewards reaches optimal coverage {opt:.6} \
         (design error {err:.1e}); plain sharing covers {plain_cov:.6}"
    );
    assert!(err < 1e-7);
    let csv = to_csv(&["k", "max_spoa_found", "vetta_bound"], &rows);
    let path = ctx.write_result("spoa_sharing.csv", &csv)?;
    println!("KO2: wrote {}", path.display());
    Ok(())
}
