//! Experiment EXT — the paper's Section 5.1 future-work extensions:
//! visit costs and capacity-limited coverage.
//!
//! * Visit costs: sweeping a travel cost on a subset of sites shows the
//!   equilibrium draining those sites, with net values equalized on the
//!   support (the IFD conditions generalize cleanly).
//! * Capacity: with per-player consumption caps, coverage saturates and
//!   the advantage of spreading shrinks — quantifying when the paper's
//!   "one player consumes the full site" assumption matters.
//!
//! Output: `results/extensions.csv`.

use dispersal_bench::runner::{experiment_main, RunContext};
use dispersal_core::extensions::{capacity_coverage, solve_ifd_with_costs};
use dispersal_core::prelude::*;
use dispersal_mech::report::to_csv;
use std::process::ExitCode;

fn main() -> ExitCode {
    experiment_main("exp_extensions", run)
}

fn run(ctx: &mut RunContext) -> Result<()> {
    let f = ValueProfile::new(vec![1.0, 0.8, 0.6, 0.4])?;
    let k = 4usize;
    let mut rows: Vec<Vec<f64>> = Vec::new();

    println!("EXT-A: visit costs on site 2 (0-based index 1), exclusive policy, k = {k}");
    for i in 0..=8 {
        let tax = i as f64 * 0.05;
        let costs = [0.0, tax, 0.0, 0.0];
        let ifd = solve_ifd_with_costs(&Exclusive, &f, &costs, k)?;
        let cov = coverage(&f, &ifd.strategy, k)?;
        println!(
            "  tax = {tax:.2}: p(site2) = {:.4}, support = {}, net value = {:.4}, coverage = {:.4}",
            ifd.strategy.prob(1),
            ifd.support,
            ifd.value,
            cov
        );
        rows.push(vec![tax, ifd.strategy.prob(1), ifd.value, cov]);
    }
    // Sanity: the taxed site's equilibrium probability is non-increasing.
    for w in rows.windows(2) {
        assert!(w[1][1] <= w[0][1] + 1e-9, "taxed site gained visitors");
    }

    println!("\nEXT-B: capacity-limited coverage of sigma* vs point mass, k = {k}");
    let star = sigma_star(&f, k)?.strategy;
    let stacked = Strategy::delta(f.len(), 0)?;
    let mut cap_rows: Vec<Vec<f64>> = Vec::new();
    for &cap in &[0.05, 0.1, 0.2, 0.3, 0.5, 1.0] {
        let spread_cov = capacity_coverage(&f, &star, k, cap)?;
        let stack_cov = capacity_coverage(&f, &stacked, k, cap)?;
        println!(
            "  cap = {cap:.2}: sigma* extracts {spread_cov:.4}, point mass extracts {stack_cov:.4}"
        );
        cap_rows.push(vec![cap, spread_cov, stack_cov]);
    }
    // At large cap, spreading wins (the paper's regime); at tiny cap both
    // collapse to ~ k*cap.
    let first = &cap_rows[0];
    assert!((first[1] - first[2]).abs() < 0.05, "tiny cap should nearly equalize");
    let last = &cap_rows[cap_rows.len() - 1];
    assert!(last[1] > last[2], "large cap should favor spreading");

    let mut csv = to_csv(&["tax", "p_taxed_site", "net_value", "coverage"], &rows);
    csv.push('\n');
    csv.push_str(&to_csv(&["cap", "sigma_star_extraction", "point_mass_extraction"], &cap_rows));
    let path = ctx.write_result("extensions.csv", &csv)?;
    println!("\nEXT: wrote {}", path.display());
    Ok(())
}
