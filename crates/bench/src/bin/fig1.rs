//! Experiment FIG1-L / FIG1-R — regenerate Figure 1 of the paper.
//!
//! Two players over two sites; the congestion function is the two-level
//! family `C_c(1) = 1, C_c(2) = c` swept over `c ∈ [−0.5, 0.5]`. For each
//! `c` we plot the coverage of (red) the ESS, i.e. the IFD of `C_c`;
//! (green) the optimal symmetric coverage (constant in `c`); and (blue) the
//! symmetric strategy maximizing individual payoff. Left panel:
//! `f = (1, 0.3)`; right panel: `f = (1, 0.5)`.
//!
//! Output: `results/fig1_left.csv`, `results/fig1_right.csv`,
//! `results/fig1.txt` (ASCII rendering), summary on stdout.

use dispersal_bench::runner::{experiment_main, RunContext};
use dispersal_core::prelude::*;
use dispersal_mech::report::{ascii_plot, to_csv, Series};
use std::process::ExitCode;

struct Panel {
    name: &'static str,
    f2: f64,
}

fn main() -> ExitCode {
    experiment_main("fig1", run)
}

fn run(ctx: &mut RunContext) -> Result<()> {
    let k = 2usize;
    let panels = [Panel { name: "left", f2: 0.3 }, Panel { name: "right", f2: 0.5 }];
    let cs: Vec<f64> = (0..=100).map(|i| -0.5 + i as f64 * 0.01).collect();
    let mut ascii_all = String::new();
    for panel in &panels {
        let f = ValueProfile::new(vec![1.0, panel.f2])?;
        let optimum = optimal_coverage(&f, k)?.coverage;
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(cs.len());
        let mut ess_cov = Vec::with_capacity(cs.len());
        let mut wel_cov = Vec::with_capacity(cs.len());
        let mut opt_cov = Vec::with_capacity(cs.len());
        for &c in &cs {
            let policy = TwoLevel::new(c)?;
            let ifd = solve_ifd(&policy, &f, k)?;
            let ess_coverage = coverage(&f, &ifd.strategy, k)?;
            let welfare = welfare_optimum(&policy, &f, k)?;
            let welfare_coverage = coverage(&f, &welfare.strategy, k)?;
            rows.push(vec![c, ess_coverage, optimum, welfare_coverage]);
            ess_cov.push(ess_coverage);
            wel_cov.push(welfare_coverage);
            opt_cov.push(optimum);
        }
        let csv =
            to_csv(&["c", "ess_coverage", "optimum_coverage", "welfare_optimum_coverage"], &rows);
        let path = ctx.write_result(&format!("fig1_{}.csv", panel.name), &csv)?;
        println!("FIG1-{}: wrote {}", panel.name, path.display());

        // The paper's headline: at c = 0 (exclusive) the ESS coverage
        // touches the optimum; elsewhere it is strictly below.
        let at_zero = ess_cov[50];
        println!(
            "  f = (1, {}): ESS coverage at c=0 is {:.6} vs optimum {:.6} (gap {:.2e})",
            panel.f2,
            at_zero,
            optimum,
            (optimum - at_zero).abs()
        );
        let plot = ascii_plot(
            &format!("Figure 1 ({}): coverage vs c, f = (1, {})", panel.name, panel.f2),
            &cs,
            &[
                Series { label: "optimum coverage".into(), glyph: '-', values: opt_cov.clone() },
                Series { label: "welfare optimum".into(), glyph: 'o', values: wel_cov.clone() },
                Series { label: "ESS (IFD of C_c)".into(), glyph: '*', values: ess_cov.clone() },
            ],
            20,
        );
        ascii_all.push_str(&plot);
        ascii_all.push('\n');
    }
    let path = ctx.write_result("fig1.txt", &ascii_all)?;
    println!("FIG1: ASCII panels at {}", path.display());
    print!("{ascii_all}");
    Ok(())
}
