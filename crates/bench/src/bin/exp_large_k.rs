//! Experiment LK — large-`k` scaling, recorded: the tier-2 assertions of
//! `tests/large_k.rs` re-run as measurements (CSV + manifest), extended
//! by the `k → 10⁶` non-uniform grid builds that motivate
//! [`GridSpec::NonUniform`].
//!
//! Three parts:
//!
//! 1. σ⋆ support growth and IFD residual through `k = 10⁴` (closed form,
//!    no kernel);
//! 2. near-exclusive congestion responses converging to `(1−q)^{k−1}`
//!    at `k ∈ {10³, 10⁴}` through the interpolated kernel;
//! 3. adaptive non-uniform grid builds at `k ∈ {10⁴, 10⁵, 10⁶}`: cell
//!    counts, build time, and the interpolation error verified against
//!    exact kernel evaluations at fresh sample points.
//!
//! Output: `results/large_k_sigma.csv`, `results/large_k_gcurve.csv`,
//! `results/large_k_grid.csv`.

use dispersal_bench::runner::{experiment_main, RunContext};
use dispersal_core::prelude::*;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    experiment_main("exp_large_k", run)
}

fn run(ctx: &mut RunContext) -> Result<()> {
    // --- Part 1: σ⋆ support grows with k (Section 2.1), residual stays
    // at the Claim 7 floor. ---
    println!("LK: sigma* support growth through k = 10^4");
    let f = ValueProfile::zipf(40_000, 1.0, 1.0)?;
    let mut csv = String::from("k,support,ifd_residual\n");
    let mut prev_support = 0usize;
    for k in [10usize, 100, 1_000, 10_000] {
        let star = sigma_star(&f, k)?;
        let residual = dispersal_core::sigma_star::ifd_residual_exclusive(&f, &star.strategy, k)?;
        csv.push_str(&format!("{k},{},{residual:.3e}\n", star.support));
        println!("  k = {k}: support {} residual {residual:.1e}", star.support);
        assert!(star.support > prev_support, "support must grow strictly at k = {k}");
        assert!(residual < 1e-9, "k = {k}: IFD residual {residual}");
        prev_support = star.support;
    }
    let path = ctx.write_result("large_k_sigma.csv", &csv)?;
    println!("LK: wrote {}", path.display());

    // --- Part 2: near-exclusive g-curves converge to the exclusive one
    // as the power-law exponent grows, at k = 10^3 and 10^4. ---
    println!("LK: near-exclusive g-curve deviation from (1-q)^(k-1)");
    let grid: Vec<f64> = (0..=2048).map(|i| i as f64 / 2048.0).collect();
    let mut csv = String::from("k,beta,tol,deviation,grid_cells\n");
    for (k, tol, final_bound) in [(1_000usize, 1e-6, 0.04), (10_000, 1e-3, 0.04)] {
        let n = (k - 1) as i32;
        let mut prev_deviation = f64::INFINITY;
        for beta in [1.0f64, 2.0, 4.0] {
            let table = GTable::new(&PowerLaw { beta }, k)?.with_grid(tol)?;
            let mut scratch = table.scratch();
            let mut deviation = 0.0f64;
            for &q in &grid {
                let interp = table.eval_fast_with(&mut scratch, q);
                deviation = deviation.max((interp - (1.0 - q).powi(n)).abs());
            }
            csv.push_str(&format!("{k},{beta},{tol:.0e},{deviation:.6},{}\n", table.grid_cells()));
            println!("  k = {k} beta = {beta}: deviation {deviation:.3}");
            assert!(deviation < prev_deviation, "k = {k} beta = {beta}: deviation must shrink");
            prev_deviation = deviation;
        }
        assert!(prev_deviation < final_bound, "k = {k}: final deviation {prev_deviation}");
    }
    let path = ctx.write_result("large_k_gcurve.csv", &csv)?;
    println!("LK: wrote {}", path.display());

    // --- Part 3: adaptive non-uniform builds to k = 10^6. Verification
    // points are fresh (offset from any node pattern); their exact
    // evaluations are O(k) each, so the count scales with --trials. ---
    println!("LK: non-uniform grid builds at k up to 10^6");
    let samples = (ctx.trials_or(40_000) / 250).clamp(8, 160) as usize;
    let tol = 1e-9;
    let mut csv = String::from("policy,k,tol,cells,build_ms,measured_error,sampled_error,scale\n");
    let policies: [(&str, &dyn Congestion); 2] =
        [("exclusive", &Exclusive), ("powerlaw_2", &PowerLaw { beta: 2.0 })];
    for (name, c) in policies {
        for k in [10_000usize, 100_000, 1_000_000] {
            let started = Instant::now();
            let table = GTable::new(c, k)?.with_spec(GridSpec::NonUniform { tol })?;
            let build_ms = started.elapsed().as_secs_f64() * 1e3;
            let scale = table.scale();
            let measured = table.grid_error().unwrap_or(f64::NAN);
            let mut scratch = table.scratch();
            let mut sampled = 0.0f64;
            for i in 0..samples {
                // Irrational stride keeps samples away from cell nodes.
                let q = ((i as f64 + 0.5) * std::f64::consts::FRAC_1_SQRT_2) % 1.0;
                let err = (table.eval_fast_with(&mut scratch, q)
                    - table.eval_with(&mut scratch, q))
                .abs();
                sampled = sampled.max(err);
            }
            csv.push_str(&format!(
                "{name},{k},{tol:.0e},{},{build_ms:.1},{measured:.3e},{sampled:.3e},{scale:.3e}\n",
                table.grid_cells()
            ));
            println!(
                "  {name} k = {k}: {} cells in {build_ms:.0} ms, midpoint error {measured:.1e}, \
                 sampled error {sampled:.1e} (target {:.1e})",
                table.grid_cells(),
                tol * scale
            );
            // The build guarantees the midpoint bound; arbitrary points
            // budget the standard 4x factor over it.
            assert!(measured <= tol * scale, "{name} k = {k}: build exceeded tolerance");
            assert!(
                sampled <= 4.0 * tol * scale,
                "{name} k = {k}: off-midpoint error {sampled:.2e} beyond 4x budget"
            );
        }
    }
    let path = ctx.write_result("large_k_grid.csv", &csv)?;
    println!("LK: wrote {} ({samples} verification points per build)", path.display());
    Ok(())
}
