//! `check_bench_json` — CI guard for the repo-root `BENCH_*.json`
//! performance trajectories.
//!
//! Those files are the evidence trail behind every kernel PR (scalar →
//! tabulated → batched), and their contract is append-only measurement
//! history. This binary validates each file with the vendored serde
//! codec:
//!
//! * the file parses as a JSON object with non-empty `bench` and
//!   `description` strings and a non-empty `history` array;
//! * every history entry carries a `date` (ISO `YYYY-MM-DD`), a `pr`
//!   number ≥ 1, and a non-empty `results` array;
//! * entry dates are monotone non-decreasing (history is appended, never
//!   rewritten or reordered);
//! * every value inside a result row is a finite number, a string, or a
//!   boolean — no nulls, NaNs, or nested containers.
//!
//! Usage: `check_bench_json [FILE...]` — with no arguments it scans the
//! workspace root (located by walking up from the current directory) for
//! `BENCH_*.json`. Exits non-zero listing every violation.

use serde::Value;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The workspace root per the shared detection rule, falling back to the
/// current directory when no ancestor matches.
fn workspace_root() -> PathBuf {
    dispersal_bench::workspace_root().unwrap_or_else(|| PathBuf::from("."))
}

/// Parse an ISO `YYYY-MM-DD` date into a lexicographically ordered key.
fn parse_date(s: &str) -> Option<(u32, u32, u32)> {
    let bytes = s.as_bytes();
    if bytes.len() != 10 || bytes[4] != b'-' || bytes[7] != b'-' {
        return None;
    }
    let year: u32 = s[0..4].parse().ok()?;
    let month: u32 = s[5..7].parse().ok()?;
    let day: u32 = s[8..10].parse().ok()?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    Some((year, month, day))
}

fn field<'v>(entries: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Require a non-empty string field, recording a violation otherwise.
fn check_string(entries: &[(String, Value)], name: &str, errors: &mut Vec<String>) {
    match field(entries, name) {
        Some(Value::Str(s)) if !s.is_empty() => {}
        Some(_) => errors.push(format!("`{name}` must be a non-empty string")),
        None => errors.push(format!("missing `{name}` field")),
    }
}

/// One result-row value: finite number, string, or bool.
fn check_result_value(key: &str, v: &Value, entry: usize, errors: &mut Vec<String>) {
    match v {
        Value::Float(f) if !f.is_finite() => {
            errors.push(format!("history[{entry}]: result field `{key}` is not finite ({f})"))
        }
        Value::Float(_) | Value::Int(_) | Value::UInt(_) | Value::Str(_) | Value::Bool(_) => {}
        other => errors.push(format!(
            "history[{entry}]: result field `{key}` must be a scalar, got {other:?}"
        )),
    }
}

fn validate(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let value: Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => return vec![format!("does not parse as JSON: {e}")],
    };
    let Some(top) = value.as_object() else {
        return vec!["top level must be a JSON object".into()];
    };
    check_string(top, "bench", &mut errors);
    check_string(top, "description", &mut errors);
    let history = match field(top, "history") {
        Some(Value::Array(entries)) if !entries.is_empty() => entries.as_slice(),
        Some(Value::Array(_)) => {
            errors.push("`history` must be non-empty (record at least one measurement)".into());
            return errors;
        }
        Some(_) => {
            errors.push("`history` must be an array".into());
            return errors;
        }
        None => {
            errors.push("missing `history` field".into());
            return errors;
        }
    };
    let mut last_date: Option<(u32, u32, u32)> = None;
    for (i, entry) in history.iter().enumerate() {
        let Some(obj) = entry.as_object() else {
            errors.push(format!("history[{i}] must be an object"));
            continue;
        };
        match field(obj, "date").and_then(|v| v.as_str()) {
            Some(s) => match parse_date(s) {
                Some(date) => {
                    if let Some(prev) = last_date {
                        if date < prev {
                            errors.push(format!(
                                "history[{i}]: date {s} precedes the previous entry — \
                                 history must stay append-only (monotone dates)"
                            ));
                        }
                    }
                    last_date = Some(date);
                }
                None => errors.push(format!("history[{i}]: date `{s}` is not YYYY-MM-DD")),
            },
            None => errors.push(format!("history[{i}]: missing string `date`")),
        }
        match field(obj, "pr") {
            Some(Value::UInt(n)) if *n >= 1 => {}
            Some(Value::Int(n)) if *n >= 1 => {}
            Some(_) => errors.push(format!("history[{i}]: `pr` must be an integer >= 1")),
            None => errors.push(format!("history[{i}]: missing `pr` number")),
        }
        match field(obj, "results") {
            Some(Value::Array(rows)) if !rows.is_empty() => {
                for (j, row) in rows.iter().enumerate() {
                    match row.as_object() {
                        Some(fields) if !fields.is_empty() => {
                            for (key, v) in fields {
                                check_result_value(key, v, i, &mut errors);
                            }
                        }
                        _ => errors
                            .push(format!("history[{i}].results[{j}] must be a non-empty object")),
                    }
                }
            }
            Some(_) | None => {
                errors.push(format!("history[{i}]: `results` must be a non-empty array"))
            }
        }
    }
    errors
}

fn check_file(path: &Path) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Ok(validate(&text))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let files: Vec<PathBuf> = if args.is_empty() {
        let root = workspace_root();
        let mut found: Vec<PathBuf> = match std::fs::read_dir(&root) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                })
                .collect(),
            Err(e) => {
                eprintln!("error: cannot scan {}: {e}", root.display());
                return ExitCode::FAILURE;
            }
        };
        found.sort();
        found
    } else {
        args.iter().map(PathBuf::from).collect()
    };
    if files.is_empty() {
        eprintln!("error: no BENCH_*.json files found");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &files {
        match check_file(path) {
            Ok(errors) if errors.is_empty() => println!("OK {}", path.display()),
            Ok(errors) => {
                failed = true;
                eprintln!("FAIL {}", path.display());
                for e in errors {
                    eprintln!("  - {e}");
                }
            }
            Err(e) => {
                failed = true;
                eprintln!("FAIL {e}");
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("{} trajectory file(s) valid", files.len());
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_minimal_valid_trajectory() {
        let text = r#"{
          "bench": "x", "description": "d",
          "history": [
            {"date": "2026-07-30", "pr": 3, "results": [{"k": 4, "speedup": 2.5}]},
            {"date": "2026-07-31", "pr": 5, "results": [{"k": 4, "speedup": 3.0}]}
          ]
        }"#;
        assert!(validate(text).is_empty(), "{:?}", validate(text));
    }

    #[test]
    fn rejects_structural_violations() {
        assert!(!validate("not json").is_empty());
        assert!(!validate("[]").is_empty());
        // Empty history.
        let empty = r#"{"bench": "x", "description": "d", "history": []}"#;
        assert!(validate(empty).iter().any(|e| e.contains("non-empty")));
        // Non-monotone dates (history rewritten/reordered).
        let reordered = r#"{
          "bench": "x", "description": "d",
          "history": [
            {"date": "2026-07-31", "pr": 1, "results": [{"a": 1}]},
            {"date": "2026-07-30", "pr": 2, "results": [{"a": 1}]}
          ]
        }"#;
        assert!(validate(reordered).iter().any(|e| e.contains("append-only")));
        // Missing fields and empty results.
        let sparse = r#"{
          "bench": "x", "description": "d",
          "history": [{"date": "2026-13-01", "results": []}]
        }"#;
        let errors = validate(sparse);
        assert!(errors.iter().any(|e| e.contains("pr")));
        assert!(errors.iter().any(|e| e.contains("results")));
        assert!(errors.iter().any(|e| e.contains("YYYY-MM-DD")));
    }

    #[test]
    fn the_repo_trajectories_are_valid() {
        // The real BENCH_*.json files at the workspace root must pass the
        // same gate CI runs.
        let root = workspace_root();
        let mut seen = 0;
        for entry in std::fs::read_dir(&root).unwrap().filter_map(|e| e.ok()) {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            if name.starts_with("BENCH_") && name.ends_with(".json") {
                seen += 1;
                let errors = check_file(&path).unwrap();
                assert!(errors.is_empty(), "{name}: {errors:?}");
            }
        }
        assert!(seen >= 4, "expected the recorded trajectories at the repo root, saw {seen}");
    }
}
