//! Experiment SRCH — the Bayesian-search connection (Section 2.1 of the
//! paper: σ⋆ equals the first round of A⋆).
//!
//! Verifies the round-1 identity exactly, then compares expected detection
//! times of iterated-σ⋆ against the uniform, prior-proportional, and
//! deterministic-sweep baselines across priors and searcher counts, plus a
//! memory-ful Monte-Carlo variant (searchers never re-open their own
//! boxes, as in the A⋆ model).
//!
//! Expected shape: iterated-σ⋆ dominates every *randomized* baseline at
//! every `k`; the deterministic sweep (all searchers open box `t` at round
//! `t`) gets no parallel speedup, so it wins at `k = 1`–2 on sorted priors
//! but is overtaken as `k` grows. Output: `results/search.csv`.

use dispersal_bench::runner::{experiment_main, RunContext};
use dispersal_core::prelude::*;
use dispersal_mech::report::to_csv;
use dispersal_search::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::process::ExitCode;

fn main() -> ExitCode {
    experiment_main("exp_search", run)
}

fn run(ctx: &mut RunContext) -> Result<()> {
    // Round-1 identity.
    let prior = Prior::zipf(30, 1.0)?;
    let k = 4usize;
    let mut astar = IteratedSigmaStar::new(&prior, k)?;
    let round1 = astar.round(0)?;
    let direct = sigma_star(prior.profile(), k)?.strategy;
    let identity_gap = round1.linf_distance(&direct)?;
    println!("SRCH: |A*-round-1 − sigma*|_inf = {identity_gap:.2e} (paper: identical)");
    assert!(identity_gap < 1e-12);

    // Detection-time comparison.
    let priors: Vec<(String, Prior)> = vec![
        ("zipf(1.0) M=30".into(), Prior::zipf(30, 1.0)?),
        ("zipf(2.0) M=30".into(), Prior::zipf(30, 2.0)?),
        ("geometric(0.7) M=30".into(), Prior::geometric(30, 0.7)?),
        ("uniform M=30".into(), Prior::uniform(30)?),
    ];
    let horizon = 500usize;
    let mut rows: Vec<Vec<f64>> = Vec::new();
    println!("SRCH: expected detection rounds (analytic; mem = MC with per-searcher memory)");
    for (name, prior) in &priors {
        let m = prior.len();
        let mut sweep_time = f64::INFINITY;
        let mut astar_times = Vec::new();
        for &k in &[1usize, 2, 4, 8] {
            let mut astar = IteratedSigmaStar::new(prior, k)?;
            let a = evaluate_plan(&mut astar, prior, k, horizon)?;
            let mut uni = UniformPlan::new(m);
            let u = evaluate_plan(&mut uni, prior, k, horizon)?;
            let mut prop = ProportionalPlan::new(prior)?;
            let p = evaluate_plan(&mut prop, prior, k, horizon)?;
            let mut sweep = SweepPlan::new(m);
            let s = evaluate_plan(&mut sweep, prior, k, horizon)?;
            let mut astar_mem = IteratedSigmaStar::new(prior, k)?;
            let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed_or(17));
            let mem = simulate_detection_time_with_memory(
                &mut astar_mem,
                prior,
                k,
                ctx.trials_or(40_000),
                horizon,
                &mut rng,
            )?;
            println!(
                "  {name}, k={k}: iterated-sigma* {:.2} (mem {:.2}) | uniform {:.2} | \
                 proportional {:.2} | sweep {:.2}",
                a.expected_rounds, mem, u.expected_rounds, p.expected_rounds, s.expected_rounds
            );
            // Iterated sigma* dominates every randomized baseline.
            assert!(a.expected_rounds <= u.expected_rounds + 1e-6, "{name} k={k}: lost to uniform");
            assert!(
                a.expected_rounds <= p.expected_rounds + 1e-6,
                "{name} k={k}: lost to prior-proportional"
            );
            sweep_time = s.expected_rounds; // constant in k
            astar_times.push(a.expected_rounds);
            rows.push(vec![
                k as f64,
                a.expected_rounds,
                mem,
                u.expected_rounds,
                p.expected_rounds,
                s.expected_rounds,
            ]);
        }
        // Crossover: the sweep has no parallel speedup, so enough searchers
        // overtake it.
        let best_astar = astar_times.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            best_astar < sweep_time + 1e-6,
            "{name}: iterated-sigma* never overtook the sweep ({best_astar} vs {sweep_time})"
        );
        println!(
            "  {name}: sweep stays at {sweep_time:.2} for all k; iterated-sigma* reaches {best_astar:.2} at k=8"
        );
    }
    let csv = to_csv(
        &["k", "iterated_sigma_star", "iterated_with_memory", "uniform", "proportional", "sweep"],
        &rows,
    );
    let path = ctx.write_result("search.csv", &csv)?;
    println!("SRCH: wrote {}", path.display());
    Ok(())
}
