//! Experiment PURE — the Section 1.2 discussion made quantitative: the
//! dispersal game has many pure Nash equilibria (their number grows fast
//! with `k`), reaching any particular one requires coordination, and the
//! best of them (a perfect assignment) beats the best symmetric strategy.
//!
//! Output: `results/pure.csv`.

use dispersal_bench::runner::{experiment_main, RunContext};
use dispersal_core::prelude::*;
use dispersal_core::pure::{best_response_dynamics, enumerate_pure_equilibria, PureProfile};
use dispersal_mech::report::to_csv;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::process::ExitCode;

fn main() -> ExitCode {
    experiment_main("exp_pure", run)
}

fn run(ctx: &mut RunContext) -> Result<()> {
    let f = ValueProfile::new(vec![1.0, 0.9, 0.8, 0.7, 0.6])?;
    let mut rows: Vec<Vec<f64>> = Vec::new();
    println!("PURE: pure equilibria of the exclusive policy on M = 5 near-uniform sites");
    for k in 2..=5usize {
        let pure = enumerate_pure_equilibria(&Exclusive, &f, k, 100_000)?;
        let sym = optimal_coverage(&f, k)?;
        println!(
            "  k = {k}: {} pure NE out of {} profiles; coverage range [{:.3}, {:.3}]; \
             best symmetric {:.3}",
            pure.count, pure.profiles, pure.worst_coverage, pure.best_coverage, sym.coverage
        );
        assert!(pure.best_coverage >= sym.coverage - 1e-9);
        rows.push(vec![
            k as f64,
            pure.count as f64,
            pure.profiles as f64,
            pure.worst_coverage,
            pure.best_coverage,
            sym.coverage,
        ]);
    }
    // Equilibrium count grows with k.
    for w in rows.windows(2) {
        assert!(w[1][1] >= w[0][1], "pure NE count should not shrink with k");
    }

    // The coordination problem: random-start best-response dynamics lands
    // on many different equilibria.
    let k = 4usize;
    let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed_or(31));
    let mut reached = std::collections::HashMap::<Vec<usize>, usize>::new();
    for _ in 0..200 {
        let start = PureProfile::new((0..k).map(|_| rng.gen_range(0..f.len())).collect(), f.len())?;
        let (eq, _) = best_response_dynamics(&Exclusive, &f, start, 10_000)?;
        let sites: Vec<usize> = (0..k).map(|i| eq.site(i)).collect();
        *reached.entry(sites).or_insert(0) += 1;
    }
    println!(
        "PURE: 200 uncoordinated best-response runs reached {} distinct pure equilibria \
         (selecting one requires coordination)",
        reached.len()
    );
    assert!(reached.len() > 1);

    let csv = to_csv(
        &["k", "pure_ne_count", "profiles", "worst_coverage", "best_coverage", "best_symmetric"],
        &rows,
    );
    let path = ctx.write_result("pure.csv", &csv)?;
    println!("PURE: wrote {}", path.display());
    Ok(())
}
