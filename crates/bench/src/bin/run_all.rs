//! Run every experiment binary in sequence — the one-command reproduction
//! of all figures and tables in EXPERIMENTS.md.
//!
//! Equivalent to invoking each `exp_*` / `fig1` binary yourself; kept as a
//! tiny driver (not a shell script) so it works on every platform.
//!
//! Flags (all optional, forwarded to every child where applicable):
//!
//! * `--trials N`  — shrink/grow each child's Monte-Carlo trial budget
//!   (useful for CI smoke runs);
//! * `--seed N`    — override each child's master seed;
//! * `--jobs N`    — worker threads per child (sets `RAYON_NUM_THREADS`);
//! * `--out-dir D` — results directory (sets `DISPERSAL_RESULTS_DIR`,
//!   which every child honors).
//!
//! Prints per-experiment wall time and exits non-zero if **any** child
//! fails to launch or exits unsuccessfully.

use dispersal_bench::runner::parse_flags;
use std::process::{Command, ExitCode};
use std::time::Instant;

const FLAG_SPEC: &[(&str, &str)] =
    &[("--trials", "trials"), ("--seed", "seed"), ("--jobs", "jobs"), ("--out-dir", "out-dir")];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: run_all [--trials N] [--seed N] [--jobs N] [--out-dir DIR]");
        return ExitCode::SUCCESS;
    }
    let flags = match parse_flags(&args, FLAG_SPEC) {
        Ok(flags) => flags,
        Err(e) => {
            eprintln!("run_all: {e}");
            return ExitCode::FAILURE;
        }
    };
    // --jobs and --out-dir become environment for the children (every
    // binary honors RAYON_NUM_THREADS / DISPERSAL_RESULTS_DIR); --trials
    // and --seed are forwarded as flags through the shared runner.
    if let Some(jobs) = flags.get("jobs") {
        match jobs.parse::<usize>() {
            Ok(n) if n >= 1 => std::env::set_var("RAYON_NUM_THREADS", jobs),
            _ => {
                eprintln!("run_all: --jobs must be a positive integer, got '{jobs}'");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(dir) = flags.get("out-dir") {
        std::env::set_var("DISPERSAL_RESULTS_DIR", dir);
    }
    let mut forwarded: Vec<String> = Vec::new();
    for key in ["trials", "seed"] {
        if let Some(value) = flags.get(key) {
            forwarded.push(format!("--{key}"));
            forwarded.push(value.clone());
        }
    }
    let experiments = [
        "fig1",
        "exp_obs1",
        "exp_thm3_invasion",
        "exp_thm4_optimality",
        "exp_thm6_spoa",
        "exp_spoa_sharing",
        "exp_replicator",
        "exp_mc_validation",
        "exp_search",
        "exp_extensions",
        "exp_pure",
        "exp_robustness",
        "exp_scenario",
        "exp_large_k",
    ];
    let exe = match std::env::current_exe() {
        Ok(path) => path,
        Err(e) => {
            eprintln!("run_all: cannot determine the executable path: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(bin_dir) = exe.parent() else {
        eprintln!("run_all: executable path {} has no parent directory", exe.display());
        return ExitCode::FAILURE;
    };
    let total = Instant::now();
    let mut failures = Vec::new();
    for name in experiments {
        println!("================ {name} ================");
        let path = bin_dir.join(name);
        let started = Instant::now();
        let status = Command::new(&path).args(&forwarded).status();
        let wall = started.elapsed();
        match status {
            Ok(s) if s.success() => {
                println!("---------------- {name}: ok in {:.2}s", wall.as_secs_f64());
            }
            Ok(s) => {
                eprintln!("{name}: exited with {s} after {:.2}s", wall.as_secs_f64());
                failures.push(name);
            }
            Err(e) => {
                eprintln!("{name}: failed to launch ({e}); build it with `cargo build --release -p dispersal-bench`");
                failures.push(name);
            }
        }
    }
    if failures.is_empty() {
        println!(
            "All {} experiments completed in {:.2}s; results under results/.",
            experiments.len(),
            total.elapsed().as_secs_f64()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("{} of {} experiments failed: {failures:?}", failures.len(), experiments.len());
        ExitCode::FAILURE
    }
}
