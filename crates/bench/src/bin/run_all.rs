//! Run every experiment binary in sequence — the one-command reproduction
//! of all figures and tables in EXPERIMENTS.md.
//!
//! Equivalent to invoking each `exp_*` / `fig1` binary yourself; kept as a
//! tiny driver (not a shell script) so it works on every platform.

use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let experiments = [
        "fig1",
        "exp_obs1",
        "exp_thm3_invasion",
        "exp_thm4_optimality",
        "exp_thm6_spoa",
        "exp_spoa_sharing",
        "exp_replicator",
        "exp_mc_validation",
        "exp_search",
        "exp_extensions",
        "exp_pure",
        "exp_robustness",
    ];
    let exe = match std::env::current_exe() {
        Ok(path) => path,
        Err(e) => {
            eprintln!("run_all: cannot determine the executable path: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(bin_dir) = exe.parent() else {
        eprintln!("run_all: executable path {} has no parent directory", exe.display());
        return ExitCode::FAILURE;
    };
    let mut failures = Vec::new();
    for name in experiments {
        println!("================ {name} ================");
        let path = bin_dir.join(name);
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name}: exited with {s}");
                failures.push(name);
            }
            Err(e) => {
                eprintln!("{name}: failed to launch ({e}); build it with `cargo build --release -p dispersal-bench`");
                failures.push(name);
            }
        }
    }
    if failures.is_empty() {
        println!("All experiments completed; results under results/.");
        ExitCode::SUCCESS
    } else {
        eprintln!("Failed experiments: {failures:?}");
        ExitCode::FAILURE
    }
}
