//! Run every experiment binary in sequence — the one-command reproduction
//! of all figures and tables in EXPERIMENTS.md.
//!
//! Equivalent to invoking each `exp_*` / `fig1` binary yourself; kept as a
//! tiny driver (not a shell script) so it works on every platform.

use std::process::Command;

fn main() {
    let experiments = [
        "fig1",
        "exp_obs1",
        "exp_thm3_invasion",
        "exp_thm4_optimality",
        "exp_thm6_spoa",
        "exp_spoa_sharing",
        "exp_replicator",
        "exp_mc_validation",
        "exp_search",
        "exp_extensions",
        "exp_pure",
        "exp_robustness",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let bin_dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for name in experiments {
        println!("================ {name} ================");
        let path = bin_dir.join(name);
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name}: exited with {s}");
                failures.push(name);
            }
            Err(e) => {
                eprintln!("{name}: failed to launch ({e}); build it with `cargo build --release -p dispersal-bench`");
                failures.push(name);
            }
        }
    }
    if failures.is_empty() {
        println!("All experiments completed; results under results/.");
    } else {
        eprintln!("Failed experiments: {failures:?}");
        std::process::exit(1);
    }
}
