//! Experiment MSRCH — parallel best-first search over mechanism space.
//!
//! Runs the shared-tree search of `dispersal_search::parallel` over the
//! piecewise / power-law / budget-normed congestion families, maximizing
//! welfare (and, in a second run, minimizing SPoA) subject to ESS
//! feasibility, then compares the certificate against (a) every
//! hand-written catalog mechanism scored through the *same* pipeline and
//! (b) the Kleinberg–Oren reward-design baseline on the same welfare
//! axis.
//!
//! Expected shape: the searched mechanism's welfare is at least the best
//! catalog entry's (the root forest contains exact catalog anchors, so
//! the catalog is representable), and Kleinberg–Oren reaches ~optimal
//! welfare but only by knowing `k` and rewriting the rewards — the
//! contrast the paper draws. Output: `results/search_mech.csv`.
//!
//! `--trials` sets the expansion budget (default 48), `--seed` the
//! search/ESS seed.

use dispersal_bench::runner::{experiment_main, RunContext};
use dispersal_core::prelude::*;
use dispersal_mech::report::to_csv;
use dispersal_mech::scoring::{kleinberg_oren_score, score_catalog};
use dispersal_search::parallel::{search_mechanisms, Objective, SearchConfig};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    experiment_main("search_mech", run)
}

fn run(ctx: &mut RunContext) -> Result<()> {
    let k = 6usize;
    let f = ValueProfile::zipf(12, 1.0, 1.0)?;
    let mut cfg = SearchConfig::new(k, f.clone());
    cfg.budget = ctx.trials_or(48) as usize;
    cfg.seed = ctx.seed_or(42);

    let start = Instant::now();
    let outcome = search_mechanisms(&cfg)?;
    let elapsed = start.elapsed().as_secs_f64();
    let rate = outcome.expansions as f64 / elapsed.max(1e-9);
    let best = &outcome.best;
    println!(
        "MSRCH: welfare search: {} expansions ({} evaluations) in {elapsed:.3}s \
         = {rate:.1} expansions/sec",
        outcome.expansions, outcome.evaluations
    );
    println!(
        "MSRCH: best = {} | welfare {:.6} | SPoA {:.6} | ESS margin {:.3e} (certified: {})",
        best.spec, best.welfare, best.spoa, best.ess_margin, best.ess_passed
    );

    // The baselines, scored through the identical pipeline.
    let catalog = score_catalog(&f, k, cfg.ess_mutants, cfg.seed)?;
    let mut rows: Vec<Vec<f64>> = Vec::new();
    println!("MSRCH: catalog baseline (same scoring pipeline):");
    for (i, s) in catalog.iter().enumerate() {
        println!(
            "  [{i}] {:<20} welfare {:.6} | SPoA {:.6} | ESS {}",
            s.name,
            s.welfare,
            s.spoa,
            if s.ess_passed { "yes" } else { "no" }
        );
        rows.push(vec![
            i as f64,
            s.welfare,
            s.spoa,
            s.ess_margin,
            f64::from(u8::from(s.ess_passed)),
        ]);
    }
    let best_catalog = catalog.iter().map(|s| s.welfare).fold(f64::NEG_INFINITY, f64::max);
    let worst_catalog = catalog.iter().map(|s| s.welfare).fold(f64::INFINITY, f64::min);
    assert!(
        best.welfare >= best_catalog - 1e-9,
        "searched welfare {} fell below the best catalog entry {best_catalog} — \
         the anchors make the catalog representable, so this must not happen",
        best.welfare
    );
    assert!(
        best.welfare > worst_catalog,
        "searched welfare {} does not even beat the worst catalog entry {worst_catalog}",
        best.welfare
    );
    assert!(best.ess_passed, "the certificate must carry an ESS guarantee");

    // Second run: minimize SPoA instead — must reach ~unit SPoA (the
    // exclusive anchor achieves it).
    let spoa_cfg = SearchConfig { objective: Objective::Spoa, ..cfg.clone() };
    let spoa_outcome = search_mechanisms(&spoa_cfg)?;
    println!(
        "MSRCH: SPoA search: best = {} | SPoA {:.6} | welfare {:.6}",
        spoa_outcome.best.spec, spoa_outcome.best.spoa, spoa_outcome.best.welfare
    );
    assert!(spoa_outcome.best.spoa < 1.0 + 1e-6, "SPoA search must reach ~1");

    // Kleinberg–Oren reward design: ~optimal welfare, but needs k and
    // mutable rewards (the paper's contrast).
    let ko = kleinberg_oren_score(&f, k)?;
    println!(
        "MSRCH: Kleinberg–Oren baseline: welfare {:.6} (design error {:.2e}, hard-wired k = {})",
        ko.welfare, ko.design_error, ko.k
    );

    rows.push(vec![-1.0, best.welfare, best.spoa, best.ess_margin, 1.0]);
    rows.push(vec![
        -2.0,
        spoa_outcome.best.welfare,
        spoa_outcome.best.spoa,
        spoa_outcome.best.ess_margin,
        1.0,
    ]);
    rows.push(vec![-3.0, ko.welfare, f64::NAN, f64::NAN, 0.0]);
    let csv = to_csv(&["entry", "welfare", "spoa", "ess_margin", "ess_passed"], &rows);
    let path = ctx.write_result("search_mech.csv", &csv)?;
    println!(
        "MSRCH: wrote {} (entry ≥ 0: catalog index; -1: searched-welfare; \
         -2: searched-spoa; -3: kleinberg-oren)",
        path.display()
    );
    Ok(())
}
