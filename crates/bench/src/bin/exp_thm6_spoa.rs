//! Experiments OBS2 / COR5 / THM6 — the price-of-anarchy dichotomy.
//!
//! * Corollary 5: `SPoA(C_exc, f) = 1` on every instance.
//! * Theorem 6: every other congestion policy in the catalog has
//!   `SPoA(C, f_witness) > 1` on the slow-decay witness family from the
//!   proof of Section 4, and the adversarial search can only push the
//!   exclusive policy's ratio to 1.
//! * Observation 2 (spot check): the IFD solver's residuals are ≈ 0, i.e.
//!   the computed equilibria satisfy the IFD conditions.
//!
//! Output: `results/thm6.csv` + Markdown table.

use dispersal_bench::runner::{experiment_main, RunContext};
use dispersal_core::prelude::*;
use dispersal_mech::adversarial::{adversarial_spoa, AdversarialConfig};
use dispersal_mech::catalog::standard_catalog;
use dispersal_mech::report::{markdown_table, to_csv};
use std::process::ExitCode;

fn main() -> ExitCode {
    experiment_main("exp_thm6_spoa", run)
}

fn run(ctx: &mut RunContext) -> Result<()> {
    let k = 3usize;
    let witness = ValueProfile::slow_decay_witness(4 * k, k)?;
    let catalog = standard_catalog();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut md_rows: Vec<Vec<String>> = Vec::new();
    println!("THM6: SPoA per policy (k = {k}, slow-decay witness M = {})", witness.len());
    for named in &catalog {
        let point = spoa(named.policy.as_ref(), &witness, k)?;
        let adv = adversarial_spoa(
            named.policy.as_ref(),
            k,
            AdversarialConfig {
                m: 4 * k,
                random_starts: 4,
                iterations: 120,
                step: 0.2,
                seed: ctx.seed_or(42),
            },
        )?;
        let is_exclusive = named.policy.is_exclusive_up_to(k);
        rows.push(vec![point.ratio, adv.best_ratio, point.ifd_residual]);
        md_rows.push(vec![
            named.name.clone(),
            format!("{:.6}", point.ratio),
            format!("{:.6}", adv.best_ratio),
            format!("{:.1e}", point.ifd_residual),
            if is_exclusive { "= 1 (Cor 5)".into() } else { "> 1 (Thm 6)".into() },
        ]);
        if is_exclusive {
            assert!(
                (point.ratio - 1.0).abs() < 1e-6 && (adv.best_ratio - 1.0).abs() < 1e-6,
                "Corollary 5 violated for {}: {} / {}",
                named.name,
                point.ratio,
                adv.best_ratio
            );
        } else if named.name != "constant" {
            // (constant is degenerate; its witness ratio is handled below)
            assert!(
                adv.best_ratio > 1.0 + 1e-7,
                "Theorem 6 witness failed for {}: {}",
                named.name,
                adv.best_ratio
            );
        }
        // Observation 2 spot check: solved equilibria satisfy the IFD
        // conditions.
        assert!(point.ifd_residual < 1e-7, "{}: IFD residual {}", named.name, point.ifd_residual);
    }
    println!(
        "{}",
        markdown_table(
            &["policy", "SPoA on witness", "SPoA adversarial", "IFD residual", "prediction"],
            &md_rows
        )
    );
    let csv = to_csv(&["spoa_witness", "spoa_adversarial", "ifd_residual"], &rows);
    let path = ctx.write_result("thm6.csv", &csv)?;
    println!("THM6: wrote {}", path.display());
    println!("THM6: exclusive is the unique policy at SPoA = 1 (all assertions passed)");
    Ok(())
}
