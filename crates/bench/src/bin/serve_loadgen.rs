//! Load generator for the `dispersal serve` daemon: an embedded server,
//! a barrier-released burst of concurrent clients, and (when the
//! one-shot `dispersal` CLI binary is found next to this one) the
//! sequential cold-start baseline the daemon exists to beat.
//!
//! Each round fires `--trials` concurrent response requests (default
//! 64) that share `(k, tol)` but carry distinct policies, so the
//! admission window can coalesce them into a handful of policy-major
//! kernel tiles. Recorded per run (in `results/serve_loadgen.csv` and
//! the run manifest, alongside the daemon's [`CacheStats`]):
//!
//! * requests/sec over the measured rounds;
//! * request latency percentiles (p50 / p95 / p99);
//! * average admission-batch occupancy (requests per kernel tile);
//! * the one-shot CLI baseline: the same burst as sequential
//!   `dispersal responses --policy <spec> -k <k>` process invocations,
//!   and the resulting daemon-vs-CLI throughput ratio.
//!
//! Environment knobs for CI smoke: `SERVE_LOADGEN_MIN_OCCUPANCY` (fail
//! the run if the measured average occupancy lands below it) and
//! `SERVE_LOADGEN_SKIP_CLI` (skip the process-spawn baseline).
//!
//! [`CacheStats`]: dispersal_core::kernel::cache::CacheStats

use dispersal_bench::runner::{experiment_main, RunContext};
use dispersal_core::{Error, Result};
use dispersal_serve::client::Client;
use dispersal_serve::server::{Server, ServerConfig};
use std::process::ExitCode;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

const K: usize = 64;
const RESOLUTION: usize = 256;
const MEASURED_ROUNDS: usize = 5;

/// The burst's policy specs: distinct power-law mechanisms sharing one
/// `(k, tol)` shape, so every request is groupable but no two are the
/// same row.
fn burst_specs(burst: usize) -> Vec<String> {
    (0..burst).map(|i| format!("power:{}", 0.25 + i as f64 * 0.125)).collect()
}

/// Requests each client connection keeps in flight per round. A real
/// burst client pipelines; it also keeps the loadgen's own thread count
/// from drowning the measurement in scheduler churn.
const PIPELINE: usize = 4;

/// Drive the whole load phase: every client holds one persistent
/// connection (a warm daemon's steady state) and fires a pipeline of
/// `PIPELINE` requests per barrier-released round — one warm-up round,
/// then `rounds` measured ones. Returns the measured rounds' total wall
/// time and every measured request latency (send of the pipeline to
/// arrival of that reply).
fn run_rounds(addr: &str, specs: &[String], rounds: usize) -> Result<(Duration, Vec<Duration>)> {
    let chunks: Vec<Vec<String>> = specs.chunks(PIPELINE).map(<[String]>::to_vec).collect();
    // Every round is bracketed by two waits on the same reusable
    // barrier (start and end); the extra party is this thread, which
    // only keeps time.
    let barrier = Arc::new(Barrier::new(chunks.len() + 1));
    let handles: Vec<_> = chunks
        .into_iter()
        .enumerate()
        .map(|(chunk_index, chunk)| {
            let addr = addr.to_string();
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || -> Result<Vec<Duration>> {
                let mut client = Client::connect(&addr).map_err(Error::from)?;
                let lines: Vec<String> = chunk
                    .iter()
                    .enumerate()
                    .map(|(j, spec)| {
                        format!(
                            "{{\"id\":{},\"cmd\":\"response\",\"policy\":\"{}\",\"k\":{},\
                             \"resolution\":{}}}",
                            chunk_index * PIPELINE + j + 1,
                            spec,
                            K,
                            RESOLUTION
                        )
                    })
                    .collect();
                let mut latencies = Vec::with_capacity(lines.len() * rounds);
                for round in 0..=rounds {
                    barrier.wait();
                    let started = Instant::now();
                    for line in &lines {
                        client.send(line).map_err(Error::from)?;
                    }
                    for _ in &lines {
                        let reply = client.recv().map_err(Error::from)?;
                        if !reply.contains("\"ok\":true") {
                            return Err(Error::InvalidArgument(format!(
                                "daemon rejected a burst request: {reply}"
                            )));
                        }
                        if round > 0 {
                            latencies.push(started.elapsed());
                        }
                    }
                    barrier.wait();
                }
                Ok(latencies)
            })
        })
        .collect();

    let mut wall = Duration::ZERO;
    for round in 0..=rounds {
        let started = Instant::now();
        barrier.wait(); // release the round
        barrier.wait(); // every reply is in
        if round > 0 {
            wall += started.elapsed();
        }
    }
    let mut latencies = Vec::with_capacity(specs.len() * rounds);
    for handle in handles {
        latencies.extend(
            handle.join().map_err(|_| Error::Internal { what: "loadgen client panicked" })??,
        );
    }
    Ok((wall, latencies))
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The sequential one-shot baseline: the same burst as fresh `dispersal`
/// process invocations, one response curve each. Returns total wall
/// time, or `None` when the CLI binary isn't next to this one (or the
/// baseline is skipped via `SERVE_LOADGEN_SKIP_CLI`).
fn run_cli_baseline(specs: &[String]) -> Option<Duration> {
    if std::env::var_os("SERVE_LOADGEN_SKIP_CLI").is_some() {
        println!("serve_loadgen: CLI baseline skipped (SERVE_LOADGEN_SKIP_CLI)");
        return None;
    }
    let cli = std::env::current_exe().ok()?.with_file_name("dispersal");
    if !cli.exists() {
        println!("serve_loadgen: CLI baseline skipped ({} not found)", cli.display());
        return None;
    }
    let started = Instant::now();
    for spec in specs {
        let status = std::process::Command::new(&cli)
            .args(["responses", "--policy", spec, "-k", &K.to_string()])
            .stdout(std::process::Stdio::null())
            .status()
            .ok()?;
        if !status.success() {
            println!("serve_loadgen: CLI baseline skipped (invocation failed)");
            return None;
        }
    }
    Some(started.elapsed())
}

fn run(ctx: &mut RunContext) -> Result<()> {
    let burst = ctx.trials_or(64) as usize;
    let specs = burst_specs(burst);
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        // A barrier-released burst lands within a millisecond or two;
        // 3 ms still coalesces it into a handful of wide tiles without
        // the window itself dominating the measured latency.
        batch_window: Duration::from_millis(3),
        max_batch: 4096,
        ..ServerConfig::default()
    })?;
    let addr = server.addr().to_string();

    // The first round inside run_rounds is an unmeasured warm-up: it
    // pays the one-time costs (connection accept, pool spin-up, first
    // tiles) so the measured rounds describe the steady-state daemon.
    // Occupancy is still measured across every round — the warm-up is
    // batched the same way — so snapshot the counters before, not after.
    let warm = server.metrics();
    let (wall, mut latencies) = run_rounds(&addr, &specs, MEASURED_ROUNDS)?;
    let metrics = server.metrics();

    let total_requests = (burst * MEASURED_ROUNDS) as f64;
    let rps = total_requests / wall.as_secs_f64();
    latencies.sort_unstable();
    let (p50, p95, p99) =
        (percentile(&latencies, 0.50), percentile(&latencies, 0.95), percentile(&latencies, 0.99));
    let measured_reqs = metrics.response_requests - warm.response_requests;
    let measured_groups = metrics.response_groups - warm.response_groups;
    let occupancy =
        if measured_groups == 0 { 0.0 } else { measured_reqs as f64 / measured_groups as f64 };

    println!("serve_loadgen: burst {burst} × {MEASURED_ROUNDS} rounds");
    println!("  throughput   = {rps:.1} req/s");
    println!(
        "  latency      = p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
        p50.as_secs_f64() * 1e3,
        p95.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3
    );
    println!(
        "  occupancy    = {occupancy:.2} req/tile ({measured_reqs} requests over \
         {measured_groups} tiles)"
    );

    let cli_wall = run_cli_baseline(&specs);
    let (cli_rps, speedup) = match cli_wall {
        Some(wall_cli) => {
            let cli_rps = burst as f64 / wall_cli.as_secs_f64();
            let speedup = rps / cli_rps;
            println!(
                "  CLI baseline = {:.1} req/s over {} one-shot invocations \
                 (daemon is {speedup:.1}× the throughput)",
                cli_rps, burst
            );
            (cli_rps, speedup)
        }
        None => (f64::NAN, f64::NAN),
    };

    let (grid_stats, catalog_stats) = server.cache_stats();
    ctx.record_cache_stats("serve.grid", grid_stats);
    ctx.record_cache_stats("serve.catalog", catalog_stats);
    ctx.write_result(
        "serve_loadgen.csv",
        &format!(
            "burst,rounds,rps,p50_ms,p95_ms,p99_ms,occupancy,cli_rps,daemon_vs_cli\n\
             {burst},{MEASURED_ROUNDS},{rps:.3},{:.4},{:.4},{:.4},{occupancy:.3},{cli_rps:.3},\
             {speedup:.3}\n",
            p50.as_secs_f64() * 1e3,
            p95.as_secs_f64() * 1e3,
            p99.as_secs_f64() * 1e3
        ),
    )
    .map_err(Error::from)?;
    server.shutdown();

    if let Some(floor) =
        std::env::var("SERVE_LOADGEN_MIN_OCCUPANCY").ok().and_then(|raw| raw.parse::<f64>().ok())
    {
        if occupancy < floor {
            return Err(Error::InvalidArgument(format!(
                "admission batching regressed: occupancy {occupancy:.2} < floor {floor}"
            )));
        }
        println!("  occupancy floor {floor} satisfied");
    }
    if rps <= 0.0 || !rps.is_finite() {
        return Err(Error::InvalidArgument(format!("degenerate throughput: {rps}")));
    }
    Ok(())
}

fn main() -> ExitCode {
    experiment_main("serve_loadgen", run)
}
