//! Experiment MC — Monte-Carlo validation of the analytic formulas.
//!
//! For each catalog policy on a representative instance: 10⁶ one-shot
//! plays, comparing the empirical coverage and individual payoff to Eq. (1)
//! and Eq. (2). Everything must land inside the 95% CI (+ small slack).
//! Output: `results/mc_validation.csv`.

use dispersal_bench::runner::{experiment_main, RunContext};
use dispersal_core::prelude::*;
use dispersal_mech::catalog::standard_catalog;
use dispersal_mech::report::to_csv;
use dispersal_sim::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    experiment_main("exp_mc_validation", run)
}

fn run(ctx: &mut RunContext) -> Result<()> {
    let f = ValueProfile::new(vec![1.0, 0.6, 0.35, 0.15])?;
    let k = 4usize;
    let p = Strategy::new(vec![0.4, 0.3, 0.2, 0.1])?;
    let config = McConfig { trials: ctx.trials_or(1_000_000), seed: ctx.seed_or(99), shards: 64 };
    let mut rows: Vec<Vec<f64>> = Vec::new();
    println!("MC: {} one-shot plays per policy, k = {k}", config.trials);
    for named in standard_catalog() {
        let report = estimate_symmetric(&f, named.policy.as_ref(), &p, k, config)?;
        let analytic_cov = coverage(&f, &p, k)?;
        let ctx = PayoffContext::new(named.policy.as_ref(), k)?;
        let analytic_pay = ctx.symmetric_payoff(&f, &p)?;
        let cov_ok = report.coverage.covers(analytic_cov, 1e-4);
        let pay_ok = report.payoff.covers(analytic_pay, 1e-4);
        println!(
            "  {}: coverage {:.5} ± {:.5} (analytic {:.5}), payoff {:+.5} ± {:.5} (analytic {:+.5})",
            named.name,
            report.coverage.mean,
            report.coverage.ci95,
            analytic_cov,
            report.payoff.mean,
            report.payoff.ci95,
            analytic_pay
        );
        assert!(cov_ok, "{}: coverage outside CI", named.name);
        assert!(pay_ok, "{}: payoff outside CI", named.name);
        rows.push(vec![
            report.coverage.mean,
            report.coverage.ci95,
            analytic_cov,
            report.payoff.mean,
            report.payoff.ci95,
            analytic_pay,
        ]);
    }
    let csv = to_csv(
        &[
            "mc_coverage",
            "cov_ci95",
            "analytic_coverage",
            "mc_payoff",
            "pay_ci95",
            "analytic_payoff",
        ],
        &rows,
    );
    let path = ctx.write_result("mc_validation.csv", &csv)?;
    println!("MC: wrote {} (all estimates inside 95% CIs)", path.display());
    Ok(())
}
