//! Experiment SCN — population-scale scenario tracking: site values
//! oscillate (staggered daily cycle), drift, and shock while replicator
//! and Moran dynamics track the moving equilibrium.
//!
//! For each policy, a [`dispersal_sim::scenario::Scenario`] freezes its
//! values epoch by epoch; the replicator warm-starts from the previous
//! epoch's population and its distance to the epoch's own IFD measures
//! tracking quality. A small random-start ensemble checks the tracked
//! state is a global attractor, and a finite-population Moran process
//! (population carried across epochs, rewards swapped per epoch) probes
//! the same schedule stochastically.
//!
//! Output: `results/scenario.csv` (replicator tracking per epoch ×
//! policy) and `results/scenario_moran.csv` (finite-population tracking).

use dispersal_bench::runner::{experiment_main, RunContext};
use dispersal_core::prelude::*;
use dispersal_sim::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    experiment_main("exp_scenario", run)
}

const EPOCHS: u64 = 10;
const K: usize = 3;

fn canonical_scenario() -> Result<Scenario> {
    let base = ValueProfile::new(vec![1.0, 0.8, 0.6, 0.45, 0.3])?;
    Scenario::new(
        base,
        EPOCHS,
        vec![
            TrafficEvent::Daily { amplitude: 0.25, period: EPOCHS },
            TrafficEvent::Drift { site: 1, rate: -0.06 },
            TrafficEvent::Shock { epoch: 5, site: 4, factor: 2.2 },
        ],
    )
}

/// The epoch's IFD mapped back to physical site order.
fn physical_ifd(c: &dyn Congestion, scenario: &Scenario, epoch: u64) -> Result<Strategy> {
    let frame = scenario.epoch_profile(epoch)?;
    let ifd = solve_ifd_allow_degenerate(c, &frame.profile, K)?;
    let mut phys = vec![0.0; frame.order.len()];
    for (rank, &p) in frame.order.iter().enumerate() {
        phys[p] = ifd.strategy.prob(rank);
    }
    // Boundary equilibria can have exact zeros; from_weights needs
    // positive mass, so floor at a negligible epsilon.
    Strategy::from_weights(phys.iter().map(|&x| x.max(1e-15)).collect())
}

fn run(ctx: &mut RunContext) -> Result<()> {
    let scenario = canonical_scenario()?;
    let policies: [(&str, &dyn Congestion); 2] = [("exclusive", &Exclusive), ("sharing", &Sharing)];
    let config = ReplicatorConfig { velocity_tol: 1e-10, ..Default::default() };
    // Exploration floor at epoch boundaries: boundary IFDs drive sites
    // extinct, and without a mutation/immigration term the replicator
    // could never recolonize them after the epoch-5 shock.
    let explore = 1e-4;
    let seed = ctx.seed_or(0xB0A7);

    println!("SCN: tracking a moving equilibrium over {EPOCHS} epochs (daily + drift + shock)");
    let mut csv = String::from("epoch,policy,ifd_distance,steps,converged,top_site,top_share\n");
    for (name, c) in policies {
        let start = Strategy::uniform(scenario.sites())?;
        let run = run_scenario_replicator(c, &scenario, &start, K, explore, config)?;
        for record in &run.records {
            let (top_site, top_share) = record
                .state
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(x, &s)| (x, s))
                .unwrap_or((0, 0.0));
            csv.push_str(&format!(
                "{},{},{:.3e},{},{},{},{:.6}\n",
                record.epoch,
                name,
                record.ifd_distance,
                record.steps,
                u8::from(record.converged),
                top_site,
                top_share
            ));
        }
        let worst = run.worst_distance();
        println!("  {name}: worst epoch distance to the moving IFD = {worst:.2e}");
        assert!(worst < 1e-3, "{name}: replicator lost the moving equilibrium ({worst:.2e})");

        // Global attraction: random interior starts must land on the same
        // tracked state (the schedule, not the start, decides the path).
        let ensemble = run_scenario_replicator_ensemble(c, &scenario, K, 4, seed, explore, config)?;
        let mut spread = 0.0f64;
        for a in &ensemble {
            for b in &ensemble {
                spread = spread.max(a.final_state.linf_distance(&b.final_state)?);
            }
        }
        println!("  {name}: ensemble final-state spread = {spread:.2e} over 4 starts");
        assert!(spread < 1e-4, "{name}: scenario tracking is start-dependent ({spread:.2e})");
    }
    let path = ctx.write_result("scenario.csv", &csv)?;
    println!("SCN: wrote {}", path.display());

    // Finite-population counterpart: one Moran population rides the whole
    // schedule, rewards following the values.
    let per_epoch = (ctx.trials_or(40_000) / EPOCHS).max(400);
    let moran = MoranConfig {
        population: 150,
        generations: per_epoch,
        burn_in: per_epoch / 4,
        rounds_per_generation: 2,
        selection: 6.0,
        mutation: 0.01,
        seed,
    };
    let run = run_scenario_moran(&Exclusive, &scenario, K, moran)?;
    let mut csv = String::from("epoch,tv_to_ifd,top_site,top_freq\n");
    for record in &run.records {
        let freqs =
            Strategy::from_weights(record.frequencies.iter().map(|&x| x.max(1e-15)).collect())?;
        let tv = freqs.tv_distance(&physical_ifd(&Exclusive, &scenario, record.epoch)?)?;
        let (top_site, top_freq) = record
            .frequencies
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(x, &s)| (x, s))
            .unwrap_or((0, 0.0));
        csv.push_str(&format!("{},{tv:.6},{top_site},{top_freq:.6}\n", record.epoch));
        let total: f64 = record.frequencies.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "epoch {}: frequencies not normalized", record.epoch);
    }
    let path = ctx.write_result("scenario_moran.csv", &csv)?;
    println!(
        "SCN: wrote {} ({per_epoch} generations/epoch, population carried across epochs)",
        path.display()
    );
    Ok(())
}
