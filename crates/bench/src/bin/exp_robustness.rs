//! Experiment ROB — robustness of the two mechanisms (Section 1.6
//! contrast, quantified): Kleinberg–Oren reward design degrades when the
//! deployed player count differs from the design-time `k`, while the
//! exclusive congestion policy is exact at every `k`; and the exclusive
//! equilibrium degrades gracefully under misperceived site values.
//!
//! Output: `results/robustness.csv`.

use dispersal_bench::runner::{experiment_main, RunContext};
use dispersal_core::prelude::*;
use dispersal_mech::report::to_csv;
use dispersal_mech::robustness::{k_misspecification_curve, value_noise_robustness};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::process::ExitCode;

fn main() -> ExitCode {
    experiment_main("exp_robustness", run)
}

fn run(ctx: &mut RunContext) -> Result<()> {
    let f = ValueProfile::zipf(12, 1.0, 0.8)?;
    let k_design = 4usize;
    println!("ROB-A: rewards designed for k = {k_design}, deployed at other k (sharing policy)");
    let curve = k_misspecification_curve(&f, k_design, &[2, 3, 4, 6, 8, 12])?;
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for p in &curve {
        println!(
            "  k = {:>2}: optimal {:.4} | Kleinberg-Oren {:.4} ({:+.2}%) | exclusive {:.4} ({:+.2}%)",
            p.k_actual,
            p.optimal,
            p.kleinberg_oren,
            100.0 * (p.kleinberg_oren / p.optimal - 1.0),
            p.exclusive,
            100.0 * (p.exclusive / p.optimal - 1.0),
        );
        assert!((p.exclusive - p.optimal).abs() < 1e-6);
        if p.k_actual != k_design {
            assert!(p.kleinberg_oren < p.optimal - 1e-7);
        }
        rows.push(vec![p.k_actual as f64, p.optimal, p.kleinberg_oren, p.exclusive]);
    }

    println!("\nROB-B: exclusive-policy efficiency under misperceived site values");
    let mut noise_rows: Vec<Vec<f64>> = Vec::new();
    let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed_or(55));
    for &noise in &[0.0, 0.05, 0.1, 0.2, 0.4] {
        let r = value_noise_robustness(&f, k_design, noise, 200, &mut rng)?;
        println!(
            "  noise ±{:>4.0}%: mean efficiency {:.4}, worst {:.4} ({} samples)",
            100.0 * noise,
            r.mean_efficiency,
            r.worst_efficiency,
            r.samples
        );
        assert!(r.mean_efficiency <= 1.0 + 1e-9);
        noise_rows.push(vec![noise, r.mean_efficiency, r.worst_efficiency]);
    }
    // Efficiency decreases (weakly) with noise.
    for w in noise_rows.windows(2) {
        assert!(w[1][1] <= w[0][1] + 1e-6);
    }

    let mut csv = to_csv(&["k_actual", "optimal", "kleinberg_oren", "exclusive"], &rows);
    csv.push('\n');
    csv.push_str(&to_csv(&["noise", "mean_efficiency", "worst_efficiency"], &noise_rows));
    let path = ctx.write_result("robustness.csv", &csv)?;
    println!("\nROB: wrote {}", path.display());
    Ok(())
}
