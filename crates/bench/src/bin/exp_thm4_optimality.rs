//! Experiment THM4 — Theorem 4: σ⋆ is the unique coverage-optimal
//! symmetric strategy.
//!
//! For a grid of instances, compares three independently computed objects:
//! the closed-form σ⋆, the KKT water-filling optimizer, and the
//! structure-free projected-gradient optimizer. All three must agree in
//! coverage to solver precision, and common heuristics must do strictly
//! worse. Output: `results/thm4.csv` + summary.

use dispersal_bench::runner::{experiment_main, RunContext};
use dispersal_core::optimal::optimal_coverage_gradient;
use dispersal_core::prelude::*;
use dispersal_mech::report::to_csv;
use std::process::ExitCode;

fn main() -> ExitCode {
    experiment_main("exp_thm4_optimality", run)
}

fn run(ctx: &mut RunContext) -> Result<()> {
    let instances: Vec<(String, ValueProfile, usize)> = vec![
        ("fig1-left".into(), ValueProfile::new(vec![1.0, 0.3])?, 2),
        ("fig1-right".into(), ValueProfile::new(vec![1.0, 0.5])?, 2),
        ("zipf(1.0) M=30 k=5".into(), ValueProfile::zipf(30, 1.0, 1.0)?, 5),
        ("geometric(0.8) M=12 k=4".into(), ValueProfile::geometric(12, 1.0, 0.8)?, 4),
        ("linear M=40 k=8".into(), ValueProfile::linear(40, 1.0, 0.05)?, 8),
        ("uniform M=10 k=3".into(), ValueProfile::uniform(10, 1.0)?, 3),
        ("steep geometric M=20 k=6".into(), ValueProfile::geometric(20, 2.0, 0.55)?, 6),
    ];
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut max_gap: f64 = 0.0;
    println!("THM4: sigma* vs independent optimizers");
    for (name, f, k) in &instances {
        let star = sigma_star(f, *k)?;
        let cov_star = coverage(f, &star.strategy, *k)?;
        let waterfill = optimal_coverage(f, *k)?;
        let gradient = optimal_coverage_gradient(f, *k)?;
        let gap_wf = (cov_star - waterfill.coverage).abs();
        let gap_gd = (cov_star - gradient.coverage).abs();
        // Heuristics must be strictly dominated (unless they coincide with
        // sigma*, as uniform does on a uniform profile).
        let m = f.len();
        let mut heuristic_best = f64::NEG_INFINITY;
        for s in [
            Strategy::uniform(m)?,
            Strategy::proportional(f.values())?,
            Strategy::uniform_on_top(m, (*k).min(m))?,
        ] {
            heuristic_best = heuristic_best.max(coverage(f, &s, *k)?);
        }
        max_gap = max_gap.max(gap_wf).max(gap_gd);
        rows.push(vec![*k as f64, cov_star, waterfill.coverage, gradient.coverage, heuristic_best]);
        println!(
            "  {name}: Cover(sigma*) = {cov_star:.8}, waterfill gap {gap_wf:.2e}, \
             gradient gap {gap_gd:.2e}, best heuristic {heuristic_best:.8}"
        );
        assert!(gap_wf < 1e-7, "{name}: waterfill disagrees by {gap_wf}");
        assert!(gap_gd < 1e-6, "{name}: gradient disagrees by {gap_gd}");
        assert!(heuristic_best <= cov_star + 1e-9, "{name}: a heuristic beat sigma*");
    }
    let csv = to_csv(
        &["k", "cover_sigma_star", "cover_waterfill", "cover_gradient", "cover_best_heuristic"],
        &rows,
    );
    let path = ctx.write_result("thm4.csv", &csv)?;
    println!(
        "THM4: wrote {} (max optimizer gap {max_gap:.2e}; paper predicts identical optima)",
        path.display()
    );
    Ok(())
}
