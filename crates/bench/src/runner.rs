//! Shared driver for the experiment binaries.
//!
//! Every `exp_*` / `fig1` binary used to carry its own copy of the same
//! boilerplate: ad-hoc argv handling, `results/` plumbing, and no timing
//! or provenance. [`experiment_main`] centralizes that: it parses the
//! common flags, configures the thread pool and output directory, times
//! the run, and emits a JSON run-manifest next to the CSVs so every
//! results file can be traced back to the exact `(trials, seed, jobs)`
//! that produced it.
//!
//! Common flags (all optional; each binary keeps its own defaults):
//!
//! * `--trials N`  — override the binary's Monte-Carlo trial budget
//!   (deterministic experiments ignore it);
//! * `--seed N`    — override the master seed of the stochastic parts;
//! * `--jobs N`    — worker-thread count (sets `RAYON_NUM_THREADS`);
//! * `--out-dir D` — results directory (sets `DISPERSAL_RESULTS_DIR`).

use dispersal_core::kernel::cache::CacheStats;
use dispersal_core::{Error, Result};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Parse `args` against `spec`, a table of `(accepted flag, canonical
/// key)` pairs; every flag takes exactly one value. Shared by the
/// experiment runner and the `dispersal` CLI so all binaries reject
/// unknown flags the same way.
///
/// Returns a `BTreeMap` (not a `HashMap`) on purpose: everything flag
/// data feeds — run manifests, error listings, debug dumps — iterates
/// the map, and hash iteration order is randomized per process. Sorted
/// keys make every flag-derived output byte-deterministic
/// (`deterministic-iteration` lint).
pub fn parse_flags(args: &[String], spec: &[(&str, &str)]) -> Result<BTreeMap<String, String>> {
    let mut flags = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(&(_, key)) = spec.iter().find(|(flag, _)| *flag == args[i]) else {
            return Err(Error::InvalidArgument(format!("unknown flag: {}", args[i])));
        };
        let value = args
            .get(i + 1)
            .ok_or_else(|| Error::InvalidArgument(format!("flag {} needs a value", args[i])))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn parse_value<T: std::str::FromStr>(
    flags: &BTreeMap<String, String>,
    key: &str,
) -> Result<Option<T>>
where
    T::Err: std::fmt::Display,
{
    flags
        .get(key)
        .map(|raw| {
            raw.parse::<T>()
                .map_err(|e| Error::InvalidArgument(format!("bad --{key} value '{raw}': {e}")))
        })
        .transpose()
}

/// Per-run context handed to an experiment body: the resolved common
/// flags plus the output recorder feeding the run manifest.
pub struct RunContext {
    name: &'static str,
    trials: Option<u64>,
    seed: Option<u64>,
    jobs: Option<usize>,
    outputs: Vec<String>,
    /// Labelled cache snapshots recorded by the run, echoed into the
    /// manifest (insertion order, so bytes stay deterministic).
    caches: Vec<(String, CacheStats)>,
    /// The raw parsed flags, echoed into the manifest for provenance.
    /// `BTreeMap` iteration is sorted, so the manifest bytes are
    /// deterministic for a given command line.
    flags: BTreeMap<String, String>,
}

impl RunContext {
    /// The experiment's Monte-Carlo trial budget: the `--trials` override
    /// or the binary's `default`.
    pub fn trials_or(&self, default: u64) -> u64 {
        self.trials.unwrap_or(default)
    }

    /// The master seed: the `--seed` override or the binary's `default`.
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// Worker threads the run is using (after `--jobs` is applied).
    pub fn effective_jobs(&self) -> usize {
        rayon::current_num_threads()
    }

    /// Write `contents` to `results/<file>` and record it in the run
    /// manifest. Returns the full path written.
    pub fn write_result(&mut self, file: &str, contents: &str) -> std::io::Result<PathBuf> {
        let path = crate::write_result(file, contents)?;
        self.outputs.push(file.to_string());
        Ok(path)
    }

    /// Record a labelled [`CacheStats`] snapshot (e.g. a daemon's grid
    /// cache at shutdown) in the run manifest's `"caches"` object, so
    /// hit-rates ship with the results they explain.
    pub fn record_cache_stats(&mut self, label: &str, stats: CacheStats) {
        self.caches.push((label.to_string(), stats));
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn manifest_json(ctx: &RunContext, wall: Duration) -> String {
    let opt = |v: Option<u64>| v.map_or("null".to_string(), |v| v.to_string());
    let outputs: Vec<String> =
        ctx.outputs.iter().map(|o| format!("\"{}\"", json_escape(o))).collect();
    // Sorted by construction: BTreeMap iteration order is the key order.
    let flags: Vec<String> = ctx
        .flags
        .iter()
        .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
        .collect();
    let caches: Vec<String> = ctx
        .caches
        .iter()
        .map(|(label, s)| {
            format!(
                "\"{}\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"entries\": {}, \
                 \"capacity\": {}}}",
                json_escape(label),
                s.hits,
                s.misses,
                s.evictions,
                s.entries,
                s.capacity
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"{}\",\n  \"trials\": {},\n  \"seed\": {},\n  \"jobs\": {},\n  \
         \"wall_ms\": {},\n  \"flags\": {{{}}},\n  \"caches\": {{{}}},\n  \"outputs\": [{}]\n}}\n",
        json_escape(ctx.name),
        opt(ctx.trials),
        opt(ctx.seed),
        ctx.jobs.map_or_else(|| ctx.effective_jobs().to_string(), |j| j.to_string()),
        wall.as_millis(),
        flags.join(", "),
        caches.join(", "),
        outputs.join(", ")
    )
}

/// Run one experiment under the shared driver: parse the common flags,
/// apply `--jobs`/`--out-dir`, execute `run`, report wall-clock time, and
/// emit `results/<name>.manifest.json` describing the run.
pub fn experiment_main(
    name: &'static str,
    run: impl FnOnce(&mut RunContext) -> Result<()>,
) -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: {name} [--trials N] [--seed N] [--jobs N] [--out-dir DIR]");
        return ExitCode::SUCCESS;
    }
    match drive(name, &args, run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{name}: error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn drive(
    name: &'static str,
    args: &[String],
    run: impl FnOnce(&mut RunContext) -> Result<()>,
) -> Result<()> {
    const SPEC: &[(&str, &str)] =
        &[("--trials", "trials"), ("--seed", "seed"), ("--jobs", "jobs"), ("--out-dir", "out-dir")];
    let flags = parse_flags(args, SPEC)?;
    let jobs: Option<usize> = parse_value(&flags, "jobs")?;
    if let Some(jobs) = jobs {
        if jobs == 0 {
            return Err(Error::InvalidArgument("--jobs must be at least 1".into()));
        }
        // Safe env mutation: we are single-threaded here, before any pool
        // worker exists to call getenv concurrently.
        std::env::set_var("RAYON_NUM_THREADS", jobs.to_string());
    }
    if let Some(dir) = flags.get("out-dir") {
        std::env::set_var("DISPERSAL_RESULTS_DIR", dir);
    }
    let mut ctx = RunContext {
        name,
        trials: parse_value(&flags, "trials")?,
        seed: parse_value(&flags, "seed")?,
        jobs,
        outputs: Vec::new(),
        caches: Vec::new(),
        flags,
    };
    let started = Instant::now();
    run(&mut ctx)?;
    let wall = started.elapsed();
    let manifest = manifest_json(&ctx, wall);
    crate::write_result(&format!("{name}.manifest.json"), &manifest)
        .map_err(dispersal_core::Error::from)?;
    println!(
        "{name}: completed in {:.2}s on {} thread(s); {} result file(s) + manifest",
        wall.as_secs_f64(),
        ctx.effective_jobs(),
        ctx.outputs.len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_flags_accepts_spec_and_rejects_strangers() {
        let spec = &[("--trials", "trials"), ("--seed", "seed")];
        let flags = parse_flags(&argv(&["--trials", "100", "--seed", "7"]), spec).unwrap();
        assert_eq!(flags.get("trials").map(String::as_str), Some("100"));
        assert_eq!(flags.get("seed").map(String::as_str), Some("7"));
        assert!(parse_flags(&argv(&["--bogus", "1"]), spec).is_err());
        assert!(parse_flags(&argv(&["--trials"]), spec).is_err());
    }

    #[test]
    fn context_defaults_and_overrides() {
        let ctx = RunContext {
            name: "t",
            trials: Some(5),
            seed: None,
            jobs: None,
            outputs: Vec::new(),
            caches: Vec::new(),
            flags: BTreeMap::new(),
        };
        assert_eq!(ctx.trials_or(100), 5);
        assert_eq!(ctx.seed_or(42), 42);
    }

    #[test]
    fn manifest_shape() {
        let spec = &[("--trials", "trials"), ("--seed", "seed"), ("--jobs", "jobs")];
        let flags =
            parse_flags(&argv(&["--trials", "10", "--seed", "7", "--jobs", "3"]), spec).unwrap();
        let mut ctx = RunContext {
            name: "exp_x",
            trials: Some(10),
            seed: None,
            jobs: Some(3),
            outputs: vec!["a.csv".into(), "b.csv".into()],
            caches: Vec::new(),
            flags,
        };
        ctx.record_cache_stats(
            "grid",
            CacheStats { hits: 9, misses: 3, evictions: 1, entries: 2, capacity: 256 },
        );
        let json = manifest_json(&ctx, Duration::from_millis(1234));
        assert!(json.contains("\"experiment\": \"exp_x\""));
        assert!(json.contains("\"trials\": 10"));
        assert!(json.contains("\"seed\": null"));
        assert!(json.contains("\"jobs\": 3"));
        assert!(json.contains("\"wall_ms\": 1234"));
        assert!(json.contains("\"a.csv\", \"b.csv\""));
        assert!(
            json.contains(
                "\"caches\": {\"grid\": {\"hits\": 9, \"misses\": 3, \"evictions\": 1, \
                 \"entries\": 2, \"capacity\": 256}}"
            ),
            "{json}"
        );
        // Flags are echoed in sorted key order regardless of the order
        // they appeared on the command line.
        assert!(
            json.contains("\"flags\": {\"jobs\": \"3\", \"seed\": \"7\", \"trials\": \"10\"}"),
            "{json}"
        );
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
