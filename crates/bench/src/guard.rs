//! Wall-clock speedup guard backing the benches' `--quick` mode.
//!
//! CI's `bench-guard` job runs `cargo bench --bench kernel -- --quick`
//! (and `ess`, `batch`): instead of the full criterion sweep, each bench
//! times its scalar baseline against its kernel path a handful of times
//! and **fails the build** (non-zero exit) if the kernel has regressed to
//! slower-than-scalar. The bar is deliberately a coarse floor
//! (`speedup > 1`) rather than a tight threshold: CI runners are noisy,
//! and the recorded trajectories in the repo-root `BENCH_*.json` files
//! (validated by the `check_bench_json` binary) are the precision
//! instrument.

use std::time::Instant;

/// Mean seconds per call of `f` over `reps` timed repetitions, after one
/// untimed warm-up call.
pub fn time_per_call<F: FnMut()>(reps: u32, mut f: F) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// Print a `baseline vs variant` comparison line and return whether the
/// variant is strictly faster (speedup > 1).
pub fn check_speedup(label: &str, baseline_s: f64, variant_s: f64) -> bool {
    let speedup = baseline_s / variant_s;
    println!(
        "quick-guard {label}: baseline {:.1} us/call, variant {:.1} us/call, speedup {speedup:.2}x",
        baseline_s * 1e6,
        variant_s * 1e6,
    );
    speedup > 1.0
}

/// Print a `baseline vs variant` comparison line and return whether the
/// variant stays within `max_ratio ×` the baseline.
///
/// The guard form for paths whose *win* is host-dependent — e.g. the
/// engine's thread sweep, where a single-core CI runner can never show a
/// multi-thread speedup — but whose *failure mode* (pathological pool or
/// lock overhead) is host-independent and worth a hard floor.
pub fn check_overhead(label: &str, baseline_s: f64, variant_s: f64, max_ratio: f64) -> bool {
    let ratio = variant_s / baseline_s;
    println!(
        "quick-guard {label}: baseline {:.1} us/call, variant {:.1} us/call, \
         overhead {ratio:.2}x (max {max_ratio:.2}x)",
        baseline_s * 1e6,
        variant_s * 1e6,
    );
    ratio < max_ratio
}

/// Terminate the quick mode: exit 0 if every guard passed, 1 otherwise.
pub fn finish(all_ok: bool) -> ! {
    if all_ok {
        println!("quick-guard: OK");
        std::process::exit(0);
    }
    eprintln!("quick-guard: FAILED — a kernel path regressed to slower than its scalar baseline");
    std::process::exit(1);
}

/// Whether the process was invoked in `--quick` guard mode
/// (`cargo bench --bench <name> -- --quick`).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_reports_positive_means() {
        let mut acc = 0u64;
        let t = time_per_call(3, || acc = acc.wrapping_add(1));
        assert!(t >= 0.0);
        assert_eq!(acc, 4, "one warm-up call plus three timed calls");
    }

    #[test]
    fn speedup_check_is_strict() {
        assert!(check_speedup("faster", 2.0, 1.0));
        assert!(!check_speedup("slower", 1.0, 2.0));
        assert!(!check_speedup("equal", 1.0, 1.0));
    }

    #[test]
    fn overhead_check_bounds_the_ratio() {
        assert!(check_overhead("cheap", 1.0, 2.0, 4.0));
        assert!(!check_overhead("pathological", 1.0, 8.0, 4.0));
        assert!(!check_overhead("at-the-bound", 1.0, 4.0, 4.0));
    }
}
