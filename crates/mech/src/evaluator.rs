//! Whole-policy evaluation: one call produces the full scorecard the
//! experiments report for a `(C, f, k)` triple, and the catalog-wide
//! congestion-response matrix evaluated as one policy-major [`GBatch`]
//! (each mechanism one row).

use crate::catalog::NamedPolicy;
use dispersal_core::coverage::coverage;
use dispersal_core::ess::probe_ess_k;
use dispersal_core::ifd::solve_ifd_allow_degenerate;
use dispersal_core::kernel::cache::{CacheStats, SharedCache};
use dispersal_core::kernel::GBatch;
use dispersal_core::optimal::optimal_coverage;
use dispersal_core::payoff::PayoffContext;
use dispersal_core::policy::{validate_congestion, Congestion};
use dispersal_core::value::ValueProfile;
use dispersal_core::welfare::welfare_optimum;
use dispersal_core::{Error, Result};
use dispersal_sim::sweep::ResponseRequest;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A complete evaluation of one congestion policy on one instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyEvaluation {
    /// Policy name.
    pub policy: String,
    /// Player count.
    pub k: usize,
    /// Number of sites.
    pub m: usize,
    /// Coverage of the policy's symmetric equilibrium (IFD).
    pub equilibrium_coverage: f64,
    /// Coverage of the optimal symmetric strategy `p⋆`.
    pub optimal_coverage: f64,
    /// `SPoA(C, f)`.
    pub spoa: f64,
    /// Expected individual payoff at equilibrium.
    pub equilibrium_payoff: f64,
    /// Best achievable symmetric individual payoff (welfare optimum).
    pub welfare_payoff: f64,
    /// Coverage of the welfare-optimal strategy.
    pub welfare_coverage: f64,
    /// IFD support size.
    pub ifd_support: usize,
    /// Whether the IFD survived the ESS mutant probe (None if not probed).
    pub ess_passed: Option<bool>,
}

/// Evaluate policy `c` on `(f, k)`. When `ess_mutants > 0`, additionally
/// probe the equilibrium with that many random mutants (plus the structured
/// family) and record whether it resisted invasion.
pub fn evaluate_policy<R: Rng + ?Sized>(
    name: &str,
    c: &dyn Congestion,
    f: &ValueProfile,
    k: usize,
    ess_mutants: usize,
    rng: &mut R,
) -> Result<PolicyEvaluation> {
    let ifd = solve_ifd_allow_degenerate(c, f, k)?;
    let eq_cov = coverage(f, &ifd.strategy, k)?;
    let opt = optimal_coverage(f, k)?;
    let ctx = PayoffContext::new(c, k)?;
    let eq_pay = ctx.symmetric_payoff(f, &ifd.strategy)?;
    let welfare = welfare_optimum(c, f, k)?;
    let welfare_cov = coverage(f, &welfare.strategy, k)?;
    let ess_passed = if ess_mutants > 0 && k >= 2 && !ctx.is_degenerate() {
        Some(probe_ess_k(c, f, &ifd.strategy, ess_mutants, rng, k)?.passed())
    } else {
        None
    };
    Ok(PolicyEvaluation {
        policy: name.to_string(),
        k,
        m: f.len(),
        equilibrium_coverage: eq_cov,
        optimal_coverage: opt.coverage,
        spoa: opt.coverage / eq_cov,
        equilibrium_payoff: eq_pay,
        welfare_payoff: welfare.payoff,
        welfare_coverage: welfare_cov,
        ifd_support: ifd.support,
        ess_passed,
    })
}

/// Evaluate the whole standard catalog on one instance.
pub fn evaluate_catalog<R: Rng + ?Sized>(
    f: &ValueProfile,
    k: usize,
    ess_mutants: usize,
    rng: &mut R,
) -> Result<Vec<PolicyEvaluation>> {
    crate::catalog::standard_catalog()
        .iter()
        .map(|named| evaluate_policy(&named.name, named.policy.as_ref(), f, k, ess_mutants, rng))
        .collect()
}

/// A catalog of mechanisms scored on one shared congestion-response grid:
/// the output of [`catalog_response_matrix`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CatalogResponse {
    /// Catalog names, one per matrix row (same order as the input).
    pub names: Vec<String>,
    /// Player count the responses were evaluated for.
    pub k: usize,
    /// The shared uniform evaluation grid over `[0, 1]`.
    pub qs: Vec<f64>,
    /// Policy-major response matrix: `g[r · qs.len() + i] = g_{C_r}(qs[i])`.
    pub g: Vec<f64>,
    /// Congestion-tolerance score per mechanism: the trapezoid estimate of
    /// `∫₀¹ g_C(q) dq` on the grid. `1.0` = fully tolerant (constant
    /// policy), lower = more aggressive; punitive policies whose reward
    /// goes negative under congestion (e.g. `two-level:-0.5`) score below
    /// the exclusive policy's `≈ 1/k`.
    pub tolerance_score: Vec<f64>,
}

impl CatalogResponse {
    /// Mechanism `r`'s response curve (row `r` of the matrix).
    pub fn row(&self, r: usize) -> &[f64] {
        &self.g[r * self.qs.len()..(r + 1) * self.qs.len()]
    }
}

/// Evaluate every mechanism of `catalog` over one shared `q`-grid via the
/// unified [`ResponseRequest`] API in forced fused mode — each catalog
/// mechanism is one row of the policy-major coefficient matrix, the
/// per-point Bernstein column is computed once for the whole catalog,
/// and a blocked GEMM finishes all rows (fused path: ≤ 1e-13 × the
/// coefficient scale from the per-policy exact tables). The summary
/// [`CatalogResponse::tolerance_score`] ranks mechanisms by how
/// gracefully their reward degrades with congestion.
pub fn catalog_response_matrix(
    catalog: &[NamedPolicy],
    k: usize,
    resolution: usize,
) -> Result<CatalogResponse> {
    check_catalog_request(catalog, resolution)?;
    let refs: Vec<&dyn Congestion> = catalog.iter().map(|n| n.policy.as_ref()).collect();
    let curves =
        ResponseRequest::policies(&refs).ks(&[k]).resolution(resolution).fused().evaluate()?;
    let qs: Vec<f64> = (0..=resolution).map(|i| i as f64 / resolution as f64).collect();
    let mut g = Vec::with_capacity(catalog.len() * qs.len());
    for curve in &curves {
        g.extend_from_slice(&curve.g);
    }
    score_catalog_response(catalog, k, resolution, qs, g)
}

/// [`catalog_response_matrix`] through a warm [`ResponseCache`]: the
/// policy-major coefficient tile is pulled from (or built into) `cache`,
/// so repeated scans of the same catalog at the same `k` — resolution
/// scans, repeated daemon requests, per-instance report loops — pay the
/// per-row validation and tile construction once. Bit-identical to the
/// uncached entry point: the cache key is the full coefficient
/// fingerprint, and scoring runs the same fused grid path.
pub fn catalog_response_matrix_cached(
    catalog: &[NamedPolicy],
    k: usize,
    resolution: usize,
    cache: &ResponseCache,
) -> Result<CatalogResponse> {
    check_catalog_request(catalog, resolution)?;
    let batch = cache.batch(catalog, k)?;
    let qs: Vec<f64> = (0..=resolution).map(|i| i as f64 / resolution as f64).collect();
    let g = batch.eval_grid(&qs);
    score_catalog_response(catalog, k, resolution, qs, g)
}

/// Shared argument validation for the catalog-response entry points.
fn check_catalog_request(catalog: &[NamedPolicy], resolution: usize) -> Result<()> {
    if catalog.is_empty() {
        return Err(Error::InvalidArgument("catalog response needs at least one mechanism".into()));
    }
    if resolution == 0 {
        return Err(Error::InvalidArgument("catalog response resolution must be >= 1".into()));
    }
    Ok(())
}

/// Trapezoid scoring over an already-evaluated policy-major matrix. Both
/// entry points land here with the same fused-path bits, so cached and
/// uncached scans stay bit-identical.
fn score_catalog_response(
    catalog: &[NamedPolicy],
    k: usize,
    resolution: usize,
    qs: Vec<f64>,
    g: Vec<f64>,
) -> Result<CatalogResponse> {
    let h = 1.0 / resolution as f64;
    let tolerance_score = (0..catalog.len())
        .map(|r| {
            let row = &g[r * qs.len()..(r + 1) * qs.len()];
            let interior: f64 = row[1..resolution].iter().sum();
            h * (0.5 * (row[0] + row[resolution]) + interior)
        })
        .collect();
    Ok(CatalogResponse {
        names: catalog.iter().map(|n| n.name.clone()).collect(),
        k,
        qs,
        g,
        tolerance_score,
    })
}

/// Memoized policy-major [`GBatch`] tiles for catalog scoring, keyed by
/// the full coefficient fingerprint of the catalog at a given `k` — two
/// catalogs whose mechanisms produce the same coefficient rows in the
/// same order share one tile, whatever their names.
///
/// Built on [`SharedCache`], so one `ResponseCache` serves concurrent
/// scans (the serve daemon holds one across all requests): lookups take
/// `&self`, the tile is `Arc`-shared, concurrent scans of the same
/// catalog build it once, and the cache is size-bounded
/// ([`RESPONSE_CACHE_CAPACITY`] tiles) with deterministic LRU eviction.
#[derive(Debug)]
pub struct ResponseCache {
    inner: SharedCache<(Vec<u64>, usize), GBatch>,
}

/// Default resident bound for [`ResponseCache`]: distinct `(catalog, k)`
/// tiles kept warm. Catalog scans sweep a handful of player counts over
/// one catalog; 64 tiles is an order of magnitude of headroom while
/// keeping a daemon's footprint bounded.
pub const RESPONSE_CACHE_CAPACITY: usize = 64;

impl Default for ResponseCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ResponseCache {
    /// An empty cache with the default capacity bound.
    pub fn new() -> Self {
        Self::with_capacity(RESPONSE_CACHE_CAPACITY)
    }

    /// An empty cache holding at most `tiles` entries (`0` = unbounded).
    pub fn with_capacity(tiles: usize) -> Self {
        ResponseCache { inner: SharedCache::new(tiles) }
    }

    /// The policy-major tile for `(catalog, k)`, built on first use.
    /// Validation (congestion axioms per mechanism) runs on every call —
    /// it is what produces the key — but the tile construction itself is
    /// paid once per residency.
    pub fn batch(&self, catalog: &[NamedPolicy], k: usize) -> Result<Arc<GBatch>> {
        if catalog.is_empty() {
            return Err(Error::InvalidArgument(
                "catalog response needs at least one mechanism".into(),
            ));
        }
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(catalog.len());
        let mut key = Vec::with_capacity(catalog.len() * k);
        for named in catalog {
            let coeffs = validate_congestion(named.policy.as_ref(), k)?;
            key.extend(coeffs.iter().map(|v| v.to_bits()));
            rows.push(coeffs);
        }
        self.inner.get_or_try_insert_with((key, k), || GBatch::from_rows(rows))
    }

    /// Number of tiles built so far (cache misses).
    #[inline]
    pub fn builds(&self) -> usize {
        self.inner.stats().misses as usize
    }

    /// Number of lookups served from an existing tile.
    #[inline]
    pub fn hits(&self) -> usize {
        self.inner.stats().hits as usize
    }

    /// Number of cached tiles.
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Uniform hit/miss/eviction snapshot ([`CacheStats`]).
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dispersal_core::policy::{Exclusive, Sharing};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn exclusive_evaluation_has_unit_spoa_and_passes_ess() {
        let f = ValueProfile::new(vec![1.0, 0.5, 0.25]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let eval = evaluate_policy("exclusive", &Exclusive, &f, 3, 20, &mut rng).unwrap();
        assert!((eval.spoa - 1.0).abs() < 1e-7);
        assert_eq!(eval.ess_passed, Some(true));
        assert_eq!(eval.m, 3);
        assert_eq!(eval.k, 3);
        assert!(eval.welfare_payoff >= eval.equilibrium_payoff - 1e-9);
    }

    #[test]
    fn sharing_evaluation_spoa_above_one_on_witness() {
        let k = 3;
        let f = ValueProfile::slow_decay_witness(4 * k, k).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let eval = evaluate_policy("sharing", &Sharing, &f, k, 0, &mut rng).unwrap();
        assert!(eval.spoa > 1.0 + 1e-6, "spoa = {}", eval.spoa);
        assert_eq!(eval.ess_passed, None);
    }

    #[test]
    fn catalog_response_matrix_matches_per_policy_scalar_path() {
        let catalog = crate::catalog::standard_catalog();
        let k = 8;
        let response = catalog_response_matrix(&catalog, k, 128).unwrap();
        assert_eq!(response.names.len(), catalog.len());
        assert_eq!(response.qs.len(), 129);
        assert_eq!(response.g.len(), catalog.len() * 129);
        for (r, named) in catalog.iter().enumerate() {
            assert_eq!(response.names[r], named.name);
            let ctx = PayoffContext::new(named.policy.as_ref(), k).unwrap();
            for (&q, &g) in response.qs.iter().zip(response.row(r).iter()) {
                let scalar = ctx.g(q).unwrap();
                assert!(
                    (g - scalar).abs() <= 1e-13,
                    "{} q={q}: batch {g} vs scalar {scalar}",
                    named.name
                );
            }
        }
    }

    #[test]
    fn tolerance_score_ranks_constant_top_and_exclusive_bottom() {
        let catalog = crate::catalog::standard_catalog();
        let response = catalog_response_matrix(&catalog, 6, 256).unwrap();
        let score = |name: &str| {
            let r = response.names.iter().position(|n| n == name).unwrap();
            response.tolerance_score[r]
        };
        assert!((score("constant") - 1.0).abs() < 1e-12, "constant integrates to 1");
        for (name, &s) in response.names.iter().zip(response.tolerance_score.iter()) {
            assert!(s <= 1.0 + 1e-12, "score of {name} exceeds the constant policy");
        }
        // Tolerance orders the reward-sharing spectrum: punitive two-level
        // (negative reward under congestion) below exclusive, exclusive
        // below sharing, sharing below constant.
        assert!(score("two-level:-0.5") < score("exclusive"));
        assert!(score("exclusive") < score("sharing"));
        assert!(score("sharing") < score("constant"));
        // Degenerate inputs are typed errors.
        assert!(catalog_response_matrix(&[], 6, 32).is_err());
        assert!(catalog_response_matrix(&catalog, 6, 0).is_err());
        assert!(catalog_response_matrix(&catalog, 0, 32).is_err());
    }

    #[test]
    fn cached_catalog_response_is_bit_identical_and_warm() {
        let catalog = crate::catalog::standard_catalog();
        let cache = ResponseCache::new();
        let direct = catalog_response_matrix(&catalog, 8, 64).unwrap();
        let cached = catalog_response_matrix_cached(&catalog, 8, 64, &cache).unwrap();
        assert_eq!(cache.builds(), 1);
        assert_eq!(cache.hits(), 0);
        for (a, b) in direct.g.iter().zip(cached.g.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "cached tile changed response bits");
        }
        for (a, b) in direct.tolerance_score.iter().zip(cached.tolerance_score.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Repeat scans — any resolution — reuse the warm tile; a new k
        // builds a second one.
        let again = catalog_response_matrix_cached(&catalog, 8, 256, &cache).unwrap();
        assert_eq!(cache.builds(), 1, "repeat scan must hit the warm tile");
        assert_eq!(cache.hits(), 1);
        assert_eq!(again.qs.len(), 257);
        catalog_response_matrix_cached(&catalog, 12, 64, &cache).unwrap();
        assert_eq!(cache.builds(), 2);
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());
        // Degenerate inputs stay typed errors through the cached path.
        assert!(catalog_response_matrix_cached(&[], 8, 64, &cache).is_err());
        assert!(catalog_response_matrix_cached(&catalog, 8, 0, &cache).is_err());
        assert!(catalog_response_matrix_cached(&catalog, 0, 64, &cache).is_err());
        let line = format!("{}", cache.stats());
        assert!(line.contains("hits 1"), "{line}");
    }

    #[test]
    fn catalog_evaluation_runs_and_serializes() {
        let f = ValueProfile::new(vec![1.0, 0.6, 0.3]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let evals = evaluate_catalog(&f, 2, 0, &mut rng).unwrap();
        assert!(evals.len() >= 10);
        let json = serde_json::to_string(&evals).unwrap();
        assert!(json.contains("exclusive"));
        // Exclusive should have the (weakly) best SPoA in the catalog.
        let excl = evals.iter().find(|e| e.policy == "exclusive").unwrap();
        for e in &evals {
            assert!(
                excl.spoa <= e.spoa + 1e-7,
                "{} beats exclusive: {} < {}",
                e.policy,
                e.spoa,
                excl.spoa
            );
        }
    }
}
