//! Whole-policy evaluation: one call produces the full scorecard the
//! experiments report for a `(C, f, k)` triple.

use dispersal_core::coverage::coverage;
use dispersal_core::ess::probe_ess_k;
use dispersal_core::ifd::solve_ifd_allow_degenerate;
use dispersal_core::optimal::optimal_coverage;
use dispersal_core::payoff::PayoffContext;
use dispersal_core::policy::Congestion;
use dispersal_core::value::ValueProfile;
use dispersal_core::welfare::welfare_optimum;
use dispersal_core::Result;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A complete evaluation of one congestion policy on one instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyEvaluation {
    /// Policy name.
    pub policy: String,
    /// Player count.
    pub k: usize,
    /// Number of sites.
    pub m: usize,
    /// Coverage of the policy's symmetric equilibrium (IFD).
    pub equilibrium_coverage: f64,
    /// Coverage of the optimal symmetric strategy `p⋆`.
    pub optimal_coverage: f64,
    /// `SPoA(C, f)`.
    pub spoa: f64,
    /// Expected individual payoff at equilibrium.
    pub equilibrium_payoff: f64,
    /// Best achievable symmetric individual payoff (welfare optimum).
    pub welfare_payoff: f64,
    /// Coverage of the welfare-optimal strategy.
    pub welfare_coverage: f64,
    /// IFD support size.
    pub ifd_support: usize,
    /// Whether the IFD survived the ESS mutant probe (None if not probed).
    pub ess_passed: Option<bool>,
}

/// Evaluate policy `c` on `(f, k)`. When `ess_mutants > 0`, additionally
/// probe the equilibrium with that many random mutants (plus the structured
/// family) and record whether it resisted invasion.
pub fn evaluate_policy<R: Rng + ?Sized>(
    name: &str,
    c: &dyn Congestion,
    f: &ValueProfile,
    k: usize,
    ess_mutants: usize,
    rng: &mut R,
) -> Result<PolicyEvaluation> {
    let ifd = solve_ifd_allow_degenerate(c, f, k)?;
    let eq_cov = coverage(f, &ifd.strategy, k)?;
    let opt = optimal_coverage(f, k)?;
    let ctx = PayoffContext::new(c, k)?;
    let eq_pay = ctx.symmetric_payoff(f, &ifd.strategy)?;
    let welfare = welfare_optimum(c, f, k)?;
    let welfare_cov = coverage(f, &welfare.strategy, k)?;
    let ess_passed = if ess_mutants > 0 && k >= 2 && !ctx.is_degenerate() {
        Some(probe_ess_k(c, f, &ifd.strategy, ess_mutants, rng, k)?.passed())
    } else {
        None
    };
    Ok(PolicyEvaluation {
        policy: name.to_string(),
        k,
        m: f.len(),
        equilibrium_coverage: eq_cov,
        optimal_coverage: opt.coverage,
        spoa: opt.coverage / eq_cov,
        equilibrium_payoff: eq_pay,
        welfare_payoff: welfare.payoff,
        welfare_coverage: welfare_cov,
        ifd_support: ifd.support,
        ess_passed,
    })
}

/// Evaluate the whole standard catalog on one instance.
pub fn evaluate_catalog<R: Rng + ?Sized>(
    f: &ValueProfile,
    k: usize,
    ess_mutants: usize,
    rng: &mut R,
) -> Result<Vec<PolicyEvaluation>> {
    crate::catalog::standard_catalog()
        .iter()
        .map(|named| evaluate_policy(&named.name, named.policy.as_ref(), f, k, ess_mutants, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dispersal_core::policy::{Exclusive, Sharing};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn exclusive_evaluation_has_unit_spoa_and_passes_ess() {
        let f = ValueProfile::new(vec![1.0, 0.5, 0.25]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let eval = evaluate_policy("exclusive", &Exclusive, &f, 3, 20, &mut rng).unwrap();
        assert!((eval.spoa - 1.0).abs() < 1e-7);
        assert_eq!(eval.ess_passed, Some(true));
        assert_eq!(eval.m, 3);
        assert_eq!(eval.k, 3);
        assert!(eval.welfare_payoff >= eval.equilibrium_payoff - 1e-9);
    }

    #[test]
    fn sharing_evaluation_spoa_above_one_on_witness() {
        let k = 3;
        let f = ValueProfile::slow_decay_witness(4 * k, k).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let eval = evaluate_policy("sharing", &Sharing, &f, k, 0, &mut rng).unwrap();
        assert!(eval.spoa > 1.0 + 1e-6, "spoa = {}", eval.spoa);
        assert_eq!(eval.ess_passed, None);
    }

    #[test]
    fn catalog_evaluation_runs_and_serializes() {
        let f = ValueProfile::new(vec![1.0, 0.6, 0.3]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let evals = evaluate_catalog(&f, 2, 0, &mut rng).unwrap();
        assert!(evals.len() >= 10);
        let json = serde_json::to_string(&evals).unwrap();
        assert!(json.contains("exclusive"));
        // Exclusive should have the (weakly) best SPoA in the catalog.
        let excl = evals.iter().find(|e| e.policy == "exclusive").unwrap();
        for e in &evals {
            assert!(
                excl.spoa <= e.spoa + 1e-7,
                "{} beats exclusive: {} < {}",
                e.policy,
                e.spoa,
                excl.spoa
            );
        }
    }
}
