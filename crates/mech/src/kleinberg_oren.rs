//! The Kleinberg–Oren reward-design baseline (\[23\] in the paper).
//!
//! Kleinberg & Oren incentivize an optimal distribution *without touching
//! the congestion rule*: players are stuck with the sharing policy, and the
//! designer instead changes the per-site rewards `r(x)` (grant sizes) so
//! the sharing-policy equilibrium lands on a chosen target distribution.
//!
//! This module implements that mechanism for any strictly-decreasing-`g`
//! congestion policy: given a target `p` with support on a prefix, set
//! `r(x) = ν̄ / g(p(x))` on the support (all supported sites then share the
//! common value ν̄) and anything strictly below ν̄ off the support.
//!
//! The contrast the paper draws (Section 1.6) is reproduced here as API
//! facts: the construction **requires knowing `k`** (`g` depends on it) and
//! **requires mutable rewards**, whereas the exclusive congestion policy
//! achieves the same optimal coverage with fixed site values and no
//! knowledge of `k`.

use dispersal_core::payoff::PayoffContext;
use dispersal_core::policy::Congestion;
use dispersal_core::strategy::Strategy;
use dispersal_core::value::ValueProfile;
use dispersal_core::{Error, Result};

/// The designed reward schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct RewardDesign {
    /// Designed rewards per site (sorted non-increasing like a profile).
    pub rewards: ValueProfile,
    /// The common equilibrium value every supported site yields.
    pub value: f64,
    /// The player count the design is valid for.
    pub k: usize,
}

/// Design rewards making `target` the IFD of policy `c` with `k` players.
///
/// `target` must be supported on a prefix of the sites (true for σ⋆ and
/// every IFD of a sorted profile). The scale is normalized so the top
/// site's reward is `top_reward`.
pub fn design_rewards(
    c: &dyn Congestion,
    target: &Strategy,
    k: usize,
    top_reward: f64,
) -> Result<RewardDesign> {
    if !(top_reward.is_finite() && top_reward > 0.0) {
        return Err(Error::InvalidArgument(format!(
            "top_reward must be positive, got {top_reward}"
        )));
    }
    let ctx = PayoffContext::new(c, k)?;
    if ctx.is_degenerate() {
        return Err(Error::DegeneratePolicy);
    }
    let m = target.len();
    let support = target.support_size(1e-12);
    // Prefix-support check.
    for x in 0..support {
        if target.prob(x) <= 1e-12 {
            return Err(Error::InvalidArgument(
                "target must be supported on a prefix of the sites".into(),
            ));
        }
    }
    // r(x) = nu / g(p(x)); normalize so r(0) = top_reward.
    let g0 = ctx.g(target.prob(0))?;
    if g0 <= 0.0 {
        return Err(Error::InvalidArgument(
            "target is too crowded at the top site: its congestion response is non-positive, \
             so no positive reward can equalize values"
                .into(),
        ));
    }
    let nu = top_reward * g0;
    let mut rewards = Vec::with_capacity(m);
    for x in 0..support {
        let gx = ctx.g(target.prob(x))?;
        if gx <= 0.0 {
            return Err(Error::InvalidArgument(format!(
                "target probability {} at site {x} drives the congestion response non-positive",
                target.prob(x)
            )));
        }
        rewards.push(nu / gx);
    }
    // Off-support sites must be strictly unattractive: value when visited
    // alone is r(x)·g(0) = r(x), so any r(x) < nu works.
    for _ in support..m {
        rewards.push(nu * 0.9);
    }
    Ok(RewardDesign { rewards: ValueProfile::new(rewards)?, value: nu, k })
}

/// Verify a design: solve the IFD under `(c, rewards, k)` and return the
/// distance to the intended target.
pub fn verify_design(c: &dyn Congestion, design: &RewardDesign, target: &Strategy) -> Result<f64> {
    let ifd = dispersal_core::ifd::solve_ifd(c, &design.rewards, design.k)?;
    ifd.strategy.linf_distance(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dispersal_core::coverage::coverage;
    use dispersal_core::optimal::optimal_coverage;
    use dispersal_core::policy::Sharing;
    use dispersal_core::sigma_star::sigma_star;

    #[test]
    fn designed_rewards_steer_sharing_to_sigma_star() {
        // The head-line Kleinberg-Oren use case: make the sharing policy's
        // equilibrium equal the coverage-optimal sigma* of the true values.
        let f = ValueProfile::new(vec![1.0, 0.5, 0.25]).unwrap();
        let k = 3;
        let star = sigma_star(&f, k).unwrap().strategy;
        let design = design_rewards(&Sharing, &star, k, 1.0).unwrap();
        let err = verify_design(&Sharing, &design, &star).unwrap();
        assert!(err < 1e-8, "design error {err}");
        // Coverage of the induced equilibrium w.r.t. the TRUE values is
        // optimal.
        let opt = optimal_coverage(&f, k).unwrap();
        let induced = dispersal_core::ifd::solve_ifd(&Sharing, &design.rewards, k).unwrap();
        let cov = coverage(&f, &induced.strategy, k).unwrap();
        assert!((cov - opt.coverage).abs() < 1e-7, "coverage {cov} vs optimal {}", opt.coverage);
    }

    #[test]
    fn design_depends_on_k() {
        // The same target needs different rewards for different k — the
        // paper's criticism that [23] requires knowing the player count.
        let f = ValueProfile::new(vec![1.0, 0.5, 0.25]).unwrap();
        let target = sigma_star(&f, 3).unwrap().strategy;
        let d3 = design_rewards(&Sharing, &target, 3, 1.0).unwrap();
        let d5 = design_rewards(&Sharing, &target, 5, 1.0).unwrap();
        let diff: f64 = d3
            .rewards
            .values()
            .iter()
            .zip(d5.rewards.values().iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(diff > 1e-3, "rewards should differ across k, max diff {diff}");
    }

    #[test]
    fn rewards_are_increasing_in_target_probability() {
        // More-visited sites need higher rewards to compensate congestion.
        let target = Strategy::new(vec![0.5, 0.3, 0.2]).unwrap();
        let design = design_rewards(&Sharing, &target, 4, 1.0).unwrap();
        let r = design.rewards.values();
        assert!(r[0] > r[1] && r[1] > r[2]);
    }

    #[test]
    fn off_support_sites_stay_empty() {
        let target = Strategy::new(vec![0.7, 0.3, 0.0, 0.0]).unwrap();
        let design = design_rewards(&Sharing, &target, 2, 1.0).unwrap();
        let ifd = dispersal_core::ifd::solve_ifd(&Sharing, &design.rewards, 2).unwrap();
        assert!(ifd.strategy.prob(2) < 1e-9);
        assert!(ifd.strategy.prob(3) < 1e-9);
    }

    #[test]
    fn validates_inputs() {
        let target = Strategy::new(vec![0.7, 0.3]).unwrap();
        assert!(design_rewards(&Sharing, &target, 2, 0.0).is_err());
        assert!(design_rewards(&Sharing, &target, 2, f64::NAN).is_err());
        // Non-prefix support rejected.
        let holey = Strategy::new(vec![0.7, 0.0, 0.3]).unwrap();
        assert!(design_rewards(&Sharing, &holey, 2, 1.0).is_err());
        // Degenerate policy rejected.
        assert!(design_rewards(&dispersal_core::policy::Constant, &target, 2, 1.0).is_err());
    }

    #[test]
    fn aggressive_policy_crowding_rejected() {
        // Under strong aggression a heavily-loaded site has negative g, so
        // no positive reward can equalize values — the designer's tool
        // breaks where congestion costs are severe.
        let target = Strategy::new(vec![0.95, 0.05]).unwrap();
        let agg = dispersal_core::policy::TwoLevel { c: -1.0 };
        let result = design_rewards(&agg, &target, 8, 1.0);
        assert!(result.is_err());
    }
}
