//! Adversarial instance search: hill-climbing over value profiles to
//! lower-bound `SPoA(C)` more tightly than the structured families alone.
//!
//! Starts are drawn from the structured families of
//! [`dispersal_core::spoa::spoa_supremum_search`] plus random profiles;
//! each start is refined by multiplicative perturbation hill-climbing, and
//! starts run in parallel.

use dispersal_core::policy::Congestion;
use dispersal_core::spoa::spoa;
use dispersal_core::value::ValueProfile;
use dispersal_core::Result;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration for the adversarial SPoA search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdversarialConfig {
    /// Sites per instance.
    pub m: usize,
    /// Number of random multistarts (in addition to structured starts).
    pub random_starts: usize,
    /// Hill-climbing iterations per start.
    pub iterations: usize,
    /// Relative perturbation magnitude.
    pub step: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for AdversarialConfig {
    fn default() -> Self {
        Self { m: 24, random_starts: 8, iterations: 300, step: 0.15, seed: 99 }
    }
}

/// Result of the adversarial search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdversarialResult {
    /// Largest SPoA found.
    pub best_ratio: f64,
    /// The witness profile.
    pub witness: Vec<f64>,
    /// Number of instances evaluated.
    pub evaluations: usize,
}

fn hill_climb(
    c: &dyn Congestion,
    start: &ValueProfile,
    k: usize,
    config: AdversarialConfig,
    rng: &mut ChaCha8Rng,
) -> Result<(f64, ValueProfile, usize)> {
    let mut current = start.clone();
    let mut best = spoa(c, &current, k)?.ratio;
    let mut evals = 1usize;
    for _ in 0..config.iterations {
        let perturbed: Vec<f64> = current
            .values()
            .iter()
            .map(|&v| v * (1.0 + config.step * (rng.gen::<f64>() * 2.0 - 1.0)))
            .collect();
        let candidate = ValueProfile::from_unsorted(perturbed)?;
        let ratio = spoa(c, &candidate, k)?.ratio;
        evals += 1;
        if ratio > best {
            best = ratio;
            current = candidate;
        }
    }
    Ok((best, current, evals))
}

/// Run the adversarial search for `SPoA(C)` at player count `k`.
pub fn adversarial_spoa(
    c: &dyn Congestion,
    k: usize,
    config: AdversarialConfig,
) -> Result<AdversarialResult> {
    let mut starts: Vec<ValueProfile> = vec![
        ValueProfile::uniform(config.m, 1.0)?,
        ValueProfile::zipf(config.m, 1.0, 0.5)?,
        ValueProfile::geometric(config.m, 1.0, 0.95)?,
        ValueProfile::linear(config.m, 1.0, 0.2)?,
    ];
    if k >= 2 {
        starts.push(ValueProfile::slow_decay_witness(config.m, k)?);
    }
    let mut seed_rng = ChaCha8Rng::seed_from_u64(config.seed);
    for _ in 0..config.random_starts {
        let values: Vec<f64> = (0..config.m).map(|_| seed_rng.gen::<f64>().max(1e-6)).collect();
        starts.push(ValueProfile::from_unsorted(values)?);
    }
    let seeds: Vec<u64> = (0..starts.len()).map(|_| seed_rng.gen()).collect();
    let results: Vec<Result<(f64, ValueProfile, usize)>> = starts
        .par_iter()
        .zip(seeds.par_iter())
        .map(|(start, &seed)| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            hill_climb(c, start, k, config, &mut rng)
        })
        .collect();
    let mut best_ratio = 0.0;
    let mut witness = Vec::new();
    let mut evaluations = 0usize;
    for r in results {
        let (ratio, profile, evals) = r?;
        evaluations += evals;
        if ratio > best_ratio {
            best_ratio = ratio;
            witness = profile.values().to_vec();
        }
    }
    Ok(AdversarialResult { best_ratio, witness, evaluations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dispersal_core::policy::{Exclusive, Sharing, TwoLevel};

    fn small_config() -> AdversarialConfig {
        AdversarialConfig { m: 10, random_starts: 2, iterations: 40, step: 0.2, seed: 7 }
    }

    #[test]
    fn exclusive_stays_at_one_under_attack() {
        let result = adversarial_spoa(&Exclusive, 3, small_config()).unwrap();
        assert!(
            (result.best_ratio - 1.0).abs() < 1e-6,
            "adversarial search broke Corollary 5: {}",
            result.best_ratio
        );
    }

    #[test]
    fn sharing_found_above_one_but_below_two() {
        let result = adversarial_spoa(&Sharing, 4, small_config()).unwrap();
        assert!(result.best_ratio > 1.0 + 1e-6, "ratio {}", result.best_ratio);
        assert!(result.best_ratio < 2.0 + 1e-9, "Vetta bound violated: {}", result.best_ratio);
        assert!(!result.witness.is_empty());
        assert!(result.evaluations > 100);
    }

    #[test]
    fn aggressive_policy_also_above_one() {
        let result = adversarial_spoa(&TwoLevel { c: -0.5 }, 3, small_config()).unwrap();
        assert!(result.best_ratio > 1.0 + 1e-6, "ratio {}", result.best_ratio);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = adversarial_spoa(&Sharing, 3, small_config()).unwrap();
        let b = adversarial_spoa(&Sharing, 3, small_config()).unwrap();
        assert_eq!(a.best_ratio.to_bits(), b.best_ratio.to_bits());
    }
}
