//! # dispersal-mech
//!
//! Mechanism-design layer over the dispersal game: the tooling a designer
//! would use to pick a congestion policy.
//!
//! * [`catalog`] — named policy catalog + command-line spec parser.
//! * [`evaluator`] — one-call policy scorecards (equilibrium coverage,
//!   optimal coverage, SPoA, welfare, ESS probe).
//! * [`adversarial`] — parallel hill-climbing search over value profiles to
//!   lower-bound `SPoA(C)` (Theorem 6 witnesses).
//! * [`kleinberg_oren`] — the reward-design baseline of \[23\], implemented
//!   to exhibit the contrasts the paper draws (needs `k`, needs mutable
//!   rewards).
//! * [`scoring`] — scorecards for *table-specified* mechanisms (the rows
//!   of a search's `GBatch` tile), commensurable with the catalog
//!   evaluator, plus the Kleinberg–Oren baseline on the same welfare axis.
//! * [`report`] — CSV / ASCII-plot / Markdown emitters for the experiment
//!   binaries.

#![warn(missing_docs)]

pub mod adversarial;
pub mod catalog;
pub mod evaluator;
pub mod kleinberg_oren;
pub mod report;
pub mod robustness;
pub mod scoring;

/// Common imports for mechanism-design workflows.
pub mod prelude {
    pub use crate::adversarial::{adversarial_spoa, AdversarialConfig, AdversarialResult};
    pub use crate::catalog::{parse_policy, parse_profile, standard_catalog, NamedPolicy};
    pub use crate::evaluator::{evaluate_catalog, evaluate_policy, PolicyEvaluation};
    pub use crate::kleinberg_oren::{design_rewards, verify_design, RewardDesign};
    pub use crate::report::{ascii_plot, markdown_table, to_csv, Series};
    pub use crate::robustness::{
        k_misspecification_curve, value_noise_robustness, KMisspecPoint, NoiseRobustness,
    };
    pub use crate::scoring::{
        kleinberg_oren_score, policy_table, score_catalog, score_table, KleinbergOrenScore,
        MechScore,
    };
}
