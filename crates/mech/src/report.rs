//! Report emitters shared by the experiment binaries: CSV tables and
//! fixed-width ASCII line plots (the repository's stand-in for the paper's
//! gnuplot figures).

use std::fmt::Write as _;

/// Render rows as CSV with the given header.
pub fn to_csv(header: &[&str], rows: &[Vec<f64>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v:.10}")).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out
}

/// A labeled series for ASCII plotting.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Plot glyph.
    pub glyph: char,
    /// y values (same x grid as the plot).
    pub values: Vec<f64>,
}

/// Render an ASCII line plot of several series over a shared x grid.
///
/// The plot is `height` rows tall and one column per x sample; later series
/// overwrite earlier ones where they overlap.
pub fn ascii_plot(title: &str, xs: &[f64], series: &[Series], height: usize) -> String {
    assert!(height >= 2, "plot needs at least 2 rows");
    assert!(!xs.is_empty(), "empty x grid");
    for s in series {
        assert_eq!(s.values.len(), xs.len(), "series {} length mismatch", s.label);
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for s in series {
        for &v in &s.values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !(lo.is_finite() && hi.is_finite()) {
        lo = 0.0;
        hi = 1.0;
    }
    if hi - lo < 1e-12 {
        hi = lo + 1.0;
    }
    let width = xs.len();
    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        for (col, &v) in s.values.iter().enumerate() {
            let frac = (v - lo) / (hi - lo);
            let row = ((1.0 - frac) * (height as f64 - 1.0)).round() as usize;
            grid[row.min(height - 1)][col] = s.glyph;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ =
        writeln!(out, "# y in [{lo:.4}, {hi:.4}], x in [{:.4}, {:.4}]", xs[0], xs[xs.len() - 1]);
    for row in &grid {
        let _ = writeln!(out, "|{}|", row.iter().collect::<String>());
    }
    let legend: Vec<String> = series.iter().map(|s| format!("{} = {}", s.glyph, s.label)).collect();
    let _ = writeln!(out, "# legend: {}", legend.join(", "));
    out
}

/// Format a Markdown table from header and stringified rows.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", header.join(" | "));
    let _ = writeln!(out, "|{}|", header.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_shape() {
        let csv = to_csv(&["a", "b"], &[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "a,b");
        assert!(lines[1].starts_with("1.0000000000,2.0000000000"));
    }

    #[test]
    fn ascii_plot_contains_glyphs_and_legend() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let s = Series { label: "line".into(), glyph: '*', values: xs.clone() };
        let plot = ascii_plot("test", &xs, &[s], 8);
        assert!(plot.contains('*'));
        assert!(plot.contains("legend: * = line"));
        assert!(plot.contains("# test"));
    }

    #[test]
    fn ascii_plot_flat_series_does_not_panic() {
        let xs = vec![0.0, 1.0];
        let s = Series { label: "flat".into(), glyph: 'o', values: vec![2.0, 2.0] };
        let plot = ascii_plot("flat", &xs, &[s], 4);
        assert!(plot.contains('o'));
    }

    #[test]
    #[should_panic]
    fn ascii_plot_rejects_mismatched_series() {
        let xs = vec![0.0, 1.0];
        let s = Series { label: "bad".into(), glyph: 'x', values: vec![1.0] };
        ascii_plot("bad", &xs, &[s], 4);
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["x", "y"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| x | y |"));
        assert!(t.contains("|---|---|"));
        assert!(t.contains("| 1 | 2 |"));
    }
}
