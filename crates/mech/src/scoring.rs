//! Scoring *table-specified* congestion mechanisms — the evaluation
//! back end of the mechanism-space search in `dispersal-search`.
//!
//! The search proposes candidate mechanisms as coefficient tables
//! `[C(1), …, C(k)]` (the rows of a policy-major `GBatch` tile). This
//! module turns one such row into the same scorecard
//! [`crate::evaluator::evaluate_policy`] produces for catalog entries —
//! equilibrium coverage (the welfare measure), SPoA, equilibrium payoff,
//! and an ESS feasibility margin — so searched mechanisms and hand-written
//! catalog entries are compared by *identical* code paths. ESS margins run
//! through [`dispersal_core::ess::probe_ess_k`], whose ledger evaluator
//! routes every mutant payoff through the shared `PbCache` binomial-table
//! cache.
//!
//! Determinism contract: for a fixed `(table, profile, k, ess_mutants,
//! ess_seed)` the returned score is bit-identical regardless of thread
//! count — nothing here reads ambient state, and the ESS probe draws its
//! mutants from a `ChaCha8Rng` seeded with `ess_seed` alone.

use dispersal_core::coverage::coverage;
use dispersal_core::ess::probe_ess_k;
use dispersal_core::ifd::solve_ifd_allow_degenerate;
use dispersal_core::optimal::optimal_coverage;
use dispersal_core::payoff::PayoffContext;
use dispersal_core::policy::{Congestion, Sharing, TableCongestion};
use dispersal_core::sigma_star::sigma_star;
use dispersal_core::strategy::Strategy;
use dispersal_core::value::ValueProfile;
use dispersal_core::Result;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Scorecard for one table-specified mechanism.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MechScore {
    /// Mechanism label (family spec or catalog name).
    pub name: String,
    /// Player count scored at.
    pub k: usize,
    /// Welfare: value-weighted coverage of the equilibrium (the paper's
    /// social objective — expected value discovered by the group).
    pub welfare: f64,
    /// Coverage of the welfare-optimal symmetric strategy (same for every
    /// mechanism; the SPoA numerator).
    pub optimal_coverage: f64,
    /// Selfish price of anarchy `optimal / equilibrium` coverage.
    pub spoa: f64,
    /// Common equilibrium payoff per player.
    pub equilibrium_payoff: f64,
    /// Equilibrium support size.
    pub support: usize,
    /// Worst resident-vs-mutant margin over the probed mutants
    /// (`+∞` means every probe was repelled by a wide margin; negative
    /// means an invasion was found). `0.0` when no probe ran.
    pub ess_margin: f64,
    /// Whether the equilibrium repelled every probed mutant. Degenerate
    /// mechanisms (constant `C`) are never certified.
    pub ess_passed: bool,
}

/// Score the mechanism given by `table = [C(1), …, C(k)]` on `f`.
///
/// `ess_mutants` random mutant strategies (drawn from a `ChaCha8Rng`
/// seeded with `ess_seed`) probe the equilibrium for invasions; pass `0`
/// to skip the probe (then `ess_passed` is `false` — an unprobed
/// mechanism is not certified).
pub fn score_table(
    name: &str,
    table: &[f64],
    f: &ValueProfile,
    k: usize,
    ess_mutants: usize,
    ess_seed: u64,
) -> Result<MechScore> {
    let policy = TableCongestion::new(table.to_vec(), name)?;
    let ifd = solve_ifd_allow_degenerate(&policy, f, k)?;
    let welfare = coverage(f, &ifd.strategy, k)?;
    let opt = optimal_coverage(f, k)?;
    let ctx = PayoffContext::new(&policy, k)?;
    let equilibrium_payoff = ctx.symmetric_payoff(f, &ifd.strategy)?;
    let degenerate = ctx.is_degenerate();
    let (ess_passed, ess_margin) = if ess_mutants > 0 && k >= 2 && !degenerate {
        let mut rng = ChaCha8Rng::seed_from_u64(ess_seed);
        let report = probe_ess_k(&policy, f, &ifd.strategy, ess_mutants, &mut rng, k)?;
        (report.passed(), report.worst_margin)
    } else {
        (false, 0.0)
    };
    Ok(MechScore {
        name: name.to_string(),
        k,
        welfare,
        optimal_coverage: opt.coverage,
        spoa: if welfare > 0.0 { opt.coverage / welfare } else { f64::INFINITY },
        equilibrium_payoff,
        support: ifd.support,
        ess_margin,
        ess_passed,
    })
}

/// Score every catalog entry through the *same* pipeline as
/// [`score_table`] (via `validate_congestion`-expanded tables), so the
/// search's certificate and the catalog baseline are numerically
/// commensurable — identical mechanisms produce bit-identical welfare.
pub fn score_catalog(
    f: &ValueProfile,
    k: usize,
    ess_mutants: usize,
    ess_seed: u64,
) -> Result<Vec<MechScore>> {
    crate::catalog::standard_catalog()
        .iter()
        .map(|named| {
            let table = dispersal_core::policy::validate_congestion(named.policy.as_ref(), k)?;
            score_table(&named.name, &table, f, k, ess_mutants, ess_seed)
        })
        .collect()
}

/// The Kleinberg–Oren reward-design baseline, scored on the same welfare
/// axis: steer the *sharing* policy's equilibrium onto the
/// coverage-optimal σ⋆ by redesigning per-site rewards, then measure the
/// coverage of the induced equilibrium against the TRUE values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KleinbergOrenScore {
    /// Welfare (true-value coverage) of the reward-induced equilibrium.
    pub welfare: f64,
    /// L∞ distance of the induced equilibrium from the σ⋆ target.
    pub design_error: f64,
    /// The player count the design is hard-wired to (the contrast with a
    /// congestion mechanism, which needs no such knowledge).
    pub k: usize,
}

/// Run the Kleinberg–Oren construction for `(f, k)` and score it.
pub fn kleinberg_oren_score(f: &ValueProfile, k: usize) -> Result<KleinbergOrenScore> {
    let target: Strategy = sigma_star(f, k)?.strategy;
    let design = crate::kleinberg_oren::design_rewards(&Sharing, &target, k, 1.0)?;
    let induced = dispersal_core::ifd::solve_ifd(&Sharing, &design.rewards, design.k)?;
    let welfare = coverage(f, &induced.strategy, k)?;
    let design_error = induced.strategy.linf_distance(&target)?;
    Ok(KleinbergOrenScore { welfare, design_error, k })
}

/// Expand a named congestion policy into its `[C(1), …, C(k)]` table —
/// convenience re-export used by the search CLI and experiment bins.
pub fn policy_table(policy: &dyn Congestion, k: usize) -> Result<Vec<f64>> {
    dispersal_core::policy::validate_congestion(policy, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::evaluate_policy;
    use dispersal_core::policy::Exclusive;

    fn profile() -> ValueProfile {
        ValueProfile::zipf(10, 1.0, 1.0).unwrap()
    }

    #[test]
    fn exclusive_table_matches_policy_evaluator_bits() {
        // The scorer must agree with the catalog evaluator on identical
        // mechanisms: same IFD pipeline, same numbers.
        let f = profile();
        let k = 4;
        let table = policy_table(&Exclusive, k).unwrap();
        let score = score_table("exclusive", &table, &f, k, 0, 0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let eval = evaluate_policy("exclusive", &Exclusive, &f, k, 0, &mut rng).unwrap();
        assert_eq!(score.welfare.to_bits(), eval.equilibrium_coverage.to_bits());
        assert_eq!(score.optimal_coverage.to_bits(), eval.optimal_coverage.to_bits());
        assert_eq!(score.spoa.to_bits(), eval.spoa.to_bits());
        assert_eq!(score.support, eval.ifd_support);
    }

    #[test]
    fn exclusive_passes_ess_probe_with_positive_margin_pipeline() {
        let f = profile();
        let score =
            score_table("exclusive", &policy_table(&Exclusive, 4).unwrap(), &f, 4, 16, 7).unwrap();
        assert!(score.ess_passed, "exclusive is the paper's ESS: {score:?}");
        assert!(score.spoa < 1.0 + 1e-6, "exclusive has unit SPoA: {}", score.spoa);
    }

    #[test]
    fn degenerate_constant_table_is_never_certified() {
        let f = profile();
        let table = vec![1.0; 4];
        let score = score_table("constant", &table, &f, 4, 16, 7).unwrap();
        assert!(!score.ess_passed);
        assert_eq!(score.ess_margin, 0.0);
    }

    #[test]
    fn score_catalog_covers_every_entry_and_is_deterministic() {
        let f = profile();
        let a = score_catalog(&f, 4, 8, 11).unwrap();
        let b = score_catalog(&f, 4, 8, 11).unwrap();
        assert_eq!(a.len(), crate::catalog::standard_catalog().len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.welfare.to_bits(), y.welfare.to_bits());
            assert_eq!(x.ess_margin.to_bits(), y.ess_margin.to_bits());
        }
    }

    #[test]
    fn kleinberg_oren_reaches_near_optimal_welfare_but_needs_k() {
        let f = profile();
        let k = 4;
        let ko = kleinberg_oren_score(&f, k).unwrap();
        let opt = optimal_coverage(&f, k).unwrap().coverage;
        assert!(ko.design_error < 1e-6, "design error {}", ko.design_error);
        assert!(
            (ko.welfare - opt).abs() < 1e-4,
            "KO should hit ~optimal coverage: {} vs {opt}",
            ko.welfare
        );
        assert_eq!(ko.k, k);
    }
}
