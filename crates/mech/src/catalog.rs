//! A named catalog of congestion policies, and a small spec parser so
//! experiment binaries can select policies from the command line.

use dispersal_core::policy::{
    Congestion, Constant, Cooperative, Exclusive, LinearDecay, PowerLaw, Sharing, TwoLevel,
};
use dispersal_core::{Error, Result};

/// A named, boxed congestion policy.
pub struct NamedPolicy {
    /// Catalog name (stable identifier, e.g. `"two-level:0.3"`).
    pub name: String,
    /// The policy object.
    pub policy: Box<dyn Congestion>,
}

/// The standard catalog used by the experiments of this repository: the two
/// distinguished policies plus representatives of every family in Section
/// 1.1 (cooperative, intermediate, and aggressive).
pub fn standard_catalog() -> Vec<NamedPolicy> {
    let mut out: Vec<NamedPolicy> = Vec::new();
    let mut push = |name: &str, policy: Box<dyn Congestion>| {
        out.push(NamedPolicy { name: name.to_string(), policy });
    };
    push("exclusive", Box::new(Exclusive));
    push("sharing", Box::new(Sharing));
    push("constant", Box::new(Constant));
    for &c in &[-0.5, -0.25, 0.25, 0.5] {
        push(&format!("two-level:{c}"), Box::new(TwoLevel { c }));
    }
    for &beta in &[0.5, 2.0] {
        push(&format!("power:{beta}"), Box::new(PowerLaw { beta }));
    }
    push("linear:0.3", Box::new(LinearDecay { slope: 0.3 }));
    push("cooperative:0.5", Box::new(Cooperative { theta: 0.5 }));
    out
}

/// Parse a policy spec string:
/// `exclusive | sharing | constant | two-level:<c> | power:<beta> |
/// linear:<slope> | cooperative:<theta>`.
pub fn parse_policy(spec: &str) -> Result<Box<dyn Congestion>> {
    let (head, arg) = match spec.split_once(':') {
        Some((h, a)) => (h, Some(a)),
        None => (spec, None),
    };
    let parse_arg = |what: &str| -> Result<f64> {
        let value = arg
            .ok_or_else(|| {
                Error::InvalidArgument(format!("{what} requires an argument, e.g. {what}:0.3"))
            })?
            .parse::<f64>()
            .map_err(|e| Error::InvalidArgument(format!("bad {what} argument: {e}")))?;
        // `f64::from_str` happily parses "NaN"/"inf"; a non-finite
        // congestion factor would poison every payoff downstream.
        if !value.is_finite() {
            return Err(Error::InvalidArgument(format!("non-finite {what} argument: {value}")));
        }
        Ok(value)
    };
    match head {
        "exclusive" => Ok(Box::new(Exclusive)),
        "sharing" => Ok(Box::new(Sharing)),
        "constant" => Ok(Box::new(Constant)),
        "two-level" => Ok(Box::new(TwoLevel::new(parse_arg("two-level")?)?)),
        "power" => Ok(Box::new(PowerLaw::new(parse_arg("power")?)?)),
        "linear" => Ok(Box::new(LinearDecay::new(parse_arg("linear")?)?)),
        "cooperative" => Ok(Box::new(Cooperative::new(parse_arg("cooperative")?)?)),
        other => Err(Error::InvalidArgument(format!("unknown policy spec: {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_nonempty_and_valid() {
        let catalog = standard_catalog();
        assert!(catalog.len() >= 10);
        for named in &catalog {
            dispersal_core::policy::validate_congestion(named.policy.as_ref(), 8).unwrap();
        }
    }

    #[test]
    fn catalog_contains_the_two_distinguished_policies() {
        let names: Vec<String> = standard_catalog().into_iter().map(|n| n.name).collect();
        assert!(names.contains(&"exclusive".to_string()));
        assert!(names.contains(&"sharing".to_string()));
    }

    #[test]
    fn parse_round_trips_simple_specs() {
        assert!(parse_policy("exclusive").unwrap().is_exclusive_up_to(5));
        assert_eq!(parse_policy("sharing").unwrap().c(2), 0.5);
        assert_eq!(parse_policy("constant").unwrap().c(3), 1.0);
        assert_eq!(parse_policy("two-level:-0.3").unwrap().c(2), -0.3);
        assert_eq!(parse_policy("power:1").unwrap().c(4), 0.25);
        assert!((parse_policy("linear:0.1").unwrap().c(2) - 0.9).abs() < 1e-12);
        assert!(parse_policy("cooperative:0.5").unwrap().c(2) > 0.5);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(parse_policy("bogus").is_err());
        assert!(parse_policy("two-level").is_err());
        assert!(parse_policy("two-level:abc").is_err());
        assert!(parse_policy("power:-1").is_err());
    }

    #[test]
    fn parse_rejects_non_finite_policy_arguments() {
        // Regression: `f64::from_str` accepts "NaN"/"inf"/"-inf", and the
        // pre-fix parser forwarded them into policy constructors whose own
        // range checks (e.g. Cooperative's `theta > 0`) NaN slips past.
        // The parser must reject non-finite arguments itself, with a
        // distinctive "non-finite" message.
        for spec in ["cooperative:NaN", "cooperative:inf", "two-level:-inf", "linear:NaN"] {
            let err = match parse_policy(spec) {
                Err(e) => e.to_string(),
                Ok(_) => panic!("spec {spec} parsed"),
            };
            assert!(err.contains("non-finite"), "spec {spec} gave: {err}");
        }
    }
}

/// Parse a value-profile spec string:
/// `zipf:<M>:<s> | geometric:<M>:<rho> | linear:<M>:<hi>:<lo> |
/// uniform:<M>:<v> | slow-decay:<M>:<k> | values:<v1>,<v2>,…`.
pub fn parse_profile(spec: &str) -> Result<dispersal_core::value::ValueProfile> {
    use dispersal_core::value::ValueProfile;
    let mut parts = spec.split(':');
    let head = parts.next().unwrap_or("");
    let rest: Vec<&str> = parts.collect();
    let num = |s: &str| -> Result<f64> {
        let value = s.parse::<f64>().map_err(|e| {
            Error::InvalidArgument(format!("bad number '{s}' in profile spec: {e}"))
        })?;
        if !value.is_finite() {
            return Err(Error::InvalidArgument(format!("non-finite number '{s}' in profile spec")));
        }
        Ok(value)
    };
    let int = |s: &str| -> Result<usize> {
        s.parse::<usize>()
            .map_err(|e| Error::InvalidArgument(format!("bad integer '{s}' in profile spec: {e}")))
    };
    let need = |n: usize| -> Result<()> {
        if rest.len() != n {
            return Err(Error::InvalidArgument(format!(
                "profile spec '{spec}' expects {n} arguments, got {}",
                rest.len()
            )));
        }
        Ok(())
    };
    match head {
        "zipf" => {
            need(2)?;
            ValueProfile::zipf(int(rest[0])?, 1.0, num(rest[1])?)
        }
        "geometric" => {
            need(2)?;
            ValueProfile::geometric(int(rest[0])?, 1.0, num(rest[1])?)
        }
        "linear" => {
            need(3)?;
            ValueProfile::linear(int(rest[0])?, num(rest[1])?, num(rest[2])?)
        }
        "uniform" => {
            need(2)?;
            ValueProfile::uniform(int(rest[0])?, num(rest[1])?)
        }
        "slow-decay" => {
            need(2)?;
            ValueProfile::slow_decay_witness(int(rest[0])?, int(rest[1])?)
        }
        "values" => {
            need(1)?;
            let values: Result<Vec<f64>> = rest[0].split(',').map(num).collect();
            ValueProfile::from_unsorted(values?)
        }
        other => Err(Error::InvalidArgument(format!("unknown profile family: {other}"))),
    }
}

#[cfg(test)]
mod profile_spec_tests {
    use super::parse_profile;

    #[test]
    fn parses_every_family() {
        assert_eq!(parse_profile("zipf:5:1.0").unwrap().len(), 5);
        assert_eq!(parse_profile("geometric:4:0.5").unwrap().len(), 4);
        assert_eq!(parse_profile("linear:3:1.0:0.5").unwrap().len(), 3);
        assert_eq!(parse_profile("uniform:6:2.0").unwrap().len(), 6);
        assert_eq!(parse_profile("slow-decay:12:3").unwrap().len(), 12);
        let v = parse_profile("values:0.5,1.0,0.25").unwrap();
        assert_eq!(v.values(), &[1.0, 0.5, 0.25]);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(parse_profile("zipf:5").is_err());
        assert!(parse_profile("zipf:x:1").is_err());
        assert!(parse_profile("martian:3:1").is_err());
        assert!(parse_profile("values:1.0,-2.0").is_err());
        assert!(parse_profile("linear:3:0.2:0.9").is_err());
    }

    #[test]
    fn rejects_non_finite_profile_numbers() {
        // Regression: pre-fix, "zipf:5:inf" and friends parsed and reached
        // ValueProfile constructors with non-finite shape parameters.
        for spec in ["zipf:5:inf", "geometric:4:NaN", "uniform:6:inf", "values:1.0,NaN"] {
            let err = parse_profile(spec).unwrap_err().to_string();
            assert!(err.contains("non-finite"), "spec {spec} gave: {err}");
        }
    }
}
