//! Robustness analysis: how mechanisms degrade under misspecification.
//!
//! The paper's selling point for congestion policies over reward design
//! (Section 1.6) is that the exclusive policy needs neither the player
//! count `k` nor control over rewards. This module quantifies that:
//!
//! * [`k_misspecification_curve`] — design Kleinberg–Oren rewards for
//!   `k_design`, deploy against `k_actual`, and measure the coverage loss
//!   relative to the optimum at `k_actual`; the exclusive policy's loss is
//!   identically zero.
//! * [`value_noise_robustness`] — perturb the value profile the players
//!   respond to (mis-estimated site qualities) and measure how the
//!   realized coverage (under the *true* values) degrades.

use crate::kleinberg_oren::design_rewards;
use dispersal_core::coverage::coverage;
use dispersal_core::ifd::solve_ifd;
use dispersal_core::optimal::optimal_coverage;
use dispersal_core::policy::{Exclusive, Sharing};
use dispersal_core::sigma_star::sigma_star;
use dispersal_core::value::ValueProfile;
use dispersal_core::Result;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One row of the k-misspecification comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMisspecPoint {
    /// The deployed (actual) player count.
    pub k_actual: usize,
    /// Optimal coverage at `k_actual`.
    pub optimal: f64,
    /// Coverage of the Kleinberg–Oren design (built for `k_design`) when
    /// `k_actual` players respond to it under sharing.
    pub kleinberg_oren: f64,
    /// Coverage of the exclusive policy's equilibrium at `k_actual` (no
    /// design step at all).
    pub exclusive: f64,
}

/// Sweep `k_actual` over `ks`, with rewards designed once for `k_design`.
pub fn k_misspecification_curve(
    f: &ValueProfile,
    k_design: usize,
    ks: &[usize],
) -> Result<Vec<KMisspecPoint>> {
    let target = sigma_star(f, k_design)?.strategy;
    let design = design_rewards(&Sharing, &target, k_design, 1.0)?;
    ks.iter()
        .map(|&k_actual| {
            let optimal = optimal_coverage(f, k_actual)?.coverage;
            let ko_eq = solve_ifd(&Sharing, &design.rewards, k_actual)?;
            let kleinberg_oren = coverage(f, &ko_eq.strategy, k_actual)?;
            let excl_eq = solve_ifd(&Exclusive, f, k_actual)?;
            let exclusive = coverage(f, &excl_eq.strategy, k_actual)?;
            Ok(KMisspecPoint { k_actual, optimal, kleinberg_oren, exclusive })
        })
        .collect()
}

/// Result of the value-noise robustness experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseRobustness {
    /// Relative noise magnitude applied to the values.
    pub noise: f64,
    /// Mean realized coverage (under true values) when players equilibrate
    /// on noisy values, divided by the true optimum.
    pub mean_efficiency: f64,
    /// Worst efficiency across samples.
    pub worst_efficiency: f64,
    /// Number of noisy samples.
    pub samples: usize,
}

/// Players perceive `f(x)·(1 + ε_x)` with `ε_x ~ U(−noise, noise)`,
/// equilibrate under the exclusive policy on the *perceived* values, and
/// we measure realized coverage under the *true* values.
pub fn value_noise_robustness<R: Rng + ?Sized>(
    f: &ValueProfile,
    k: usize,
    noise: f64,
    samples: usize,
    rng: &mut R,
) -> Result<NoiseRobustness> {
    if !(0.0..1.0).contains(&noise) {
        return Err(dispersal_core::Error::InvalidArgument(format!(
            "noise must be in [0, 1), got {noise}"
        )));
    }
    let optimum = optimal_coverage(f, k)?.coverage;
    let mut total = 0.0;
    let mut worst = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let perceived_values: Vec<f64> = f
            .values()
            .iter()
            .map(|&v| v * (1.0 + noise * (rng.gen::<f64>() * 2.0 - 1.0)))
            .collect();
        // Keep track of the permutation: sort perceived, remember where
        // each true value went.
        let mut order: Vec<usize> = (0..f.len()).collect();
        order.sort_by(|&a, &b| {
            perceived_values[b]
                .partial_cmp(&perceived_values[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let sorted_perceived: Vec<f64> = order.iter().map(|&i| perceived_values[i]).collect();
        let perceived = ValueProfile::new(sorted_perceived)?;
        let star = sigma_star(&perceived, k)?;
        // Realized coverage under the TRUE values: site order[r] receives
        // probability star(r).
        let mut realized = 0.0;
        for (rank, &site) in order.iter().enumerate() {
            let p = star.strategy.prob(rank);
            realized += f.value(site) * (1.0 - (1.0 - p).powi(k as i32));
        }
        let efficiency = realized / optimum;
        total += efficiency;
        worst = worst.min(efficiency);
    }
    Ok(NoiseRobustness {
        noise,
        mean_efficiency: total / samples.max(1) as f64,
        worst_efficiency: worst,
        samples: samples.max(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn exclusive_is_exact_at_every_k() {
        let f = ValueProfile::zipf(10, 1.0, 0.8).unwrap();
        let curve = k_misspecification_curve(&f, 4, &[2, 4, 6, 8]).unwrap();
        for point in &curve {
            assert!(
                (point.exclusive - point.optimal).abs() < 1e-7,
                "k = {}: exclusive {} vs optimal {}",
                point.k_actual,
                point.exclusive,
                point.optimal
            );
        }
    }

    #[test]
    fn kleinberg_oren_exact_only_at_design_k() {
        let f = ValueProfile::zipf(10, 1.0, 0.8).unwrap();
        let k_design = 4;
        let curve = k_misspecification_curve(&f, k_design, &[2, 4, 8]).unwrap();
        for point in &curve {
            if point.k_actual == k_design {
                assert!((point.kleinberg_oren - point.optimal).abs() < 1e-7);
            } else {
                assert!(
                    point.kleinberg_oren < point.optimal - 1e-6,
                    "k = {}: KO {} should be suboptimal vs {}",
                    point.k_actual,
                    point.kleinberg_oren,
                    point.optimal
                );
            }
        }
    }

    #[test]
    fn zero_noise_is_fully_efficient() {
        let f = ValueProfile::zipf(8, 1.0, 1.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let r = value_noise_robustness(&f, 3, 0.0, 5, &mut rng).unwrap();
        assert!((r.mean_efficiency - 1.0).abs() < 1e-9);
        assert!((r.worst_efficiency - 1.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_degrades_gracefully_with_noise() {
        let f = ValueProfile::zipf(8, 1.0, 1.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let small = value_noise_robustness(&f, 3, 0.05, 40, &mut rng).unwrap();
        let large = value_noise_robustness(&f, 3, 0.5, 40, &mut rng).unwrap();
        assert!(small.mean_efficiency > 0.99, "small noise: {}", small.mean_efficiency);
        assert!(large.mean_efficiency >= small.mean_efficiency - 0.2);
        assert!(large.mean_efficiency <= 1.0 + 1e-9);
        assert!(large.worst_efficiency <= large.mean_efficiency + 1e-12);
    }

    #[test]
    fn noise_validation() {
        let f = ValueProfile::uniform(3, 1.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(value_noise_robustness(&f, 2, 1.0, 5, &mut rng).is_err());
        assert!(value_noise_robustness(&f, 2, -0.1, 5, &mut rng).is_err());
    }
}
