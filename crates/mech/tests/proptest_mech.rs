//! Crate-level property tests for `dispersal-mech`.

use dispersal_core::policy::{Congestion, Sharing, TwoLevel};
use dispersal_core::strategy::Strategy;
use dispersal_core::value::ValueProfile;
use dispersal_mech::catalog::parse_policy;
use dispersal_mech::kleinberg_oren::{design_rewards, verify_design};
use dispersal_mech::report::{ascii_plot, to_csv, Series};
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;

fn simplex_point() -> impl PropStrategy<Value = Vec<f64>> {
    proptest::collection::vec(0.05f64..1.0, 2..=8).prop_map(|raw| {
        let sum: f64 = raw.iter().sum();
        let mut p: Vec<f64> = raw.into_iter().map(|x| x / sum).collect();
        // Sort non-increasing so the target has prefix support.
        p.sort_by(|a, b| b.partial_cmp(a).unwrap());
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn reward_design_hits_any_interior_prefix_target(target_probs in simplex_point(), k in 2usize..=6) {
        let target = Strategy::new(target_probs).unwrap();
        let design = design_rewards(&Sharing, &target, k, 1.0).unwrap();
        let err = verify_design(&Sharing, &design, &target).unwrap();
        prop_assert!(err < 1e-6, "design error {err}");
        // Rewards sorted non-increasing (matches ValueProfile invariant).
        let r = design.rewards.values();
        for w in r.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn two_level_spec_roundtrip(c in -5.0f64..=1.0) {
        let spec = format!("two-level:{c}");
        let parsed = parse_policy(&spec).unwrap();
        let direct = TwoLevel::new(c).unwrap();
        for ell in 1..=6usize {
            prop_assert_eq!(parsed.c(ell), direct.c(ell));
        }
    }

    #[test]
    fn csv_rows_and_columns_preserved(rows in proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, 3), 0..10)) {
        let csv = to_csv(&["a", "b", "c"], &rows);
        let lines: Vec<&str> = csv.trim().lines().collect();
        prop_assert_eq!(lines.len(), rows.len() + 1);
        for line in &lines[1..] {
            prop_assert_eq!(line.split(',').count(), 3);
        }
    }

    #[test]
    fn ascii_plot_total_glyphs_bounded(ys in proptest::collection::vec(-5.0f64..5.0, 2..40)) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let plot = ascii_plot(
            "prop",
            &xs,
            &[Series { label: "s".into(), glyph: '#', values: ys.clone() }],
            10,
        );
        // Count glyphs only inside the plot grid (lines framed by '|'),
        // not in the '#'-prefixed header/legend lines.
        let glyphs: usize = plot
            .lines()
            .filter(|l| l.starts_with('|'))
            .map(|l| l.chars().filter(|&ch| ch == '#').count())
            .sum();
        // Exactly one glyph per column (single series).
        prop_assert_eq!(glyphs, ys.len());
    }

    #[test]
    fn noise_robustness_efficiency_in_unit_interval(seed in 0u64..200, noise in 0.0f64..0.8) {
        use rand_chacha::rand_core::SeedableRng;
        let f = ValueProfile::zipf(6, 1.0, 0.9).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let r = dispersal_mech::robustness::value_noise_robustness(&f, 3, noise, 10, &mut rng).unwrap();
        prop_assert!(r.mean_efficiency <= 1.0 + 1e-9);
        prop_assert!(r.worst_efficiency > 0.0);
        prop_assert!(r.worst_efficiency <= r.mean_efficiency + 1e-12);
    }
}
