//! Concurrent-cache stress: N threads × warm/cold interleavings against
//! the two `SharedCache`-backed memos (`core::kernel::PbCache`,
//! `sim::sweep::SharedGridCache`), with every observed value required to
//! be bit-identical to a single-threaded warm-up. The nightly TSan job
//! runs this file too, so any data race in the sharded-lock layer, the
//! LRU order index, or the counter atomics fails CI twice over.

use dispersal_core::kernel::PbCache;
use dispersal_core::policy::{Congestion, PowerLaw, Sharing, TwoLevel};
use dispersal_sim::sweep::SharedGridCache;
use std::sync::{Arc, Barrier};
use std::thread;

const THREADS: usize = 8;
const ROUNDS: usize = 4;

/// The probability profiles the PbCache rounds cycle through: a few
/// distinct equivalence classes plus permutations that must collapse
/// onto them.
fn pb_profiles() -> Vec<Vec<f64>> {
    vec![
        vec![0.2, 0.8],
        vec![0.8, 0.2],
        vec![0.5, 0.5, 0.5],
        vec![0.1, 0.2, 0.3, 0.4],
        vec![0.4, 0.3, 0.2, 0.1],
        vec![0.9],
        vec![0.25; 7],
    ]
}

#[test]
fn pb_cache_stress_bit_identical_to_serial_warm_up() {
    // Serial reference: one thread, one pass, natural order.
    let serial = PbCache::new();
    let expected: Vec<Vec<u64>> = pb_profiles()
        .iter()
        .map(|p| serial.table(p).unwrap().pmf().iter().map(|v| v.to_bits()).collect())
        .collect();

    // Concurrent: every thread loops the profile set ROUNDS times, each
    // thread starting at a different offset so cold builds and warm hits
    // interleave differently per thread.
    let cache = Arc::new(PbCache::new());
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            let expected = expected.clone();
            thread::spawn(move || {
                let profiles = pb_profiles();
                barrier.wait();
                for round in 0..ROUNDS {
                    for i in 0..profiles.len() {
                        let idx = (i + t + round) % profiles.len();
                        let table = cache.table(&profiles[idx]).unwrap();
                        let bits: Vec<u64> = table.pmf().iter().map(|v| v.to_bits()).collect();
                        assert_eq!(
                            bits, expected[idx],
                            "thread {t} round {round} profile {idx}: PMF bits diverged"
                        );
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("stress thread");
    }
    // 7 profiles collapse onto 5 sorted-multiset classes; every class was
    // built exactly once across all threads and rounds.
    assert_eq!(cache.builds(), 5);
    assert_eq!(cache.hits(), THREADS * ROUNDS * pb_profiles().len() - 5);
}

#[test]
fn grid_cache_stress_bit_identical_to_serial_warm_up() {
    let policies: [&dyn Congestion; 3] = [&Sharing, &TwoLevel { c: -0.3 }, &PowerLaw { beta: 2.0 }];
    let cells: Vec<(usize, usize, f64)> = {
        let mut cells = Vec::new();
        for (p, _) in policies.iter().enumerate() {
            for k in [4usize, 16] {
                for tol in [1e-6, 1e-9] {
                    cells.push((p, k, tol));
                }
            }
        }
        cells
    };
    let qs: Vec<f64> = (0..=48).map(|i| i as f64 / 48.0).collect();
    let eval_bits = |cache: &SharedGridCache, &(p, k, tol): &(usize, usize, f64)| -> Vec<u64> {
        let policies: [&dyn Congestion; 3] =
            [&Sharing, &TwoLevel { c: -0.3 }, &PowerLaw { beta: 2.0 }];
        let table = cache.table(policies[p], k, tol).unwrap();
        let mut scratch = table.scratch();
        let mut g = vec![0.0; qs.len()];
        table.eval_fast_many_with(&mut scratch, &qs, &mut g).unwrap();
        g.iter().map(|v| v.to_bits()).collect()
    };

    let serial = SharedGridCache::new();
    let expected: Vec<Vec<u64>> = cells.iter().map(|cell| eval_bits(&serial, cell)).collect();

    let cache = Arc::new(SharedGridCache::new());
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            let cells = cells.clone();
            let expected = expected.clone();
            let qs = qs.clone();
            thread::spawn(move || {
                let eval_bits =
                    |cache: &SharedGridCache, &(p, k, tol): &(usize, usize, f64)| -> Vec<u64> {
                        let policies: [&dyn Congestion; 3] =
                            [&Sharing, &TwoLevel { c: -0.3 }, &PowerLaw { beta: 2.0 }];
                        let table = cache.table(policies[p], k, tol).unwrap();
                        let mut scratch = table.scratch();
                        let mut g = vec![0.0; qs.len()];
                        table.eval_fast_many_with(&mut scratch, &qs, &mut g).unwrap();
                        g.iter().map(|v| v.to_bits()).collect()
                    };
                barrier.wait();
                for round in 0..ROUNDS {
                    for i in 0..cells.len() {
                        // Odd threads walk the cells backwards so builds
                        // and hits interleave in both directions.
                        let idx = if t % 2 == 0 {
                            (i + t + round) % cells.len()
                        } else {
                            cells.len() - 1 - ((i + t + round) % cells.len())
                        };
                        let bits = eval_bits(&cache, &cells[idx]);
                        assert_eq!(
                            bits, expected[idx],
                            "thread {t} round {round} cell {idx}: curve bits diverged"
                        );
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("stress thread");
    }
    assert_eq!(cache.builds(), cells.len(), "each (policy, k, tol) cell built exactly once");
    assert_eq!(cache.stats().evictions, 0);
}
