//! Cache-state independence of the sweep outputs (`deterministic-iteration`
//! contract, dynamic side).
//!
//! `SharedGridCache` memoizes interpolation grids behind sharded locks,
//! which is fine *only* because every access is a keyed lookup — nothing
//! ever iterates a map into an output. These tests pin the observable
//! consequence: sweep results are bit-identical regardless of the order
//! grids were warmed into the cache, whether entries arrived via the
//! single-policy or the batched path, whether the cache was warmed by one
//! thread or hammered by many concurrent clients, and at every
//! worker-thread count.

use dispersal_core::kernel::GridSpec;
use dispersal_core::policy::{Congestion, Sharing, TwoLevel};
use dispersal_sim::sweep::{ResponseRequest, SharedGridCache};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;

/// Serializes the tests that reconfigure the global pool width, mirroring
/// determinism.rs's `THREAD_SWEEP_LOCK` (the pool override is process
/// global; concurrent test threads must not interleave reconfigurations).
static THREAD_SWEEP_LOCK: Mutex<()> = Mutex::new(());

const KS: [usize; 3] = [5, 17, 64];
const RESOLUTION: usize = 96;
const TOL: f64 = 1e-9;

fn curve_bits(c: &dyn Congestion, cache: &SharedGridCache) -> Vec<Vec<u64>> {
    ResponseRequest::new(c)
        .ks(&KS)
        .resolution(RESOLUTION)
        .grid(GridSpec::Interpolated { tol: TOL })
        .cache(cache)
        .evaluate()
        .expect("interpolated sweep")
        .into_iter()
        .map(|curve| curve.g.iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn grid_cache_results_independent_of_warm_order() {
    let policies: [&dyn Congestion; 2] = [&Sharing, &TwoLevel { c: -0.3 }];
    // Forward warm: policies × ks in natural order.
    let forward = SharedGridCache::new();
    for c in policies {
        for &k in &KS {
            forward.table(c, k, TOL).expect("grid build");
        }
    }
    // Reverse warm: same cells inserted in the opposite order.
    let reverse = SharedGridCache::new();
    for c in policies.iter().rev() {
        for &k in KS.iter().rev() {
            reverse.table(*c, k, TOL).expect("grid build");
        }
    }
    assert_eq!(forward.builds(), reverse.builds());
    assert_eq!(forward.len(), reverse.len());
    for c in policies {
        let a = curve_bits(c, &forward);
        let b = curve_bits(c, &reverse);
        assert_eq!(a, b, "warm order changed sweep bits for {}", c.name());
    }
}

#[test]
fn grid_cache_shared_across_single_and_batched_paths() {
    // A cache warmed by the single-policy path must serve the batched
    // path from the same grids (no rebuilds) with identical bits, and
    // vice versa against a cold cache.
    let policies: [&dyn Congestion; 2] = [&Sharing, &TwoLevel { c: -0.3 }];
    let warmed = SharedGridCache::new();
    for c in policies {
        curve_bits(c, &warmed);
    }
    let builds_after_warm = warmed.builds();
    let cold = SharedGridCache::new();
    let batched = |cache: &SharedGridCache| {
        ResponseRequest::policies(&policies)
            .ks(&KS)
            .resolution(RESOLUTION)
            .grid(GridSpec::Interpolated { tol: TOL })
            .cache(cache)
            .evaluate()
            .expect("batched sweep")
    };
    let via_warm = batched(&warmed);
    let via_cold = batched(&cold);
    assert_eq!(warmed.builds(), builds_after_warm, "batched path rebuilt a warmed grid");
    for (a, b) in via_warm.iter().zip(via_cold.iter()) {
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.k, b.k);
        let bits_a: Vec<u64> = a.g.iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u64> = b.g.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "cache temperature changed bits for ({}, {})", a.policy, a.k);
    }
}

#[test]
fn grid_cache_sweeps_bit_identical_across_thread_counts() {
    let _guard = THREAD_SWEEP_LOCK.lock().unwrap();
    let policy = TwoLevel { c: -0.3 };
    let mut reference: Option<Vec<Vec<u64>>> = None;
    for threads in [1usize, 2, 8] {
        rayon::set_num_threads(threads);
        let cache = SharedGridCache::new();
        let bits = curve_bits(&policy, &cache);
        match &reference {
            None => reference = Some(bits),
            Some(expected) => {
                assert_eq!(&bits, expected, "sweep bits changed at {threads} threads");
            }
        }
    }
    rayon::set_num_threads(0);
}

#[test]
fn grid_cache_concurrent_clients_bit_identical_to_serial_warm_up() {
    // The `&SharedGridCache` rebase means one cache can serve many client
    // threads at once (the daemon scenario). Eight clients racing full
    // sweeps — every pair of them colliding on every (policy, k, tol)
    // cell — must each observe exactly the bits a lone client gets from
    // its own serially warmed cache: concurrency changes who builds a
    // grid, never what any client reads.
    let policies: [&dyn Congestion; 2] = [&Sharing, &TwoLevel { c: -0.3 }];
    let serial = SharedGridCache::new();
    let expected: Vec<Vec<Vec<u64>>> = policies.iter().map(|c| curve_bits(*c, &serial)).collect();

    let shared = Arc::new(SharedGridCache::new());
    let barrier = Arc::new(Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|client| {
            let shared = Arc::clone(&shared);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let policies: [&dyn Congestion; 2] = [&Sharing, &TwoLevel { c: -0.3 }];
                barrier.wait();
                // Half the clients walk the policies in reverse so the
                // interleavings cover both warm orders.
                let order: Vec<usize> = if client % 2 == 0 { vec![0, 1] } else { vec![1, 0] };
                let mut out = vec![Vec::new(), Vec::new()];
                for i in order {
                    out[i] = curve_bits(policies[i], &shared);
                }
                out
            })
        })
        .collect();
    for handle in handles {
        let got = handle.join().expect("client thread");
        assert_eq!(got, expected, "a concurrent client observed different sweep bits");
    }
    // Each (policy, k) cell was refined exactly once across all clients.
    assert_eq!(shared.builds(), policies.len() * KS.len());
    assert_eq!(shared.stats().evictions, 0);
}
