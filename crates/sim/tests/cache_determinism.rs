//! Cache-state independence of the sweep outputs (`deterministic-iteration`
//! contract, dynamic side).
//!
//! `GridCache` memoizes interpolation grids in a `HashMap`, which is fine
//! *only* because every access is a keyed lookup — nothing ever iterates
//! the map into an output. These tests pin the observable consequence:
//! sweep results are bit-identical regardless of the order grids were
//! warmed into the cache, whether entries arrived via the single-policy
//! or the batched path, and at every worker-thread count.

use dispersal_core::policy::{Congestion, Sharing, TwoLevel};
use dispersal_sim::sweep::{
    response_grid_batch_interpolated, response_grid_interpolated, GridCache,
};
use std::sync::Mutex;

/// Serializes the tests that reconfigure the global pool width, mirroring
/// determinism.rs's `THREAD_SWEEP_LOCK` (the pool override is process
/// global; concurrent test threads must not interleave reconfigurations).
static THREAD_SWEEP_LOCK: Mutex<()> = Mutex::new(());

const KS: [usize; 3] = [5, 17, 64];
const RESOLUTION: usize = 96;
const TOL: f64 = 1e-9;

fn curve_bits(c: &dyn Congestion, cache: &mut GridCache) -> Vec<Vec<u64>> {
    response_grid_interpolated(c, &KS, RESOLUTION, TOL, cache)
        .expect("interpolated sweep")
        .into_iter()
        .map(|curve| curve.g.iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn grid_cache_results_independent_of_warm_order() {
    let policies: [&dyn Congestion; 2] = [&Sharing, &TwoLevel { c: -0.3 }];
    // Forward warm: policies × ks in natural order.
    let mut forward = GridCache::new();
    for c in policies {
        for &k in &KS {
            forward.table(c, k, TOL).expect("grid build");
        }
    }
    // Reverse warm: same cells inserted in the opposite order.
    let mut reverse = GridCache::new();
    for c in policies.iter().rev() {
        for &k in KS.iter().rev() {
            reverse.table(*c, k, TOL).expect("grid build");
        }
    }
    assert_eq!(forward.builds(), reverse.builds());
    assert_eq!(forward.len(), reverse.len());
    for c in policies {
        let a = curve_bits(c, &mut forward);
        let b = curve_bits(c, &mut reverse);
        assert_eq!(a, b, "warm order changed sweep bits for {}", c.name());
    }
}

#[test]
fn grid_cache_shared_across_single_and_batched_paths() {
    // A cache warmed by the single-policy path must serve the batched
    // path from the same grids (no rebuilds) with identical bits, and
    // vice versa against a cold cache.
    let policies: [&dyn Congestion; 2] = [&Sharing, &TwoLevel { c: -0.3 }];
    let mut warmed = GridCache::new();
    for c in policies {
        curve_bits(c, &mut warmed);
    }
    let builds_after_warm = warmed.builds();
    let mut cold = GridCache::new();
    let via_warm = response_grid_batch_interpolated(&policies, &KS, RESOLUTION, TOL, &mut warmed)
        .expect("batched sweep");
    let via_cold = response_grid_batch_interpolated(&policies, &KS, RESOLUTION, TOL, &mut cold)
        .expect("batched sweep");
    assert_eq!(warmed.builds(), builds_after_warm, "batched path rebuilt a warmed grid");
    for (a, b) in via_warm.iter().zip(via_cold.iter()) {
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.k, b.k);
        let bits_a: Vec<u64> = a.g.iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u64> = b.g.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "cache temperature changed bits for ({}, {})", a.policy, a.k);
    }
}

#[test]
fn grid_cache_sweeps_bit_identical_across_thread_counts() {
    let _guard = THREAD_SWEEP_LOCK.lock().unwrap();
    let policy = TwoLevel { c: -0.3 };
    let mut reference: Option<Vec<Vec<u64>>> = None;
    for threads in [1usize, 2, 8] {
        rayon::set_num_threads(threads);
        let mut cache = GridCache::new();
        let bits = curve_bits(&policy, &mut cache);
        match &reference {
            None => reference = Some(bits),
            Some(expected) => {
                assert_eq!(&bits, expected, "sweep bits changed at {threads} threads");
            }
        }
    }
    rayon::set_num_threads(0);
}
