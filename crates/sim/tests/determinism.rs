//! Determinism regression tests for the parallel engine: every sharded
//! workload must produce **bit-identical** output at every thread count,
//! and the pool must actually use multiple OS threads when asked.
//!
//! Thread counts are swept via `rayon::set_num_threads` (an atomic,
//! shim-only extension), NOT by mutating `RAYON_NUM_THREADS`: calling
//! `setenv` while concurrently-running tests' pool workers call `getenv`
//! is undefined behavior on glibc. If the vendored rayon is ever swapped
//! back to the registry crate, this file fails to compile — by design:
//! registry rayon pins its global pool at first use, so an in-process
//! sweep like this one would silently test a single pool size there.

use dispersal_core::ess::{invasion_barrier, probe_ess_k};
use dispersal_core::payoff::PayoffContext;
use dispersal_core::policy::{Exclusive, Sharing};
use dispersal_core::sigma_star::sigma_star;
use dispersal_core::strategy::Strategy;
use dispersal_core::value::ValueProfile;
use dispersal_sim::montecarlo::{estimate_symmetric, McConfig, McReport};
use dispersal_sim::sweep::{sweep_grid, SweepCell};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;
use std::sync::Mutex;

/// Tests that sweep `rayon::set_num_threads` must not interleave: the
/// setting is process-global, and e.g. the ≥2-OS-thread observability
/// check below would be meaningless under a concurrently pinned count.
static THREAD_SWEEP_LOCK: Mutex<()> = Mutex::new(());

fn mc_run() -> McReport {
    let f = ValueProfile::new(vec![1.0, 0.6, 0.2]).unwrap();
    let p = Strategy::new(vec![0.5, 0.3, 0.2]).unwrap();
    estimate_symmetric(&f, &Sharing, &p, 4, McConfig { trials: 50_000, seed: 77, shards: 16 })
        .unwrap()
}

fn sweep_run() -> Vec<SweepCell<u64>> {
    let instances = vec![
        ("zipf".to_string(), ValueProfile::zipf(10, 1.0, 1.0).unwrap()),
        ("geometric".to_string(), ValueProfile::geometric(8, 1.0, 0.7).unwrap()),
    ];
    sweep_grid(&instances, &[2, 4, 8], 9, |_, _, rng| Ok(rng.gen::<u64>())).unwrap()
}

#[test]
fn outputs_bit_identical_across_thread_counts_and_pool_is_parallel() {
    let _guard = THREAD_SWEEP_LOCK.lock().unwrap();
    let mut mc_reports: Vec<McReport> = Vec::new();
    let mut sweeps: Vec<Vec<SweepCell<u64>>> = Vec::new();
    for threads in [1, 2, 8] {
        rayon::set_num_threads(threads);
        mc_reports.push(mc_run());
        sweeps.push(sweep_run());
    }

    // Monte-Carlo: identical to the bit, not just within tolerance.
    let baseline = &mc_reports[0];
    assert_eq!(baseline.trials, 50_000);
    for report in &mc_reports[1..] {
        assert_eq!(baseline.coverage.mean.to_bits(), report.coverage.mean.to_bits());
        assert_eq!(baseline.coverage.ci95.to_bits(), report.coverage.ci95.to_bits());
        assert_eq!(baseline.payoff.mean.to_bits(), report.payoff.mean.to_bits());
        assert_eq!(baseline.payoff.ci95.to_bits(), report.payoff.ci95.to_bits());
        assert_eq!(baseline.trials, report.trials);
    }

    // Sweep: same cells, same order, same per-cell draws.
    for cells in &sweeps[1..] {
        assert_eq!(cells.len(), sweeps[0].len());
        for (a, b) in sweeps[0].iter().zip(cells.iter()) {
            assert_eq!(a.instance, b.instance);
            assert_eq!(a.k, b.k);
            assert_eq!(a.output, b.output);
        }
    }

    // The acceptance check for the vendored pool: with >= 2 workers
    // configured, closures observably execute on >= 2 distinct OS threads.
    rayon::set_num_threads(4);
    let seen = Mutex::new(HashSet::new());
    {
        use rayon::prelude::*;
        (0..16u32).into_par_iter().for_each(|_| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            seen.lock().unwrap().insert(std::thread::current().id());
        });
    }
    assert!(
        seen.lock().unwrap().len() >= 2,
        "vendored rayon pool did not run on multiple OS threads"
    );
    rayon::set_num_threads(0);
}

#[test]
fn ess_checker_and_barrier_bit_identical_across_thread_counts() {
    // The kernel-backed ESS checker (PbTable rank updates + PbCache
    // sharing) must not pick up any thread-count sensitivity: identical
    // reports and barriers at RAYON_NUM_THREADS ∈ {1, 8}.
    let _guard = THREAD_SWEEP_LOCK.lock().unwrap();
    let f = ValueProfile::zipf(6, 1.0, 1.0).unwrap();
    let k = 4;
    let star = sigma_star(&f, k).unwrap().strategy;
    let ctx = PayoffContext::new(&Exclusive, k).unwrap();
    let pi = Strategy::uniform(6).unwrap();
    let mut probes = Vec::new();
    let mut barriers = Vec::new();
    for threads in [1usize, 8] {
        rayon::set_num_threads(threads);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        probes.push(probe_ess_k(&Exclusive, &f, &star, 30, &mut rng, k).unwrap());
        barriers.push(invasion_barrier(&ctx, &f, &star, &pi, 200).unwrap());
    }
    rayon::set_num_threads(0);
    let (a, b) = (&probes[0], &probes[1]);
    assert_eq!(a.mutants_tested, b.mutants_tested);
    assert_eq!(a.repelled, b.repelled);
    assert_eq!(a.indistinguishable, b.indistinguishable);
    assert_eq!(a.invasions, b.invasions);
    assert_eq!(a.worst_margin.to_bits(), b.worst_margin.to_bits());
    assert_eq!(barriers[0].to_bits(), barriers[1].to_bits());
    assert!(a.passed(), "sigma* must pass its own probe: {:?}", a.invasions);
    assert!(barriers[0] > 0.0);
}

#[test]
fn batched_response_grids_bit_identical_across_thread_counts() {
    // The GBatch-backed sweep paths must be thread-count-invariant: the
    // exact batch path, the fused multi-policy GEMM path, and the
    // GridCache-interpolated path (workers concurrently sharing one Arc'd
    // grid per (policy, k) cell) all produce identical bits at
    // RAYON_NUM_THREADS ∈ {1, 8}.
    use dispersal_core::kernel::GridSpec;
    use dispersal_core::policy::{Congestion, PowerLaw, TwoLevel};
    use dispersal_sim::sweep::{GridCache, ResponseRequest};
    let _guard = THREAD_SWEEP_LOCK.lock().unwrap();
    let policies: Vec<&dyn Congestion> =
        vec![&Exclusive, &Sharing, &TwoLevel { c: -0.4 }, &PowerLaw { beta: 2.0 }];
    let ks = [2usize, 8, 33];
    let mut exact = Vec::new();
    let mut batch = Vec::new();
    let mut interp = Vec::new();
    for threads in [1usize, 8] {
        rayon::set_num_threads(threads);
        let cache = GridCache::new();
        exact.push(ResponseRequest::new(&Sharing).ks(&ks).resolution(96).evaluate().unwrap());
        batch.push(ResponseRequest::policies(&policies).ks(&ks).resolution(96).evaluate().unwrap());
        interp.push(
            ResponseRequest::policies(&policies)
                .ks(&ks)
                .resolution(96)
                .grid(GridSpec::Interpolated { tol: 1e-9 })
                .cache(&cache)
                .evaluate()
                .unwrap(),
        );
    }
    rayon::set_num_threads(0);
    for (a, b) in exact[0].iter().zip(exact[1].iter()) {
        assert_eq!(a.k, b.k);
        for (x, y) in a.g.iter().zip(b.g.iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "exact sweep k={}", a.k);
        }
    }
    for (run_a, run_b) in [(&batch[0], &batch[1]), (&interp[0], &interp[1])] {
        assert_eq!(run_a.len(), run_b.len());
        for (a, b) in run_a.iter().zip(run_b.iter()) {
            assert_eq!((a.policy.as_str(), a.k), (b.policy.as_str(), b.k));
            for (x, y) in a.g.iter().zip(b.g.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{} k={}", a.policy, a.k);
            }
        }
    }
}

#[test]
fn engine_replicator_ensemble_matches_itself() {
    // No env mutation here: determinism across *repeated* runs at
    // whatever thread count the harness is using.
    use dispersal_sim::replicator::{run_replicator_ensemble, ReplicatorConfig};
    let f = ValueProfile::new(vec![1.0, 0.4]).unwrap();
    let config = ReplicatorConfig { max_steps: 20_000, ..Default::default() };
    let a = run_replicator_ensemble(&Exclusive, &f, 2, 6, 11, config).unwrap();
    let b = run_replicator_ensemble(&Exclusive, &f, 2, 6, 11, config).unwrap();
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.steps, y.steps);
        assert_eq!(x.state.prob(0).to_bits(), y.state.prob(0).to_bits());
    }
}
