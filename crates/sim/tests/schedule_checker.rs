//! Loom-lite schedule exploration of the vendored pool (`rayon::check`).
//!
//! These tests drive real workspace code — par-iter collects and the
//! sharded [`dispersal_sim::engine`] — through *every* interleaving of a
//! small pool (bounded-exhaustive up to 4 tasks, seeded samples beyond)
//! and assert the repo's determinism contract holds under each one:
//! order-preserving collect, no lost or duplicated task, worker-panic
//! propagation with deque drain, and bit-identical `engine::Merge`
//! results. The simulated pool models the persistent work-stealing
//! implementation: block-distributed per-worker deques, owners popping
//! their own front, empty-handed workers stealing a victim's back. A
//! deliberately order-sensitive body shows the checker actually detects
//! races rather than vacuously passing.

use dispersal_sim::engine::{run, Experiment, ShardPlan};
use dispersal_sim::stats::Welford;
use rand::Rng;
use rayon::check::{check_determinism, exhaustive_schedules, seeded_schedules, with_schedule};
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn exhaustive_counts_are_pinned() {
    // The enumeration is part of the checker's contract: a change in
    // these counts means the pool's state machine changed and every
    // downstream guarantee needs re-review. These are the deque + steal
    // counts (block-distributed deques, pop-own-front / steal-back) —
    // larger than the old shared-queue model's because workers are
    // distinguishable by the deque block they own, so no fresh-worker
    // symmetry reduction applies.
    assert_eq!(exhaustive_schedules(1, 3).len(), 1);
    assert_eq!(exhaustive_schedules(2, 2).len(), 8);
    assert_eq!(exhaustive_schedules(2, 3).len(), 32);
    assert_eq!(exhaustive_schedules(3, 3).len(), 183);
    assert_eq!(exhaustive_schedules(3, 4).len(), 1641);
    assert_eq!(exhaustive_schedules(4, 4).len(), 8320);
}

#[test]
fn collect_is_order_preserving_under_every_schedule() {
    let schedules = exhaustive_schedules(3, 4);
    let expected: Vec<u64> = (0..4u64).map(|i| i * 10 + 1).collect();
    let value = check_determinism(&schedules, || {
        (0..4u64).into_par_iter().map(|i| i * 10 + 1).collect::<Vec<u64>>()
    })
    .expect("pure pipeline must be schedule-independent");
    assert_eq!(value, expected);
}

#[test]
fn no_task_is_lost_or_duplicated_under_any_schedule() {
    // Each task bumps a per-run counter; every interleaving must execute
    // every task exactly once (the simulator additionally asserts the
    // slot-level exactly-once invariant internally).
    let executed = AtomicUsize::new(0);
    for schedule in exhaustive_schedules(3, 4) {
        executed.store(0, Ordering::SeqCst);
        let out: Vec<usize> = with_schedule(&schedule, || {
            (0..4usize)
                .into_par_iter()
                .map(|i| {
                    executed.fetch_add(1, Ordering::SeqCst);
                    i
                })
                .collect()
        });
        assert_eq!(out, vec![0, 1, 2, 3], "schedule {:?}", schedule.choices);
        assert_eq!(executed.load(Ordering::SeqCst), 4, "schedule {:?}", schedule.choices);
    }
}

#[test]
fn worker_panic_propagates_and_queue_still_drains() {
    let survivors = AtomicUsize::new(0);
    for schedule in exhaustive_schedules(2, 3) {
        survivors.store(0, Ordering::SeqCst);
        let result = std::panic::catch_unwind(|| {
            with_schedule(&schedule, || {
                let _: Vec<u32> = (0..3u32)
                    .into_par_iter()
                    .map(|i| {
                        if i == 1 {
                            panic!("planted worker panic");
                        }
                        survivors.fetch_add(1, Ordering::SeqCst);
                        i
                    })
                    .collect();
            })
        });
        let payload = result.expect_err("panic must propagate to the caller");
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "planted worker panic", "schedule {:?}", schedule.choices);
        // The panicking worker dies; the rest keep draining the queue, so
        // both surviving tasks run under every interleaving.
        assert_eq!(survivors.load(Ordering::SeqCst), 2, "schedule {:?}", schedule.choices);
    }
}

/// Monte-Carlo Welford mean of `Uniform(0, 1)` draws: the canonical
/// sharded experiment whose merged output must be bit-identical no
/// matter which worker computed which shard, in which order.
struct UniformMean;

impl Experiment for UniformMean {
    type State = ();
    type Output = Welford;

    fn make_state(&self) -> dispersal_core::Result<()> {
        Ok(())
    }

    fn trial(&self, _state: &mut (), rng: &mut rand_chacha::ChaCha8Rng, acc: &mut Welford) {
        acc.push(rng.gen::<f64>());
    }
}

#[test]
fn engine_merge_is_bit_identical_under_every_schedule() {
    // 4 shards on a 3-worker pool: all 1641 interleavings (including
    // every steal pattern) must merge to the exact same bits (shard
    // streams are schedule-independent and the collect is
    // order-preserving, so the shard-order fold sees the same operands
    // in the same order every time).
    let schedules = exhaustive_schedules(3, 4);
    let bits = check_determinism(&schedules, || {
        let w = run(&UniformMean, ShardPlan::new(40, 4, 7)).expect("engine run");
        (w.count(), w.mean().to_bits(), w.variance().to_bits())
    })
    .expect("engine::Merge must be schedule-independent");
    assert_eq!(bits.0, 40);
    // And the scheduled result matches the plain sequential pool.
    rayon::set_num_threads(1);
    let seq = run(&UniformMean, ShardPlan::new(40, 4, 7)).expect("engine run");
    rayon::set_num_threads(0);
    assert_eq!(bits.1, seq.mean().to_bits());
    assert_eq!(bits.2, seq.variance().to_bits());
}

#[test]
fn forced_steal_preserves_order_and_exactly_once() {
    // 2 workers, 2 tasks: the block distribution seeds deque 0 = [task 0]
    // and deque 1 = [task 1]. A schedule that only ever picks worker 1
    // forces it to drain its own deque and then *steal* worker 0's task;
    // the contract (order-preserving collect, exactly-once execution)
    // must survive the steal.
    let schedule = rayon::check::Schedule { workers: 2, choices: vec![1, 1, 1, 1] };
    let executed = AtomicUsize::new(0);
    let out: Vec<usize> = with_schedule(&schedule, || {
        (0..2usize)
            .into_par_iter()
            .map(|i| {
                executed.fetch_add(1, Ordering::SeqCst);
                i
            })
            .collect()
    });
    assert_eq!(out, vec![0, 1]);
    assert_eq!(executed.load(Ordering::SeqCst), 2);
}

#[test]
fn planted_race_is_detected() {
    // Deliberately order-sensitive body: each task reports how many tasks
    // ran before it. Any two schedules that execute the tasks in a
    // different order produce different vectors, so the checker must
    // report a divergence — this is the non-vacuity proof for every
    // passing test above.
    let order = AtomicUsize::new(0);
    let divergence = check_determinism(&exhaustive_schedules(2, 2), || {
        order.store(0, Ordering::SeqCst);
        (0..2usize)
            .into_par_iter()
            .map(|_| order.fetch_add(1, Ordering::SeqCst))
            .collect::<Vec<usize>>()
    })
    .expect_err("order-sensitive body must diverge across schedules");
    assert_ne!(divergence.baseline_value, divergence.value);
    // The report names both interleavings and renders readably.
    let text = divergence.to_string();
    assert!(text.contains("baseline"), "{text}");
}

#[test]
fn seeded_schedules_are_reproducible_and_seed_sensitive() {
    let a = seeded_schedules(3, 6, 42, 12);
    let b = seeded_schedules(3, 6, 42, 12);
    assert_eq!(a, b, "same seed must reproduce the same schedules");
    let c = seeded_schedules(3, 6, 43, 12);
    assert_ne!(a, c, "different seeds must explore different interleavings");
    // Beyond the bounded-exhaustive regime, seeded sampling still upholds
    // the determinism contract on a pure pipeline.
    let value = check_determinism(&a, || {
        (0..6u64).into_par_iter().map(|i| (i * i) as f64).collect::<Vec<f64>>()
    })
    .expect("pure pipeline under seeded schedules");
    assert_eq!(value, vec![0.0, 1.0, 4.0, 9.0, 16.0, 25.0]);
}

#[test]
fn schedule_applies_only_inside_with_schedule() {
    // Outside the closure the pool is back to real threads; inside, the
    // simulated pool honors the schedule's worker count, not the global
    // override.
    rayon::set_num_threads(2);
    let schedule = &exhaustive_schedules(4, 2)[0];
    let out: Vec<u32> =
        with_schedule(schedule, || (0..2u32).into_par_iter().map(|i| i + 1).collect());
    assert_eq!(out, vec![1, 2]);
    rayon::set_num_threads(0);
    let out: Vec<u32> = (0..2u32).into_par_iter().map(|i| i + 1).collect();
    assert_eq!(out, vec![1, 2]);
}
