//! Crate-level property tests for `dispersal-sim`: randomized consistency
//! between simulated outcomes and the model's bookkeeping.

use dispersal_core::policy::{Sharing, TwoLevel};
use dispersal_core::strategy::Strategy;
use dispersal_core::value::ValueProfile;
use dispersal_sim::oneshot::OneShotGame;
use dispersal_sim::rng::Seed;
use dispersal_sim::stats::Welford;
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;
use rand::Rng;

fn values() -> impl PropStrategy<Value = Vec<f64>> {
    proptest::collection::vec(0.1f64..5.0, 2..=8)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn outcome_bookkeeping_consistent(vals in values(), k in 1usize..=8, seed in 0u64..500, c in -0.9f64..1.0) {
        let f = ValueProfile::from_unsorted(vals).unwrap();
        let p = Strategy::uniform(f.len()).unwrap();
        let policy = TwoLevel::new(c).unwrap();
        let mut game = OneShotGame::symmetric(&f, &policy, &p, k).unwrap();
        let mut rng = Seed(seed).rng();
        for _ in 0..16 {
            let o = game.play(&mut rng);
            prop_assert_eq!(o.choices.len(), k);
            prop_assert_eq!(o.occupancy.iter().sum::<usize>(), k);
            prop_assert_eq!(o.payoffs.len(), k);
            // Coverage never exceeds the total value, and is at least the
            // best chosen site's value.
            prop_assert!(o.coverage <= f.total() + 1e-9);
            let best_chosen = o.choices.iter().map(|&x| f.value(x)).fold(0.0, f64::max);
            prop_assert!(o.coverage >= best_chosen - 1e-9);
            // Collision accounting.
            let collision_sites = o.occupancy.iter().filter(|&&n| n > 1).count();
            prop_assert_eq!(o.collision_sites, collision_sites);
            // Payoffs match the policy table exactly.
            for (i, &site) in o.choices.iter().enumerate() {
                let expect = f.value(site) * policy_c(c, o.occupancy[site]);
                prop_assert!((o.payoffs[i] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn welford_merge_associative(xs in proptest::collection::vec(-100.0f64..100.0, 3..60), split in 1usize..50) {
        let split = split.min(xs.len() - 1);
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..split] {
            left.push(x);
        }
        for &x in &xs[split..] {
            right.push(x);
        }
        left.merge(&right);
        prop_assert!((left.mean() - all.mean()).abs() < 1e-9);
        prop_assert!((left.variance() - all.variance()).abs() < 1e-6 * (1.0 + all.variance()));
        prop_assert_eq!(left.count(), all.count());
    }

    #[test]
    fn welford_merge_of_splits_equals_single_pass(
        xs in proptest::collection::vec(-1.0f64..1.0, 2..120),
        parts in 1usize..8,
    ) {
        // The engine's reduction contract: merging any k-way split of a
        // sample equals a single pass over the concatenation, to 1e-12.
        let mut single = Welford::new();
        for &x in &xs {
            single.push(x);
        }
        let chunk = xs.len().div_ceil(parts);
        let mut merged = Welford::new();
        for part in xs.chunks(chunk) {
            let mut w = Welford::new();
            for &x in part {
                w.push(x);
            }
            merged.merge(&w);
        }
        prop_assert_eq!(merged.count(), single.count());
        prop_assert!((merged.mean() - single.mean()).abs() < 1e-12,
            "mean {} vs {}", merged.mean(), single.mean());
        prop_assert!((merged.variance() - single.variance()).abs() < 1e-12,
            "variance {} vs {}", merged.variance(), single.variance());
    }

    #[test]
    fn seed_streams_are_collision_free(seed in 0u64..1_000_000) {
        // 10k distinct stream indices must yield 10k distinct leading
        // draws — inter-stream independence at the birthday-bound level
        // (a collision among 10k u64 draws has probability ~ 3e-12).
        let mut seen = std::collections::HashSet::with_capacity(10_000);
        for index in 0..10_000u64 {
            let mut rng = Seed(seed).stream(index);
            prop_assert!(seen.insert(rng.gen::<u64>()),
                "stream {} of seed {} collided", index, seed);
        }
    }

    #[test]
    fn sharing_payoffs_sum_to_consumed_value(vals in values(), k in 2usize..=8, seed in 0u64..200) {
        // Under sharing, the total payoff equals the total value of the
        // visited sites (nothing is created or destroyed).
        let f = ValueProfile::from_unsorted(vals).unwrap();
        let p = Strategy::uniform(f.len()).unwrap();
        let mut game = OneShotGame::symmetric(&f, &Sharing, &p, k).unwrap();
        let mut rng = Seed(seed).rng();
        let o = game.play(&mut rng);
        let total_payoff: f64 = o.payoffs.iter().sum();
        prop_assert!((total_payoff - o.coverage).abs() < 1e-9);
    }
}

fn policy_c(c: f64, ell: usize) -> f64 {
    if ell == 1 {
        1.0
    } else {
        c
    }
}
