//! Parallel Monte-Carlo estimation over one-shot plays.
//!
//! Runs on the shared [`crate::engine`]: trials are sharded by a
//! [`ShardPlan`], each shard derives its own deterministic RNG stream from
//! the master seed, and per-shard [`Welford`] accumulators merge in shard
//! order — so results are bit-reproducible regardless of thread count or
//! scheduling. All per-trial congestion arithmetic is precomputed into the
//! per-shard [`OneShotGame`] state (a site × occupancy reward matrix), so
//! the trial step is pure sampling plus table lookups.

use crate::engine::{self, Experiment, ShardPlan};
use crate::oneshot::OneShotGame;
use crate::stats::{Estimate, Welford};
use dispersal_core::policy::Congestion;
use dispersal_core::strategy::Strategy;
use dispersal_core::value::ValueProfile;
use dispersal_core::Result;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Monte-Carlo estimates of the key observables of the dispersal game.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McReport {
    /// Estimated expected coverage.
    pub coverage: Estimate,
    /// Estimated expected individual payoff (player 0; all players are
    /// exchangeable in the symmetric game).
    pub payoff: Estimate,
    /// Total trials.
    pub trials: u64,
}

/// Configuration for a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct McConfig {
    /// Total number of one-shot plays.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
    /// Number of shards (each shard gets its own RNG stream). More shards
    /// than threads is fine; keep it stable for reproducibility.
    pub shards: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        Self { trials: 100_000, seed: 0xD15EA5E, shards: 64 }
    }
}

impl McConfig {
    /// The engine sharding plan this configuration describes.
    pub fn plan(&self) -> ShardPlan {
        ShardPlan::new(self.trials, self.shards, self.seed)
    }
}

/// Symmetric one-shot estimation as an engine [`Experiment`]: per-shard
/// state is a reusable [`OneShotGame`]; each trial folds one play's
/// coverage and player-0 payoff into a pair of [`Welford`] accumulators.
struct SymmetricMc<'a> {
    f: &'a ValueProfile,
    c: &'a dyn Congestion,
    strategy: &'a Strategy,
    k: usize,
}

impl<'a> Experiment for SymmetricMc<'a> {
    type State = OneShotGame<'a>;
    type Output = (Welford, Welford);

    fn make_state(&self) -> Result<OneShotGame<'a>> {
        OneShotGame::symmetric(self.f, self.c, self.strategy, self.k)
    }

    fn trial(&self, game: &mut OneShotGame<'a>, rng: &mut ChaCha8Rng, acc: &mut Self::Output) {
        let (c_val, p_val) = game.play_coverage(rng);
        acc.0.push(c_val);
        acc.1.push(p_val);
    }
}

/// Asymmetric coverage estimation as an engine [`Experiment`].
struct ProfileMc<'a> {
    f: &'a ValueProfile,
    c: &'a dyn Congestion,
    profile: &'a [Strategy],
}

impl<'a> Experiment for ProfileMc<'a> {
    type State = OneShotGame<'a>;
    type Output = Welford;

    fn make_state(&self) -> Result<OneShotGame<'a>> {
        OneShotGame::asymmetric(self.f, self.c, self.profile)
    }

    fn trial(&self, game: &mut OneShotGame<'a>, rng: &mut ChaCha8Rng, acc: &mut Welford) {
        let (c_val, _) = game.play_coverage(rng);
        acc.push(c_val);
    }
}

/// Estimate coverage and individual payoff for the symmetric profile where
/// all `k` players play `strategy` under policy `c`, in parallel.
pub fn estimate_symmetric(
    f: &ValueProfile,
    c: &dyn Congestion,
    strategy: &Strategy,
    k: usize,
    config: McConfig,
) -> Result<McReport> {
    let (cov, pay) = engine::run(&SymmetricMc { f, c, strategy, k }, config.plan())?;
    Ok(McReport {
        coverage: Estimate::from_welford(&cov),
        payoff: Estimate::from_welford(&pay),
        trials: cov.count(),
    })
}

/// Estimate the coverage of an asymmetric profile (player `i` plays
/// `profile[i]`).
pub fn estimate_profile_coverage(
    f: &ValueProfile,
    c: &dyn Congestion,
    profile: &[Strategy],
    config: McConfig,
) -> Result<Estimate> {
    let cov = engine::run(&ProfileMc { f, c, profile }, config.plan())?;
    Ok(Estimate::from_welford(&cov))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dispersal_core::coverage::coverage;
    use dispersal_core::payoff::PayoffContext;
    use dispersal_core::policy::{Exclusive, Sharing, TwoLevel};

    #[test]
    fn mc_matches_analytic_coverage_and_payoff() {
        let f = ValueProfile::new(vec![1.0, 0.6, 0.2]).unwrap();
        let p = Strategy::new(vec![0.5, 0.3, 0.2]).unwrap();
        let k = 4;
        for c in [&Exclusive as &dyn Congestion, &Sharing, &TwoLevel { c: -0.3 }] {
            let report = estimate_symmetric(
                &f,
                c,
                &p,
                k,
                McConfig { trials: 200_000, seed: 77, shards: 16 },
            )
            .unwrap();
            let analytic_cov = coverage(&f, &p, k).unwrap();
            let ctx = PayoffContext::new(c, k).unwrap();
            let analytic_pay = ctx.symmetric_payoff(&f, &p).unwrap();
            assert!(
                report.coverage.covers(analytic_cov, 1e-3),
                "{}: MC {} ± {} vs analytic {analytic_cov}",
                c.name(),
                report.coverage.mean,
                report.coverage.ci95
            );
            assert!(
                report.payoff.covers(analytic_pay, 1e-3),
                "{}: MC payoff {} ± {} vs analytic {analytic_pay}",
                c.name(),
                report.payoff.mean,
                report.payoff.ci95
            );
        }
    }

    #[test]
    fn mc_is_reproducible_across_shard_counts() {
        // Same seed and same shard count => identical estimates.
        let f = ValueProfile::new(vec![1.0, 0.4]).unwrap();
        let p = Strategy::uniform(2).unwrap();
        let cfg = McConfig { trials: 10_000, seed: 5, shards: 8 };
        let a = estimate_symmetric(&f, &Exclusive, &p, 2, cfg).unwrap();
        let b = estimate_symmetric(&f, &Exclusive, &p, 2, cfg).unwrap();
        assert_eq!(a.coverage.mean.to_bits(), b.coverage.mean.to_bits());
        assert_eq!(a.trials, 10_000);
    }

    #[test]
    fn trial_remainder_distributed() {
        let f = ValueProfile::new(vec![1.0, 0.4]).unwrap();
        let p = Strategy::uniform(2).unwrap();
        let cfg = McConfig { trials: 1_003, seed: 5, shards: 10 };
        let a = estimate_symmetric(&f, &Exclusive, &p, 2, cfg).unwrap();
        assert_eq!(a.trials, 1_003);
    }

    #[test]
    fn profile_coverage_matches_analytic() {
        let f = ValueProfile::new(vec![1.0, 0.5, 0.25]).unwrap();
        let profile = vec![
            Strategy::new(vec![0.8, 0.1, 0.1]).unwrap(),
            Strategy::new(vec![0.1, 0.8, 0.1]).unwrap(),
        ];
        let est = estimate_profile_coverage(
            &f,
            &Sharing,
            &profile,
            McConfig { trials: 150_000, seed: 21, shards: 16 },
        )
        .unwrap();
        let analytic = dispersal_core::coverage::coverage_profile(&f, &profile).unwrap();
        assert!(est.covers(analytic, 1e-3), "MC {} ± {} vs {analytic}", est.mean, est.ci95);
    }

    #[test]
    fn invalid_inputs_rejected_before_spawning() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let bad = Strategy::uniform(3).unwrap();
        assert!(estimate_symmetric(&f, &Sharing, &bad, 2, McConfig::default()).is_err());
        assert!(estimate_profile_coverage(&f, &Sharing, &[], McConfig::default()).is_err());
    }
}
