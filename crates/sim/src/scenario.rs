//! Time-varying traffic scenarios: site values drift, oscillate, or
//! shock over an epoch schedule while the population dynamics track the
//! moving equilibrium.
//!
//! A [`Scenario`] is a base [`ValueProfile`] plus a list of
//! [`TrafficEvent`]s; [`Scenario::values_at`] materializes the *physical*
//! (site-indexed) value vector of any epoch. Because [`ValueProfile`]
//! requires non-increasing values, each epoch also carries a sorted frame
//! ([`EpochProfile`]): the values sorted descending together with the
//! permutation back to physical sites. The replicator driver integrates
//! in the sorted frame and remaps the population state across epochs, so
//! a site that decays below its neighbour is handled exactly; the Moran
//! driver works on raw physical rewards and needs no sorting at all.
//!
//! Determinism: the replicator path is RNG-free; the ensemble driver runs
//! through [`engine::par_map_seeded`] on the persistent pool, so results
//! are bit-identical at any `RAYON_NUM_THREADS`; the Moran path consumes
//! one seeded stream exactly like [`crate::moran::run_moran`].

use crate::engine;
use crate::moran::{MoranConfig, MoranEngine};
use crate::replicator::{run_replicator, ReplicatorConfig};
use crate::rng::Seed;
use dispersal_core::ifd::solve_ifd_allow_degenerate;
use dispersal_core::payoff::PayoffContext;
use dispersal_core::policy::Congestion;
use dispersal_core::strategy::Strategy;
use dispersal_core::value::ValueProfile;
use dispersal_core::{Error, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One source of traffic variation. All events act multiplicatively on
/// the base values, so any combination keeps every site value strictly
/// positive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficEvent {
    /// A staggered daily cycle: site `x` is scaled by
    /// `1 + amplitude·sin(2π·(epoch/period + x/m))`. The per-site phase
    /// shift models rush hours sweeping across sites, so the equilibrium
    /// genuinely moves instead of merely rescaling.
    Daily {
        /// Oscillation strength, `|amplitude| < 1` (keeps values positive).
        amplitude: f64,
        /// Cycle length in epochs (`≥ 1`).
        period: u64,
    },
    /// Compound per-epoch drift on one site: scaled by `(1 + rate)^epoch`
    /// (`rate > −1`); negative rates model a site slowly closing down.
    Drift {
        /// Physical site index.
        site: usize,
        /// Per-epoch growth rate.
        rate: f64,
    },
    /// A persistent step change: from `epoch` onward, `site` is scaled by
    /// `factor > 0` (a road closure, a new attraction).
    Shock {
        /// First epoch at which the shock applies.
        epoch: u64,
        /// Physical site index.
        site: usize,
        /// Multiplicative factor.
        factor: f64,
    },
}

/// A schedule of time-varying site values: base profile, epoch count,
/// and the events that perturb it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    base: ValueProfile,
    epochs: u64,
    events: Vec<TrafficEvent>,
}

/// One epoch's values in both frames: physical (site-indexed) and sorted
/// (the [`ValueProfile`] contract), plus the permutation between them.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochProfile {
    /// Values in physical site order.
    pub values: Vec<f64>,
    /// The same values sorted non-increasing.
    pub profile: ValueProfile,
    /// `order[rank] = physical site index`; ties break by site index, so
    /// the permutation is deterministic.
    pub order: Vec<usize>,
}

impl Scenario {
    /// Build a scenario; events are validated against the base profile.
    pub fn new(base: ValueProfile, epochs: u64, events: Vec<TrafficEvent>) -> Result<Self> {
        if epochs == 0 {
            return Err(Error::InvalidArgument("scenario needs at least one epoch".into()));
        }
        let m = base.len();
        for event in &events {
            match *event {
                TrafficEvent::Daily { amplitude, period } => {
                    if !amplitude.is_finite() || amplitude.abs() >= 1.0 {
                        return Err(Error::InvalidArgument(format!(
                            "daily amplitude must satisfy |a| < 1, got {amplitude}"
                        )));
                    }
                    if period == 0 {
                        return Err(Error::InvalidArgument(
                            "daily period must be at least one epoch".into(),
                        ));
                    }
                }
                TrafficEvent::Drift { site, rate } => {
                    if site >= m {
                        return Err(Error::InvalidArgument(format!(
                            "drift site {site} out of range for {m} sites"
                        )));
                    }
                    if !rate.is_finite() || rate <= -1.0 {
                        return Err(Error::InvalidArgument(format!(
                            "drift rate must be finite and > -1, got {rate}"
                        )));
                    }
                }
                TrafficEvent::Shock { site, factor, .. } => {
                    if site >= m {
                        return Err(Error::InvalidArgument(format!(
                            "shock site {site} out of range for {m} sites"
                        )));
                    }
                    if !factor.is_finite() || factor <= 0.0 {
                        return Err(Error::InvalidArgument(format!(
                            "shock factor must be finite and positive, got {factor}"
                        )));
                    }
                }
            }
        }
        Ok(Self { base, epochs, events })
    }

    /// The unperturbed base profile.
    #[inline]
    pub fn base(&self) -> &ValueProfile {
        &self.base
    }

    /// Number of epochs in the schedule.
    #[inline]
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Number of sites.
    #[inline]
    pub fn sites(&self) -> usize {
        self.base.len()
    }

    /// The scheduled events.
    #[inline]
    pub fn events(&self) -> &[TrafficEvent] {
        &self.events
    }

    /// Site values of `epoch` in **physical** order: the base values with
    /// every event's multiplicative factor applied. Always strictly
    /// positive by the event validation.
    pub fn values_at(&self, epoch: u64) -> Vec<f64> {
        let m = self.base.len();
        let mut values = self.base.values().to_vec();
        for event in &self.events {
            match *event {
                TrafficEvent::Daily { amplitude, period } => {
                    for (x, v) in values.iter_mut().enumerate() {
                        let phase = epoch as f64 / period as f64 + x as f64 / m as f64;
                        *v *= 1.0 + amplitude * (std::f64::consts::TAU * phase).sin();
                    }
                }
                TrafficEvent::Drift { site, rate } => {
                    values[site] *= (1.0 + rate).powf(epoch as f64);
                }
                TrafficEvent::Shock { epoch: at, site, factor } => {
                    if epoch >= at {
                        values[site] *= factor;
                    }
                }
            }
        }
        values
    }

    /// The sorted frame of `epoch`: values as a [`ValueProfile`] plus the
    /// rank → physical-site permutation.
    pub fn epoch_profile(&self, epoch: u64) -> Result<EpochProfile> {
        let values = self.values_at(epoch);
        let mut order: Vec<usize> = (0..values.len()).collect();
        order.sort_by(|&a, &b| values[b].total_cmp(&values[a]).then(a.cmp(&b)));
        let profile = ValueProfile::new(order.iter().map(|&p| values[p]).collect())?;
        Ok(EpochProfile { values, profile, order })
    }
}

/// One epoch of replicator tracking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch index.
    pub epoch: u64,
    /// Site values of this epoch (physical order).
    pub values: Vec<f64>,
    /// Tracked population state at the end of the epoch (physical order).
    pub state: Vec<f64>,
    /// `L∞` distance of the tracked state to the epoch's own equilibrium
    /// (IFD of the frozen values) — how well the dynamics keep up.
    pub ifd_distance: f64,
    /// Replicator steps spent inside the epoch.
    pub steps: usize,
    /// Whether the intra-epoch integration reached its velocity tolerance.
    pub converged: bool,
}

/// Result of replicator tracking over a whole scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioRun {
    /// One record per epoch, in schedule order.
    pub records: Vec<EpochRecord>,
    /// Final population state (physical order).
    pub final_state: Strategy,
}

impl ScenarioRun {
    /// The worst per-epoch equilibrium-tracking distance.
    pub fn worst_distance(&self) -> f64 {
        self.records.iter().fold(0.0f64, |a, r| a.max(r.ifd_distance))
    }
}

/// Track the moving equilibrium with replicator dynamics: each epoch
/// freezes the scenario's values, warm-starts the replicator ODE from
/// the previous epoch's population state (permuted into the epoch's
/// sorted frame), integrates under `config`, and records the distance to
/// the epoch's own IFD. RNG-free and single-pass — bit-identical at any
/// thread count by construction.
///
/// `explore ∈ [0, 1)` is the exploration floor applied at every epoch
/// boundary after the first: the warm start is mixed with the uniform
/// strategy at that rate. Pure replicator dynamics preserve extinction —
/// a site driven to (numerically) zero mass under one epoch's values can
/// never be recolonized when a later shock makes it the best site — so a
/// small floor (`1e-4` is plenty) models the mutation/immigration term
/// that keeps tracking possible. Pass `0.0` for the unmodified dynamics.
pub fn run_scenario_replicator(
    c: &dyn Congestion,
    scenario: &Scenario,
    start: &Strategy,
    k: usize,
    explore: f64,
    config: ReplicatorConfig,
) -> Result<ScenarioRun> {
    if start.len() != scenario.sites() {
        return Err(Error::DimensionMismatch { strategy: start.len(), profile: scenario.sites() });
    }
    if !explore.is_finite() || !(0.0..1.0).contains(&explore) {
        return Err(Error::InvalidArgument(format!(
            "exploration floor must be in [0, 1), got {explore}"
        )));
    }
    let m = scenario.sites();
    let uniform = Strategy::uniform(m)?;
    let mut state = start.clone();
    let mut records = Vec::with_capacity(scenario.epochs() as usize);
    for epoch in 0..scenario.epochs() {
        if epoch > 0 && explore > 0.0 {
            state = state.mix(&uniform, explore)?;
        }
        let frame = scenario.epoch_profile(epoch)?;
        let sorted_start = Strategy::new(frame.order.iter().map(|&p| state.prob(p)).collect())?;
        let run = run_replicator(c, &frame.profile, &sorted_start, k, config)?;
        let ifd = solve_ifd_allow_degenerate(c, &frame.profile, k)?;
        let ifd_distance = run.state.linf_distance(&ifd.strategy)?;
        let mut physical = vec![0.0; m];
        for (rank, &p) in frame.order.iter().enumerate() {
            physical[p] = run.state.prob(rank);
        }
        state = Strategy::new(physical)?;
        records.push(EpochRecord {
            epoch,
            values: frame.values,
            state: state.probs().to_vec(),
            ifd_distance,
            steps: run.steps,
            converged: run.converged,
        });
    }
    Ok(ScenarioRun { records, final_state: state })
}

/// Replicator tracking from `count` random interior starts, sharded over
/// the persistent pool via [`engine::par_map_seeded`]: start `i` draws
/// from deterministic stream `i + 1` of `seed`, so the ensemble is
/// bit-reproducible at any thread count. Runs return in start order.
pub fn run_scenario_replicator_ensemble(
    c: &dyn Congestion,
    scenario: &Scenario,
    k: usize,
    count: usize,
    seed: u64,
    explore: f64,
    config: ReplicatorConfig,
) -> Result<Vec<ScenarioRun>> {
    if count == 0 {
        return Err(Error::InvalidArgument("ensemble needs at least one start".into()));
    }
    let m = scenario.sites();
    engine::par_map_seeded((0..count).collect(), seed, |_: usize, rng| {
        let weights: Vec<f64> = (0..m).map(|_| 0.05 + rng.gen::<f64>()).collect();
        let start = Strategy::from_weights(weights)?;
        run_scenario_replicator(c, scenario, &start, k, explore, config)
    })
}

/// One epoch of finite-population Moran tracking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoranEpochRecord {
    /// Epoch index.
    pub epoch: u64,
    /// Site values of this epoch (physical order).
    pub values: Vec<f64>,
    /// Post-burn-in mean site frequencies inside the epoch.
    pub frequencies: Vec<f64>,
}

/// Result of Moran tracking over a whole scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioMoranRun {
    /// One record per epoch, in schedule order.
    pub records: Vec<MoranEpochRecord>,
    /// Final population composition (individuals per site).
    pub final_counts: Vec<usize>,
}

/// Track the moving equilibrium with a finite population: one Moran
/// process whose population **persists across epochs** while the reward
/// matrix follows the scenario's values (physical order — the Moran
/// kernel needs no sorted frame). Each epoch runs `config.generations`
/// birth–death events and records post-burn-in mean frequencies.
/// Deterministic for a given seed: a single RNG stream threads the whole
/// schedule.
pub fn run_scenario_moran(
    c: &dyn Congestion,
    scenario: &Scenario,
    k: usize,
    config: MoranConfig,
) -> Result<ScenarioMoranRun> {
    if config.population < k.max(2) {
        return Err(Error::InvalidArgument(format!(
            "population {} must be at least max(k, 2) = {}",
            config.population,
            k.max(2)
        )));
    }
    if !(0.0..=1.0).contains(&config.mutation) {
        return Err(Error::InvalidArgument(format!(
            "mutation must be in [0,1], got {}",
            config.mutation
        )));
    }
    if config.burn_in >= config.generations {
        return Err(Error::InvalidArgument(format!(
            "burn_in {} must be below generations {}",
            config.burn_in, config.generations
        )));
    }
    let ctx = PayoffContext::new(c, k)?;
    let c_table = ctx.c_table();
    let m = scenario.sites();
    let n = config.population;
    let mut rng = Seed(config.seed).rng();
    let mut sites: Vec<usize> = (0..n).map(|_| rng.gen_range(0..m)).collect();
    let rewards_at = |values: &[f64]| -> Vec<f64> {
        let mut rewards = vec![0.0; m * k];
        for (x, &v) in values.iter().enumerate() {
            for (ell, &cl) in c_table.iter().enumerate() {
                rewards[x * k + ell] = v * cl;
            }
        }
        rewards
    };
    let mut engine = MoranEngine::new(m, n, k, rewards_at(&scenario.values_at(0)));
    let mut records = Vec::with_capacity(scenario.epochs() as usize);
    for epoch in 0..scenario.epochs() {
        let values = scenario.values_at(epoch);
        if epoch > 0 {
            engine.set_rewards(rewards_at(&values));
        }
        let mut freq_acc = vec![0.0f64; m];
        let mut recorded = 0u64;
        for generation in 0..config.generations {
            engine.generation(&config, &mut sites, &mut rng);
            if generation >= config.burn_in {
                recorded += 1;
                for &s in &sites {
                    freq_acc[s] += 1.0;
                }
            }
        }
        let norm = (recorded as f64) * (n as f64);
        records.push(MoranEpochRecord {
            epoch,
            values,
            frequencies: freq_acc.iter().map(|&x| x / norm).collect(),
        });
    }
    let mut final_counts = vec![0usize; m];
    for &s in &sites {
        final_counts[s] += 1;
    }
    Ok(ScenarioMoranRun { records, final_counts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dispersal_core::ifd::solve_ifd;
    use dispersal_core::policy::{Exclusive, Sharing};

    fn base() -> ValueProfile {
        ValueProfile::new(vec![1.0, 0.7, 0.4]).unwrap()
    }

    #[test]
    fn validates_events_and_epochs() {
        assert!(Scenario::new(base(), 0, vec![]).is_err());
        let bad = [
            TrafficEvent::Daily { amplitude: 1.0, period: 8 },
            TrafficEvent::Daily { amplitude: 0.2, period: 0 },
            TrafficEvent::Drift { site: 3, rate: 0.01 },
            TrafficEvent::Drift { site: 0, rate: -1.0 },
            TrafficEvent::Shock { epoch: 2, site: 3, factor: 0.5 },
            TrafficEvent::Shock { epoch: 2, site: 0, factor: 0.0 },
        ];
        for event in bad {
            assert!(Scenario::new(base(), 10, vec![event]).is_err(), "{event:?} accepted");
        }
        let ok = Scenario::new(
            base(),
            10,
            vec![
                TrafficEvent::Daily { amplitude: 0.3, period: 8 },
                TrafficEvent::Drift { site: 1, rate: -0.05 },
                TrafficEvent::Shock { epoch: 5, site: 2, factor: 2.0 },
            ],
        )
        .unwrap();
        assert_eq!(ok.epochs(), 10);
        assert_eq!(ok.sites(), 3);
        assert_eq!(ok.events().len(), 3);
    }

    #[test]
    fn values_follow_the_schedule_and_stay_positive() {
        let scenario = Scenario::new(
            base(),
            12,
            vec![
                TrafficEvent::Daily { amplitude: 0.5, period: 6 },
                TrafficEvent::Drift { site: 1, rate: -0.1 },
                TrafficEvent::Shock { epoch: 4, site: 2, factor: 3.0 },
            ],
        )
        .unwrap();
        // Epoch 0: daily sin at phase x/m only, drift^0 = 1, no shock yet.
        let v0 = scenario.values_at(0);
        assert!(v0.iter().all(|&v| v > 0.0 && v.is_finite()));
        // The shock lands at epoch 4 and persists.
        let before = scenario.values_at(3);
        let after = scenario.values_at(4);
        assert!(after[2] > 2.0 * before[2], "shock missing: {before:?} -> {after:?}");
        // Drift compounds: site 1 decays relative to its base share.
        let late = scenario.values_at(11);
        assert!(late[1] / base().value(1) < 0.5);
        assert!(late.iter().all(|&v| v > 0.0));
        // The sorted frame is a true permutation of the physical values.
        let frame = scenario.epoch_profile(11).unwrap();
        let mut sorted = frame.values.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        assert_eq!(frame.profile.values(), &sorted[..]);
        for (rank, &p) in frame.order.iter().enumerate() {
            assert_eq!(frame.profile.value(rank).to_bits(), frame.values[p].to_bits());
        }
    }

    #[test]
    fn static_scenario_reduces_to_plain_replicator() {
        // With no events every epoch is the base profile (already sorted),
        // so epoch 0 must reproduce run_replicator bit for bit.
        let scenario = Scenario::new(base(), 2, vec![]).unwrap();
        let start = Strategy::uniform(3).unwrap();
        let config = ReplicatorConfig { max_steps: 20_000, ..Default::default() };
        let tracked =
            run_scenario_replicator(&Exclusive, &scenario, &start, 3, 0.0, config).unwrap();
        assert!(run_scenario_replicator(&Exclusive, &scenario, &start, 3, 1.0, config).is_err());
        assert!(run_scenario_replicator(&Exclusive, &scenario, &start, 3, -0.1, config).is_err());
        let plain = run_replicator(&Exclusive, &base(), &start, 3, config).unwrap();
        assert_eq!(tracked.records[0].steps, plain.steps);
        for (a, b) in tracked.records[0].state.iter().zip(plain.state.probs().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn replicator_tracks_the_moving_equilibrium() {
        let scenario = Scenario::new(
            base(),
            8,
            vec![
                TrafficEvent::Daily { amplitude: 0.25, period: 8 },
                TrafficEvent::Shock { epoch: 4, site: 2, factor: 2.5 },
            ],
        )
        .unwrap();
        let k = 3;
        let start = Strategy::uniform(3).unwrap();
        let config = ReplicatorConfig { velocity_tol: 1e-10, ..Default::default() };
        let run = run_scenario_replicator(&Sharing, &scenario, &start, k, 1e-6, config).unwrap();
        assert_eq!(run.records.len(), 8);
        // Converged epochs sit on the epoch equilibrium even though it
        // moves (including across the epoch-4 value-order flip).
        for record in &run.records {
            assert!(record.converged, "epoch {} failed to settle", record.epoch);
            assert!(
                record.ifd_distance < 1e-4,
                "epoch {}: distance {}",
                record.epoch,
                record.ifd_distance
            );
            let sum: f64 = record.state.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        assert!(run.worst_distance() < 1e-4);
        // The shock makes site 2 the best site; the tracked population
        // must follow it across the sorted-frame flip.
        let ep5 = &run.records[5];
        assert!(
            ep5.state[2] > run.records[3].state[2],
            "population did not move toward the shocked site"
        );
        // And the final state matches the last epoch's own equilibrium.
        let last = scenario.epoch_profile(7).unwrap();
        let ifd = solve_ifd(&Sharing, &last.profile, k).unwrap();
        let sorted_final =
            Strategy::new(last.order.iter().map(|&p| run.final_state.prob(p)).collect()).unwrap();
        assert!(sorted_final.linf_distance(&ifd.strategy).unwrap() < 1e-4);
    }

    #[test]
    fn replicator_ensemble_is_deterministic_and_ordered() {
        let scenario =
            Scenario::new(base(), 3, vec![TrafficEvent::Daily { amplitude: 0.2, period: 3 }])
                .unwrap();
        let config = ReplicatorConfig { max_steps: 30_000, ..Default::default() };
        let a = run_scenario_replicator_ensemble(&Exclusive, &scenario, 3, 6, 99, 1e-6, config)
            .unwrap();
        let b = run_scenario_replicator_ensemble(&Exclusive, &scenario, 3, 6, 99, 1e-6, config)
            .unwrap();
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(b.iter()) {
            for (rx, ry) in x.records.iter().zip(y.records.iter()) {
                assert_eq!(rx.steps, ry.steps);
                for (p, q) in rx.state.iter().zip(ry.state.iter()) {
                    assert_eq!(p.to_bits(), q.to_bits());
                }
            }
        }
        assert!(
            run_scenario_replicator_ensemble(&Exclusive, &scenario, 3, 0, 99, 0.0, config).is_err()
        );
    }

    #[test]
    fn moran_population_persists_and_follows_a_shock() {
        let scenario = Scenario::new(
            ValueProfile::new(vec![1.0, 0.5]).unwrap(),
            2,
            // Epoch 1 makes site 1 four times better than site 0.
            vec![TrafficEvent::Shock { epoch: 1, site: 1, factor: 8.0 }],
        )
        .unwrap();
        let config = MoranConfig {
            population: 120,
            generations: 8_000,
            burn_in: 4_000,
            rounds_per_generation: 2,
            selection: 6.0,
            mutation: 0.01,
            seed: 31,
        };
        let run = run_scenario_moran(&Exclusive, &scenario, 2, config).unwrap();
        assert_eq!(run.records.len(), 2);
        assert_eq!(run.final_counts.iter().sum::<usize>(), 120);
        for record in &run.records {
            let total: f64 = record.frequencies.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
        // Before the shock the population favors site 0; after, site 1.
        assert!(run.records[0].frequencies[0] > run.records[0].frequencies[1]);
        assert!(run.records[1].frequencies[1] > run.records[1].frequencies[0]);
        // Deterministic given the seed.
        let again = run_scenario_moran(&Exclusive, &scenario, 2, config).unwrap();
        assert_eq!(run.final_counts, again.final_counts);
        for (a, b) in run.records.iter().zip(again.records.iter()) {
            for (x, y) in a.frequencies.iter().zip(b.frequencies.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // Config validation mirrors run_moran.
        let bad = MoranConfig { population: 1, ..config };
        assert!(run_scenario_moran(&Exclusive, &scenario, 2, bad).is_err());
        let bad = MoranConfig { mutation: 2.0, ..config };
        assert!(run_scenario_moran(&Exclusive, &scenario, 2, bad).is_err());
        let bad = MoranConfig { burn_in: 8_000, ..config };
        assert!(run_scenario_moran(&Exclusive, &scenario, 2, bad).is_err());
    }
}
