//! Empirical ESS invasion experiments (Section 1.4, Eq. 3).
//!
//! A population holds residents playing `σ` and a fraction `ε` of mutants
//! playing `π`. Repeatedly, `k` individuals are drawn i.i.d. from the
//! population and play the one-shot game; we record the average payoff of
//! residents and mutants. Theorem 3 predicts residents strictly out-earn
//! mutants for small `ε` when `σ = σ⋆` under the exclusive policy.

use crate::engine::{self, Experiment, ShardPlan};
use crate::stats::{Estimate, Welford};
use dispersal_core::payoff::PayoffContext;
use dispersal_core::policy::Congestion;
use dispersal_core::strategy::{Strategy, StrategySampler};
use dispersal_core::value::ValueProfile;
use dispersal_core::{Error, Result};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration for an invasion experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvasionConfig {
    /// Mutant share `ε ∈ (0, 1)`.
    pub epsilon: f64,
    /// Number of sampled k-tuples.
    pub matches: u64,
    /// Master seed.
    pub seed: u64,
    /// Shard count for parallel execution.
    pub shards: u64,
}

impl Default for InvasionConfig {
    fn default() -> Self {
        Self { epsilon: 0.05, matches: 200_000, seed: 0xBEEF, shards: 32 }
    }
}

/// Result of an invasion experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvasionReport {
    /// Average payoff of resident-strategy players.
    pub resident_payoff: Estimate,
    /// Average payoff of mutant-strategy players.
    pub mutant_payoff: Estimate,
    /// Difference resident − mutant.
    pub advantage: f64,
    /// The analytic prediction of the advantage from Eq. (3).
    pub analytic_advantage: f64,
}

impl InvasionReport {
    /// Whether the resident strictly out-earns the mutant, with the CI
    /// separating the estimates from zero advantage.
    pub fn resident_wins(&self) -> bool {
        self.advantage > 0.0
    }
}

/// One sampled match as an engine [`Experiment`]: per-shard state is the
/// occupancy/choice scratch; each trial draws a `k`-tuple from the
/// resident/mutant mixture and records both sides' payoffs via the
/// precomputed site-major reward matrix `rewards[x·k + ℓ − 1] = f(x)·C(ℓ)`
/// (one batched setup instead of a value-times-table multiply per player
/// per trial).
struct InvasionMc<'a> {
    f: &'a ValueProfile,
    res_sampler: StrategySampler,
    mut_sampler: StrategySampler,
    rewards: Vec<f64>,
    epsilon: f64,
    k: usize,
}

/// Reusable per-shard scratch buffers for [`InvasionMc`].
struct MatchScratch {
    occupancy: Vec<usize>,
    choices: Vec<(usize, bool)>,
}

impl Experiment for InvasionMc<'_> {
    type State = MatchScratch;
    type Output = (Welford, Welford);

    fn make_state(&self) -> Result<MatchScratch> {
        Ok(MatchScratch {
            occupancy: vec![0usize; self.f.len()],
            choices: vec![(0usize, false); self.k],
        })
    }

    fn trial(&self, scratch: &mut MatchScratch, rng: &mut ChaCha8Rng, acc: &mut Self::Output) {
        let (res_acc, mut_acc) = acc;
        scratch.occupancy.iter_mut().for_each(|o| *o = 0);
        for slot in scratch.choices.iter_mut() {
            let is_mutant = rng.gen::<f64>() < self.epsilon;
            let site =
                if is_mutant { self.mut_sampler.sample(rng) } else { self.res_sampler.sample(rng) };
            scratch.occupancy[site] += 1;
            *slot = (site, is_mutant);
        }
        for &(site, is_mutant) in &scratch.choices {
            let payoff = self.rewards[site * self.k + scratch.occupancy[site] - 1];
            if is_mutant {
                mut_acc.push(payoff);
            } else {
                res_acc.push(payoff);
            }
        }
    }
}

/// Run the invasion experiment.
pub fn run_invasion(
    c: &dyn Congestion,
    f: &ValueProfile,
    resident: &Strategy,
    mutant: &Strategy,
    k: usize,
    config: InvasionConfig,
) -> Result<InvasionReport> {
    if resident.len() != f.len() {
        return Err(Error::DimensionMismatch { strategy: resident.len(), profile: f.len() });
    }
    if mutant.len() != f.len() {
        return Err(Error::DimensionMismatch { strategy: mutant.len(), profile: f.len() });
    }
    if !(0.0 < config.epsilon && config.epsilon < 1.0) {
        return Err(Error::InvalidArgument(format!(
            "epsilon must be in (0, 1), got {}",
            config.epsilon
        )));
    }
    let ctx = PayoffContext::new(c, k)?;
    // Analytic prediction: U[sigma; mix] - U[pi; mix] (Eq. 3 collapses to
    // the mixture-field payoff for i.i.d. opponents); one site-value pass
    // serves both sides.
    let analytic_advantage = ctx.mixture_advantage(f, resident, mutant, config.epsilon)?;
    let experiment = InvasionMc {
        f,
        res_sampler: StrategySampler::new(resident),
        mut_sampler: StrategySampler::new(mutant),
        rewards: crate::oneshot::reward_matrix(f, ctx.c_table()),
        epsilon: config.epsilon,
        k,
    };
    let plan = ShardPlan::new(config.matches, config.shards, config.seed);
    let (res_total, mut_total) = engine::run(&experiment, plan)?;
    let resident_payoff = Estimate::from_welford(&res_total);
    let mutant_payoff = Estimate::from_welford(&mut_total);
    Ok(InvasionReport {
        resident_payoff,
        mutant_payoff,
        advantage: resident_payoff.mean - mutant_payoff.mean,
        analytic_advantage,
    })
}

/// Sweep the mutant share over a grid, returning `(ε, report)` pairs —
/// the empirical invasion-barrier curve.
pub fn invasion_sweep(
    c: &dyn Congestion,
    f: &ValueProfile,
    resident: &Strategy,
    mutant: &Strategy,
    k: usize,
    epsilons: &[f64],
    base: InvasionConfig,
) -> Result<Vec<(f64, InvasionReport)>> {
    epsilons
        .iter()
        .map(|&eps| {
            let config = InvasionConfig { epsilon: eps, ..base };
            run_invasion(c, f, resident, mutant, k, config).map(|r| (eps, r))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dispersal_core::policy::{Exclusive, Sharing};
    use dispersal_core::sigma_star::sigma_star;

    #[test]
    fn sigma_star_resists_uniform_invader() {
        let f = ValueProfile::new(vec![1.0, 0.4]).unwrap();
        let k = 2;
        let star = sigma_star(&f, k).unwrap().strategy;
        let mutant = Strategy::uniform(2).unwrap();
        let report = run_invasion(
            &Exclusive,
            &f,
            &star,
            &mutant,
            k,
            InvasionConfig { epsilon: 0.2, matches: 600_000, seed: 3, shards: 16 },
        )
        .unwrap();
        assert!(report.analytic_advantage > 0.0);
        assert!(
            report.resident_wins(),
            "resident {} vs mutant {}",
            report.resident_payoff.mean,
            report.mutant_payoff.mean
        );
    }

    #[test]
    fn empirical_matches_analytic_advantage() {
        let f = ValueProfile::new(vec![1.0, 0.6, 0.2]).unwrap();
        let k = 3;
        let star = sigma_star(&f, k).unwrap().strategy;
        let mutant = Strategy::proportional(f.values()).unwrap();
        let report = run_invasion(
            &Exclusive,
            &f,
            &star,
            &mutant,
            k,
            InvasionConfig { epsilon: 0.2, matches: 500_000, seed: 8, shards: 16 },
        )
        .unwrap();
        let tol = report.resident_payoff.ci95 + report.mutant_payoff.ci95 + 1e-3;
        assert!(
            (report.advantage - report.analytic_advantage).abs() < tol,
            "empirical {} vs analytic {}",
            report.advantage,
            report.analytic_advantage
        );
    }

    #[test]
    fn bad_resident_is_invaded() {
        // Resident parks on the worst site; best-responding mutant wins.
        let f = ValueProfile::new(vec![1.0, 0.1]).unwrap();
        let resident = Strategy::delta(2, 1).unwrap();
        let mutant = Strategy::delta(2, 0).unwrap();
        let report = run_invasion(
            &Exclusive,
            &f,
            &resident,
            &mutant,
            2,
            InvasionConfig { epsilon: 0.1, matches: 100_000, seed: 4, shards: 8 },
        )
        .unwrap();
        assert!(report.analytic_advantage < 0.0);
        assert!(!report.resident_wins());
    }

    #[test]
    fn sweep_produces_monotone_grid() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let k = 2;
        let star = sigma_star(&f, k).unwrap().strategy;
        let mutant = Strategy::uniform(2).unwrap();
        let eps = [0.05, 0.25, 0.5];
        let sweep = invasion_sweep(
            &Sharing,
            &f,
            &star,
            &mutant,
            k,
            &eps,
            InvasionConfig { matches: 50_000, seed: 5, shards: 8, epsilon: 0.1 },
        )
        .unwrap();
        assert_eq!(sweep.len(), 3);
        for ((e, _), expect) in sweep.iter().zip(eps.iter()) {
            assert_eq!(e, expect);
        }
    }

    #[test]
    fn validates_inputs() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let s2 = Strategy::uniform(2).unwrap();
        let s3 = Strategy::uniform(3).unwrap();
        assert!(run_invasion(&Exclusive, &f, &s3, &s2, 2, InvasionConfig::default()).is_err());
        assert!(run_invasion(&Exclusive, &f, &s2, &s3, 2, InvasionConfig::default()).is_err());
        let bad = InvasionConfig { epsilon: 0.0, ..Default::default() };
        assert!(run_invasion(&Exclusive, &f, &s2, &s2, 2, bad).is_err());
    }
}
