//! Empirical ESS invasion experiments (Section 1.4, Eq. 3).
//!
//! A population holds residents playing `σ` and a fraction `ε` of mutants
//! playing `π`. Repeatedly, `k` individuals are drawn i.i.d. from the
//! population and play the one-shot game; we record the average payoff of
//! residents and mutants. Theorem 3 predicts residents strictly out-earn
//! mutants for small `ε` when `σ = σ⋆` under the exclusive policy.

use crate::engine::{self, Experiment, Merge, ShardPlan};
use crate::stats::{Estimate, Welford};
use dispersal_core::kernel::{PbCache, PbTable};
use dispersal_core::numerics::kahan_sum;
use dispersal_core::payoff::PayoffContext;
use dispersal_core::policy::Congestion;
use dispersal_core::strategy::{Strategy, StrategySampler};
use dispersal_core::value::ValueProfile;
use dispersal_core::{Error, Result};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration for an invasion experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvasionConfig {
    /// Mutant share `ε ∈ (0, 1)`.
    pub epsilon: f64,
    /// Number of sampled k-tuples.
    pub matches: u64,
    /// Master seed.
    pub seed: u64,
    /// Shard count for parallel execution.
    pub shards: u64,
}

impl Default for InvasionConfig {
    fn default() -> Self {
        Self { epsilon: 0.05, matches: 200_000, seed: 0xBEEF, shards: 32 }
    }
}

/// Result of an invasion experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvasionReport {
    /// Average payoff of resident-strategy players.
    pub resident_payoff: Estimate,
    /// Average payoff of mutant-strategy players.
    pub mutant_payoff: Estimate,
    /// Difference resident − mutant.
    pub advantage: f64,
    /// The analytic prediction of the advantage from Eq. (3).
    pub analytic_advantage: f64,
}

impl InvasionReport {
    /// Whether the resident strictly out-earns the mutant, with the CI
    /// separating the estimates from zero advantage.
    pub fn resident_wins(&self) -> bool {
        self.advantage > 0.0
    }
}

/// One sampled match as an engine [`Experiment`]: per-shard state is the
/// occupancy/choice scratch; each trial draws a `k`-tuple from the
/// resident/mutant mixture and records both sides' payoffs via the
/// precomputed site-major reward matrix `rewards[x·k + ℓ − 1] = f(x)·C(ℓ)`
/// (one batched setup instead of a value-times-table multiply per player
/// per trial).
struct InvasionMc<'a> {
    f: &'a ValueProfile,
    res_sampler: StrategySampler,
    mut_sampler: StrategySampler,
    rewards: Vec<f64>,
    epsilon: f64,
    k: usize,
}

/// Reusable per-shard scratch buffers for [`InvasionMc`].
struct MatchScratch {
    occupancy: Vec<usize>,
    choices: Vec<(usize, bool)>,
}

impl Experiment for InvasionMc<'_> {
    type State = MatchScratch;
    type Output = (Welford, Welford);

    fn make_state(&self) -> Result<MatchScratch> {
        Ok(MatchScratch {
            occupancy: vec![0usize; self.f.len()],
            choices: vec![(0usize, false); self.k],
        })
    }

    fn trial(&self, scratch: &mut MatchScratch, rng: &mut ChaCha8Rng, acc: &mut Self::Output) {
        let (res_acc, mut_acc) = acc;
        scratch.occupancy.iter_mut().for_each(|o| *o = 0);
        for slot in scratch.choices.iter_mut() {
            let is_mutant = rng.gen::<f64>() < self.epsilon;
            let site =
                if is_mutant { self.mut_sampler.sample(rng) } else { self.res_sampler.sample(rng) };
            scratch.occupancy[site] += 1;
            *slot = (site, is_mutant);
        }
        for &(site, is_mutant) in &scratch.choices {
            let payoff = self.rewards[site * self.k + scratch.occupancy[site] - 1];
            if is_mutant {
                mut_acc.push(payoff);
            } else {
                res_acc.push(payoff);
            }
        }
    }
}

/// Run the invasion experiment.
pub fn run_invasion(
    c: &dyn Congestion,
    f: &ValueProfile,
    resident: &Strategy,
    mutant: &Strategy,
    k: usize,
    config: InvasionConfig,
) -> Result<InvasionReport> {
    if resident.len() != f.len() {
        return Err(Error::DimensionMismatch { strategy: resident.len(), profile: f.len() });
    }
    if mutant.len() != f.len() {
        return Err(Error::DimensionMismatch { strategy: mutant.len(), profile: f.len() });
    }
    if !(0.0 < config.epsilon && config.epsilon < 1.0) {
        return Err(Error::InvalidArgument(format!(
            "epsilon must be in (0, 1), got {}",
            config.epsilon
        )));
    }
    let ctx = PayoffContext::new(c, k)?;
    // Analytic prediction: U[sigma; mix] - U[pi; mix] (Eq. 3 collapses to
    // the mixture-field payoff for i.i.d. opponents); one site-value pass
    // serves both sides.
    let analytic_advantage = ctx.mixture_advantage(f, resident, mutant, config.epsilon)?;
    let experiment = InvasionMc {
        f,
        res_sampler: StrategySampler::new(resident),
        mut_sampler: StrategySampler::new(mutant),
        rewards: crate::oneshot::reward_matrix(f, ctx.c_table()),
        epsilon: config.epsilon,
        k,
    };
    let plan = ShardPlan::new(config.matches, config.shards, config.seed);
    let (res_total, mut_total) = engine::run(&experiment, plan)?;
    let resident_payoff = Estimate::from_welford(&res_total);
    let mutant_payoff = Estimate::from_welford(&mut_total);
    Ok(InvasionReport {
        resident_payoff,
        mutant_payoff,
        advantage: resident_payoff.mean - mutant_payoff.mean,
        analytic_advantage,
    })
}

/// Sweep the mutant share over a grid, returning `(ε, report)` pairs —
/// the empirical invasion-barrier curve.
pub fn invasion_sweep(
    c: &dyn Congestion,
    f: &ValueProfile,
    resident: &Strategy,
    mutant: &Strategy,
    k: usize,
    epsilons: &[f64],
    base: InvasionConfig,
) -> Result<Vec<(f64, InvasionReport)>> {
    epsilons
        .iter()
        .map(|&eps| {
            let config = InvasionConfig { epsilon: eps, ..base };
            run_invasion(c, f, resident, mutant, k, config).map(|r| (eps, r))
        })
        .collect()
}

// ---------------------------------------------------------------------
// Asymmetric multi-type mixtures: the population-scale generalization of
// the resident + mutant pair. A `Mixture` holds M policy types with
// population weights; the analytic machinery (field payoffs, pairwise
// advantage, invasion barrier) and the exact PbTable ledger generalize
// the 2-type special case, which stays **bit-identical** as the
// degenerate path (pinned in this module's tests).
// ---------------------------------------------------------------------

/// Tolerance for the mixture weights summing to one, matching the
/// normalization contract of [`Strategy`].
const WEIGHT_TOL: f64 = 1e-9;

/// An asymmetric resident population: `M` policy types with population
/// weights `w_t ≥ 0`, `Σ_t w_t = 1`. Every type is a full site strategy
/// over the same `m` sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mixture {
    types: Vec<Strategy>,
    weights: Vec<f64>,
}

impl Mixture {
    /// Build a mixture from `types` and matching `weights` (finite,
    /// non-negative, summing to one within `1e-9`).
    pub fn new(types: Vec<Strategy>, weights: Vec<f64>) -> Result<Self> {
        if types.is_empty() {
            return Err(Error::InvalidArgument("mixture needs at least one type".into()));
        }
        if types.len() != weights.len() {
            return Err(Error::InvalidArgument(format!(
                "mixture has {} types but {} weights",
                types.len(),
                weights.len()
            )));
        }
        let m = types[0].len();
        for t in &types[1..] {
            if t.len() != m {
                return Err(Error::DimensionMismatch { strategy: t.len(), profile: m });
            }
        }
        for &w in &weights {
            if !w.is_finite() || w < 0.0 {
                return Err(Error::InvalidArgument(format!(
                    "mixture weights must be finite and non-negative, got {w}"
                )));
            }
        }
        let total = kahan_sum(weights.iter().copied());
        if (total - 1.0).abs() > WEIGHT_TOL {
            return Err(Error::InvalidArgument(format!(
                "mixture weights must sum to 1, got {total}"
            )));
        }
        Ok(Self { types, weights })
    }

    /// The resident + mutant pair as a degenerate two-type mixture:
    /// weights `(1 − ε, ε)` with `ε ∈ (0, 1)`.
    pub fn two(resident: &Strategy, mutant: &Strategy, eps: f64) -> Result<Self> {
        if !(0.0 < eps && eps < 1.0) {
            return Err(Error::InvalidArgument(format!("epsilon must be in (0, 1), got {eps}")));
        }
        Self::new(vec![resident.clone(), mutant.clone()], vec![1.0 - eps, eps])
    }

    /// A resident at share `1 − ε` invaded by an `invaders` mixture whose
    /// weights give the *relative* composition of the invading share
    /// `ε ∈ (0, 1]`. Type 0 of the result is the resident; type `t + 1`
    /// carries weight `ε·w_t`.
    pub fn invaded(resident: &Strategy, invaders: &Mixture, eps: f64) -> Result<Self> {
        if !(0.0 < eps && eps <= 1.0) {
            return Err(Error::InvalidArgument(format!(
                "invader share must be in (0, 1], got {eps}"
            )));
        }
        let mut types = Vec::with_capacity(1 + invaders.types.len());
        types.push(resident.clone());
        types.extend(invaders.types.iter().cloned());
        let mut weights = Vec::with_capacity(1 + invaders.weights.len());
        weights.push(1.0 - eps);
        weights.extend(invaders.weights.iter().map(|&w| eps * w));
        Self::new(types, weights)
    }

    /// Number of types `M`.
    #[inline]
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the mixture is empty (never true for a validated mixture).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Number of sites every type plays over.
    #[inline]
    pub fn sites(&self) -> usize {
        self.types[0].len()
    }

    /// The type strategies, in input order.
    #[inline]
    pub fn types(&self) -> &[Strategy] {
        &self.types
    }

    /// The population weights, in type order.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The population-mean strategy `μ(x) = Σ_t w_t·p_t(x)`.
    ///
    /// Each site is a compensated sum over types; for `M = 2` with
    /// weights `(1 − ε, ε)` this is bit-identical to
    /// [`Strategy::mix`]`(ε)` (a two-term Kahan sum carries zero
    /// compensation, so the bits equal the plain `(1−ε)a + εb`).
    pub fn mean_strategy(&self) -> Result<Strategy> {
        let probs = (0..self.sites())
            .map(|x| {
                kahan_sum(self.types.iter().zip(self.weights.iter()).map(|(t, &w)| w * t.prob(x)))
            })
            .collect();
        Strategy::new(probs)
    }
}

/// Field payoff of every type against the population mean: `U_t = Σ_x
/// p_t(x)·ν_μ(x)` where `ν_μ` are the site values under the mean field
/// `μ`. One site-value pass serves all `M` types; for `M = 2` the pair
/// `U_0 − U_1` is bit-identical to
/// [`PayoffContext::mixture_advantage`].
pub fn mixture_field_payoffs(
    ctx: &PayoffContext,
    f: &ValueProfile,
    mixture: &Mixture,
) -> Result<Vec<f64>> {
    let mean = mixture.mean_strategy()?;
    let nu = ctx.site_values(f, &mean)?;
    Ok(mixture
        .types()
        .iter()
        .map(|t| kahan_sum(t.probs().iter().zip(nu.iter()).map(|(r, v)| r * v)))
        .collect())
}

/// Generalized Eq. (3) advantage of type `a` over type `b` inside the
/// population `mixture`: `U_a − U_b`. The `M = 2` case with indices
/// `(0, 1)` is bit-identical to [`PayoffContext::mixture_advantage`].
pub fn mixture_type_advantage(
    ctx: &PayoffContext,
    f: &ValueProfile,
    mixture: &Mixture,
    a: usize,
    b: usize,
) -> Result<f64> {
    if a >= mixture.len() || b >= mixture.len() {
        return Err(Error::InvalidArgument(format!(
            "type indices ({a}, {b}) out of range for a {}-type mixture",
            mixture.len()
        )));
    }
    let u = mixture_field_payoffs(ctx, f, mixture)?;
    Ok(u[a] - u[b])
}

/// Generalized invasion barrier: the largest invading share `ε` on the
/// grid `{1/grid, …, 1}` at which the resident strictly out-earns
/// **every** invader type of the `invaders` composition. With a single
/// invader type this is bit-identical to
/// [`dispersal_core::ess::invasion_barrier`].
pub fn mixture_invasion_barrier(
    ctx: &PayoffContext,
    f: &ValueProfile,
    resident: &Strategy,
    invaders: &Mixture,
    grid: usize,
) -> Result<f64> {
    if grid < 2 {
        return Err(Error::InvalidArgument("invasion barrier grid must be >= 2".into()));
    }
    if resident.len() != f.len() {
        return Err(Error::DimensionMismatch { strategy: resident.len(), profile: f.len() });
    }
    if invaders.sites() != f.len() {
        return Err(Error::DimensionMismatch { strategy: invaders.sites(), profile: f.len() });
    }
    let mut last_good = 0.0;
    for i in 1..=grid {
        let eps = i as f64 / grid as f64;
        let pop = Mixture::invaded(resident, invaders, eps)?;
        let u = mixture_field_payoffs(ctx, f, &pop)?;
        if u[1..].iter().all(|&ut| u[0] - ut > 0.0) {
            last_good = eps;
        } else {
            break;
        }
    }
    Ok(last_good)
}

/// The per-level exact payoff ledger of a one-directional type transfer:
/// `payoffs[t][ℓ]` is the expected payoff of a focal type-`t` player when
/// `ℓ` of the `k − 1` opponents play the transfer target and the rest
/// play type 0. The two-type case reproduces
/// [`dispersal_core::ess::EssLedger`] bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixtureLedger {
    /// `payoffs[t][ℓ]`, one row per mixture type, `k` levels per row.
    pub payoffs: Vec<Vec<f64>>,
}

/// Exact `PbTable`-backed evaluator for a multi-type mixture: per-site
/// occupancy laws are Poisson-binomial tables updated **incrementally**
/// through [`PbCache`] rank updates (one contractive
/// [`PbTable::replace`] per site per unit transfer), generalizing
/// [`dispersal_core::ess::LedgerEvaluator`] from the resident + mutant
/// pair to `M` types.
#[derive(Debug)]
pub struct MixtureEvaluator<'a> {
    ctx: &'a PayoffContext,
    f: &'a ValueProfile,
    mixture: &'a Mixture,
    /// Per-site baseline tables for the all-type-0 profile `{p_0(x)}^{k−1}`.
    base: Vec<PbTable>,
    cache: PbCache,
}

impl<'a> MixtureEvaluator<'a> {
    /// Build the baseline tables anchored on type 0 (requires `k ≥ 2`).
    pub fn new(ctx: &'a PayoffContext, f: &'a ValueProfile, mixture: &'a Mixture) -> Result<Self> {
        let k = ctx.k();
        if k < 2 {
            return Err(Error::InvalidPlayerCount { k });
        }
        if f.len() != mixture.sites() {
            return Err(Error::DimensionMismatch { strategy: mixture.sites(), profile: f.len() });
        }
        let cache = PbCache::new();
        let mut profile = vec![0.0; k - 1];
        let mut base = Vec::with_capacity(f.len());
        let anchor = &mixture.types()[0];
        for x in 0..f.len() {
            profile.fill(anchor.prob(x));
            base.push(cache.table(&profile)?.as_ref().clone());
        }
        Ok(Self { ctx, f, mixture, base, cache })
    }

    /// The full per-level ledger of transferring opponents from type 0 to
    /// type `to`, one incremental rank update per site per level. For a
    /// two-type mixture with `to = 1` the rows are bit-identical to
    /// [`dispersal_core::ess::LedgerEvaluator::ledger`]'s resident and
    /// mutant columns.
    pub fn transfer_ledger(&self, to: usize) -> Result<MixtureLedger> {
        if to == 0 || to >= self.mixture.len() {
            return Err(Error::InvalidArgument(format!(
                "transfer target {to} out of range for a {}-type mixture",
                self.mixture.len()
            )));
        }
        let k = self.ctx.k();
        let c_table = self.ctx.c_table();
        let types = self.mixture.types();
        let mut tables = self.base.clone();
        let mut payoffs = vec![Vec::with_capacity(k); types.len()];
        for ell in 0..k {
            if ell > 0 {
                for (x, table) in tables.iter_mut().enumerate() {
                    table.replace(types[0].prob(x), types[to].prob(x))?;
                }
            }
            let mut accs = vec![0.0; types.len()];
            for (x, table) in tables.iter().enumerate() {
                if types.iter().all(|t| t.prob(x) == 0.0) {
                    continue;
                }
                let expected_c = table.expectation(c_table);
                for (acc, t) in accs.iter_mut().zip(types.iter()) {
                    let px = t.prob(x);
                    if px != 0.0 {
                        *acc += px * self.f.value(x) * expected_c;
                    }
                }
            }
            for (row, acc) in payoffs.iter_mut().zip(accs) {
                row.push(acc);
            }
        }
        Ok(MixtureLedger { payoffs })
    }

    /// Exact expected payoff of a focal player of every type against a
    /// **fixed** opponent composition: `opponent_counts[t]` opponents of
    /// type `t`, summing to `k − 1`. Opponent site occupancies are exact
    /// Poisson-binomial expectations through the shared [`PbCache`].
    pub fn composition_payoffs(&self, opponent_counts: &[usize]) -> Result<Vec<f64>> {
        let types = self.mixture.types();
        if opponent_counts.len() != types.len() {
            return Err(Error::InvalidArgument(format!(
                "expected {} opponent counts, got {}",
                types.len(),
                opponent_counts.len()
            )));
        }
        let total: usize = opponent_counts.iter().sum();
        if total != self.ctx.k() - 1 {
            return Err(Error::InvalidArgument(format!(
                "opponent counts must sum to k - 1 = {}, got {total}",
                self.ctx.k() - 1
            )));
        }
        let opponents: Vec<&Strategy> = opponent_counts
            .iter()
            .zip(types.iter())
            .flat_map(|(&n, t)| std::iter::repeat_n(t, n))
            .collect();
        types
            .iter()
            .map(|rho| self.ctx.heterogeneous_payoff_with(self.f, rho, &opponents, &self.cache))
            .collect()
    }
}

/// Result of a multi-type invasion experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixtureInvasionReport {
    /// Empirical average payoff per type, in mixture order.
    pub type_payoffs: Vec<Estimate>,
    /// Analytic field payoffs `U_t` per type from the mean-field law.
    pub analytic_payoffs: Vec<f64>,
}

impl MixtureInvasionReport {
    /// Empirical advantage of type `a` over type `b`.
    pub fn advantage(&self, a: usize, b: usize) -> f64 {
        self.type_payoffs[a].mean - self.type_payoffs[b].mean
    }

    /// Analytic advantage of type `a` over type `b`.
    pub fn analytic_advantage(&self, a: usize, b: usize) -> f64 {
        self.analytic_payoffs[a] - self.analytic_payoffs[b]
    }
}

/// Per-type Welford accumulators with element-wise merging (shard order),
/// lazily sized on first trial so `Default` stays cheap.
#[derive(Debug, Default)]
struct TypePayoffs(Vec<Welford>);

impl Merge for TypePayoffs {
    fn merge(&mut self, other: Self) {
        if other.0.is_empty() {
            return;
        }
        if self.0.is_empty() {
            self.0 = other.0;
            return;
        }
        for (mine, theirs) in self.0.iter_mut().zip(other.0) {
            Merge::merge(mine, theirs);
        }
    }
}

/// The multi-type generalization of `InvasionMc`: each of the `k` slots
/// draws its type from the mixture weights, then a site from that type's
/// sampler. The type draw scans the weights from the **last** type down
/// so the two-type case compares `u < ε` against the mutant exactly like
/// the legacy resident + mutant trial — one `f64` draw and one sampler
/// draw per slot, in the same order.
struct MixtureInvasionMc<'a> {
    f: &'a ValueProfile,
    samplers: Vec<StrategySampler>,
    weights: &'a [f64],
    rewards: Vec<f64>,
    k: usize,
}

/// Reusable per-shard scratch for [`MixtureInvasionMc`].
struct MixtureScratch {
    occupancy: Vec<usize>,
    choices: Vec<(usize, usize)>,
}

impl Experiment for MixtureInvasionMc<'_> {
    type State = MixtureScratch;
    type Output = TypePayoffs;

    fn make_state(&self) -> Result<MixtureScratch> {
        Ok(MixtureScratch {
            occupancy: vec![0usize; self.f.len()],
            choices: vec![(0usize, 0usize); self.k],
        })
    }

    fn trial(&self, scratch: &mut MixtureScratch, rng: &mut ChaCha8Rng, acc: &mut TypePayoffs) {
        if acc.0.is_empty() {
            acc.0 = vec![Welford::default(); self.samplers.len()];
        }
        scratch.occupancy.iter_mut().for_each(|o| *o = 0);
        for slot in scratch.choices.iter_mut() {
            let u = rng.gen::<f64>();
            let mut ty = 0usize;
            let mut cum = 0.0;
            for t in (1..self.samplers.len()).rev() {
                cum += self.weights[t];
                if u < cum {
                    ty = t;
                    break;
                }
            }
            let site = self.samplers[ty].sample(rng);
            scratch.occupancy[site] += 1;
            *slot = (site, ty);
        }
        for &(site, ty) in &scratch.choices {
            let payoff = self.rewards[site * self.k + scratch.occupancy[site] - 1];
            acc.0[ty].push(payoff);
        }
    }
}

/// Run the invasion experiment for an arbitrary multi-type mixture.
///
/// `config.epsilon` is ignored — the population shares live in the
/// mixture weights. For the degenerate [`Mixture::two`]`(σ, π, ε)` the
/// per-type estimates are bit-identical to [`run_invasion`] at the same
/// `(matches, seed, shards)`.
pub fn run_invasion_mixture(
    c: &dyn Congestion,
    f: &ValueProfile,
    mixture: &Mixture,
    k: usize,
    config: InvasionConfig,
) -> Result<MixtureInvasionReport> {
    if mixture.sites() != f.len() {
        return Err(Error::DimensionMismatch { strategy: mixture.sites(), profile: f.len() });
    }
    let ctx = PayoffContext::new(c, k)?;
    let analytic_payoffs = mixture_field_payoffs(&ctx, f, mixture)?;
    let experiment = MixtureInvasionMc {
        f,
        samplers: mixture.types().iter().map(StrategySampler::new).collect(),
        weights: mixture.weights(),
        rewards: crate::oneshot::reward_matrix(f, ctx.c_table()),
        k,
    };
    let plan = ShardPlan::new(config.matches, config.shards, config.seed);
    let mut accs = engine::run(&experiment, plan)?;
    if accs.0.is_empty() {
        accs.0 = vec![Welford::default(); mixture.len()];
    }
    Ok(MixtureInvasionReport {
        type_payoffs: accs.0.iter().map(Estimate::from_welford).collect(),
        analytic_payoffs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dispersal_core::policy::{Exclusive, Sharing};
    use dispersal_core::sigma_star::sigma_star;

    #[test]
    fn sigma_star_resists_uniform_invader() {
        let f = ValueProfile::new(vec![1.0, 0.4]).unwrap();
        let k = 2;
        let star = sigma_star(&f, k).unwrap().strategy;
        let mutant = Strategy::uniform(2).unwrap();
        let report = run_invasion(
            &Exclusive,
            &f,
            &star,
            &mutant,
            k,
            InvasionConfig { epsilon: 0.2, matches: 600_000, seed: 3, shards: 16 },
        )
        .unwrap();
        assert!(report.analytic_advantage > 0.0);
        assert!(
            report.resident_wins(),
            "resident {} vs mutant {}",
            report.resident_payoff.mean,
            report.mutant_payoff.mean
        );
    }

    #[test]
    fn empirical_matches_analytic_advantage() {
        let f = ValueProfile::new(vec![1.0, 0.6, 0.2]).unwrap();
        let k = 3;
        let star = sigma_star(&f, k).unwrap().strategy;
        let mutant = Strategy::proportional(f.values()).unwrap();
        let report = run_invasion(
            &Exclusive,
            &f,
            &star,
            &mutant,
            k,
            InvasionConfig { epsilon: 0.2, matches: 500_000, seed: 8, shards: 16 },
        )
        .unwrap();
        let tol = report.resident_payoff.ci95 + report.mutant_payoff.ci95 + 1e-3;
        assert!(
            (report.advantage - report.analytic_advantage).abs() < tol,
            "empirical {} vs analytic {}",
            report.advantage,
            report.analytic_advantage
        );
    }

    #[test]
    fn bad_resident_is_invaded() {
        // Resident parks on the worst site; best-responding mutant wins.
        let f = ValueProfile::new(vec![1.0, 0.1]).unwrap();
        let resident = Strategy::delta(2, 1).unwrap();
        let mutant = Strategy::delta(2, 0).unwrap();
        let report = run_invasion(
            &Exclusive,
            &f,
            &resident,
            &mutant,
            2,
            InvasionConfig { epsilon: 0.1, matches: 100_000, seed: 4, shards: 8 },
        )
        .unwrap();
        assert!(report.analytic_advantage < 0.0);
        assert!(!report.resident_wins());
    }

    #[test]
    fn sweep_produces_monotone_grid() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let k = 2;
        let star = sigma_star(&f, k).unwrap().strategy;
        let mutant = Strategy::uniform(2).unwrap();
        let eps = [0.05, 0.25, 0.5];
        let sweep = invasion_sweep(
            &Sharing,
            &f,
            &star,
            &mutant,
            k,
            &eps,
            InvasionConfig { matches: 50_000, seed: 5, shards: 8, epsilon: 0.1 },
        )
        .unwrap();
        assert_eq!(sweep.len(), 3);
        for ((e, _), expect) in sweep.iter().zip(eps.iter()) {
            assert_eq!(e, expect);
        }
    }

    #[test]
    fn validates_inputs() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let s2 = Strategy::uniform(2).unwrap();
        let s3 = Strategy::uniform(3).unwrap();
        assert!(run_invasion(&Exclusive, &f, &s3, &s2, 2, InvasionConfig::default()).is_err());
        assert!(run_invasion(&Exclusive, &f, &s2, &s3, 2, InvasionConfig::default()).is_err());
        let bad = InvasionConfig { epsilon: 0.0, ..Default::default() };
        assert!(run_invasion(&Exclusive, &f, &s2, &s2, 2, bad).is_err());
    }

    #[test]
    fn mixture_validates_inputs() {
        let s2 = Strategy::uniform(2).unwrap();
        let s3 = Strategy::uniform(3).unwrap();
        assert!(Mixture::new(vec![], vec![]).is_err());
        assert!(Mixture::new(vec![s2.clone()], vec![0.5, 0.5]).is_err());
        assert!(Mixture::new(vec![s2.clone(), s3], vec![0.5, 0.5]).is_err());
        assert!(Mixture::new(vec![s2.clone(), s2.clone()], vec![0.7, 0.7]).is_err());
        assert!(Mixture::new(vec![s2.clone(), s2.clone()], vec![1.5, -0.5]).is_err());
        assert!(Mixture::two(&s2, &s2, 0.0).is_err());
        assert!(Mixture::two(&s2, &s2, 1.0).is_err());
        let mix = Mixture::new(vec![s2.clone(), s2.clone()], vec![0.25, 0.75]).unwrap();
        assert_eq!((mix.len(), mix.sites()), (2, 2));
        assert!(!mix.is_empty());
        assert!(Mixture::invaded(&s2, &mix, 0.0).is_err());
        assert!(Mixture::invaded(&s2, &mix, 1.0).is_ok());
        // Degenerate M = 1 mixture is legal: a monomorphic population.
        let mono = Mixture::new(vec![s2.clone()], vec![1.0]).unwrap();
        assert_eq!(mono.mean_strategy().unwrap().probs(), s2.probs());
    }

    /// Tentpole anchor 1: the degenerate two-type mean field is
    /// bit-identical to `Strategy::mix`.
    #[test]
    fn degenerate_mixture_mean_is_bit_identical_to_strategy_mix() {
        let f = ValueProfile::new(vec![1.0, 0.6, 0.2]).unwrap();
        let sigma = sigma_star(&f, 3).unwrap().strategy;
        let pi = Strategy::proportional(f.values()).unwrap();
        for eps in [0.01, 0.2, 1.0 / 3.0, 0.5, 0.95] {
            let mix = Mixture::two(&sigma, &pi, eps).unwrap();
            let mean = mix.mean_strategy().unwrap();
            let legacy = sigma.mix(&pi, eps).unwrap();
            for (a, b) in mean.probs().iter().zip(legacy.probs().iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "mean field diverged at eps={eps}");
            }
        }
    }

    /// Tentpole anchor 2: the degenerate pairwise advantage is
    /// bit-identical to `PayoffContext::mixture_advantage`.
    #[test]
    fn degenerate_mixture_advantage_is_bit_identical_to_payoff_context() {
        let f = ValueProfile::new(vec![1.0, 0.6, 0.2]).unwrap();
        let k = 4;
        let ctx = PayoffContext::new(&Sharing, k).unwrap();
        let sigma = sigma_star(&f, k).unwrap().strategy;
        let pi = Strategy::uniform(3).unwrap();
        for eps in [0.05, 0.25, 0.6] {
            let mix = Mixture::two(&sigma, &pi, eps).unwrap();
            let general = mixture_type_advantage(&ctx, &f, &mix, 0, 1).unwrap();
            let legacy = ctx.mixture_advantage(&f, &sigma, &pi, eps).unwrap();
            assert_eq!(general.to_bits(), legacy.to_bits(), "advantage diverged at eps={eps}");
        }
        assert!(mixture_type_advantage(&ctx, &f, &Mixture::two(&sigma, &pi, 0.1).unwrap(), 0, 2)
            .is_err());
    }

    /// Tentpole anchor 3: the degenerate invasion barrier is bit-identical
    /// to `ess::invasion_barrier`.
    #[test]
    fn degenerate_mixture_barrier_is_bit_identical_to_ess_path() {
        use dispersal_core::ess::invasion_barrier;
        for (f, k, grid) in [
            (ValueProfile::new(vec![1.0, 0.4]).unwrap(), 2usize, 40usize),
            (ValueProfile::new(vec![1.0, 0.6, 0.2]).unwrap(), 3, 25),
        ] {
            let ctx = PayoffContext::new(&Exclusive, k).unwrap();
            let sigma = sigma_star(&f, k).unwrap().strategy;
            for pi in [Strategy::uniform(f.len()).unwrap(), Strategy::delta(f.len(), 0).unwrap()] {
                let invaders = Mixture::new(vec![pi.clone()], vec![1.0]).unwrap();
                let general = mixture_invasion_barrier(&ctx, &f, &sigma, &invaders, grid).unwrap();
                let legacy = invasion_barrier(&ctx, &f, &sigma, &pi, grid).unwrap();
                assert_eq!(general.to_bits(), legacy.to_bits());
            }
        }
        let f = ValueProfile::new(vec![1.0, 0.4]).unwrap();
        let ctx = PayoffContext::new(&Exclusive, 2).unwrap();
        let s = Strategy::uniform(2).unwrap();
        let inv = Mixture::new(vec![s.clone()], vec![1.0]).unwrap();
        assert!(mixture_invasion_barrier(&ctx, &f, &s, &inv, 1).is_err());
    }

    /// Tentpole anchor 4: the exact PbTable transfer ledger reproduces
    /// `LedgerEvaluator::ledger` bit for bit in the two-type case.
    #[test]
    fn degenerate_transfer_ledger_is_bit_identical_to_ledger_evaluator() {
        use dispersal_core::ess::LedgerEvaluator;
        for (f, k) in [
            (ValueProfile::new(vec![1.0, 0.5]).unwrap(), 2usize),
            (ValueProfile::zipf(6, 1.0, 1.0).unwrap(), 5),
            (ValueProfile::geometric(8, 1.0, 0.6).unwrap(), 9),
        ] {
            let ctx = PayoffContext::new(&Sharing, k).unwrap();
            let sigma = sigma_star(&f, k).unwrap().strategy;
            let pi = Strategy::proportional(f.values()).unwrap();
            let mix = Mixture::two(&sigma, &pi, 0.5).unwrap();
            let evaluator = MixtureEvaluator::new(&ctx, &f, &mix).unwrap();
            let general = evaluator.transfer_ledger(1).unwrap();
            let legacy = LedgerEvaluator::new(&ctx, &f, &sigma).unwrap().ledger(&pi).unwrap();
            assert_eq!(general.payoffs.len(), 2);
            for (a, b) in general.payoffs[0].iter().zip(legacy.resident.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "resident ledger diverged (k={k})");
            }
            for (a, b) in general.payoffs[1].iter().zip(legacy.mutant.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "mutant ledger diverged (k={k})");
            }
            assert!(evaluator.transfer_ledger(0).is_err());
            assert!(evaluator.transfer_ledger(2).is_err());
        }
    }

    /// Tentpole anchor 5: the Monte-Carlo mixture path at M = 2 replays
    /// the legacy resident + mutant trial stream bit for bit.
    #[test]
    fn degenerate_mixture_mc_is_bit_identical_to_run_invasion() {
        let f = ValueProfile::new(vec![1.0, 0.6, 0.2]).unwrap();
        let k = 3;
        let sigma = sigma_star(&f, k).unwrap().strategy;
        let pi = Strategy::uniform(3).unwrap();
        let config = InvasionConfig { epsilon: 0.2, matches: 40_000, seed: 77, shards: 16 };
        let legacy = run_invasion(&Exclusive, &f, &sigma, &pi, k, config).unwrap();
        let mix = Mixture::two(&sigma, &pi, config.epsilon).unwrap();
        let general = run_invasion_mixture(&Exclusive, &f, &mix, k, config).unwrap();
        assert_eq!(general.type_payoffs.len(), 2);
        assert_eq!(general.type_payoffs[0].mean.to_bits(), legacy.resident_payoff.mean.to_bits());
        assert_eq!(general.type_payoffs[0].ci95.to_bits(), legacy.resident_payoff.ci95.to_bits());
        assert_eq!(general.type_payoffs[1].mean.to_bits(), legacy.mutant_payoff.mean.to_bits());
        assert_eq!(general.type_payoffs[1].ci95.to_bits(), legacy.mutant_payoff.ci95.to_bits());
        assert_eq!(general.advantage(0, 1).to_bits(), legacy.advantage.to_bits());
        assert_eq!(general.analytic_advantage(0, 1).to_bits(), legacy.analytic_advantage.to_bits());
    }

    /// A genuinely asymmetric three-type population: the exact evaluator,
    /// the mean-field law, and the Monte-Carlo estimator must agree.
    #[test]
    fn three_type_mixture_exact_field_and_mc_agree() {
        let f = ValueProfile::new(vec![1.0, 0.7, 0.35, 0.1]).unwrap();
        let k = 4;
        let ctx = PayoffContext::new(&Sharing, k).unwrap();
        let types = vec![
            sigma_star(&f, k).unwrap().strategy,
            Strategy::uniform(4).unwrap(),
            Strategy::proportional(f.values()).unwrap(),
        ];
        let mix = Mixture::new(types.clone(), vec![0.6, 0.25, 0.15]).unwrap();

        // Consistency of the mean-field law: Σ_t w_t·U_t equals the
        // symmetric payoff of the mean strategy.
        let u = mixture_field_payoffs(&ctx, &f, &mix).unwrap();
        let mean = mix.mean_strategy().unwrap();
        let mixture_welfare: f64 =
            kahan_sum(mix.weights().iter().zip(u.iter()).map(|(w, ut)| w * ut));
        let symmetric = ctx.symmetric_payoff(&f, &mean).unwrap();
        assert!((mixture_welfare - symmetric).abs() < 1e-12, "{mixture_welfare} vs {symmetric}");

        // The exact composition evaluator matches the per-level transfer
        // ledger where the two parameterizations overlap (ℓ type-2
        // opponents, the rest type 0).
        let evaluator = MixtureEvaluator::new(&ctx, &f, &mix).unwrap();
        let ledger = evaluator.transfer_ledger(2).unwrap();
        for ell in 0..k {
            let counts = [k - 1 - ell, 0, ell];
            let exact = evaluator.composition_payoffs(&counts).unwrap();
            for (t, (a, row)) in exact.iter().zip(ledger.payoffs.iter()).enumerate() {
                assert!(
                    (a - row[ell]).abs() < 1e-12,
                    "type {t} level {ell}: composition {a} vs ledger {}",
                    row[ell]
                );
            }
        }
        assert!(evaluator.composition_payoffs(&[1, 1]).is_err());
        assert!(evaluator.composition_payoffs(&[4, 0, 0]).is_err());

        // Monte Carlo tracks the analytic field payoffs for every type.
        let report = run_invasion_mixture(
            &Sharing,
            &f,
            &mix,
            k,
            InvasionConfig { matches: 300_000, seed: 21, shards: 16, epsilon: 0.5 },
        )
        .unwrap();
        for (t, (est, ut)) in
            report.type_payoffs.iter().zip(report.analytic_payoffs.iter()).enumerate()
        {
            assert!(
                (est.mean - ut).abs() < 3.0 * est.ci95 + 1e-3,
                "type {t}: empirical {} vs analytic {ut}",
                est.mean
            );
        }
    }
}
