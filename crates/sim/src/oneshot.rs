//! One-shot dispersal-game sampler.
//!
//! Draws one play of the game: each of the `k` players independently samples
//! a site from its strategy, collision counts are tallied, and payoffs and
//! coverage are computed under a congestion policy. This is the empirical
//! ground truth against which the analytic formulas of `dispersal-core`
//! (coverage, ν-values, ESS payoffs) are validated.

use dispersal_core::payoff::PayoffContext;
use dispersal_core::strategy::{Strategy, StrategySampler};
use dispersal_core::value::ValueProfile;
use dispersal_core::{Error, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The outcome of a single one-shot play.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// Site chosen by each player (0-based).
    pub choices: Vec<usize>,
    /// Number of players at each site.
    pub occupancy: Vec<usize>,
    /// Payoff received by each player under the policy.
    pub payoffs: Vec<f64>,
    /// Realized coverage: sum of values over visited sites.
    pub coverage: f64,
    /// Number of sites with at least two players (collision sites).
    pub collision_sites: usize,
    /// Number of players involved in a collision.
    pub colliding_players: usize,
}

/// A reusable one-shot game simulator for a fixed `(f, C, k)` and symmetric
/// strategy. Precomputes the alias sampler and the full `M × k` reward
/// matrix `f(x)·C(ℓ)`, so the per-trial step is pure sampling plus table
/// lookups — no multiplies against the congestion table, no virtual
/// dispatch. Built once per engine shard (see `crate::engine::Experiment`)
/// and reused across every trial of that shard.
pub struct OneShotGame<'a> {
    f: &'a ValueProfile,
    /// Site-major reward matrix: `rewards[x * k + (ℓ − 1)] = f(x)·C(ℓ)`.
    rewards: Vec<f64>,
    samplers: Vec<StrategySampler>,
    occupancy: Vec<usize>,
}

/// Flatten `f(x)·C(ℓ)` into the site-major lookup used by the per-trial
/// fast paths (`rewards[x * k + (ℓ − 1)]`); shared with the invasion
/// experiment so the layout contract lives in one place.
pub(crate) fn reward_matrix(f: &ValueProfile, c_table: &[f64]) -> Vec<f64> {
    let mut rewards = Vec::with_capacity(f.len() * c_table.len());
    for &fx in f.values() {
        rewards.extend(c_table.iter().map(|&c| fx * c));
    }
    rewards
}

impl<'a> OneShotGame<'a> {
    /// Build a symmetric game: all `k` players use `strategy`.
    pub fn symmetric(
        f: &'a ValueProfile,
        c: &dyn dispersal_core::policy::Congestion,
        strategy: &Strategy,
        k: usize,
    ) -> Result<Self> {
        if strategy.len() != f.len() {
            return Err(Error::DimensionMismatch { strategy: strategy.len(), profile: f.len() });
        }
        let ctx = PayoffContext::new(c, k)?;
        let sampler = StrategySampler::new(strategy);
        Ok(Self {
            f,
            rewards: reward_matrix(f, ctx.c_table()),
            samplers: vec![sampler; k],
            occupancy: vec![0; f.len()],
        })
    }

    /// Build an asymmetric game: player `i` uses `profile[i]`.
    pub fn asymmetric(
        f: &'a ValueProfile,
        c: &dyn dispersal_core::policy::Congestion,
        profile: &[Strategy],
    ) -> Result<Self> {
        if profile.is_empty() {
            return Err(Error::InvalidPlayerCount { k: 0 });
        }
        for s in profile {
            if s.len() != f.len() {
                return Err(Error::DimensionMismatch { strategy: s.len(), profile: f.len() });
            }
        }
        let ctx = PayoffContext::new(c, profile.len())?;
        let samplers: Vec<StrategySampler> = profile.iter().map(StrategySampler::new).collect();
        Ok(Self {
            f,
            rewards: reward_matrix(f, ctx.c_table()),
            samplers,
            occupancy: vec![0; f.len()],
        })
    }

    /// Number of players.
    pub fn k(&self) -> usize {
        self.samplers.len()
    }

    /// Play one round, returning the full outcome (allocates the outcome
    /// vectors; use [`Self::play_coverage`] in tight loops that only need
    /// scalar statistics).
    pub fn play<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Outcome {
        let k = self.samplers.len();
        let mut choices = Vec::with_capacity(k);
        self.occupancy.iter_mut().for_each(|o| *o = 0);
        for sampler in &self.samplers {
            let site = sampler.sample(rng);
            self.occupancy[site] += 1;
            choices.push(site);
        }
        let payoffs: Vec<f64> =
            choices.iter().map(|&site| self.rewards[site * k + self.occupancy[site] - 1]).collect();
        let mut coverage = 0.0;
        let mut collision_sites = 0;
        let mut colliding_players = 0;
        for (site, &occ) in self.occupancy.iter().enumerate() {
            if occ > 0 {
                coverage += self.f.value(site);
            }
            if occ > 1 {
                collision_sites += 1;
                colliding_players += occ;
            }
        }
        Outcome {
            choices,
            occupancy: self.occupancy.clone(),
            payoffs,
            coverage,
            collision_sites,
            colliding_players,
        }
    }

    /// Play one round returning only `(coverage, payoff of player 0)` —
    /// the allocation-free fast path for Monte-Carlo estimation.
    pub fn play_coverage<R: Rng + ?Sized>(&mut self, rng: &mut R) -> (f64, f64) {
        self.occupancy.iter_mut().for_each(|o| *o = 0);
        let mut first_site = 0usize;
        for (i, sampler) in self.samplers.iter().enumerate() {
            let site = sampler.sample(rng);
            self.occupancy[site] += 1;
            if i == 0 {
                first_site = site;
            }
        }
        let mut coverage = 0.0;
        for (site, &occ) in self.occupancy.iter().enumerate() {
            if occ > 0 {
                coverage += self.f.value(site);
            }
        }
        let payoff0 =
            self.rewards[first_site * self.samplers.len() + self.occupancy[first_site] - 1];
        (coverage, payoff0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Seed;
    use dispersal_core::policy::{Exclusive, Sharing};

    #[test]
    fn symmetric_game_validates_dimensions() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let s3 = Strategy::uniform(3).unwrap();
        assert!(OneShotGame::symmetric(&f, &Sharing, &s3, 2).is_err());
        let s2 = Strategy::uniform(2).unwrap();
        assert!(OneShotGame::symmetric(&f, &Sharing, &s2, 0).is_err());
    }

    #[test]
    fn asymmetric_game_validates() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        assert!(OneShotGame::asymmetric(&f, &Sharing, &[]).is_err());
        let s3 = Strategy::uniform(3).unwrap();
        assert!(OneShotGame::asymmetric(&f, &Sharing, &[s3]).is_err());
    }

    #[test]
    fn outcome_is_internally_consistent() {
        let f = ValueProfile::new(vec![1.0, 0.6, 0.2]).unwrap();
        let s = Strategy::uniform(3).unwrap();
        let mut game = OneShotGame::symmetric(&f, &Sharing, &s, 5).unwrap();
        let mut rng = Seed(3).rng();
        for _ in 0..200 {
            let o = game.play(&mut rng);
            assert_eq!(o.choices.len(), 5);
            assert_eq!(o.occupancy.iter().sum::<usize>(), 5);
            // Coverage equals sum over visited sites.
            let cov: f64 = o
                .occupancy
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(x, _)| f.value(x))
                .sum();
            assert!((o.coverage - cov).abs() < 1e-12);
            // Sharing payoffs: each player at a site with occ players gets
            // f/occ.
            for (i, &site) in o.choices.iter().enumerate() {
                let expect = f.value(site) / o.occupancy[site] as f64;
                assert!((o.payoffs[i] - expect).abs() < 1e-12);
            }
            assert!(o.colliding_players >= 2 * o.collision_sites);
        }
    }

    #[test]
    fn exclusive_payoffs_zero_on_collision() {
        let f = ValueProfile::new(vec![1.0]).unwrap();
        let s = Strategy::delta(1, 0).unwrap();
        let mut game = OneShotGame::symmetric(&f, &Exclusive, &s, 3).unwrap();
        let mut rng = Seed(1).rng();
        let o = game.play(&mut rng);
        assert_eq!(o.payoffs, vec![0.0, 0.0, 0.0]);
        assert_eq!(o.collision_sites, 1);
        assert_eq!(o.colliding_players, 3);
        assert!((o.coverage - 1.0).abs() < 1e-15);
    }

    #[test]
    fn fast_path_matches_full_path_statistics() {
        let f = ValueProfile::new(vec![1.0, 0.4]).unwrap();
        let s = Strategy::new(vec![0.7, 0.3]).unwrap();
        let mut game = OneShotGame::symmetric(&f, &Exclusive, &s, 2).unwrap();
        let n = 60_000;
        let mut rng = Seed(5).rng();
        let mut cov_fast = 0.0;
        let mut pay_fast = 0.0;
        for _ in 0..n {
            let (c, p) = game.play_coverage(&mut rng);
            cov_fast += c;
            pay_fast += p;
        }
        let mut rng = Seed(6).rng();
        let mut cov_full = 0.0;
        let mut pay_full = 0.0;
        for _ in 0..n {
            let o = game.play(&mut rng);
            cov_full += o.coverage;
            pay_full += o.payoffs[0];
        }
        let nf = n as f64;
        assert!((cov_fast / nf - cov_full / nf).abs() < 0.01);
        assert!((pay_fast / nf - pay_full / nf).abs() < 0.01);
    }

    #[test]
    fn asymmetric_assignment_never_collides() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let profile = vec![Strategy::delta(2, 0).unwrap(), Strategy::delta(2, 1).unwrap()];
        let mut game = OneShotGame::asymmetric(&f, &Exclusive, &profile).unwrap();
        let mut rng = Seed(9).rng();
        for _ in 0..50 {
            let o = game.play(&mut rng);
            assert_eq!(o.collision_sites, 0);
            assert!((o.coverage - 1.5).abs() < 1e-15);
            assert_eq!(o.payoffs, vec![1.0, 0.5]);
        }
    }
}
