//! Deterministic, forkable RNG streams for reproducible experiments.
//!
//! Every stochastic experiment in this workspace takes a [`Seed`] and
//! derives per-trial / per-thread sub-streams with [`Seed::stream`], so
//! parallel Monte-Carlo runs produce the same numbers regardless of thread
//! scheduling.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A master seed from which independent named streams are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seed(pub u64);

impl Seed {
    /// Derive the RNG for logical stream `index` (e.g. trial number).
    ///
    /// Uses ChaCha8 with the stream baked into the 256-bit key via
    /// SplitMix64 expansion, so distinct indices give statistically
    /// independent streams.
    pub fn stream(self, index: u64) -> ChaCha8Rng {
        let mut state = self.0 ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut key = [0u8; 32];
        for chunk in key.chunks_mut(8) {
            state = splitmix64(&mut state);
            chunk.copy_from_slice(&state.to_le_bytes());
        }
        ChaCha8Rng::from_seed(key)
    }

    /// The root RNG (stream 0).
    pub fn rng(self) -> ChaCha8Rng {
        self.stream(0)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Seed(7).stream(3);
        let mut b = Seed(7).stream(3);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = Seed(7).stream(1);
        let mut b = Seed(7).stream(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Seed(1).stream(0);
        let mut b = Seed(2).stream(0);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn root_rng_is_stream_zero() {
        let mut a = Seed(9).rng();
        let mut b = Seed(9).stream(0);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
