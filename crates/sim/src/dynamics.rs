//! Discrete-time adjustment dynamics: smoothed best response (logit) and
//! fictitious play.
//!
//! These complement the replicator ODE as alternative equilibrium-selection
//! processes: if several natural dynamics all settle on the IFD, the
//! symmetric-equilibrium focus of the paper (Section 1.2) is empirically
//! well-founded.

use dispersal_core::payoff::PayoffContext;
use dispersal_core::policy::Congestion;
use dispersal_core::strategy::Strategy;
use dispersal_core::value::ValueProfile;
use dispersal_core::{Error, Result};
use serde::{Deserialize, Serialize};

/// Configuration for the discrete dynamics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicsConfig {
    /// Iteration budget.
    pub max_steps: usize,
    /// Stop when successive states differ by less than this in L∞.
    pub tol: f64,
    /// Logit inverse temperature (higher = closer to exact best response).
    pub beta: f64,
    /// Damping weight on the new state in `[0, 1]` (1 = undamped).
    pub damping: f64,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        Self { max_steps: 100_000, tol: 1e-12, beta: 50.0, damping: 0.2 }
    }
}

/// Outcome of a discrete dynamic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicsRun {
    /// Final state.
    pub state: Strategy,
    /// Steps taken.
    pub steps: usize,
    /// Final step size (L∞ change in the last iteration).
    pub final_change: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
}

/// Damped logit (smoothed best-response) dynamics:
/// `x ← (1−λ)x + λ·softmax(β·ν_x)`.
///
/// For β → ∞ and small λ this approaches continuous best-response dynamics;
/// its fixed points approach the IFD as β grows.
pub fn run_logit(
    c: &dyn Congestion,
    f: &ValueProfile,
    start: &Strategy,
    k: usize,
    config: DynamicsConfig,
) -> Result<DynamicsRun> {
    validate(f, start, config)?;
    let ctx = PayoffContext::new(c, k)?;
    // Stability guard: the Jacobian of the logit response scales like
    // β·f(1)·(k−1), so an undamped iteration 2-cycles for large β. Cap the
    // damping at the stable range.
    let jacobian_scale = config.beta * f.value(0) * (k.saturating_sub(1).max(1)) as f64;
    let damping = config.damping.min(1.0 / (1.0 + jacobian_scale));
    let mut x = start.clone();
    let mut final_change = f64::INFINITY;
    let mut converged = false;
    let mut steps = 0usize;
    for step in 0..config.max_steps {
        steps = step + 1;
        let nu = ctx.site_values(f, &x)?;
        let response = Strategy::softmax(&nu, config.beta)?;
        let next = x.mix(&response, damping)?;
        final_change = next.linf_distance(&x)?;
        x = next;
        if final_change < config.tol * damping.max(1e-6) {
            converged = true;
            break;
        }
    }
    Ok(DynamicsRun { state: x, steps, final_change, converged })
}

/// Fictitious play against the empirical mixture: each round the
/// representative player best-responds (softly) to the running average of
/// past play, and the average is updated with weight `1/t`.
pub fn run_fictitious_play(
    c: &dyn Congestion,
    f: &ValueProfile,
    start: &Strategy,
    k: usize,
    config: DynamicsConfig,
) -> Result<DynamicsRun> {
    validate(f, start, config)?;
    let ctx = PayoffContext::new(c, k)?;
    let mut avg = start.clone();
    let mut final_change = f64::INFINITY;
    let mut converged = false;
    let mut steps = 0usize;
    for step in 0..config.max_steps {
        steps = step + 1;
        let nu = ctx.site_values(f, &avg)?;
        let response = Strategy::softmax(&nu, config.beta)?;
        let weight = 1.0 / (step as f64 + 2.0);
        let next = avg.mix(&response, weight)?;
        final_change = next.linf_distance(&avg)?;
        avg = next;
        if final_change < config.tol {
            converged = true;
            break;
        }
    }
    Ok(DynamicsRun { state: avg, steps, final_change, converged })
}

fn validate(f: &ValueProfile, start: &Strategy, config: DynamicsConfig) -> Result<()> {
    if start.len() != f.len() {
        return Err(Error::DimensionMismatch { strategy: start.len(), profile: f.len() });
    }
    if !(0.0..=1.0).contains(&config.damping) || config.damping == 0.0 {
        return Err(Error::InvalidArgument(format!(
            "damping must be in (0, 1], got {}",
            config.damping
        )));
    }
    if config.beta < 0.0 || !config.beta.is_finite() {
        return Err(Error::InvalidArgument(format!(
            "beta must be finite and >= 0, got {}",
            config.beta
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dispersal_core::ifd::solve_ifd;
    use dispersal_core::policy::{Exclusive, Sharing, TwoLevel};

    fn tv_to_ifd(run: &DynamicsRun, c: &dyn Congestion, f: &ValueProfile, k: usize) -> f64 {
        let ifd = solve_ifd(c, f, k).unwrap();
        run.state.tv_distance(&ifd.strategy).unwrap()
    }

    #[test]
    fn logit_approaches_ifd_for_high_beta() {
        let f = ValueProfile::new(vec![1.0, 0.5, 0.25]).unwrap();
        let k = 3;
        for c in [&Exclusive as &dyn Congestion, &Sharing, &TwoLevel { c: -0.3 }] {
            let run = run_logit(
                c,
                &f,
                &Strategy::uniform(3).unwrap(),
                k,
                DynamicsConfig {
                    beta: 400.0,
                    max_steps: 300_000,
                    tol: 1e-13,
                    ..Default::default()
                },
            )
            .unwrap();
            let d = tv_to_ifd(&run, c, &f, k);
            // Logit fixed point has an O(1/beta) entropy bias.
            assert!(d < 0.02, "{}: tv = {d}", c.name());
        }
    }

    #[test]
    fn logit_bias_shrinks_with_beta() {
        let f = ValueProfile::new(vec![1.0, 0.4]).unwrap();
        let k = 2;
        let mut prev = f64::INFINITY;
        for beta in [20.0, 100.0, 500.0] {
            let run = run_logit(
                &Exclusive,
                &f,
                &Strategy::uniform(2).unwrap(),
                k,
                DynamicsConfig { beta, ..Default::default() },
            )
            .unwrap();
            let d = tv_to_ifd(&run, &Exclusive, &f, k);
            assert!(d < prev + 1e-9, "beta {beta}: {d} vs prev {prev}");
            prev = d;
        }
        assert!(prev < 5e-3, "final bias {prev}");
    }

    #[test]
    fn fictitious_play_approaches_ifd() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let k = 2;
        let run = run_fictitious_play(
            &Exclusive,
            &f,
            &Strategy::uniform(2).unwrap(),
            k,
            DynamicsConfig { beta: 300.0, max_steps: 200_000, tol: 1e-12, ..Default::default() },
        )
        .unwrap();
        let d = tv_to_ifd(&run, &Exclusive, &f, k);
        assert!(d < 0.02, "tv = {d}");
    }

    #[test]
    fn dynamics_validate_inputs() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let s3 = Strategy::uniform(3).unwrap();
        assert!(run_logit(&Sharing, &f, &s3, 2, DynamicsConfig::default()).is_err());
        let s2 = Strategy::uniform(2).unwrap();
        let bad_damping = DynamicsConfig { damping: 0.0, ..Default::default() };
        assert!(run_logit(&Sharing, &f, &s2, 2, bad_damping).is_err());
        let bad_beta = DynamicsConfig { beta: f64::NAN, ..Default::default() };
        assert!(run_fictitious_play(&Sharing, &f, &s2, 2, bad_beta).is_err());
    }

    #[test]
    fn converged_flag_set_on_fixed_point() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let run = run_logit(
            &Sharing,
            &f,
            &Strategy::uniform(2).unwrap(),
            2,
            DynamicsConfig { tol: 1e-10, ..Default::default() },
        )
        .unwrap();
        assert!(run.converged);
        assert!(run.final_change < 1e-10);
    }
}
