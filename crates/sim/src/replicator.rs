//! Replicator dynamics for the k-player field game.
//!
//! The population state is a distribution `x` over sites (the fraction of
//! the population currently favoring each site). With random `k`-tuple
//! matching, the fitness of site `i` is its value
//! `π_i(x) = f(i)·g_C(x_i)` (the same ν function as the static game), and
//! the replicator ODE is `ẋ_i = x_i (π_i(x) − π̄(x))`.
//!
//! The interior rest points are exactly the IFD (Observation 2), and
//! Theorem 3 manifests dynamically: trajectories converge to σ⋆ under the
//! exclusive policy. Integration is classical RK4 with a simplex
//! re-projection guard each step.

use crate::engine;
use dispersal_core::kernel::GScratch;
use dispersal_core::payoff::PayoffContext;
use dispersal_core::policy::Congestion;
use dispersal_core::strategy::Strategy;
use dispersal_core::value::ValueProfile;
use dispersal_core::{Error, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a replicator-dynamics run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicatorConfig {
    /// RK4 step size.
    pub dt: f64,
    /// Maximum number of steps.
    pub max_steps: usize,
    /// Stop when `‖ẋ‖∞` falls below this threshold.
    pub velocity_tol: f64,
    /// Record the trajectory every `record_every` steps (0 = only final).
    pub record_every: usize,
}

impl Default for ReplicatorConfig {
    fn default() -> Self {
        Self { dt: 0.05, max_steps: 200_000, velocity_tol: 1e-12, record_every: 0 }
    }
}

/// Result of integrating the replicator ODE.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicatorRun {
    /// Final population state.
    pub state: Strategy,
    /// Steps taken.
    pub steps: usize,
    /// Final velocity sup-norm.
    pub final_velocity: f64,
    /// Whether the velocity tolerance was reached.
    pub converged: bool,
    /// Optional recorded trajectory (empty unless `record_every > 0`).
    pub trajectory: Vec<Vec<f64>>,
}

/// The replicator vector field `ẋ_i = x_i (π_i − π̄)`.
///
/// All `g_C` evaluations run through the batched kernel with a reusable
/// scratch: four velocity calls per RK4 step over `M` sites used to pay
/// `4M` PMF setups (and allocations) per step; now the per-point cost is
/// the `O(k)` ratio recurrence alone, with bit-identical values.
fn velocity(
    ctx: &PayoffContext,
    scratch: &mut GScratch,
    f: &ValueProfile,
    x: &[f64],
    out: &mut [f64],
) {
    let kernel = ctx.kernel();
    let mut mean_fitness = 0.0;
    for (i, &xi) in x.iter().enumerate() {
        let fit = f.value(i) * kernel.eval_with(scratch, xi.clamp(0.0, 1.0));
        out[i] = fit;
        mean_fitness += xi * fit;
    }
    for (i, &xi) in x.iter().enumerate() {
        out[i] = xi * (out[i] - mean_fitness);
    }
}

/// Integrate the replicator dynamics from `start` under policy `c` with `k`
/// players per match.
pub fn run_replicator(
    c: &dyn Congestion,
    f: &ValueProfile,
    start: &Strategy,
    k: usize,
    config: ReplicatorConfig,
) -> Result<ReplicatorRun> {
    if start.len() != f.len() {
        return Err(Error::DimensionMismatch { strategy: start.len(), profile: f.len() });
    }
    if config.dt <= 0.0 || config.dt.is_nan() {
        return Err(Error::InvalidArgument(format!("dt must be positive, got {}", config.dt)));
    }
    let ctx = PayoffContext::new(c, k)?;
    let mut scratch = ctx.kernel().scratch();
    let m = f.len();
    let mut x: Vec<f64> = start.probs().to_vec();
    let mut k1 = vec![0.0; m];
    let mut k2 = vec![0.0; m];
    let mut k3 = vec![0.0; m];
    let mut k4 = vec![0.0; m];
    let mut tmp = vec![0.0; m];
    let mut trajectory = Vec::new();
    let mut final_velocity = f64::INFINITY;
    let mut converged = false;
    let mut steps = 0usize;
    for step in 0..config.max_steps {
        steps = step + 1;
        velocity(&ctx, &mut scratch, f, &x, &mut k1);
        for i in 0..m {
            tmp[i] = x[i] + 0.5 * config.dt * k1[i];
        }
        velocity(&ctx, &mut scratch, f, &tmp, &mut k2);
        for i in 0..m {
            tmp[i] = x[i] + 0.5 * config.dt * k2[i];
        }
        velocity(&ctx, &mut scratch, f, &tmp, &mut k3);
        for i in 0..m {
            tmp[i] = x[i] + config.dt * k3[i];
        }
        velocity(&ctx, &mut scratch, f, &tmp, &mut k4);
        for i in 0..m {
            x[i] += config.dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        // Guard: the replicator flow preserves the simplex exactly, but
        // RK4 drifts by O(dt^5); clamp and renormalize.
        let mut sum = 0.0;
        for xi in x.iter_mut() {
            if *xi < 0.0 {
                *xi = 0.0;
            }
            sum += *xi;
        }
        for xi in x.iter_mut() {
            *xi /= sum;
        }
        final_velocity = k1.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        if config.record_every > 0 && step % config.record_every == 0 {
            trajectory.push(x.clone());
        }
        if final_velocity < config.velocity_tol {
            converged = true;
            break;
        }
    }
    Ok(ReplicatorRun { state: Strategy::new(x)?, steps, final_velocity, converged, trajectory })
}

/// Integrate the replicator dynamics from `count` random interior starts
/// in parallel — the basin-coverage companion to [`run_replicator`].
///
/// Start `i` is drawn from the deterministic engine stream `i + 1` of
/// `seed` (see [`engine::par_map_seeded`]), so the ensemble is
/// bit-reproducible at any thread count. Runs are returned in start order.
pub fn run_replicator_ensemble(
    c: &dyn Congestion,
    f: &ValueProfile,
    k: usize,
    count: usize,
    seed: u64,
    config: ReplicatorConfig,
) -> Result<Vec<ReplicatorRun>> {
    if count == 0 {
        return Err(Error::InvalidArgument("ensemble needs at least one start".into()));
    }
    engine::par_map_seeded((0..count).collect(), seed, |_: usize, rng| {
        // Interior start: bounded away from the boundary so every site
        // participates in the flow.
        let weights: Vec<f64> = (0..f.len()).map(|_| 0.05 + rng.gen::<f64>()).collect();
        let start = Strategy::from_weights(weights)?;
        run_replicator(c, f, &start, k, config)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dispersal_core::ifd::solve_ifd;
    use dispersal_core::policy::{Exclusive, Sharing, TwoLevel};
    use dispersal_core::sigma_star::sigma_star;

    fn interior_start(m: usize) -> Strategy {
        // Slightly perturbed uniform interior point.
        let probs: Vec<f64> = (0..m).map(|i| 1.0 + 0.01 * (i as f64)).collect();
        Strategy::from_weights(probs).unwrap()
    }

    #[test]
    fn converges_to_sigma_star_under_exclusive() {
        let f = ValueProfile::new(vec![1.0, 0.5, 0.25]).unwrap();
        let k = 3;
        let run = run_replicator(
            &Exclusive,
            &f,
            &interior_start(3),
            k,
            ReplicatorConfig { velocity_tol: 1e-10, ..Default::default() },
        )
        .unwrap();
        assert!(run.converged, "velocity {}", run.final_velocity);
        let star = sigma_star(&f, k).unwrap().strategy;
        let d = run.state.linf_distance(&star).unwrap();
        assert!(d < 1e-5, "distance to sigma* = {d}");
    }

    #[test]
    fn converges_to_ifd_under_sharing_and_aggression() {
        let f = ValueProfile::new(vec![1.0, 0.6, 0.3, 0.1]).unwrap();
        let k = 4;
        for c in [&Sharing as &dyn Congestion, &TwoLevel { c: -0.4 }] {
            let run = run_replicator(
                c,
                &f,
                &interior_start(4),
                k,
                ReplicatorConfig { velocity_tol: 1e-10, ..Default::default() },
            )
            .unwrap();
            let ifd = solve_ifd(c, &f, k).unwrap();
            // Replicator can only vanish on the support it keeps; compare on
            // the IFD support.
            let d = run.state.linf_distance(&ifd.strategy).unwrap();
            assert!(d < 1e-4, "{}: distance {d}", c.name());
        }
    }

    #[test]
    fn preserves_simplex() {
        let f = ValueProfile::zipf(6, 1.0, 1.0).unwrap();
        let run = run_replicator(
            &Sharing,
            &f,
            &interior_start(6),
            3,
            ReplicatorConfig { max_steps: 5_000, record_every: 100, ..Default::default() },
        )
        .unwrap();
        for state in &run.trajectory {
            let sum: f64 = state.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(state.iter().all(|&x| x >= 0.0));
        }
        assert!(!run.trajectory.is_empty());
    }

    #[test]
    fn boundary_faces_are_invariant() {
        // Sites starting at zero stay at zero (replicator property).
        let f = ValueProfile::new(vec![1.0, 0.5, 0.25]).unwrap();
        let start = Strategy::new(vec![0.7, 0.3, 0.0]).unwrap();
        let run = run_replicator(
            &Sharing,
            &f,
            &start,
            2,
            ReplicatorConfig { max_steps: 2_000, ..Default::default() },
        )
        .unwrap();
        assert_eq!(run.state.prob(2), 0.0);
    }

    #[test]
    fn rest_point_stays_put() {
        let f = ValueProfile::new(vec![1.0, 0.4]).unwrap();
        let k = 2;
        let star = sigma_star(&f, k).unwrap().strategy;
        let run = run_replicator(
            &Exclusive,
            &f,
            &star,
            k,
            ReplicatorConfig { max_steps: 1_000, ..Default::default() },
        )
        .unwrap();
        let d = run.state.linf_distance(&star).unwrap();
        assert!(d < 1e-9, "drift {d}");
    }

    #[test]
    fn validates_inputs() {
        let f = ValueProfile::new(vec![1.0, 0.4]).unwrap();
        let s3 = Strategy::uniform(3).unwrap();
        assert!(run_replicator(&Sharing, &f, &s3, 2, ReplicatorConfig::default()).is_err());
        let s2 = Strategy::uniform(2).unwrap();
        let bad = ReplicatorConfig { dt: 0.0, ..Default::default() };
        assert!(run_replicator(&Sharing, &f, &s2, 2, bad).is_err());
        assert!(
            run_replicator_ensemble(&Sharing, &f, 2, 0, 1, ReplicatorConfig::default()).is_err()
        );
    }

    #[test]
    fn ensemble_converges_from_every_start_and_is_deterministic() {
        let f = ValueProfile::new(vec![1.0, 0.5, 0.25]).unwrap();
        let k = 3;
        let config = ReplicatorConfig { velocity_tol: 1e-10, ..Default::default() };
        let runs = run_replicator_ensemble(&Exclusive, &f, k, 8, 42, config).unwrap();
        assert_eq!(runs.len(), 8);
        let star = sigma_star(&f, k).unwrap().strategy;
        for run in &runs {
            assert!(run.converged);
            assert!(run.state.linf_distance(&star).unwrap() < 1e-5);
        }
        // Same seed => bit-identical starts and endpoints.
        let again = run_replicator_ensemble(&Exclusive, &f, k, 8, 42, config).unwrap();
        for (a, b) in runs.iter().zip(again.iter()) {
            assert_eq!(a.steps, b.steps);
            for i in 0..3 {
                assert_eq!(a.state.prob(i).to_bits(), b.state.prob(i).to_bits());
            }
        }
    }
}
