//! The unified parallel execution engine behind every stochastic
//! experiment in this workspace.
//!
//! Before this module existed, `montecarlo`, `sweep`, `invasion`, and the
//! batch replicator each carried their own copy of the same three
//! responsibilities: splitting trials into shards, deriving a
//! deterministic RNG stream per shard, and merging per-shard accumulators
//! into a final answer. The engine centralizes all three:
//!
//! * [`ShardPlan`] — the seed-sharding contract. Trials are split into
//!   `shards` near-equal slices; shard `i` always draws from
//!   [`Seed::stream`]`(i + 1)` and runs its trials in a fixed order, so
//!   results are **bit-identical at any thread count** (the shard → stream
//!   mapping is the unit of reproducibility, not the thread).
//! * [`Experiment`] — config → sharded deterministic run → mergeable
//!   output. Implementations provide per-shard state (e.g. a sampler with
//!   scratch buffers) and a per-trial step; the engine owns the loop.
//! * [`Merge`] — mergeable accumulators ([`Welford`], [`Count`], [`Sum`],
//!   tuples, `Vec`) reduced over shards in shard order.
//!
//! Two entry points cover the workloads: [`run`] executes a trial-sharded
//! [`Experiment`]; [`par_map_seeded`] evaluates a fallible closure over a
//! work list with one deterministic stream per item (grid sweeps,
//! trajectory ensembles).

use crate::rng::Seed;
use crate::stats::Welford;
use dispersal_core::Result;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// An accumulator that can absorb another instance of itself.
///
/// Merging must be associative with [`Default`] as the identity, and the
/// engine always merges in shard order, so implementations need not be
/// commutative in floating point.
pub trait Merge {
    /// Fold `other` into `self`.
    fn merge(&mut self, other: Self);
}

impl Merge for Welford {
    fn merge(&mut self, other: Self) {
        Welford::merge(self, &other);
    }
}

impl<A: Merge, B: Merge> Merge for (A, B) {
    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
        self.1.merge(other.1);
    }
}

impl<A: Merge, B: Merge, C: Merge> Merge for (A, B, C) {
    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
        self.1.merge(other.1);
        self.2.merge(other.2);
    }
}

impl<T> Merge for Vec<T> {
    fn merge(&mut self, mut other: Self) {
        self.append(&mut other);
    }
}

/// Mergeable event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Count(pub u64);

impl Count {
    /// Record one event.
    pub fn bump(&mut self) {
        self.0 += 1;
    }
}

impl Merge for Count {
    fn merge(&mut self, other: Self) {
        self.0 += other.0;
    }
}

/// Mergeable running sum.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Sum(pub f64);

impl Sum {
    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.0 += x;
    }
}

impl Merge for Sum {
    fn merge(&mut self, other: Self) {
        self.0 += other.0;
    }
}

/// How a trial budget maps onto deterministic RNG streams.
///
/// This is the reproducibility contract shared by every sharded
/// experiment: shard `i` (0-based) runs [`ShardPlan::shard_trials`]`(i)`
/// trials against the stream [`Seed::stream`]`(i + 1)` (stream 0 is
/// reserved for non-sharded use). Changing the thread count never changes
/// which trial sees which random numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPlan {
    /// Total trials across all shards.
    pub trials: u64,
    /// Number of shards (≥ 1; more shards than threads is fine — keep it
    /// stable for reproducibility, since it changes the stream layout).
    pub shards: u64,
    /// Master seed.
    pub seed: u64,
}

impl ShardPlan {
    /// Build a plan; a zero shard count is bumped to 1.
    pub fn new(trials: u64, shards: u64, seed: u64) -> Self {
        Self { trials, shards: shards.max(1), seed }
    }

    /// Trials assigned to shard `index`: the remainder of
    /// `trials / shards` goes to the lowest-indexed shards.
    pub fn shard_trials(&self, index: u64) -> u64 {
        let per_shard = self.trials / self.shards;
        let remainder = self.trials % self.shards;
        per_shard + u64::from(index < remainder)
    }

    /// The deterministic RNG stream for shard `index`.
    pub fn shard_rng(&self, index: u64) -> ChaCha8Rng {
        Seed(self.seed).stream(index + 1)
    }
}

/// A sharded stochastic experiment: per-shard state, a per-trial step, and
/// a mergeable output. The engine owns sharding, streams, and reduction.
pub trait Experiment: Sync {
    /// Per-shard working state (samplers, scratch buffers, a game
    /// instance, …). Built once per shard, never shared across shards.
    type State;

    /// Mergeable per-shard accumulator.
    type Output: Merge + Default + Send;

    /// Build the working state for one shard. Called once on the driver
    /// thread to validate the configuration (so shards cannot fail), then
    /// once per shard on the workers.
    fn make_state(&self) -> Result<Self::State>;

    /// Run a single trial, folding its observation into `acc`.
    fn trial(&self, state: &mut Self::State, rng: &mut ChaCha8Rng, acc: &mut Self::Output);
}

/// Execute `exp` under `plan`: shards run in parallel, each on its own
/// deterministic stream, and their outputs merge in shard order.
pub fn run<E: Experiment>(exp: &E, plan: ShardPlan) -> Result<E::Output> {
    // Validate once up front so worker shards should not fail; if a
    // non-deterministic `make_state` fails anyway, the fallible collect
    // short-circuits the first shard error back to the caller as a typed
    // `Err` instead of panicking inside a pool worker.
    exp.make_state()?;
    let outputs: Vec<E::Output> = (0..plan.shards)
        .into_par_iter()
        .map(|shard| -> Result<E::Output> {
            let mut state = exp.make_state()?;
            let mut rng = plan.shard_rng(shard);
            let mut acc = E::Output::default();
            for _ in 0..plan.shard_trials(shard) {
                exp.trial(&mut state, &mut rng, &mut acc);
            }
            Ok(acc)
        })
        .collect::<Result<Vec<E::Output>>>()?;
    let mut total = E::Output::default();
    for output in outputs {
        total.merge(output);
    }
    Ok(total)
}

/// Evaluate `eval` over `items` in parallel, handing item `i` the
/// deterministic stream `i + 1` derived from `seed`. Order-preserving;
/// on failure the lowest-indexed `Err` is returned. Note that every item
/// still executes before an error surfaces (the pool evaluates the whole
/// batch, then the collect short-circuits), so an early config error is
/// not cheap — validate inputs before fanning out.
pub fn par_map_seeded<T, U, F>(items: Vec<T>, seed: u64, eval: F) -> Result<Vec<U>>
where
    T: Send,
    U: Send,
    F: Fn(T, &mut ChaCha8Rng) -> Result<U> + Sync,
{
    items
        .into_par_iter()
        .enumerate()
        .map(|(i, item)| {
            let mut rng = Seed(seed).stream(i as u64 + 1);
            eval(item, &mut rng)
        })
        .collect()
}

/// Evaluate `eval` over `items` in parallel with no randomness involved —
/// the deterministic sibling of [`par_map_seeded`] for pure computations
/// (analytic grids, batched kernels), which should not instantiate the
/// seed-sharding contract just to ignore it. Order-preserving; on failure
/// an `Err` is returned (the lowest-indexed one under the vendored
/// sequential-collect pool — registry rayon does not specify which; same
/// whole-batch caveat as [`par_map_seeded`]).
pub fn par_map<T, U, F>(items: Vec<T>, eval: F) -> Result<Vec<U>>
where
    T: Send,
    U: Send,
    F: Fn(T) -> Result<U> + Sync,
{
    items.into_par_iter().map(eval).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn shard_plan_distributes_remainder_to_low_shards() {
        let plan = ShardPlan::new(1_003, 10, 1);
        let total: u64 = (0..plan.shards).map(|s| plan.shard_trials(s)).sum();
        assert_eq!(total, 1_003);
        assert_eq!(plan.shard_trials(0), 101);
        assert_eq!(plan.shard_trials(2), 101);
        assert_eq!(plan.shard_trials(3), 100);
        // Zero shards is bumped to one catch-all shard.
        let one = ShardPlan::new(17, 0, 1);
        assert_eq!(one.shards, 1);
        assert_eq!(one.shard_trials(0), 17);
    }

    #[test]
    fn shard_streams_match_seed_streams() {
        let plan = ShardPlan::new(10, 4, 99);
        let mut a = plan.shard_rng(2);
        let mut b = Seed(99).stream(3);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn count_and_sum_merge() {
        let mut c = Count::default();
        c.bump();
        c.bump();
        let mut c2 = Count::default();
        c2.bump();
        c.merge(c2);
        assert_eq!(c, Count(3));
        let mut s = Sum::default();
        s.add(1.5);
        s.merge(Sum(2.5));
        assert_eq!(s, Sum(4.0));
        let mut pair = (Count(1), Sum(1.0));
        pair.merge((Count(2), Sum(2.0)));
        assert_eq!(pair, (Count(3), Sum(3.0)));
    }

    #[test]
    fn vec_merge_preserves_shard_order() {
        let mut v = vec![1, 2];
        v.merge(vec![3, 4]);
        assert_eq!(v, vec![1, 2, 3, 4]);
    }

    /// A toy experiment: sum one uniform draw per trial.
    struct UniformSum;

    impl Experiment for UniformSum {
        type State = ();
        type Output = (Count, Sum);

        fn make_state(&self) -> Result<()> {
            Ok(())
        }

        fn trial(&self, _: &mut (), rng: &mut ChaCha8Rng, acc: &mut Self::Output) {
            acc.0.bump();
            acc.1.add(rng.gen::<f64>());
        }
    }

    #[test]
    fn run_is_deterministic_and_counts_all_trials() {
        let plan = ShardPlan::new(10_000, 16, 7);
        let (count, sum) = run(&UniformSum, plan).unwrap();
        assert_eq!(count, Count(10_000));
        // Mean of U(0,1) draws.
        assert!((sum.0 / 10_000.0 - 0.5).abs() < 0.02);
        let (count2, sum2) = run(&UniformSum, plan).unwrap();
        assert_eq!(count2, Count(10_000));
        assert_eq!(sum.0.to_bits(), sum2.0.to_bits());
    }

    #[test]
    fn run_output_is_independent_of_thread_count() {
        // rayon::set_num_threads, not env mutation: setenv while pool
        // workers of concurrently-running tests call getenv is UB.
        let plan = ShardPlan::new(5_000, 8, 3);
        let mut bits = Vec::new();
        for threads in [1, 2, 8] {
            rayon::set_num_threads(threads);
            let (_, sum) = run(&UniformSum, plan).unwrap();
            bits.push(sum.0.to_bits());
        }
        rayon::set_num_threads(0);
        assert_eq!(bits[0], bits[1]);
        assert_eq!(bits[0], bits[2]);
    }

    #[test]
    fn par_map_seeded_streams_are_per_item() {
        let items: Vec<u32> = (0..6).collect();
        let a = par_map_seeded(items.clone(), 5, |_, rng| Ok(rng.gen::<u64>())).unwrap();
        let b = par_map_seeded(items, 5, |_, rng| Ok(rng.gen::<u64>())).unwrap();
        assert_eq!(a, b);
        // Item i sees stream i + 1.
        assert_eq!(a[0], Seed(5).stream(1).gen::<u64>());
        assert_eq!(a[3], Seed(5).stream(4).gen::<u64>());
    }

    #[test]
    fn par_map_preserves_order_and_propagates_errors() {
        let out = par_map((0..100u32).collect(), |x| Ok(x * 2)).unwrap();
        assert_eq!(out, (0..100u32).map(|x| x * 2).collect::<Vec<_>>());
        let err = par_map(vec![1u32, 2, 3], |x| {
            if x == 2 {
                Err(dispersal_core::Error::InvalidArgument("boom".into()))
            } else {
                Ok(x)
            }
        });
        assert!(err.is_err());
    }

    #[test]
    fn par_map_seeded_fails_fast() {
        let out = par_map_seeded(vec![1u32, 2, 3], 0, |x, _| {
            if x == 2 {
                Err(dispersal_core::Error::InvalidArgument("boom".into()))
            } else {
                Ok(x)
            }
        });
        assert!(out.is_err());
    }
}
