//! # dispersal-sim
//!
//! Simulation substrate for the dispersal game of Collet & Korman (SPAA
//! 2018): the "supporting simulations" layer that validates the analytic
//! machinery of [`dispersal_core`] and probes its evolutionary claims
//! empirically.
//!
//! * [`engine`] — the unified parallel execution engine: seed-sharding
//!   plans, the [`Experiment`](engine::Experiment) trait, and mergeable
//!   accumulators shared by every stochastic workload.
//! * [`oneshot`] — a single play of the game: sampling, collisions,
//!   payoffs, realized coverage.
//! * [`montecarlo`] — parallel estimation of expected coverage and
//!   payoffs with deterministic per-shard RNG streams.
//! * [`replicator`] — replicator ODE for the k-player field game; its rest
//!   points are the IFD, and trajectories converge to σ⋆ under the
//!   exclusive policy.
//! * [`dynamics`] — logit best-response and fictitious play, alternative
//!   equilibrium-selection dynamics.
//! * [`invasion`] — finite-ε mutant-invasion experiments matching Eq. (3).
//! * [`moran`] — finite-population Moran process with k-group matching.
//! * [`scenario`] — time-varying traffic schedules tracked by replicator
//!   and Moran dynamics (the population-scale scenario engine).
//! * [`stats`] / [`rng`] — Welford/bootstrap statistics and forkable
//!   deterministic RNG streams.

#![warn(missing_docs)]

pub mod dynamics;
pub mod engine;
pub mod invasion;
pub mod montecarlo;
pub mod moran;
pub mod oneshot;
pub mod replicator;
pub mod rng;
pub mod scenario;
pub mod stats;
pub mod sweep;

/// Common imports for simulation workflows.
pub mod prelude {
    pub use crate::dynamics::{run_fictitious_play, run_logit, DynamicsConfig, DynamicsRun};
    pub use crate::engine::{self, Count, Experiment, Merge, ShardPlan, Sum};
    pub use crate::invasion::{
        invasion_sweep, mixture_field_payoffs, mixture_invasion_barrier, mixture_type_advantage,
        run_invasion, run_invasion_mixture, InvasionConfig, InvasionReport, Mixture,
        MixtureEvaluator, MixtureInvasionReport, MixtureLedger,
    };
    pub use crate::montecarlo::{
        estimate_profile_coverage, estimate_symmetric, McConfig, McReport,
    };
    pub use crate::moran::{run_moran, MoranConfig, MoranRun};
    pub use crate::oneshot::{OneShotGame, Outcome};
    pub use crate::replicator::{
        run_replicator, run_replicator_ensemble, ReplicatorConfig, ReplicatorRun,
    };
    pub use crate::rng::Seed;
    pub use crate::scenario::{
        run_scenario_moran, run_scenario_replicator, run_scenario_replicator_ensemble,
        EpochProfile, EpochRecord, MoranEpochRecord, Scenario, ScenarioMoranRun, ScenarioRun,
        TrafficEvent,
    };
    pub use crate::stats::{bootstrap_mean_ci, Estimate, Welford};
    #[allow(deprecated)]
    pub use crate::sweep::response_grid;
    pub use crate::sweep::{
        sweep_grid, PolicyResponseCurve, ResponseCurve, ResponseRequest, SharedGridCache,
        SweepCell, DEFAULT_RESPONSE_RESOLUTION,
    };
}
