//! Streaming statistics: Welford accumulation, confidence intervals, and
//! bootstrap resampling for simulation outputs.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean/variance accumulator (Welford).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merge another accumulator (parallel reduction; Chan et al.).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// Normal-approximation confidence interval half-width at the given
    /// z-score (1.96 ≈ 95%).
    pub fn ci_half_width(&self, z: f64) -> f64 {
        z * self.std_error()
    }
}

/// A summarized estimate: mean with a 95% confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Point estimate.
    pub mean: f64,
    /// 95% normal CI half-width.
    pub ci95: f64,
    /// Number of samples.
    pub n: u64,
}

impl Estimate {
    /// Summarize a Welford accumulator.
    pub fn from_welford(w: &Welford) -> Self {
        Self { mean: w.mean(), ci95: w.ci_half_width(1.96), n: w.count() }
    }

    /// Whether `target` lies within the confidence interval (with an extra
    /// absolute slack for discrete-grid effects).
    pub fn covers(&self, target: f64, slack: f64) -> bool {
        (self.mean - target).abs() <= self.ci95 + slack
    }
}

/// Percentile-bootstrap confidence interval for the mean of `data`.
///
/// Returns `(lo, hi)` at the given confidence `level ∈ (0, 1)` using
/// `resamples` bootstrap replicates.
pub fn bootstrap_mean_ci<R: Rng + ?Sized>(
    data: &[f64],
    resamples: usize,
    level: f64,
    rng: &mut R,
) -> (f64, f64) {
    assert!(!data.is_empty(), "bootstrap on empty data");
    assert!((0.0..1.0).contains(&level) && level > 0.0);
    let n = data.len();
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut acc = 0.0;
        for _ in 0..n {
            acc += data[rng.gen_range(0..n)];
        }
        means.push(acc / n as f64);
    }
    // Total order on f64 (no NaNs can occur here: means of finite data);
    // also keeps this library path panic-free.
    means.sort_by(f64::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((resamples as f64) * alpha).floor() as usize;
    let hi_idx = (((resamples as f64) * (1.0 - alpha)).ceil() as usize).min(resamples - 1);
    (means[lo_idx], means[hi_idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Seed;

    #[test]
    fn welford_matches_direct_computation() {
        let data = [1.0, 2.0, 4.0, 8.0, 16.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 =
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (data.len() as f64 - 1.0);
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.count(), 5);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_error(), 0.0);
        let mut w1 = Welford::new();
        w1.push(3.0);
        assert_eq!(w1.mean(), 3.0);
        assert_eq!(w1.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut seq = Welford::new();
        for &x in &data {
            seq.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - seq.mean()).abs() < 1e-10);
        assert!((left.variance() - seq.variance()).abs() < 1e-10);
        assert_eq!(left.count(), seq.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(2.0);
        let b = Welford::new();
        let mut c = a;
        c.merge(&b);
        assert_eq!(c, a);
        let mut d = Welford::new();
        d.merge(&a);
        assert_eq!(d, a);
    }

    #[test]
    fn estimate_covers() {
        let mut w = Welford::new();
        let mut rng = Seed(4).rng();
        for _ in 0..10_000 {
            w.push(rand::Rng::gen::<f64>(&mut rng));
        }
        let est = Estimate::from_welford(&w);
        assert!(est.covers(0.5, 0.01), "mean {} ci {}", est.mean, est.ci95);
        assert!(!est.covers(0.9, 0.0));
    }

    #[test]
    fn bootstrap_ci_contains_true_mean() {
        let mut rng = Seed(11).rng();
        let data: Vec<f64> = (0..500).map(|_| rand::Rng::gen::<f64>(&mut rng) * 2.0).collect();
        let (lo, hi) = bootstrap_mean_ci(&data, 500, 0.95, &mut rng);
        assert!(lo < 1.0 && 1.0 < hi, "CI ({lo}, {hi}) should contain 1.0");
        assert!(lo < hi);
    }

    #[test]
    #[should_panic]
    fn bootstrap_rejects_empty() {
        let mut rng = Seed(0).rng();
        bootstrap_mean_ci(&[], 10, 0.95, &mut rng);
    }
}
