//! Finite-population Moran process over pure site-strategies.
//!
//! A population of `n` individuals, each committed to a pure site choice,
//! evolves by a frequency-dependent Moran process: each generation, random
//! `k`-groups play the dispersal game to determine fitness; one individual
//! is chosen to reproduce proportionally to (exponentiated) fitness and one
//! uniformly to die. The long-run site-frequency distribution approximates
//! the IFD for large populations — the finite-population counterpart of the
//! infinite-population ESS analysis in the paper.

use crate::rng::Seed;
use dispersal_core::payoff::PayoffContext;
use dispersal_core::policy::Congestion;
use dispersal_core::strategy::Strategy;
use dispersal_core::value::ValueProfile;
use dispersal_core::{Error, Result};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration for the Moran process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MoranConfig {
    /// Population size.
    pub population: usize,
    /// Number of generations (birth–death events).
    pub generations: u64,
    /// Generations to discard as burn-in before recording frequencies.
    pub burn_in: u64,
    /// How many shuffled full-population partitions into k-groups are
    /// played per generation (each individual plays this many games).
    pub rounds_per_generation: usize,
    /// Selection intensity: reproduction weight is `max(0, 1 + s·fitness)`
    /// (linear weak selection, so expected weight tracks expected payoff
    /// without variance bias).
    pub selection: f64,
    /// Mutation probability: a newborn picks a uniformly random site.
    pub mutation: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for MoranConfig {
    fn default() -> Self {
        Self {
            population: 200,
            generations: 60_000,
            burn_in: 10_000,
            rounds_per_generation: 4,
            selection: 4.0,
            mutation: 0.01,
            seed: 0xC0FFEE,
        }
    }
}

/// Result of a Moran run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MoranRun {
    /// Time-averaged post-burn-in site frequencies.
    pub mean_frequencies: Strategy,
    /// Final population composition (site of each individual).
    pub final_counts: Vec<usize>,
    /// Generations simulated.
    pub generations: u64,
}

/// Run the Moran process under policy `c` with `k`-group matching.
pub fn run_moran(
    c: &dyn Congestion,
    f: &ValueProfile,
    k: usize,
    config: MoranConfig,
) -> Result<MoranRun> {
    if config.population < k.max(2) {
        return Err(Error::InvalidArgument(format!(
            "population {} must be at least max(k, 2) = {}",
            config.population,
            k.max(2)
        )));
    }
    if !(0.0..=1.0).contains(&config.mutation) {
        return Err(Error::InvalidArgument(format!(
            "mutation must be in [0,1], got {}",
            config.mutation
        )));
    }
    if config.burn_in >= config.generations {
        return Err(Error::InvalidArgument(format!(
            "burn_in {} must be below generations {}",
            config.burn_in, config.generations
        )));
    }
    let ctx = PayoffContext::new(c, k)?;
    let m = f.len();
    let n = config.population;
    let mut rng = Seed(config.seed).rng();
    // Individuals' pure site choices, initialized uniformly at random.
    let mut sites: Vec<usize> = (0..n).map(|_| rng.gen_range(0..m)).collect();
    // Site-major reward matrix `rewards[x·k + ℓ − 1] = f(x)·C(ℓ)` — the
    // same precomputed lookup layout as the one-shot and invasion
    // experiments, so the inner game loop does no value×table multiplies.
    let mut engine = MoranEngine::new(m, n, k, crate::oneshot::reward_matrix(f, ctx.c_table()));
    let mut freq_acc = vec![0.0f64; m];
    let mut recorded = 0u64;
    for generation in 0..config.generations {
        engine.generation(&config, &mut sites, &mut rng);
        if generation >= config.burn_in {
            recorded += 1;
            for &s in &sites {
                freq_acc[s] += 1.0;
            }
        }
    }
    let norm = (recorded as f64) * (n as f64);
    let mean_frequencies =
        Strategy::from_weights(freq_acc.iter().map(|&x| (x / norm).max(1e-15)).collect())?;
    let mut final_counts = vec![0usize; m];
    for &s in &sites {
        final_counts[s] += 1;
    }
    Ok(MoranRun { mean_frequencies, final_counts, generations: config.generations })
}

/// The reusable Moran generation kernel: the birth–death step with its
/// scratch buffers, factored out so [`run_moran`] and the time-varying
/// scenario driver share one RNG-call sequence. Rewards can be swapped
/// between generations ([`MoranEngine::set_rewards`]) without touching
/// the population — the scenario engine's moving-traffic hook.
pub(crate) struct MoranEngine {
    rewards: Vec<f64>,
    m: usize,
    n: usize,
    k: usize,
    groups_per_round: usize,
    fitness: Vec<f64>,
    plays: Vec<u32>,
    occupancy: Vec<usize>,
    order: Vec<usize>,
}

impl MoranEngine {
    /// Buffers for a population of `n` individuals over `m` sites with
    /// `k`-group matching; `rewards` is the site-major lookup
    /// `rewards[x·k + ℓ − 1]`.
    pub(crate) fn new(m: usize, n: usize, k: usize, rewards: Vec<f64>) -> Self {
        Self {
            rewards,
            m,
            n,
            k,
            groups_per_round: n / k,
            fitness: vec![0.0; n],
            plays: vec![0; n],
            occupancy: vec![0; m],
            order: (0..n).collect(),
        }
    }

    /// Swap in a new site-major reward matrix (same `m × k` shape).
    pub(crate) fn set_rewards(&mut self, rewards: Vec<f64>) {
        debug_assert_eq!(rewards.len(), self.rewards.len());
        self.rewards = rewards;
    }

    /// One generation: `rounds_per_generation` shuffled full-population
    /// partitions into k-groups determine fitness, then one
    /// selection-weighted birth and one uniform death. Identical RNG call
    /// order to the pre-refactor loop, so seeded runs reproduce bit for
    /// bit.
    pub(crate) fn generation(
        &mut self,
        config: &MoranConfig,
        sites: &mut [usize],
        rng: &mut ChaCha8Rng,
    ) {
        let (n, k) = (self.n, self.k);
        // Each round, the whole population is shuffled and partitioned into
        // k-groups that play once (the paper's "colony breaks daily into
        // foraging groups" picture); leftovers (< k individuals) sit out.
        self.fitness.iter_mut().for_each(|x| *x = 0.0);
        self.plays.iter_mut().for_each(|x| *x = 0);
        for _ in 0..config.rounds_per_generation {
            // Fisher-Yates shuffle of the play order.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                self.order.swap(i, j);
            }
            for g in 0..self.groups_per_round {
                let group = &self.order[g * k..(g + 1) * k];
                self.occupancy.iter_mut().for_each(|o| *o = 0);
                for &ind in group {
                    self.occupancy[sites[ind]] += 1;
                }
                for &ind in group {
                    let site = sites[ind];
                    self.fitness[ind] += self.rewards[site * k + self.occupancy[site] - 1];
                    self.plays[ind] += 1;
                }
            }
        }
        // Linear weak selection: weight = max(0, 1 + s * average payoff).
        let weights: Vec<f64> = (0..n)
            .map(|i| {
                let avg =
                    if self.plays[i] > 0 { self.fitness[i] / self.plays[i] as f64 } else { 0.0 };
                (1.0 + config.selection * avg).max(0.0)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut pick = rng.gen::<f64>() * total;
        let mut parent = n - 1;
        for (i, &w) in weights.iter().enumerate() {
            pick -= w;
            if pick <= 0.0 {
                parent = i;
                break;
            }
        }
        let child_site = if rng.gen::<f64>() < config.mutation {
            rng.gen_range(0..self.m)
        } else {
            sites[parent]
        };
        let dying = rng.gen_range(0..n);
        sites[dying] = child_site;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dispersal_core::policy::{Exclusive, Sharing};
    use dispersal_core::sigma_star::sigma_star;

    #[test]
    fn validates_config() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let bad_pop = MoranConfig { population: 1, ..Default::default() };
        assert!(run_moran(&Sharing, &f, 2, bad_pop).is_err());
        let bad_mut = MoranConfig { mutation: 1.5, ..Default::default() };
        assert!(run_moran(&Sharing, &f, 2, bad_mut).is_err());
        let bad_burn = MoranConfig { burn_in: 10, generations: 10, ..Default::default() };
        assert!(run_moran(&Sharing, &f, 2, bad_burn).is_err());
    }

    #[test]
    fn frequencies_form_distribution_and_counts_sum() {
        let f = ValueProfile::new(vec![1.0, 0.5, 0.25]).unwrap();
        let cfg = MoranConfig {
            population: 60,
            generations: 3_000,
            burn_in: 500,
            rounds_per_generation: 2,
            ..Default::default()
        };
        let run = run_moran(&Exclusive, &f, 3, cfg).unwrap();
        assert_eq!(run.final_counts.iter().sum::<usize>(), 60);
        let sum: f64 = run.mean_frequencies.probs().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn moran_tracks_sigma_star_qualitatively() {
        // With moderate selection, the stationary site frequencies should
        // order like sigma*: better sites more occupied, and not
        // degenerate.
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let k = 2;
        let cfg = MoranConfig {
            population: 300,
            generations: 40_000,
            burn_in: 8_000,
            rounds_per_generation: 4,
            selection: 6.0,
            mutation: 0.005,
            seed: 12,
        };
        let run = run_moran(&Exclusive, &f, k, cfg).unwrap();
        let star = sigma_star(&f, k).unwrap().strategy;
        let d = run.mean_frequencies.tv_distance(&star).unwrap();
        assert!(d < 0.15, "tv to sigma* = {d} (freqs {:?})", run.mean_frequencies.probs());
        assert!(run.mean_frequencies.prob(0) > run.mean_frequencies.prob(1));
    }

    #[test]
    fn deterministic_given_seed() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let cfg = MoranConfig {
            population: 40,
            generations: 2_000,
            burn_in: 200,
            rounds_per_generation: 2,
            ..Default::default()
        };
        let a = run_moran(&Sharing, &f, 2, cfg).unwrap();
        let b = run_moran(&Sharing, &f, 2, cfg).unwrap();
        assert_eq!(a.final_counts, b.final_counts);
    }
}
