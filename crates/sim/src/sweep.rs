//! Parallel parameter sweeps: evaluate a closure over a grid of
//! `(instance, k)` cells, preserving deterministic per-cell RNG streams.
//! A thin grid-construction layer over
//! [`engine::par_map_seeded`](crate::engine::par_map_seeded).

use crate::engine;
use dispersal_core::kernel::GTable;
use dispersal_core::policy::Congestion;
use dispersal_core::value::ValueProfile;
use dispersal_core::{Error, Result};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One cell of a sweep grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCell<T> {
    /// Label of the instance (e.g. "zipf(1.0) M=50").
    pub instance: String,
    /// Player count.
    pub k: usize,
    /// The evaluated payload.
    pub output: T,
}

/// Evaluate `eval(f, k, rng)` over the cross product of `instances × ks`,
/// in parallel, with one deterministic RNG stream per cell.
pub fn sweep_grid<T, F>(
    instances: &[(String, ValueProfile)],
    ks: &[usize],
    seed: u64,
    eval: F,
) -> Result<Vec<SweepCell<T>>>
where
    T: Send,
    F: Fn(&ValueProfile, usize, &mut ChaCha8Rng) -> Result<T> + Sync,
{
    if instances.is_empty() || ks.is_empty() {
        return Err(Error::InvalidArgument("sweep grid must be non-empty".into()));
    }
    let cells: Vec<(&String, &ValueProfile, usize)> =
        instances.iter().flat_map(|(name, f)| ks.iter().map(move |&k| (name, f, k))).collect();
    engine::par_map_seeded(cells, seed, |(name, f, k), rng| {
        let output = eval(f, k, rng)?;
        Ok(SweepCell { instance: name.clone(), k, output })
    })
}

/// One congestion-response curve from [`response_grid`]: `g[i] = g_C(qs[i])`
/// for player count `k`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResponseCurve {
    /// Player count the curve was evaluated for.
    pub k: usize,
    /// The uniform evaluation grid over `[0, 1]`.
    pub qs: Vec<f64>,
    /// The congestion response at each grid point.
    pub g: Vec<f64>,
}

/// Evaluate the congestion response `g_C` of one policy over a dense
/// uniform `q`-grid for every `k` in `ks`, in parallel (one worker per
/// `k`). Each worker batches its whole grid through a single
/// [`GTable`] — one `O(k)` kernel setup per curve instead of one per
/// point — which is what makes sweeping `resolution = 10⁴`-point grids at
/// `k = 256` cheap.
pub fn response_grid(
    c: &dyn Congestion,
    ks: &[usize],
    resolution: usize,
) -> Result<Vec<ResponseCurve>> {
    if ks.is_empty() {
        return Err(Error::InvalidArgument("response grid needs at least one k".into()));
    }
    if resolution == 0 {
        return Err(Error::InvalidArgument("response grid resolution must be >= 1".into()));
    }
    let qs: Vec<f64> = (0..=resolution).map(|i| i as f64 / resolution as f64).collect();
    engine::par_map(ks.to_vec(), |k| {
        let table = GTable::new(c, k)?;
        Ok(ResponseCurve { k, qs: qs.clone(), g: table.eval_many(&qs) })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dispersal_core::optimal::optimal_coverage;
    use dispersal_core::payoff::PayoffContext;
    use dispersal_core::policy::Sharing;

    fn instances() -> Vec<(String, ValueProfile)> {
        vec![
            ("zipf".into(), ValueProfile::zipf(10, 1.0, 1.0).unwrap()),
            ("geometric".into(), ValueProfile::geometric(8, 1.0, 0.7).unwrap()),
        ]
    }

    #[test]
    fn grid_has_full_cross_product() {
        let cells =
            sweep_grid(&instances(), &[2, 4, 8], 1, |f, k, _| Ok(optimal_coverage(f, k)?.coverage))
                .unwrap();
        assert_eq!(cells.len(), 6);
        // Coverage grows with k within each instance.
        for name in ["zipf", "geometric"] {
            let series: Vec<f64> =
                cells.iter().filter(|c| c.instance == name).map(|c| c.output).collect();
            assert_eq!(series.len(), 3);
            assert!(series[0] < series[1] && series[1] < series[2]);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use rand::Rng;
        let a = sweep_grid(&instances(), &[2, 3], 9, |_, _, rng| Ok(rng.gen::<u64>())).unwrap();
        let b = sweep_grid(&instances(), &[2, 3], 9, |_, _, rng| Ok(rng.gen::<u64>())).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.output, y.output);
        }
        // Different seeds give different streams.
        let c = sweep_grid(&instances(), &[2, 3], 10, |_, _, rng| Ok(rng.gen::<u64>())).unwrap();
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x.output != y.output));
    }

    #[test]
    fn empty_grid_rejected() {
        let cells: Result<Vec<SweepCell<f64>>> = sweep_grid(&[], &[2], 1, |_, _, _| Ok(0.0));
        assert!(cells.is_err());
        let cells: Result<Vec<SweepCell<f64>>> =
            sweep_grid(&instances(), &[], 1, |_, _, _| Ok(0.0));
        assert!(cells.is_err());
    }

    #[test]
    fn response_grid_matches_scalar_reference() {
        let curves = response_grid(&Sharing, &[2, 8, 33], 64).unwrap();
        assert_eq!(curves.len(), 3);
        for curve in &curves {
            assert_eq!(curve.qs.len(), 65);
            let ctx = PayoffContext::new(&Sharing, curve.k).unwrap();
            for (&q, &g) in curve.qs.iter().zip(curve.g.iter()) {
                assert_eq!(g.to_bits(), ctx.g(q).unwrap().to_bits(), "k = {} q = {q}", curve.k);
            }
        }
    }

    #[test]
    fn response_grid_validates() {
        assert!(response_grid(&Sharing, &[], 10).is_err());
        assert!(response_grid(&Sharing, &[2], 0).is_err());
        assert!(response_grid(&Sharing, &[0], 10).is_err());
    }

    #[test]
    fn errors_propagate() {
        let out: Result<Vec<SweepCell<f64>>> =
            sweep_grid(&instances(), &[2], 1, |_, _, _| Err(Error::InvalidArgument("boom".into())));
        assert!(out.is_err());
    }
}
