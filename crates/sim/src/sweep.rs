//! Parallel parameter sweeps: evaluate a closure over a grid of
//! `(instance, k)` cells, preserving deterministic per-cell RNG streams.
//! A thin grid-construction layer over
//! [`engine::par_map_seeded`](crate::engine::par_map_seeded).

use crate::engine;
use dispersal_core::kernel::GTable;
use dispersal_core::policy::{validate_congestion, Congestion};
use dispersal_core::value::ValueProfile;
use dispersal_core::{Error, Result};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// One cell of a sweep grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCell<T> {
    /// Label of the instance (e.g. "zipf(1.0) M=50").
    pub instance: String,
    /// Player count.
    pub k: usize,
    /// The evaluated payload.
    pub output: T,
}

/// Evaluate `eval(f, k, rng)` over the cross product of `instances × ks`,
/// in parallel, with one deterministic RNG stream per cell.
pub fn sweep_grid<T, F>(
    instances: &[(String, ValueProfile)],
    ks: &[usize],
    seed: u64,
    eval: F,
) -> Result<Vec<SweepCell<T>>>
where
    T: Send,
    F: Fn(&ValueProfile, usize, &mut ChaCha8Rng) -> Result<T> + Sync,
{
    if instances.is_empty() || ks.is_empty() {
        return Err(Error::InvalidArgument("sweep grid must be non-empty".into()));
    }
    let cells: Vec<(&String, &ValueProfile, usize)> =
        instances.iter().flat_map(|(name, f)| ks.iter().map(move |&k| (name, f, k))).collect();
    engine::par_map_seeded(cells, seed, |(name, f, k), rng| {
        let output = eval(f, k, rng)?;
        Ok(SweepCell { instance: name.clone(), k, output })
    })
}

/// One congestion-response curve from [`response_grid`]: `g[i] = g_C(qs[i])`
/// for player count `k`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResponseCurve {
    /// Player count the curve was evaluated for.
    pub k: usize,
    /// The uniform evaluation grid over `[0, 1]`.
    pub qs: Vec<f64>,
    /// The congestion response at each grid point.
    pub g: Vec<f64>,
}

/// Evaluate the congestion response `g_C` of one policy over a dense
/// uniform `q`-grid for every `k` in `ks`, in parallel (one worker per
/// `k`). Each worker batches its whole grid through a single
/// [`GTable`] — one `O(k)` kernel setup per curve instead of one per
/// point — which is what makes sweeping `resolution = 10⁴`-point grids at
/// `k = 256` cheap.
pub fn response_grid(
    c: &dyn Congestion,
    ks: &[usize],
    resolution: usize,
) -> Result<Vec<ResponseCurve>> {
    if ks.is_empty() {
        return Err(Error::InvalidArgument("response grid needs at least one k".into()));
    }
    if resolution == 0 {
        return Err(Error::InvalidArgument("response grid resolution must be >= 1".into()));
    }
    let qs: Vec<f64> = (0..=resolution).map(|i| i as f64 / resolution as f64).collect();
    engine::par_map(ks.to_vec(), |k| {
        let table = GTable::new(c, k)?;
        Ok(ResponseCurve { k, qs: qs.clone(), g: table.eval_many(&qs) })
    })
}

/// Memoized interpolation grids for the sweep layer, keyed by the
/// `(policy, k)` fingerprint (the congestion coefficient table, which
/// determines both) plus the requested tolerance.
///
/// Building a [`GTable::with_grid`] interpolant is the expensive part of
/// an interpolated sweep — refinement evaluates the exact `O(k)` kernel
/// at every node until the measured midpoint error meets the bound.
/// Sweeps that revisit the same `(policy, k)` cell (ε-grids, resolution
/// scans, repeated plotting calls) should hold one `GridCache` so the
/// grid is built once and shared as an [`Arc`]; the tolerance is
/// per-call — plotting sweeps typically pass `1e-9` (cheap, coarse
/// grids), verification sweeps `1e-12` — and each distinct tolerance
/// memoizes its own entry. Non-finite or non-positive tolerances are
/// rejected with [`dispersal_core::Error::InvalidTolerance`] (propagated
/// from [`GTable::with_grid`]).
#[derive(Debug, Clone, Default)]
pub struct GridCache {
    map: HashMap<(Vec<u64>, u64), Arc<GTable>>,
    builds: usize,
    hits: usize,
}

impl GridCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The gridded table for `(c, k)` at tolerance `tol`, built on first
    /// use. Returned as an [`Arc`] so parallel sweep workers can share
    /// one instance without cloning the grid.
    pub fn table(&mut self, c: &dyn Congestion, k: usize, tol: f64) -> Result<Arc<GTable>> {
        let coeffs = validate_congestion(c, k)?;
        if !(tol.is_finite() && tol > 0.0) {
            return Err(Error::InvalidTolerance { tol });
        }
        let key = (coeffs.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(), tol.to_bits());
        if let Some(table) = self.map.get(&key) {
            self.hits += 1;
            return Ok(Arc::clone(table));
        }
        let table = Arc::new(GTable::from_coefficients(coeffs)?.with_grid(tol)?);
        self.map.insert(key, Arc::clone(&table));
        self.builds += 1;
        Ok(table)
    }

    /// Number of grids built so far.
    #[inline]
    pub fn builds(&self) -> usize {
        self.builds
    }

    /// Number of lookups served from an existing grid.
    #[inline]
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of memoized grids.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no grids.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// [`response_grid`] through memoized `O(1)`-per-point interpolation
/// grids: grids are pulled from (or built into) `cache` at the per-call
/// tolerance `tol`, then every curve is evaluated in parallel. The
/// workhorse for large-`k` sweeps — at `k = 10⁴` an exact curve pays
/// `O(k)` per point while the interpolated one is a table lookup, and
/// repeated sweeps over the same `(policy, k)` cells pay the grid build
/// only once.
pub fn response_grid_interpolated(
    c: &dyn Congestion,
    ks: &[usize],
    resolution: usize,
    tol: f64,
    cache: &mut GridCache,
) -> Result<Vec<ResponseCurve>> {
    if ks.is_empty() {
        return Err(Error::InvalidArgument("response grid needs at least one k".into()));
    }
    if resolution == 0 {
        return Err(Error::InvalidArgument("response grid resolution must be >= 1".into()));
    }
    let qs: Vec<f64> = (0..=resolution).map(|i| i as f64 / resolution as f64).collect();
    // Builds go through the &mut cache serially (each build is itself the
    // heavy step); evaluation fans out across curves.
    let tables: Vec<(usize, Arc<GTable>)> =
        ks.iter().map(|&k| cache.table(c, k, tol).map(|t| (k, t))).collect::<Result<_>>()?;
    engine::par_map(tables, |(k, table)| {
        let mut scratch = table.scratch();
        let mut g = vec![0.0; qs.len()];
        table.eval_fast_many_with(&mut scratch, &qs, &mut g);
        Ok(ResponseCurve { k, qs: qs.clone(), g })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dispersal_core::optimal::optimal_coverage;
    use dispersal_core::payoff::PayoffContext;
    use dispersal_core::policy::Sharing;

    fn instances() -> Vec<(String, ValueProfile)> {
        vec![
            ("zipf".into(), ValueProfile::zipf(10, 1.0, 1.0).unwrap()),
            ("geometric".into(), ValueProfile::geometric(8, 1.0, 0.7).unwrap()),
        ]
    }

    #[test]
    fn grid_has_full_cross_product() {
        let cells =
            sweep_grid(&instances(), &[2, 4, 8], 1, |f, k, _| Ok(optimal_coverage(f, k)?.coverage))
                .unwrap();
        assert_eq!(cells.len(), 6);
        // Coverage grows with k within each instance.
        for name in ["zipf", "geometric"] {
            let series: Vec<f64> =
                cells.iter().filter(|c| c.instance == name).map(|c| c.output).collect();
            assert_eq!(series.len(), 3);
            assert!(series[0] < series[1] && series[1] < series[2]);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use rand::Rng;
        let a = sweep_grid(&instances(), &[2, 3], 9, |_, _, rng| Ok(rng.gen::<u64>())).unwrap();
        let b = sweep_grid(&instances(), &[2, 3], 9, |_, _, rng| Ok(rng.gen::<u64>())).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.output, y.output);
        }
        // Different seeds give different streams.
        let c = sweep_grid(&instances(), &[2, 3], 10, |_, _, rng| Ok(rng.gen::<u64>())).unwrap();
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x.output != y.output));
    }

    #[test]
    fn empty_grid_rejected() {
        let cells: Result<Vec<SweepCell<f64>>> = sweep_grid(&[], &[2], 1, |_, _, _| Ok(0.0));
        assert!(cells.is_err());
        let cells: Result<Vec<SweepCell<f64>>> =
            sweep_grid(&instances(), &[], 1, |_, _, _| Ok(0.0));
        assert!(cells.is_err());
    }

    #[test]
    fn response_grid_matches_scalar_reference() {
        let curves = response_grid(&Sharing, &[2, 8, 33], 64).unwrap();
        assert_eq!(curves.len(), 3);
        for curve in &curves {
            assert_eq!(curve.qs.len(), 65);
            let ctx = PayoffContext::new(&Sharing, curve.k).unwrap();
            for (&q, &g) in curve.qs.iter().zip(curve.g.iter()) {
                assert_eq!(g.to_bits(), ctx.g(q).unwrap().to_bits(), "k = {} q = {q}", curve.k);
            }
        }
    }

    #[test]
    fn response_grid_validates() {
        assert!(response_grid(&Sharing, &[], 10).is_err());
        assert!(response_grid(&Sharing, &[2], 0).is_err());
        assert!(response_grid(&Sharing, &[0], 10).is_err());
    }

    #[test]
    fn grid_cache_reuses_memoized_tables_across_sweep_calls() {
        let mut cache = GridCache::new();
        let ks = [4usize, 16];
        let a = response_grid_interpolated(&Sharing, &ks, 32, 1e-9, &mut cache).unwrap();
        assert_eq!(cache.builds(), 2);
        assert_eq!(cache.hits(), 0);
        // Second sweep over the same cells: zero new builds, all hits.
        let b = response_grid_interpolated(&Sharing, &ks, 64, 1e-9, &mut cache).unwrap();
        assert_eq!(cache.builds(), 2, "memoized grids must be reused");
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());
        // Pointer check: the cache hands back the *same* Arc, not a rebuild.
        let first = cache.table(&Sharing, 4, 1e-9).unwrap();
        let second = cache.table(&Sharing, 4, 1e-9).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "same (policy, k, tol) must share one grid");
        // Interpolated values agree across resolutions at shared points.
        for (ca, cb) in a.iter().zip(b.iter()) {
            assert_eq!(ca.g[0].to_bits(), cb.g[0].to_bits());
            assert_eq!(ca.g.last().unwrap().to_bits(), cb.g.last().unwrap().to_bits());
        }
    }

    #[test]
    fn grid_cache_tolerance_is_per_call() {
        let mut cache = GridCache::new();
        let fine = cache.table(&Sharing, 16, 1e-12).unwrap();
        let coarse = cache.table(&Sharing, 16, 1e-6).unwrap();
        // Distinct tolerances memoize distinct grids; the coarse one is
        // genuinely cheaper (fewer cells).
        assert!(!Arc::ptr_eq(&fine, &coarse));
        assert_eq!(cache.builds(), 2);
        assert!(coarse.grid_cells() <= fine.grid_cells());
        assert!(fine.grid_error().unwrap() <= 1e-12 * fine.scale());
        // Bad tolerances are rejected with the typed error.
        for bad in [0.0, -1e-9, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    cache.table(&Sharing, 16, bad),
                    Err(dispersal_core::Error::InvalidTolerance { .. })
                ),
                "tol = {bad} must be rejected"
            );
        }
        assert!(matches!(
            response_grid_interpolated(&Sharing, &[4], 8, -1.0, &mut cache),
            Err(dispersal_core::Error::InvalidTolerance { .. })
        ));
    }

    #[test]
    fn interpolated_response_grid_tracks_exact_curves() {
        let mut cache = GridCache::new();
        let ks = [2usize, 8, 33];
        let tol = 1e-9;
        let interp = response_grid_interpolated(&Sharing, &ks, 64, tol, &mut cache).unwrap();
        let exact = response_grid(&Sharing, &ks, 64).unwrap();
        for (ci, ce) in interp.iter().zip(exact.iter()) {
            assert_eq!(ci.k, ce.k);
            let scale = cache.table(&Sharing, ci.k, tol).unwrap().scale();
            for (&gi, &ge) in ci.g.iter().zip(ce.g.iter()) {
                assert!(
                    (gi - ge).abs() <= 4.0 * tol * scale,
                    "k = {}: interp {gi} vs exact {ge}",
                    ci.k
                );
            }
        }
        assert!(response_grid_interpolated(&Sharing, &[], 8, tol, &mut cache).is_err());
        assert!(response_grid_interpolated(&Sharing, &[2], 0, tol, &mut cache).is_err());
    }

    #[test]
    fn errors_propagate() {
        let out: Result<Vec<SweepCell<f64>>> =
            sweep_grid(&instances(), &[2], 1, |_, _, _| Err(Error::InvalidArgument("boom".into())));
        assert!(out.is_err());
    }
}
