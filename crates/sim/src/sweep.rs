//! Parallel parameter sweeps: evaluate a closure over a grid of
//! `(instance, k)` cells, preserving deterministic per-cell RNG streams.
//! A thin grid-construction layer over [`crate::engine::par_map_seeded`].

use crate::engine;
use dispersal_core::kernel::cache::{CacheStats, SharedCache};
use dispersal_core::kernel::{GBatch, GTable, GridSpec};
use dispersal_core::policy::{validate_congestion, Congestion};
use dispersal_core::value::ValueProfile;
use dispersal_core::{Error, Result};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One cell of a sweep grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCell<T> {
    /// Label of the instance (e.g. "zipf(1.0) M=50").
    pub instance: String,
    /// Player count.
    pub k: usize,
    /// The evaluated payload.
    pub output: T,
}

/// Evaluate `eval(f, k, rng)` over the cross product of `instances × ks`,
/// in parallel, with one deterministic RNG stream per cell.
pub fn sweep_grid<T, F>(
    instances: &[(String, ValueProfile)],
    ks: &[usize],
    seed: u64,
    eval: F,
) -> Result<Vec<SweepCell<T>>>
where
    T: Send,
    F: Fn(&ValueProfile, usize, &mut ChaCha8Rng) -> Result<T> + Sync,
{
    if instances.is_empty() || ks.is_empty() {
        return Err(Error::InvalidArgument("sweep grid must be non-empty".into()));
    }
    let cells: Vec<(&String, &ValueProfile, usize)> =
        instances.iter().flat_map(|(name, f)| ks.iter().map(move |&k| (name, f, k))).collect();
    engine::par_map_seeded(cells, seed, |(name, f, k), rng| {
        let output = eval(f, k, rng)?;
        Ok(SweepCell { instance: name.clone(), k, output })
    })
}

/// One congestion-response curve from [`response_grid`]: `g[i] = g_C(qs[i])`
/// for player count `k`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResponseCurve {
    /// Player count the curve was evaluated for.
    pub k: usize,
    /// The uniform evaluation grid over `[0, 1]`.
    pub qs: Vec<f64>,
    /// The congestion response at each grid point.
    pub g: Vec<f64>,
}

/// Shared validation + grid construction for the response-grid family:
/// rejects an empty `ks` or a zero `resolution`, and returns the uniform
/// `resolution + 1`-point evaluation grid over `[0, 1]`.
fn response_qs(ks: &[usize], resolution: usize) -> Result<Vec<f64>> {
    if ks.is_empty() {
        return Err(Error::InvalidArgument("response grid needs at least one k".into()));
    }
    if resolution == 0 {
        return Err(Error::InvalidArgument("response grid resolution must be >= 1".into()));
    }
    Ok((0..=resolution).map(|i| i as f64 / resolution as f64).collect())
}

/// Reject an empty policy batch (the multi-policy sweep entry points).
fn check_policies(policies: &[&dyn Congestion]) -> Result<()> {
    if policies.is_empty() {
        return Err(Error::InvalidArgument(
            "batched response grid needs at least one policy".into(),
        ));
    }
    Ok(())
}

/// Evaluate the congestion response `g_C` of one policy over a dense
/// uniform `q`-grid for every `k` in `ks`, in parallel (one worker per
/// `k`). Each `k` is a one-row [`GBatch`] k-tile evaluated in the
/// **reference mode**, so one `O(k)` kernel setup serves the whole curve
/// and every value is bit-identical to the per-point scalar path — which
/// is what makes sweeping `resolution = 10⁴`-point grids at `k = 256`
/// cheap without giving up reproducibility.
#[deprecated(
    since = "0.2.0",
    note = "use ResponseRequest::new(c).ks(ks).resolution(resolution).evaluate()"
)]
pub fn response_grid(
    c: &dyn Congestion,
    ks: &[usize],
    resolution: usize,
) -> Result<Vec<ResponseCurve>> {
    let curves = ResponseRequest::new(c).ks(ks).resolution(resolution).reference().evaluate()?;
    Ok(curves.into_iter().map(|p| ResponseCurve { k: p.k, qs: p.qs, g: p.g }).collect())
}

/// One policy's curve from a multi-policy batched sweep
/// ([`response_grid_batch`] / [`response_grid_batch_interpolated`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyResponseCurve {
    /// Policy name (from [`Congestion::name`]).
    pub policy: String,
    /// Player count the curve was evaluated for.
    pub k: usize,
    /// The uniform evaluation grid over `[0, 1]`.
    pub qs: Vec<f64>,
    /// The congestion response at each grid point.
    pub g: Vec<f64>,
}

/// Evaluate *many* policies over one shared `q`-grid for every `k` in
/// `ks`: per `k` a single policy-major [`GBatch`] k-tile is built and the
/// whole grid runs through the fused GEMM path — the per-point Bernstein
/// column is computed once and every policy finishes with a blocked dot,
/// instead of each policy paying its own recurrence setup per point.
/// Workers fan out across k-tiles; output is k-major (all policies of
/// `ks[0]`, then `ks[1]`, …), matching per-policy [`GTable::eval_fused`]
/// to ≤ 1e-13 × the coefficient scale.
#[deprecated(
    since = "0.2.0",
    note = "use ResponseRequest::policies(policies).ks(ks).resolution(resolution).evaluate()"
)]
pub fn response_grid_batch(
    policies: &[&dyn Congestion],
    ks: &[usize],
    resolution: usize,
) -> Result<Vec<PolicyResponseCurve>> {
    ResponseRequest::policies(policies).ks(ks).resolution(resolution).fused().evaluate()
}

/// Memoized interpolation grids for the sweep layer, keyed by the
/// `(policy, k)` fingerprint (the congestion coefficient table, which
/// determines both) plus the requested tolerance.
///
/// Building a [`GTable::with_grid`] interpolant is the expensive part of
/// an interpolated sweep — refinement evaluates the exact `O(k)` kernel
/// at every node until the measured midpoint error meets the bound.
/// Sweeps that revisit the same `(policy, k)` cell (ε-grids, resolution
/// scans, repeated plotting calls) should hold one `SharedGridCache` so
/// the grid is built once and shared as an [`Arc`]; the tolerance is
/// per-call — plotting sweeps typically pass `1e-9` (cheap, coarse
/// grids), verification sweeps `1e-12` — and each distinct tolerance
/// memoizes its own entry. Non-finite or non-positive tolerances are
/// rejected with [`dispersal_core::Error::InvalidTolerance`] (propagated
/// from [`GTable::with_grid`]).
///
/// Rebased on [`SharedCache`]: lookups take `&self`, so one cache is
/// shared *by reference* across engine worker threads (sweep workers
/// fetch their own grids concurrently) and across the requests of a
/// long-lived daemon. Concurrent lookups of the same cell coordinate
/// through a shard lock — the grid refinement runs at most once per
/// residency — and the cache is size-bounded ([`GRID_CACHE_CAPACITY`]
/// grids by default) with deterministic LRU eviction. Sharing and
/// eviction change only *allocation*: a rebuilt cell reproduces the
/// identical grid bits, so every evaluated curve is independent of who
/// warmed the cache and in what order.
#[derive(Debug)]
pub struct SharedGridCache {
    inner: SharedCache<(Vec<u64>, u8, u64), GTable>,
}

/// Transitional name: the pre-refactor `&mut` memo was called
/// `GridCache`; the concurrent rebase keeps the old name as an alias.
pub type GridCache = SharedGridCache;

/// Default resident bound for [`SharedGridCache`]: distinct
/// `(policy, k, tol)` grids kept warm before least-recently-used grids
/// are evicted. The full mechanism catalog at a handful of player counts
/// and tolerances stays well inside 256 while bounding the footprint of
/// a daemon that sees adversarial key diversity.
pub const GRID_CACHE_CAPACITY: usize = 256;

impl Default for SharedGridCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedGridCache {
    /// An empty cache with the default capacity bound.
    pub fn new() -> Self {
        Self::with_capacity(GRID_CACHE_CAPACITY)
    }

    /// An empty cache holding at most `grids` entries (`0` = unbounded).
    pub fn with_capacity(grids: usize) -> Self {
        SharedGridCache { inner: SharedCache::new(grids) }
    }

    /// The gridded table for `(c, k)` at the **uniform** interpolation
    /// tolerance `tol` — shorthand for [`Self::table_with_spec`] with
    /// [`GridSpec::Interpolated`]. Returned as an [`Arc`] so parallel
    /// sweep workers can share one instance without cloning the grid;
    /// concurrent callers of the same cell block on its shard until the
    /// single build finishes.
    pub fn table(&self, c: &dyn Congestion, k: usize, tol: f64) -> Result<Arc<GTable>> {
        self.table_with_spec(c, k, GridSpec::Interpolated { tol })
    }

    /// The table for `(c, k)` built per `spec`, memoized per
    /// `(coefficients, spec)` cell: distinct specs (uniform vs
    /// non-uniform, distinct tolerances) memoize distinct grids, and the
    /// tolerance check runs through the single [`GridSpec::validate`]
    /// path. [`GridSpec::NonUniform`] is the `k → 10⁶` entry point.
    pub fn table_with_spec(
        &self,
        c: &dyn Congestion,
        k: usize,
        spec: GridSpec,
    ) -> Result<Arc<GTable>> {
        let coeffs = validate_congestion(c, k)?;
        spec.validate()?;
        let (kind, tol_bits) = spec.key_bits();
        let key = (coeffs.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(), kind, tol_bits);
        self.inner
            .get_or_try_insert_with(key, || GTable::from_coefficients(coeffs)?.with_spec(spec))
    }

    /// Number of grids built so far (cache misses, including rebuilds
    /// after eviction).
    #[inline]
    pub fn builds(&self) -> usize {
        self.inner.stats().misses as usize
    }

    /// Number of lookups served from an existing grid.
    #[inline]
    pub fn hits(&self) -> usize {
        self.inner.stats().hits as usize
    }

    /// Number of memoized grids.
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache holds no grids.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Uniform hit/miss/eviction snapshot ([`CacheStats`]).
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }
}

/// The unified response-evaluation request — the **single** entry point
/// that replaced the four-way `response_grid` /
/// `response_grid_batch` / `response_grid_interpolated` /
/// `response_grid_batch_interpolated` sprawl. Build one with
/// [`ResponseRequest::new`] (single policy) or
/// [`ResponseRequest::policies`] (a batch), chain the knobs, and call
/// [`ResponseRequest::evaluate`]:
///
/// ```
/// use dispersal_core::kernel::GridSpec;
/// use dispersal_core::policy::{Exclusive, Sharing, Congestion};
/// use dispersal_sim::sweep::{ResponseRequest, SharedGridCache};
///
/// // Exact reference curve for one policy (bit-identical to the scalar
/// // reference path):
/// let curves = ResponseRequest::new(&Sharing).ks(&[8, 64]).resolution(128).evaluate()?;
/// assert_eq!(curves.len(), 2);
///
/// // A policy batch over memoized interpolation grids:
/// let cache = SharedGridCache::new();
/// let policies: Vec<&dyn Congestion> = vec![&Exclusive, &Sharing];
/// let batch = ResponseRequest::policies(&policies)
///     .ks(&[64])
///     .resolution(128)
///     .grid(GridSpec::Interpolated { tol: 1e-9 })
///     .cache(&cache)
///     .evaluate()?;
/// assert_eq!(batch.len(), 2);
/// # Ok::<(), dispersal_core::Error>(())
/// ```
///
/// Evaluation-mode contract (all outputs are k-major, policies in input
/// order within each `k`, and deterministic at any thread count):
///
/// * [`GridSpec::Exact`] + reference mode (the default for a single
///   policy, forced with [`ResponseRequest::reference`]) — per-`k`
///   [`GBatch`] reference tiles; every curve is **bit-identical** to the
///   per-point scalar `g` and to the legacy `response_grid`.
/// * [`GridSpec::Exact`] + fused mode (the default for a multi-policy
///   batch, forced with [`ResponseRequest::fused`]) — the fused-GEMM
///   tile of the legacy `response_grid_batch`: ≤ 1e-13 × scale from the
///   reference, shared Bernstein column per point.
/// * [`GridSpec::Interpolated`] / [`GridSpec::NonUniform`] — `O(1)`
///   per-point grids pulled from the supplied [`SharedGridCache`] (or a
///   private per-call cache when none is given), bit-identical to the
///   legacy interpolated paths.
#[derive(Clone, Copy)]
pub struct ResponseRequest<'a> {
    policies: &'a [&'a dyn Congestion],
    single: Option<&'a dyn Congestion>,
    ks: &'a [usize],
    resolution: usize,
    grid: GridSpec,
    cache: Option<&'a SharedGridCache>,
    /// `None` = decide by arity (single policy → reference, batch →
    /// fused); `Some(true)` = reference; `Some(false)` = fused.
    reference: Option<bool>,
}

/// Default evaluation resolution (`resolution + 1` grid points) when the
/// caller does not set one — matches the serving layer's default tile.
pub const DEFAULT_RESPONSE_RESOLUTION: usize = 256;

impl<'a> ResponseRequest<'a> {
    /// A request for one policy's response curves.
    pub fn new(c: &'a dyn Congestion) -> Self {
        Self {
            policies: &[],
            single: Some(c),
            ks: &[],
            resolution: DEFAULT_RESPONSE_RESOLUTION,
            grid: GridSpec::Exact,
            cache: None,
            reference: None,
        }
    }

    /// A request for a batch of policies sharing one evaluation grid.
    pub fn policies(policies: &'a [&'a dyn Congestion]) -> Self {
        Self {
            policies,
            single: None,
            ks: &[],
            resolution: DEFAULT_RESPONSE_RESOLUTION,
            grid: GridSpec::Exact,
            cache: None,
            reference: None,
        }
    }

    /// The player counts to evaluate (one k-tile per entry).
    pub fn ks(mut self, ks: &'a [usize]) -> Self {
        self.ks = ks;
        self
    }

    /// Evaluation-grid resolution (`resolution + 1` uniform points over
    /// `[0, 1]`; default [`DEFAULT_RESPONSE_RESOLUTION`]).
    pub fn resolution(mut self, resolution: usize) -> Self {
        self.resolution = resolution;
        self
    }

    /// Grid configuration (default [`GridSpec::Exact`]).
    pub fn grid(mut self, spec: GridSpec) -> Self {
        self.grid = spec;
        self
    }

    /// Memoize interpolation grids in `cache` (shared across requests and
    /// worker threads). Without this, interpolated requests build into a
    /// private per-call cache — same bits, no reuse across calls.
    pub fn cache(mut self, cache: &'a SharedGridCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Force the bit-identical reference mode for [`GridSpec::Exact`]
    /// requests, regardless of batch size (the serving layer's exact
    /// tiles require per-row bit-identity whatever the group
    /// composition).
    pub fn reference(mut self) -> Self {
        self.reference = Some(true);
        self
    }

    /// Force the fused-GEMM mode for [`GridSpec::Exact`] requests,
    /// regardless of batch size (throughput over bit-identity).
    pub fn fused(mut self) -> Self {
        self.reference = Some(false);
        self
    }

    /// The policy list this request evaluates (single-policy requests are
    /// a one-element batch).
    fn policy_slice(&self) -> Vec<&'a dyn Congestion> {
        match self.single {
            Some(c) => vec![c],
            None => self.policies.to_vec(),
        }
    }

    /// Run the request. Output is k-major: all policies (input order) of
    /// `ks[0]`, then `ks[1]`, … — one [`PolicyResponseCurve`] per
    /// `(k, policy)` cell.
    pub fn evaluate(&self) -> Result<Vec<PolicyResponseCurve>> {
        let policies = self.policy_slice();
        check_policies(&policies)?;
        let qs = response_qs(self.ks, self.resolution)?;
        match self.grid {
            GridSpec::Exact => {
                let reference = self.reference.unwrap_or(policies.len() == 1);
                let tiles = engine::par_map(self.ks.to_vec(), |k| {
                    let batch = GBatch::new(&policies, k)?;
                    let mut scratch = batch.scratch();
                    let mut g = vec![0.0; batch.rows() * qs.len()];
                    if reference {
                        batch.eval_many_with(&mut scratch, &qs, &mut g)?;
                    } else {
                        batch.eval_fused_many_into(&mut scratch, &qs, &mut g)?;
                    }
                    let curves: Vec<PolicyResponseCurve> = policies
                        .iter()
                        .enumerate()
                        .map(|(r, c)| PolicyResponseCurve {
                            policy: c.name(),
                            k,
                            qs: qs.clone(),
                            g: g[r * qs.len()..(r + 1) * qs.len()].to_vec(),
                        })
                        .collect();
                    Ok(curves)
                })?;
                Ok(tiles.into_iter().flatten().collect())
            }
            spec => {
                // Validate every cell up front so a bad tolerance or
                // degenerate policy fails before any worker runs, then
                // fan the whole k-major grid of (policy, k) cells out at
                // once — builds and evaluation both run on the pool, with
                // duplicate cells coordinated by the cache's shard locks
                // so each grid is refined at most once.
                for c in &policies {
                    validate_congestion(*c, self.ks[0])?;
                }
                spec.validate()?;
                let owned;
                let cache = match self.cache {
                    Some(shared) => shared,
                    None => {
                        owned = SharedGridCache::new();
                        &owned
                    }
                };
                let mut cells: Vec<(usize, &dyn Congestion)> =
                    Vec::with_capacity(policies.len() * self.ks.len());
                for &k in self.ks {
                    for c in &policies {
                        cells.push((k, *c));
                    }
                }
                engine::par_map(cells, |(k, c)| {
                    let table = cache.table_with_spec(c, k, spec)?;
                    let mut scratch = table.scratch();
                    let mut g = vec![0.0; qs.len()];
                    table.eval_fast_many_with(&mut scratch, &qs, &mut g)?;
                    Ok(PolicyResponseCurve { policy: c.name(), k, qs: qs.clone(), g })
                })
            }
        }
    }
}

/// [`response_grid`] through memoized `O(1)`-per-point interpolation
/// grids: grids are pulled from (or built into) `cache` at the per-call
/// tolerance `tol`, then every curve is evaluated in parallel. The
/// workhorse for large-`k` sweeps — at `k = 10⁴` an exact curve pays
/// `O(k)` per point while the interpolated one is a table lookup, and
/// repeated sweeps over the same `(policy, k)` cells pay the grid build
/// only once.
#[deprecated(
    since = "0.2.0",
    note = "use ResponseRequest::new(c).grid(GridSpec::Interpolated { tol }).cache(cache).evaluate()"
)]
pub fn response_grid_interpolated(
    c: &dyn Congestion,
    ks: &[usize],
    resolution: usize,
    tol: f64,
    cache: &SharedGridCache,
) -> Result<Vec<ResponseCurve>> {
    let curves = ResponseRequest::new(c)
        .ks(ks)
        .resolution(resolution)
        .grid(GridSpec::Interpolated { tol })
        .cache(cache)
        .evaluate()?;
    Ok(curves.into_iter().map(|p| ResponseCurve { k: p.k, qs: p.qs, g: p.g }).collect())
}

/// The multi-policy sibling of [`response_grid_interpolated`]: every
/// `(policy, k)` cell pulls its `O(1)`-per-point interpolation grid from
/// (or builds it into) the shared [`SharedGridCache`] at tolerance
/// `tol`, then all cells evaluate in parallel over the shared `q`-grid.
/// The cache is keyed by the coefficient fingerprint, so cells revisited
/// by *either* this batched path or the single-policy
/// [`response_grid_interpolated`] path reuse one [`Arc`]-shared grid —
/// k-tiles of a batched sweep and stand-alone sweeps never build the
/// same grid twice. Output is k-major (all policies of `ks[0]`, then
/// `ks[1]`, …), matching [`response_grid_batch`].
#[deprecated(
    since = "0.2.0",
    note = "use ResponseRequest::policies(policies).grid(GridSpec::Interpolated { tol }).cache(cache).evaluate()"
)]
pub fn response_grid_batch_interpolated(
    policies: &[&dyn Congestion],
    ks: &[usize],
    resolution: usize,
    tol: f64,
    cache: &SharedGridCache,
) -> Result<Vec<PolicyResponseCurve>> {
    ResponseRequest::policies(policies)
        .ks(ks)
        .resolution(resolution)
        .grid(GridSpec::Interpolated { tol })
        .cache(cache)
        .evaluate()
}

#[cfg(test)]
#[allow(deprecated)] // the legacy wrappers stay pinned until removal
mod tests {
    use super::*;
    use dispersal_core::optimal::optimal_coverage;
    use dispersal_core::payoff::PayoffContext;
    use dispersal_core::policy::Sharing;

    fn instances() -> Vec<(String, ValueProfile)> {
        vec![
            ("zipf".into(), ValueProfile::zipf(10, 1.0, 1.0).unwrap()),
            ("geometric".into(), ValueProfile::geometric(8, 1.0, 0.7).unwrap()),
        ]
    }

    #[test]
    fn grid_has_full_cross_product() {
        let cells =
            sweep_grid(&instances(), &[2, 4, 8], 1, |f, k, _| Ok(optimal_coverage(f, k)?.coverage))
                .unwrap();
        assert_eq!(cells.len(), 6);
        // Coverage grows with k within each instance.
        for name in ["zipf", "geometric"] {
            let series: Vec<f64> =
                cells.iter().filter(|c| c.instance == name).map(|c| c.output).collect();
            assert_eq!(series.len(), 3);
            assert!(series[0] < series[1] && series[1] < series[2]);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use rand::Rng;
        let a = sweep_grid(&instances(), &[2, 3], 9, |_, _, rng| Ok(rng.gen::<u64>())).unwrap();
        let b = sweep_grid(&instances(), &[2, 3], 9, |_, _, rng| Ok(rng.gen::<u64>())).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.output, y.output);
        }
        // Different seeds give different streams.
        let c = sweep_grid(&instances(), &[2, 3], 10, |_, _, rng| Ok(rng.gen::<u64>())).unwrap();
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x.output != y.output));
    }

    #[test]
    fn empty_grid_rejected() {
        let cells: Result<Vec<SweepCell<f64>>> = sweep_grid(&[], &[2], 1, |_, _, _| Ok(0.0));
        assert!(cells.is_err());
        let cells: Result<Vec<SweepCell<f64>>> =
            sweep_grid(&instances(), &[], 1, |_, _, _| Ok(0.0));
        assert!(cells.is_err());
    }

    #[test]
    fn response_grid_matches_scalar_reference() {
        let curves = response_grid(&Sharing, &[2, 8, 33], 64).unwrap();
        assert_eq!(curves.len(), 3);
        for curve in &curves {
            assert_eq!(curve.qs.len(), 65);
            let ctx = PayoffContext::new(&Sharing, curve.k).unwrap();
            for (&q, &g) in curve.qs.iter().zip(curve.g.iter()) {
                assert_eq!(g.to_bits(), ctx.g(q).unwrap().to_bits(), "k = {} q = {q}", curve.k);
            }
        }
    }

    #[test]
    fn response_grid_validates() {
        assert!(response_grid(&Sharing, &[], 10).is_err());
        assert!(response_grid(&Sharing, &[2], 0).is_err());
        assert!(response_grid(&Sharing, &[0], 10).is_err());
    }

    #[test]
    fn grid_cache_reuses_memoized_tables_across_sweep_calls() {
        let cache = SharedGridCache::new();
        let ks = [4usize, 16];
        let a = response_grid_interpolated(&Sharing, &ks, 32, 1e-9, &cache).unwrap();
        assert_eq!(cache.builds(), 2);
        assert_eq!(cache.hits(), 0);
        // Second sweep over the same cells: zero new builds, all hits.
        let b = response_grid_interpolated(&Sharing, &ks, 64, 1e-9, &cache).unwrap();
        assert_eq!(cache.builds(), 2, "memoized grids must be reused");
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());
        // Pointer check: the cache hands back the *same* Arc, not a rebuild.
        let first = cache.table(&Sharing, 4, 1e-9).unwrap();
        let second = cache.table(&Sharing, 4, 1e-9).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "same (policy, k, tol) must share one grid");
        // Interpolated values agree across resolutions at shared points.
        for (ca, cb) in a.iter().zip(b.iter()) {
            assert_eq!(ca.g[0].to_bits(), cb.g[0].to_bits());
            assert_eq!(ca.g.last().unwrap().to_bits(), cb.g.last().unwrap().to_bits());
        }
    }

    #[test]
    fn grid_cache_tolerance_is_per_call() {
        let cache = SharedGridCache::new();
        let fine = cache.table(&Sharing, 16, 1e-12).unwrap();
        let coarse = cache.table(&Sharing, 16, 1e-6).unwrap();
        // Distinct tolerances memoize distinct grids; the coarse one is
        // genuinely cheaper (fewer cells).
        assert!(!Arc::ptr_eq(&fine, &coarse));
        assert_eq!(cache.builds(), 2);
        assert!(coarse.grid_cells() <= fine.grid_cells());
        assert!(fine.grid_error().unwrap() <= 1e-12 * fine.scale());
        // Bad tolerances are rejected with the typed error.
        for bad in [0.0, -1e-9, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    cache.table(&Sharing, 16, bad),
                    Err(dispersal_core::Error::InvalidTolerance { .. })
                ),
                "tol = {bad} must be rejected"
            );
        }
        assert!(matches!(
            response_grid_interpolated(&Sharing, &[4], 8, -1.0, &cache),
            Err(dispersal_core::Error::InvalidTolerance { .. })
        ));
    }

    #[test]
    fn interpolated_response_grid_tracks_exact_curves() {
        let cache = SharedGridCache::new();
        let ks = [2usize, 8, 33];
        let tol = 1e-9;
        let interp = response_grid_interpolated(&Sharing, &ks, 64, tol, &cache).unwrap();
        let exact = response_grid(&Sharing, &ks, 64).unwrap();
        for (ci, ce) in interp.iter().zip(exact.iter()) {
            assert_eq!(ci.k, ce.k);
            let scale = cache.table(&Sharing, ci.k, tol).unwrap().scale();
            for (&gi, &ge) in ci.g.iter().zip(ce.g.iter()) {
                assert!(
                    (gi - ge).abs() <= 4.0 * tol * scale,
                    "k = {}: interp {gi} vs exact {ge}",
                    ci.k
                );
            }
        }
        assert!(response_grid_interpolated(&Sharing, &[], 8, tol, &cache).is_err());
        assert!(response_grid_interpolated(&Sharing, &[2], 0, tol, &cache).is_err());
    }

    #[test]
    fn batched_response_grid_matches_per_policy_reference() {
        use dispersal_core::kernel::GTable;
        use dispersal_core::policy::{Exclusive, PowerLaw, TwoLevel};
        let policies: Vec<&dyn Congestion> =
            vec![&Exclusive, &Sharing, &TwoLevel { c: -0.4 }, &PowerLaw { beta: 2.0 }];
        let ks = [2usize, 8, 33];
        let curves = response_grid_batch(&policies, &ks, 64).unwrap();
        assert_eq!(curves.len(), policies.len() * ks.len());
        // Output is k-major with rows in policy order; every curve matches
        // the per-policy exact table within the fused-GEMM contract.
        for (t, &k) in ks.iter().enumerate() {
            for (r, c) in policies.iter().enumerate() {
                let curve = &curves[t * policies.len() + r];
                assert_eq!(curve.k, k);
                assert_eq!(curve.policy, c.name());
                let table = GTable::new(*c, k).unwrap();
                let mut scratch = table.scratch();
                let tol = 1e-13 * table.scale();
                for (&q, &g) in curve.qs.iter().zip(curve.g.iter()) {
                    let exact = table.eval_with(&mut scratch, q);
                    assert!(
                        (g - exact).abs() <= tol,
                        "{} k={k} q={q}: batch {g} vs exact {exact}",
                        curve.policy
                    );
                }
            }
        }
        assert!(response_grid_batch(&[], &ks, 64).is_err());
        assert!(response_grid_batch(&policies, &[], 64).is_err());
        assert!(response_grid_batch(&policies, &ks, 0).is_err());
    }

    #[test]
    fn grid_cache_is_shared_between_batch_and_single_policy_paths() {
        use dispersal_core::policy::Exclusive;
        let cache = SharedGridCache::new();
        let policies: Vec<&dyn Congestion> = vec![&Sharing, &Exclusive];
        let ks = [4usize, 16];
        let tol = 1e-9;
        let batched = response_grid_batch_interpolated(&policies, &ks, 32, tol, &cache).unwrap();
        assert_eq!(batched.len(), 4);
        assert_eq!(cache.builds(), 4, "one grid per (policy, k) cell");
        assert_eq!(cache.hits(), 0);
        // Pin the Arc the batch path populated, then re-sweep: the second
        // batched sweep must reuse every memoized grid (pure hits)...
        let pinned = cache.table(&Sharing, 4, tol).unwrap();
        assert_eq!(cache.hits(), 1);
        response_grid_batch_interpolated(&policies, &ks, 64, tol, &cache).unwrap();
        assert_eq!(cache.builds(), 4);
        assert_eq!(cache.hits(), 5);
        // ...and the single-policy GTable path requesting the same
        // (policy, k, tol) cells is served from the same entries.
        let single = response_grid_interpolated(&Sharing, &ks, 32, tol, &cache).unwrap();
        assert_eq!(cache.builds(), 4, "GTable path must not rebuild GBatch-tile grids");
        assert_eq!(cache.hits(), 7);
        assert!(Arc::ptr_eq(&pinned, &cache.table(&Sharing, 4, tol).unwrap()));
        // Same Arc'd grid on both paths => bit-identical curves.
        let sharing_k4 = &batched[0];
        assert_eq!((sharing_k4.policy.as_str(), sharing_k4.k), ("sharing", 4));
        for (&a, &b) in sharing_k4.g.iter().zip(single[0].g.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Bad tolerances propagate as the typed error through the batch
        // path, exactly like the single-policy one.
        for bad in [0.0, -1.0, f64::NAN] {
            assert!(matches!(
                response_grid_batch_interpolated(&policies, &ks, 8, bad, &cache),
                Err(dispersal_core::Error::InvalidTolerance { .. })
            ));
        }
        assert!(response_grid_batch_interpolated(&[], &ks, 8, tol, &cache).is_err());
        assert!(response_grid_batch_interpolated(&policies, &[], 8, tol, &cache).is_err());
        assert!(response_grid_batch_interpolated(&policies, &ks, 0, tol, &cache).is_err());
    }

    /// The unified-API regression: every legacy entry point must produce
    /// bit-identical curves through [`ResponseRequest`]. (CI's
    /// thread-matrix job repeats the whole suite at
    /// `RAYON_NUM_THREADS ∈ {1, 4}`; together with the serial run this
    /// pins the contract across thread counts.)
    #[test]
    fn unified_request_is_bit_identical_to_all_four_legacy_entry_points() {
        use dispersal_core::policy::{Exclusive, PowerLaw, TwoLevel};
        let policies: Vec<&dyn Congestion> =
            vec![&Exclusive, &Sharing, &TwoLevel { c: -0.4 }, &PowerLaw { beta: 2.0 }];
        let ks = [2usize, 8, 33];
        let resolution = 64;
        let tol = 1e-9;

        // 1. response_grid (single policy, exact reference mode).
        let legacy = response_grid(&Sharing, &ks, resolution).unwrap();
        let unified =
            ResponseRequest::new(&Sharing).ks(&ks).resolution(resolution).evaluate().unwrap();
        assert_eq!(legacy.len(), unified.len());
        for (l, u) in legacy.iter().zip(unified.iter()) {
            assert_eq!((l.k, &l.qs), (u.k, &u.qs));
            assert_eq!(u.policy, "sharing");
            for (a, b) in l.g.iter().zip(u.g.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "response_grid diverged at k={}", l.k);
            }
        }

        // 2. response_grid_batch (multi-policy, exact fused mode).
        let legacy = response_grid_batch(&policies, &ks, resolution).unwrap();
        let unified =
            ResponseRequest::policies(&policies).ks(&ks).resolution(resolution).evaluate().unwrap();
        assert_eq!(legacy.len(), unified.len());
        for (l, u) in legacy.iter().zip(unified.iter()) {
            assert_eq!((l.k, &l.policy), (u.k, &u.policy));
            for (a, b) in l.g.iter().zip(u.g.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "batch diverged at k={} {}", l.k, l.policy);
            }
        }

        // 3. response_grid_interpolated (single policy, uniform grid).
        let legacy_cache = SharedGridCache::new();
        let unified_cache = SharedGridCache::new();
        let legacy =
            response_grid_interpolated(&Sharing, &ks, resolution, tol, &legacy_cache).unwrap();
        let unified = ResponseRequest::new(&Sharing)
            .ks(&ks)
            .resolution(resolution)
            .grid(GridSpec::Interpolated { tol })
            .cache(&unified_cache)
            .evaluate()
            .unwrap();
        for (l, u) in legacy.iter().zip(unified.iter()) {
            assert_eq!(l.k, u.k);
            for (a, b) in l.g.iter().zip(u.g.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "interpolated diverged at k={}", l.k);
            }
        }

        // 4. response_grid_batch_interpolated (multi-policy, shared cache).
        let legacy =
            response_grid_batch_interpolated(&policies, &ks, resolution, tol, &legacy_cache)
                .unwrap();
        let unified = ResponseRequest::policies(&policies)
            .ks(&ks)
            .resolution(resolution)
            .grid(GridSpec::Interpolated { tol })
            .cache(&unified_cache)
            .evaluate()
            .unwrap();
        assert_eq!(legacy.len(), unified.len());
        for (l, u) in legacy.iter().zip(unified.iter()) {
            assert_eq!((l.k, &l.policy), (u.k, &u.policy));
            for (a, b) in l.g.iter().zip(u.g.iter()) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "batch interpolated diverged at k={} {}",
                    l.k,
                    l.policy
                );
            }
        }
        // Without a caller cache the interpolated path builds privately —
        // same bits, no shared memoization.
        let private = ResponseRequest::new(&Sharing)
            .ks(&ks)
            .resolution(resolution)
            .grid(GridSpec::Interpolated { tol })
            .evaluate()
            .unwrap();
        for (l, u) in unified.iter().filter(|c| c.policy == "sharing").zip(private.iter()) {
            for (a, b) in l.g.iter().zip(u.g.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "private-cache path diverged at k={}", l.k);
            }
        }
    }

    #[test]
    fn unified_request_reference_mode_matches_exact_tile_rows_in_any_company() {
        use dispersal_core::policy::{PowerLaw, TwoLevel};
        // A multi-policy exact request in forced reference mode must give
        // each policy the same bits it gets alone — the serving layer's
        // per-row bit-identity contract.
        let policies: Vec<&dyn Congestion> =
            vec![&Sharing, &TwoLevel { c: -0.3 }, &PowerLaw { beta: 2.0 }];
        let grouped = ResponseRequest::policies(&policies)
            .ks(&[16])
            .resolution(64)
            .reference()
            .evaluate()
            .unwrap();
        for (r, c) in policies.iter().enumerate() {
            let alone = ResponseRequest::new(*c).ks(&[16]).resolution(64).evaluate().unwrap();
            for (a, b) in grouped[r].g.iter().zip(alone[0].g.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {r} diverged under batching");
            }
        }
        // And forced fused mode on a single policy matches the batch path.
        let fused_single =
            ResponseRequest::new(&Sharing).ks(&[16]).resolution(64).fused().evaluate().unwrap();
        let batch_single = response_grid_batch(&[&Sharing], &[16], 64).unwrap();
        for (a, b) in fused_single[0].g.iter().zip(batch_single[0].g.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn unified_request_nonuniform_grid_tracks_exact_curves() {
        let cache = SharedGridCache::new();
        let tol = 1e-9;
        let ks = [64usize, 512];
        let curves = ResponseRequest::new(&dispersal_core::policy::Exclusive)
            .ks(&ks)
            .resolution(128)
            .grid(GridSpec::NonUniform { tol })
            .cache(&cache)
            .evaluate()
            .unwrap();
        assert_eq!(cache.builds(), 2);
        let exact = ResponseRequest::new(&dispersal_core::policy::Exclusive)
            .ks(&ks)
            .resolution(128)
            .evaluate()
            .unwrap();
        for (ci, ce) in curves.iter().zip(exact.iter()) {
            assert_eq!(ci.k, ce.k);
            let table = cache
                .table_with_spec(
                    &dispersal_core::policy::Exclusive,
                    ci.k,
                    GridSpec::NonUniform { tol },
                )
                .unwrap();
            for (&gi, &ge) in ci.g.iter().zip(ce.g.iter()) {
                assert!(
                    (gi - ge).abs() <= 4.0 * tol * table.scale(),
                    "k = {}: nonuniform {gi} vs exact {ge}",
                    ci.k
                );
            }
        }
        // Spec-distinct cells memoize separately: the uniform grid for the
        // same (policy, k) is a new build, not a hit on the nonuniform one.
        cache.table(&dispersal_core::policy::Exclusive, 64, tol).unwrap();
        assert_eq!(cache.builds(), 3);
    }

    #[test]
    fn errors_propagate() {
        let out: Result<Vec<SweepCell<f64>>> =
            sweep_grid(&instances(), &[2], 1, |_, _, _| Err(Error::InvalidArgument("boom".into())));
        assert!(out.is_err());
    }

    #[test]
    fn grid_cache_concurrent_lookups_share_one_build() {
        // Eight threads race on the same (policy, k, tol) cell: the shard
        // lock must let exactly one of them refine the grid, and every
        // thread must get the *same* Arc (ptr_eq extended to concurrency).
        use std::sync::Barrier;
        use std::thread;
        let cache = Arc::new(SharedGridCache::new());
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    barrier.wait();
                    cache.table(&Sharing, 16, 1e-9).unwrap()
                })
            })
            .collect();
        let tables: Vec<Arc<GTable>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for t in &tables[1..] {
            assert!(Arc::ptr_eq(&tables[0], t), "all threads must share one grid");
        }
        assert_eq!(cache.builds(), 1, "the refinement must run exactly once");
        assert_eq!(cache.hits(), 7);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn grid_cache_concurrent_warm_order_is_value_independent() {
        // Threads warm disjoint permutations of the same cell set
        // concurrently; afterwards every cell's grid is bit-identical to
        // a fresh single-threaded build (warm order extended to
        // concurrency: sharing changes allocation, never values).
        use std::thread;
        let cache = Arc::new(SharedGridCache::new());
        let cells: Vec<(usize, f64)> = vec![(4, 1e-9), (16, 1e-9), (8, 1e-6), (33, 1e-9)];
        let mut orders: Vec<Vec<(usize, f64)>> = Vec::new();
        for rot in 0..4 {
            let mut order = cells.clone();
            order.rotate_left(rot);
            orders.push(order);
        }
        let handles: Vec<_> = orders
            .into_iter()
            .map(|order| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    for (k, tol) in order {
                        cache.table(&Sharing, k, tol).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.builds(), cells.len(), "each cell built exactly once");
        for &(k, tol) in &cells {
            let shared = cache.table(&Sharing, k, tol).unwrap();
            let fresh = SharedGridCache::new().table(&Sharing, k, tol).unwrap();
            assert_eq!(shared.grid_cells(), fresh.grid_cells(), "k = {k}");
            let qs: Vec<f64> = (0..=64).map(|i| i as f64 / 64.0).collect();
            let mut sa = shared.scratch();
            let mut sb = fresh.scratch();
            let mut ga = vec![0.0; qs.len()];
            let mut gb = vec![0.0; qs.len()];
            shared.eval_fast_many_with(&mut sa, &qs, &mut ga).unwrap();
            fresh.eval_fast_many_with(&mut sb, &qs, &mut gb).unwrap();
            for (a, b) in ga.iter().zip(gb.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "k = {k}");
            }
        }
    }
}
