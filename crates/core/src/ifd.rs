//! General Ideal-Free-Distribution solver (Observation 2).
//!
//! For any non-constant, non-increasing congestion function `C`, the value
//! of a site under a symmetric field `p` is `ν_p(x) = f(x)·g_C(p(x))` with
//! `g_C` strictly decreasing (see [`crate::payoff`]). The IFD is the unique
//! `p` such that all supported sites share a common value `ν` and all
//! unsupported sites have value below `ν`. We find it by *water-filling*:
//!
//! 1. For a candidate common value `ν`, each site's occupancy is
//!    `q_x(ν) = clamp(g_C⁻¹(ν / f(x)), 0, 1)` — zero when `f(x) ≤ ν`
//!    (inner bisection inverts `g_C`).
//! 2. `S(ν) = Σ_x q_x(ν)` is continuous and non-increasing in `ν`; an outer
//!    bisection finds the `ν` with `S(ν) = 1`.
//!
//! This handles negative congestion values (aggression): `ν` itself may be
//! negative when players are forced to crowd (`M` small, `k` large).

use crate::error::{Error, Result};
use crate::kernel::GScratch;
use crate::payoff::PayoffContext;
use crate::policy::Congestion;
use crate::strategy::Strategy;
use crate::value::ValueProfile;
use serde::{Deserialize, Serialize};

/// Iteration counts for the nested bisections. 90 outer × 64 inner keeps
/// the residual near machine precision while staying fast.
const OUTER_ITERS: usize = 90;
const INNER_ITERS: usize = 64;

/// An IFD solution: the equilibrium strategy plus diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ifd {
    /// The equilibrium (symmetric Nash) strategy.
    pub strategy: Strategy,
    /// The common value `ν` on the support.
    pub value: f64,
    /// Support size (number of sites with positive probability).
    pub support: usize,
    /// Maximum IFD-condition violation measured after solving.
    pub residual: f64,
}

/// Invert `g` at `target` over `q ∈ [0, 1]` for a strictly decreasing `g`.
///
/// Runs through the batched kernel with a caller-owned scratch: the inner
/// bisection evaluates `g` 64 times per site per outer step, so the
/// allocation-free `O(k)` path matters here. Contexts carrying an
/// interpolation grid ([`PayoffContext::with_grid`]) drop that to `O(1)`
/// per evaluation — the large-`k` regime path; without a grid
/// `eval_fast_with` falls back to the exact kernel bit-identically.
fn invert_g(ctx: &PayoffContext, scratch: &mut GScratch, target: f64) -> f64 {
    let kernel = ctx.kernel();
    if target >= kernel.at_zero() {
        return 0.0;
    }
    if target <= kernel.at_one() {
        return 1.0;
    }
    crate::numerics::bisect_decreasing(
        |q| kernel.eval_fast_with(scratch, q),
        0.0,
        1.0,
        target,
        INNER_ITERS,
    )
}

/// Occupancies `q_x(ν)` for a candidate common value.
fn occupancies(ctx: &PayoffContext, scratch: &mut GScratch, f: &ValueProfile, nu: f64) -> Vec<f64> {
    f.values()
        .iter()
        .map(|&fx| {
            // Site is used only when its solo value strictly exceeds nu.
            if fx <= nu {
                0.0
            } else {
                invert_g(ctx, scratch, nu / fx)
            }
        })
        .collect()
}

/// Solve the IFD for `(f, C, k)`.
///
/// # Errors
/// Returns [`Error::DegeneratePolicy`] when `C` is constant on `[1, k]`
/// (the equilibrium then degenerates to the top-value sites — use
/// [`solve_ifd_allow_degenerate`] if that is acceptable), and propagates
/// validation errors for malformed policies.
pub fn solve_ifd(c: &dyn Congestion, f: &ValueProfile, k: usize) -> Result<Ifd> {
    let ctx = PayoffContext::new(c, k)?;
    if k > 1 && ctx.is_degenerate() {
        return Err(Error::DegeneratePolicy);
    }
    solve_ifd_with_context(&ctx, f)
}

/// Solve the IFD, mapping the degenerate (constant-`C`) case to its natural
/// limit: the uniform distribution over the maximum-value sites (all players
/// chase the best sites since congestion is free).
pub fn solve_ifd_allow_degenerate(c: &dyn Congestion, f: &ValueProfile, k: usize) -> Result<Ifd> {
    let ctx = PayoffContext::new(c, k)?;
    if ctx.is_degenerate() {
        let top = f.value(0);
        let ties = f.values().iter().filter(|&&v| (v - top).abs() <= 1e-12 * top).count();
        let mut probs = vec![0.0; f.len()];
        for p in probs.iter_mut().take(ties) {
            *p = 1.0 / ties as f64;
        }
        let strategy = Strategy::new(probs)?;
        return Ok(Ifd { strategy, value: top * ctx.c_table()[0], support: ties, residual: 0.0 });
    }
    solve_ifd_with_context(&ctx, f)
}

/// Solve using a prebuilt [`PayoffContext`] (non-degenerate).
pub fn solve_ifd_with_context(ctx: &PayoffContext, f: &ValueProfile) -> Result<Ifd> {
    let k = ctx.k();
    if k == 1 {
        // One player: pure best response to an empty field.
        let strategy = Strategy::delta(f.len(), 0)?;
        return Ok(Ifd { strategy, value: f.value(0), support: 1, residual: 0.0 });
    }
    let mut scratch = ctx.kernel().scratch();
    // g(1) = C(k), possibly negative.
    let g1 = ctx.kernel().at_one();
    // nu_hi: at nu = f(1)·g(0) = f(1), every occupancy is 0, S = 0 <= 1.
    let mut hi = f.value(0) * ctx.kernel().at_zero();
    // nu_lo: a value at which every site is fully occupied, S = M >= 1.
    let mut lo = if g1 >= 0.0 { f.value(f.len() - 1) * g1 } else { f.value(0) * g1 };
    // Guard the bracket against round-off at the endpoints.
    let pad = 1e-12 * (1.0 + hi.abs() + lo.abs());
    hi += pad;
    lo -= pad;
    let mut lo_nu = lo;
    let mut hi_nu = hi;
    for _ in 0..OUTER_ITERS {
        let mid = 0.5 * (lo_nu + hi_nu);
        let sum_at_mid: f64 = occupancies(ctx, &mut scratch, f, mid).iter().sum();
        if sum_at_mid >= 1.0 {
            lo_nu = mid;
        } else {
            hi_nu = mid;
        }
    }
    let nu = 0.5 * (lo_nu + hi_nu);
    let mut probs = occupancies(ctx, &mut scratch, f, nu);
    // Exact renormalization of residual bisection slack.
    let sum: f64 = crate::numerics::kahan_sum(probs.iter().copied());
    if sum <= 0.0 {
        return Err(Error::NoConvergence {
            what: "ifd water-filling",
            residual: (sum - 1.0).abs(),
        });
    }
    for p in probs.iter_mut() {
        *p /= sum;
    }
    let strategy = Strategy::new(probs)?;
    let support = strategy.support_size(1e-12);
    let residual = ifd_residual(ctx, f, &strategy)?;
    Ok(Ifd { strategy, value: nu, support, residual })
}

/// Measure the worst violation of the IFD conditions for a candidate `p`
/// under context `ctx`: spread of `ν_p(x)` on the support plus any
/// off-support site whose value exceeds the support value.
pub fn ifd_residual(ctx: &PayoffContext, f: &ValueProfile, p: &Strategy) -> Result<f64> {
    let nu_all = ctx.site_values(f, p)?;
    let support_tol = 1e-10;
    let on: Vec<f64> = nu_all
        .iter()
        .zip(p.probs().iter())
        .filter(|(_, &px)| px > support_tol)
        .map(|(&v, _)| v)
        .collect();
    if on.is_empty() {
        return Ok(f64::INFINITY);
    }
    let nu = on.iter().sum::<f64>() / on.len() as f64;
    let mut residual = on.iter().map(|v| (v - nu).abs()).fold(0.0, f64::max);
    for (v, &px) in nu_all.iter().zip(p.probs().iter()) {
        if px <= support_tol && *v > nu {
            residual = residual.max(v - nu);
        }
    }
    Ok(residual)
}

/// Verify that `p` is a symmetric Nash equilibrium under `(C, k, f)`: no
/// pure deviation improves the payoff. Returns the best improvement a
/// deviator could obtain (≤ tolerance means `p` is an equilibrium).
pub fn nash_gap(c: &dyn Congestion, f: &ValueProfile, p: &Strategy, k: usize) -> Result<f64> {
    let ctx = PayoffContext::new(c, k)?;
    let nu = ctx.site_values(f, p)?;
    let current = ctx.symmetric_payoff(f, p)?;
    let best = nu.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Ok(best - current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Constant, Exclusive, PowerLaw, Sharing, TwoLevel};
    use crate::sigma_star::sigma_star;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn exclusive_ifd_matches_sigma_star_closed_form() {
        for (f, k) in [
            (ValueProfile::new(vec![1.0, 0.3]).unwrap(), 2usize),
            (ValueProfile::new(vec![1.0, 0.5]).unwrap(), 2),
            (ValueProfile::zipf(25, 1.0, 1.0).unwrap(), 4),
            (ValueProfile::geometric(12, 2.0, 0.75).unwrap(), 6),
        ] {
            let solved = solve_ifd(&Exclusive, &f, k).unwrap();
            let closed = sigma_star(&f, k).unwrap();
            let d = solved.strategy.linf_distance(&closed.strategy).unwrap();
            assert!(d < 1e-8, "distance {d} for k = {k}");
            close(solved.value, closed.equilibrium_value(), 1e-8);
        }
    }

    #[test]
    fn sharing_ifd_two_sites_matches_hand_solution() {
        // k = 2, sharing: g(q) = (1-q) + q/2 = 1 - q/2.
        // IFD with both sites occupied: f1(1 - p/2) = f2(1 - (1-p)/2)
        // => p = (2 f1 - f2) ... solve: f1 - f1 p/2 = f2/2 + f2 p/2
        // => p (f1 + f2)/2 = f1 - f2/2 => p = (2 f1 - f2) / (f1 + f2).
        let (f1, f2) = (1.0, 0.5);
        let f = ValueProfile::new(vec![f1, f2]).unwrap();
        let ifd = solve_ifd(&Sharing, &f, 2).unwrap();
        let expect = (2.0 * f1 - f2) / (f1 + f2);
        close(ifd.strategy.prob(0), expect, 1e-10);
        assert!(ifd.residual < 1e-10);
    }

    #[test]
    fn ifd_residual_small_across_catalog() {
        let f = ValueProfile::zipf(20, 1.0, 0.8).unwrap();
        for c in [
            &Exclusive as &dyn Congestion,
            &Sharing,
            &TwoLevel { c: -0.5 },
            &TwoLevel { c: 0.3 },
            &PowerLaw { beta: 2.0 },
        ] {
            for k in [2usize, 3, 7] {
                let ifd = solve_ifd(c, &f, k).unwrap();
                assert!(ifd.residual < 1e-8, "{} k={k}: residual {}", c.name(), ifd.residual);
            }
        }
    }

    #[test]
    fn ifd_is_nash_equilibrium() {
        let f = ValueProfile::geometric(10, 1.0, 0.7).unwrap();
        for c in [&Exclusive as &dyn Congestion, &Sharing, &TwoLevel { c: -0.2 }] {
            let ifd = solve_ifd(c, &f, 4).unwrap();
            let gap = nash_gap(c, &f, &ifd.strategy, 4).unwrap();
            assert!(gap < 1e-8, "{}: nash gap {gap}", c.name());
        }
    }

    #[test]
    fn non_equilibrium_has_positive_nash_gap() {
        let f = ValueProfile::new(vec![1.0, 0.2]).unwrap();
        let uniform = Strategy::uniform(2).unwrap();
        let gap = nash_gap(&Exclusive, &f, &uniform, 2).unwrap();
        assert!(gap > 0.01, "gap = {gap}");
    }

    #[test]
    fn degenerate_policy_rejected_then_allowed() {
        let f = ValueProfile::new(vec![2.0, 1.0]).unwrap();
        assert_eq!(solve_ifd(&Constant, &f, 3).unwrap_err(), Error::DegeneratePolicy);
        let ifd = solve_ifd_allow_degenerate(&Constant, &f, 3).unwrap();
        assert_eq!(ifd.strategy.probs(), &[1.0, 0.0]);
        assert_eq!(ifd.support, 1);
    }

    #[test]
    fn degenerate_policy_splits_ties() {
        let f = ValueProfile::new(vec![2.0, 2.0, 1.0]).unwrap();
        let ifd = solve_ifd_allow_degenerate(&Constant, &f, 2).unwrap();
        close(ifd.strategy.prob(0), 0.5, 1e-12);
        close(ifd.strategy.prob(1), 0.5, 1e-12);
        assert_eq!(ifd.strategy.prob(2), 0.0);
    }

    #[test]
    fn aggressive_policy_crowded_world_negative_value() {
        // One site, many players, severe aggression: everyone must sit on
        // the single site and the equilibrium value is negative.
        let f = ValueProfile::new(vec![1.0]).unwrap();
        let agg = TwoLevel::new(-0.5).unwrap();
        let ifd = solve_ifd(&agg, &f, 5).unwrap();
        close(ifd.strategy.prob(0), 1.0, 1e-12);
        assert!(ifd.value < 0.0, "value = {}", ifd.value);
    }

    #[test]
    fn aggression_spreads_the_population() {
        // Stronger collision costs push probability onto worse sites:
        // support under c = -0.5 is at least as large as under sharing.
        let f = ValueProfile::geometric(15, 1.0, 0.6).unwrap();
        let k = 4;
        let gentle = solve_ifd(&TwoLevel { c: 0.5 }, &f, k).unwrap();
        let harsh = solve_ifd(&TwoLevel { c: -0.5 }, &f, k).unwrap();
        assert!(
            harsh.support >= gentle.support,
            "harsh support {} < gentle {}",
            harsh.support,
            gentle.support
        );
        // And the top site is visited less under harsher collisions.
        assert!(harsh.strategy.prob(0) < gentle.strategy.prob(0));
    }

    #[test]
    fn single_player_ifd_is_greedy() {
        let f = ValueProfile::new(vec![5.0, 1.0]).unwrap();
        let ifd = solve_ifd(&Sharing, &f, 1).unwrap();
        assert_eq!(ifd.strategy.probs(), &[1.0, 0.0]);
        close(ifd.value, 5.0, 1e-12);
    }

    #[test]
    fn uniqueness_observation2_solver_is_deterministic() {
        // Observation 2 says the symmetric NE is unique; the solver should
        // find the same point from its deterministic bracket regardless of
        // value scaling (IFD is scale-invariant).
        let f = ValueProfile::zipf(10, 1.0, 1.2).unwrap();
        let f_scaled = f.scaled(7.5).unwrap();
        let a = solve_ifd(&Sharing, &f, 3).unwrap();
        let b = solve_ifd(&Sharing, &f_scaled, 3).unwrap();
        let d = a.strategy.linf_distance(&b.strategy).unwrap();
        assert!(d < 1e-9, "scale sensitivity {d}");
    }

    #[test]
    fn large_instance_smoke() {
        let f = ValueProfile::zipf(2000, 1.0, 0.9).unwrap();
        let ifd = solve_ifd(&Exclusive, &f, 50).unwrap();
        assert!(ifd.residual < 1e-7);
        let closed = sigma_star(&f, 50).unwrap();
        let d = ifd.strategy.linf_distance(&closed.strategy).unwrap();
        assert!(d < 1e-7, "distance {d}");
    }
}
