//! Congestion reward policies `I(x, ℓ) = f(x) · C(ℓ)` (Section 1.1).
//!
//! A congestion function `C` maps the number of players `ℓ ≥ 1` present at a
//! site to the fraction of the site's value each of them receives. The paper
//! requires `C(1) = 1` and `C` non-increasing; `C` may be negative
//! (aggression) or exceed `1/ℓ` (cooperation). The two distinguished
//! policies are:
//!
//! * [`Exclusive`] — the "Judgment of Solomon" rule `C(1)=1, C(ℓ)=0` for
//!   `ℓ ≥ 2`, which the paper proves is the unique congestion policy whose
//!   IFD optimizes coverage (Theorems 3, 4, 6);
//! * [`Sharing`] — `C(ℓ) = 1/ℓ`, the classical scramble-competition /
//!   Kleinberg–Oren policy with `SPoA ≤ 2`.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// A congestion function `C(ℓ)` for `ℓ ≥ 1`.
///
/// Implementations must satisfy `C(1) = 1` and be non-increasing; callers
/// can verify this for any given player count with [`validate_congestion`].
pub trait Congestion: Send + Sync {
    /// The value `C(ℓ)`; `ell` is the total number of players at the site,
    /// `ell ≥ 1`.
    fn c(&self, ell: usize) -> f64;

    /// Short human-readable name used in reports and plots.
    fn name(&self) -> String;

    /// Whether this is exactly the exclusive function on `[1, k]`.
    fn is_exclusive_up_to(&self, k: usize) -> bool {
        (2..=k).all(|ell| self.c(ell) == 0.0) && self.c(1) == 1.0
    }

    /// Table of `C(1..=k)` values.
    fn table(&self, k: usize) -> Vec<f64> {
        (1..=k).map(|ell| self.c(ell)).collect()
    }
}

/// Verify the congestion-policy axioms on `[1, k]`: `C(1) = 1` and
/// non-increasing. Returns the table of values on success.
pub fn validate_congestion(c: &dyn Congestion, k: usize) -> Result<Vec<f64>> {
    if k == 0 {
        return Err(Error::InvalidPlayerCount { k });
    }
    let table = c.table(k);
    if (table[0] - 1.0).abs() > 1e-12 {
        return Err(Error::BadCongestionAtOne { c1: table[0] });
    }
    for ell in 0..table.len() - 1 {
        if table[ell + 1] > table[ell] + 1e-12 {
            return Err(Error::IncreasingCongestion {
                ell: ell + 1,
                c_ell: table[ell],
                c_next: table[ell + 1],
            });
        }
    }
    Ok(table)
}

/// The exclusive ("Judgment of Solomon") policy: full reward alone, nothing
/// under any collision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Exclusive;

impl Congestion for Exclusive {
    #[inline]
    fn c(&self, ell: usize) -> f64 {
        if ell == 1 {
            1.0
        } else {
            0.0
        }
    }

    fn name(&self) -> String {
        "exclusive".to_string()
    }
}

/// The sharing policy `C(ℓ) = 1/ℓ` (scramble competition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Sharing;

impl Congestion for Sharing {
    #[inline]
    fn c(&self, ell: usize) -> f64 {
        1.0 / ell as f64
    }

    fn name(&self) -> String {
        "sharing".to_string()
    }
}

/// The constant policy `C(ℓ) ≡ 1`: every visitor obtains the full value.
/// The paper notes this has `SPoA ≈ k` and is ecologically implausible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Constant;

impl Congestion for Constant {
    #[inline]
    fn c(&self, _ell: usize) -> f64 {
        1.0
    }

    fn name(&self) -> String {
        "constant".to_string()
    }
}

/// The two-level family of Figure 1: `C(1) = 1`, `C(ℓ) = c` for `ℓ ≥ 2`.
///
/// `c = 0` is [`Exclusive`]; `c = 0.5` equals [`Sharing`] in the two-player
/// game; negative `c` models aggression.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoLevel {
    /// The collision payoff fraction `c = C(ℓ)` for `ℓ ≥ 2`; must be ≤ 1.
    pub c: f64,
}

impl TwoLevel {
    /// Construct, validating `c ≤ 1` (non-increasing) and finiteness.
    pub fn new(c: f64) -> Result<Self> {
        if !c.is_finite() || c > 1.0 {
            return Err(Error::InvalidArgument(format!(
                "two-level collision payoff must be finite and <= 1, got {c}"
            )));
        }
        Ok(Self { c })
    }
}

impl Congestion for TwoLevel {
    #[inline]
    fn c(&self, ell: usize) -> f64 {
        if ell == 1 {
            1.0
        } else {
            self.c
        }
    }

    fn name(&self) -> String {
        format!("two-level(c={})", self.c)
    }
}

/// Power-law congestion `C(ℓ) = ℓ^(−β)` with `β ≥ 0`.
///
/// `β = 0` is [`Constant`], `β = 1` is [`Sharing`], `β > 1` is harsher than
/// sharing, and `β → ∞` approaches [`Exclusive`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLaw {
    /// Decay exponent `β ≥ 0`.
    pub beta: f64,
}

impl PowerLaw {
    /// Construct, validating `β ≥ 0`.
    pub fn new(beta: f64) -> Result<Self> {
        if !beta.is_finite() || beta < 0.0 {
            return Err(Error::InvalidArgument(format!(
                "power-law exponent must be >= 0, got {beta}"
            )));
        }
        Ok(Self { beta })
    }
}

impl Congestion for PowerLaw {
    #[inline]
    fn c(&self, ell: usize) -> f64 {
        (ell as f64).powf(-self.beta)
    }

    fn name(&self) -> String {
        format!("power-law(beta={})", self.beta)
    }
}

/// Linearly decaying congestion `C(ℓ) = 1 − slope·(ℓ − 1)`, which becomes
/// negative (aggressive) once `ℓ > 1 + 1/slope`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearDecay {
    /// Per-extra-player penalty; must be ≥ 0.
    pub slope: f64,
}

impl LinearDecay {
    /// Construct, validating `slope ≥ 0`.
    pub fn new(slope: f64) -> Result<Self> {
        if !slope.is_finite() || slope < 0.0 {
            return Err(Error::InvalidArgument(format!(
                "linear-decay slope must be >= 0, got {slope}"
            )));
        }
        Ok(Self { slope })
    }
}

impl Congestion for LinearDecay {
    #[inline]
    fn c(&self, ell: usize) -> f64 {
        1.0 - self.slope * (ell as f64 - 1.0)
    }

    fn name(&self) -> String {
        format!("linear-decay(slope={})", self.slope)
    }
}

/// Cooperative congestion: `C(ℓ) = θ/ℓ + (1−θ)·1` interpolating between
/// sharing (`θ = 1`) and constant (`θ = 0`). Every value is strictly larger
/// than the sharing fraction `1/ℓ` when `θ < 1`, modeling synergy at a site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cooperative {
    /// Interpolation weight in `[0, 1]`.
    pub theta: f64,
}

impl Cooperative {
    /// Construct, validating `θ ∈ [0, 1]`.
    pub fn new(theta: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&theta) {
            return Err(Error::InvalidArgument(format!(
                "cooperative theta must be in [0,1], got {theta}"
            )));
        }
        Ok(Self { theta })
    }
}

impl Congestion for Cooperative {
    #[inline]
    fn c(&self, ell: usize) -> f64 {
        self.theta / ell as f64 + (1.0 - self.theta)
    }

    fn name(&self) -> String {
        format!("cooperative(theta={})", self.theta)
    }
}

/// A congestion function given by an explicit table of values
/// `C(1), C(2), …`; queries beyond the table repeat the final entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableCongestion {
    values: Vec<f64>,
    label: String,
}

impl TableCongestion {
    /// Construct from the table `[C(1), C(2), …]`, which must be non-empty,
    /// start at 1, and be non-increasing.
    pub fn new(values: Vec<f64>, label: impl Into<String>) -> Result<Self> {
        if values.is_empty() {
            return Err(Error::InvalidArgument("congestion table must be non-empty".into()));
        }
        if (values[0] - 1.0).abs() > 1e-12 {
            return Err(Error::BadCongestionAtOne { c1: values[0] });
        }
        for i in 0..values.len() - 1 {
            if values[i + 1] > values[i] + 1e-12 {
                return Err(Error::IncreasingCongestion {
                    ell: i + 1,
                    c_ell: values[i],
                    c_next: values[i + 1],
                });
            }
        }
        Ok(Self { values, label: label.into() })
    }
}

impl Congestion for TableCongestion {
    #[inline]
    fn c(&self, ell: usize) -> f64 {
        let idx = ell.saturating_sub(1).min(self.values.len() - 1);
        self.values[idx]
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// The reward a player receives for being one of `ell` players at a site of
/// value `value`: `I(x, ℓ) = f(x)·C(ℓ)`.
#[inline]
pub fn reward(c: &dyn Congestion, value: f64, ell: usize) -> f64 {
    value * c.c(ell)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_values() {
        let e = Exclusive;
        assert_eq!(e.c(1), 1.0);
        assert_eq!(e.c(2), 0.0);
        assert_eq!(e.c(100), 0.0);
        assert!(e.is_exclusive_up_to(10));
        assert_eq!(e.table(3), vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn sharing_values() {
        let s = Sharing;
        assert_eq!(s.c(1), 1.0);
        assert_eq!(s.c(2), 0.5);
        assert_eq!(s.c(4), 0.25);
        assert!(!s.is_exclusive_up_to(3));
    }

    #[test]
    fn constant_values() {
        let c = Constant;
        assert_eq!(c.c(1), 1.0);
        assert_eq!(c.c(7), 1.0);
        assert!(!c.is_exclusive_up_to(2));
        assert!(c.is_exclusive_up_to(1));
    }

    #[test]
    fn two_level_family() {
        let t = TwoLevel::new(0.25).unwrap();
        assert_eq!(t.c(1), 1.0);
        assert_eq!(t.c(2), 0.25);
        assert_eq!(t.c(9), 0.25);
        // c = 0 coincides with exclusive.
        assert!(TwoLevel::new(0.0).unwrap().is_exclusive_up_to(20));
        // Negative c is allowed (aggression).
        assert_eq!(TwoLevel::new(-0.3).unwrap().c(2), -0.3);
        assert!(TwoLevel::new(1.5).is_err());
        assert!(TwoLevel::new(f64::NAN).is_err());
    }

    #[test]
    fn two_level_at_half_matches_sharing_for_two_players() {
        let t = TwoLevel::new(0.5).unwrap();
        let s = Sharing;
        assert_eq!(t.c(1), s.c(1));
        assert_eq!(t.c(2), s.c(2));
    }

    #[test]
    fn power_law_endpoints() {
        assert_eq!(PowerLaw::new(0.0).unwrap().c(5), 1.0);
        assert_eq!(PowerLaw::new(1.0).unwrap().c(4), 0.25);
        assert!((PowerLaw::new(2.0).unwrap().c(3) - 1.0 / 9.0).abs() < 1e-15);
        assert!(PowerLaw::new(-1.0).is_err());
    }

    #[test]
    fn linear_decay_goes_negative() {
        let l = LinearDecay::new(0.4).unwrap();
        assert_eq!(l.c(1), 1.0);
        assert!((l.c(2) - 0.6).abs() < 1e-15);
        assert!(l.c(4) < 0.0);
        assert!(LinearDecay::new(-0.1).is_err());
    }

    #[test]
    fn cooperative_dominates_sharing() {
        let co = Cooperative::new(0.5).unwrap();
        for ell in 2..10usize {
            assert!(co.c(ell) > Sharing.c(ell));
        }
        assert!(Cooperative::new(1.5).is_err());
        // theta = 1 is exactly sharing.
        let s1 = Cooperative::new(1.0).unwrap();
        for ell in 1..6usize {
            assert!((s1.c(ell) - Sharing.c(ell)).abs() < 1e-15);
        }
    }

    #[test]
    fn table_congestion() {
        let t = TableCongestion::new(vec![1.0, 0.4, 0.1], "custom").unwrap();
        assert_eq!(t.c(1), 1.0);
        assert_eq!(t.c(2), 0.4);
        assert_eq!(t.c(3), 0.1);
        assert_eq!(t.c(10), 0.1); // repeats final entry
        assert_eq!(t.name(), "custom");
        assert!(TableCongestion::new(vec![], "x").is_err());
        assert!(TableCongestion::new(vec![0.9], "x").is_err());
        assert!(TableCongestion::new(vec![1.0, 0.2, 0.5], "x").is_err());
    }

    #[test]
    fn validate_congestion_accepts_catalog() {
        for c in [
            &Exclusive as &dyn Congestion,
            &Sharing,
            &Constant,
            &TwoLevel { c: -0.5 },
            &PowerLaw { beta: 2.0 },
            &LinearDecay { slope: 0.3 },
            &Cooperative { theta: 0.7 },
        ] {
            validate_congestion(c, 8).unwrap();
        }
    }

    #[test]
    fn validate_congestion_rejects_bad_functions() {
        struct Increasing;
        impl Congestion for Increasing {
            fn c(&self, ell: usize) -> f64 {
                ell as f64 / 2.0 + 0.5
            }
            fn name(&self) -> String {
                "increasing".into()
            }
        }
        struct BadAtOne;
        impl Congestion for BadAtOne {
            fn c(&self, _ell: usize) -> f64 {
                0.5
            }
            fn name(&self) -> String {
                "bad".into()
            }
        }
        assert!(matches!(
            validate_congestion(&Increasing, 3),
            Err(Error::IncreasingCongestion { .. })
        ));
        assert!(matches!(validate_congestion(&BadAtOne, 3), Err(Error::BadCongestionAtOne { .. })));
        assert!(matches!(
            validate_congestion(&Exclusive, 0),
            Err(Error::InvalidPlayerCount { .. })
        ));
    }

    #[test]
    fn reward_scales_value() {
        assert_eq!(reward(&Sharing, 2.0, 2), 1.0);
        assert_eq!(reward(&Exclusive, 2.0, 2), 0.0);
        assert_eq!(reward(&Exclusive, 2.0, 1), 2.0);
    }
}
