//! Concurrent, size-bounded, LRU-evicting kernel cache.
//!
//! Every expensive kernel object in this workspace — [`super::GTable`]
//! grids, [`super::GBatch`] coefficient tiles, [`super::PbTable`] DP
//! tables — is built once per key and then read many times. Before this
//! module existed each consumer carried its own `&mut self` `HashMap`
//! memo ([`super::PbCache`], `sim::sweep::GridCache`), which meant warm
//! tables could not be shared across engine worker threads, let alone
//! across the requests of a long-lived daemon.
//!
//! [`SharedCache`] is the one primitive those memos now rebase on:
//!
//! * **Thread-safe by sharding** — the key space is split over a fixed
//!   number of `Mutex`-guarded shards (selected by the key's hash), so
//!   concurrent lookups of *different* keys rarely contend while lookups
//!   of the *same* key serialize exactly enough to build each value once.
//! * **`Arc`-shared values** — a lookup returns `Arc<V>`; workers clone
//!   the handle and drop the lock before evaluating, so a warm table is
//!   shared across threads without copying and survives eviction for as
//!   long as any worker still holds it.
//! * **Size-bounded with deterministic LRU eviction** — each shard keeps
//!   a `BTreeMap<u64, K>` recency index from a monotone per-shard tick to
//!   the key last touched at that tick. When a shard exceeds its slice of
//!   the capacity it pops the *smallest* tick: eviction order is a pure
//!   function of the access sequence, never of `HashMap` iteration order
//!   (which the workspace's `deterministic-iteration` lint forbids in
//!   library code).
//! * **Counted** — hit / miss / eviction totals are kept in relaxed
//!   atomics and snapshot as one [`CacheStats`], the uniform stats type
//!   printed by the serve daemon's shutdown summary and recorded in
//!   `bench::runner` manifests.
//!
//! ## Determinism contract
//!
//! A cache can change *allocation* (who builds a table, when it is
//! dropped) but never *values*: [`SharedCache::get_or_try_insert_with`]
//! runs the builder under the shard lock, so a key is built at most once
//! per residency and every reader observes the same bits. Builders must
//! therefore be deterministic functions of the key — true of every
//! kernel builder in this workspace — and must not re-enter the cache
//! (they run under a shard lock; re-entry on the same shard would
//! deadlock). Eviction followed by a rebuild reproduces the identical
//! value, so bounded capacity also only changes allocation.

use crate::error::Result;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independent mutex-guarded buckets a cache is split into.
/// Eight keeps lock contention negligible at the pool sizes the engine
/// runs (≤ 16 workers) while keeping the per-shard capacity slices large
/// enough that LRU behaves like a single global list in practice.
pub const CACHE_SHARDS: usize = 8;

/// Uniform hit/miss/eviction snapshot shared by every cache in the
/// workspace ([`super::PbCache`], `sim::sweep::SharedGridCache`,
/// `mech::evaluator::ResponseCache`). Produced by [`SharedCache::stats`],
/// printed in the serve daemon's shutdown summary, and recorded by
/// `bench::runner` manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from a resident entry.
    pub hits: u64,
    /// Lookups that had to build (or rebuild after eviction) the value.
    pub misses: u64,
    /// Entries evicted to keep the cache inside its capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries (`0` means unbounded).
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups served warm, in `[0, 1]`; `0` before any
    /// lookup has happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Component-wise sum of two snapshots (capacity adds too): useful
    /// for reporting one line over several caches.
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            entries: self.entries + other.entries,
            capacity: self.capacity.saturating_add(other.capacity),
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            out,
            "hits {} misses {} evictions {} entries {}/{} hit-rate {:.1}%",
            self.hits,
            self.misses,
            self.evictions,
            self.entries,
            if self.capacity == 0 { "∞".to_string() } else { self.capacity.to_string() },
            100.0 * self.hit_rate()
        )
    }
}

/// One resident value plus the recency tick under which the shard's
/// order index currently files it.
#[derive(Debug)]
struct Slot<V> {
    value: Arc<V>,
    tick: u64,
}

/// One mutex-guarded bucket: the key→value map, the tick→key recency
/// index (a `BTreeMap` so eviction pops a *deterministic* least-recent
/// entry instead of iterating the `HashMap`), and the shard-local clock.
#[derive(Debug)]
struct Shard<K, V> {
    map: HashMap<K, Slot<V>>,
    order: BTreeMap<u64, K>,
    tick: u64,
}

impl<K, V> Shard<K, V> {
    fn new() -> Self {
        Shard { map: HashMap::new(), order: BTreeMap::new(), tick: 0 }
    }
}

/// A thread-safe, size-bounded, LRU-evicting map from `K` to `Arc<V>`.
///
/// See the [module docs](self) for the design; in short: sharded
/// `Mutex` buckets, `Arc`-shared values, deterministic least-recently-
/// used eviction, and [`CacheStats`] counters. The only insertion path
/// is [`get_or_try_insert_with`](Self::get_or_try_insert_with) — an
/// entry-style API that builds under the shard lock and therefore cannot
/// observe "entry missing right after insert".
#[derive(Debug)]
pub struct SharedCache<K, V> {
    shards: Box<[Mutex<Shard<K, V>>]>,
    /// Per-shard resident bound (`u64::MAX` when unbounded).
    shard_capacity: usize,
    /// Total capacity as configured (`0` = unbounded), for stats.
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Eq + Hash + Clone, V> SharedCache<K, V> {
    /// A cache holding at most `capacity` entries (`0` = unbounded),
    /// split over [`CACHE_SHARDS`] buckets.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, CACHE_SHARDS)
    }

    /// As [`new`](Self::new) with an explicit shard count (≥ 1); tests
    /// use one shard to make global LRU order exact.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let shard_capacity =
            if capacity == 0 { usize::MAX } else { capacity.div_ceil(shards).max(1) };
        SharedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            shard_capacity,
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Index of the bucket holding `key`. `DefaultHasher::new()` is
    /// deliberately *unseeded* (unlike `RandomState`), so the shard
    /// assignment — and with it the eviction trace — is reproducible
    /// across runs.
    fn shard_index(&self, key: &K) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    /// The value for `key`, building it with `build` on a miss (or after
    /// an eviction). The builder runs under the shard lock, so each key
    /// is built at most once per residency even under concurrent lookups
    /// of the same key; a builder error is propagated and caches nothing.
    pub fn get_or_try_insert_with(
        &self,
        key: K,
        build: impl FnOnce() -> Result<V>,
    ) -> Result<Arc<V>> {
        let mut shard = match self.shards[self.shard_index(&key)].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(slot) = shard.map.get_mut(&key) {
            let value = Arc::clone(&slot.value);
            let old_tick = slot.tick;
            slot.tick = tick;
            shard.order.remove(&old_tick);
            shard.order.insert(tick, key);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(value);
        }
        let value = Arc::new(build()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        shard.map.insert(key.clone(), Slot { value: Arc::clone(&value), tick });
        shard.order.insert(tick, key);
        while shard.map.len() > self.shard_capacity {
            // Deterministic LRU: pop the smallest tick in the recency
            // index, never an arbitrary HashMap entry.
            let Some((_, victim)) = shard.order.pop_first() else { break };
            shard.map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(value)
    }

    /// The resident value for `key` without building: bumps recency and
    /// the hit counter on success, counts a miss otherwise.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let mut shard = match self.shards[self.shard_index(key)].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(key) {
            Some(slot) => {
                let value = Arc::clone(&slot.value);
                let old_tick = slot.tick;
                slot.tick = tick;
                shard.order.remove(&old_tick);
                shard.order.insert(tick, key.clone());
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Number of resident entries (sums the shards; a racing insert can
    /// make this momentarily stale, which is fine for reporting).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| match s.lock() {
                Ok(guard) => guard.map.len(),
                Err(poisoned) => poisoned.into_inner().map.len(),
            })
            .sum()
    }

    /// Whether no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Configured total capacity (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drop every resident entry (counters are kept).
    pub fn clear(&self) {
        for s in self.shards.iter() {
            let mut shard = match s.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            shard.map.clear();
            shard.order.clear();
        }
    }

    /// Snapshot of the hit/miss/eviction counters and current size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;
    use std::thread;

    fn build(n: u64) -> Result<u64> {
        Ok(n * 10)
    }

    #[test]
    fn builds_once_then_hits() {
        let cache: SharedCache<u64, u64> = SharedCache::new(16);
        let a = cache.get_or_try_insert_with(7, || build(7)).unwrap();
        let b = cache.get_or_try_insert_with(7, || build(7)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the first build");
        assert_eq!(*a, 70);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.capacity, 16);
        assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
    }

    #[test]
    fn builder_error_caches_nothing() {
        let cache: SharedCache<u64, u64> = SharedCache::new(16);
        let err =
            cache.get_or_try_insert_with(1, || Err(crate::error::Error::EmptyProfile)).unwrap_err();
        assert_eq!(err, crate::error::Error::EmptyProfile);
        assert!(cache.is_empty());
        // The key is still buildable afterwards.
        assert_eq!(*cache.get_or_try_insert_with(1, || build(1)).unwrap(), 10);
    }

    #[test]
    fn evicts_least_recently_used_deterministically() {
        // One shard so the global LRU order is exact.
        let cache: SharedCache<u64, u64> = SharedCache::with_shards(2, 1);
        cache.get_or_try_insert_with(1, || build(1)).unwrap();
        cache.get_or_try_insert_with(2, || build(2)).unwrap();
        // Touch 1 so 2 becomes the least-recent entry.
        assert!(cache.get(&1).is_some());
        cache.get_or_try_insert_with(3, || build(3)).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&2).is_none(), "2 was least-recent and must be the victim");
        assert!(cache.get(&1).is_some());
        assert!(cache.get(&3).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn eviction_trace_is_reproducible() {
        // The same access sequence must evict the same keys, run after
        // run — DefaultHasher is unseeded, BTreeMap pops the min tick.
        let trace = |caches: &SharedCache<u64, u64>| -> Vec<bool> {
            for key in 0..32u64 {
                caches.get_or_try_insert_with(key, || build(key)).unwrap();
            }
            (0..32u64).map(|key| caches.get(&key).is_some()).collect()
        };
        let a = trace(&SharedCache::new(8));
        let b = trace(&SharedCache::new(8));
        assert_eq!(a, b);
        assert!(a.iter().filter(|present| **present).count() <= 8 + CACHE_SHARDS);
    }

    #[test]
    fn capacity_zero_is_unbounded() {
        let cache: SharedCache<u64, u64> = SharedCache::new(0);
        for key in 0..100 {
            cache.get_or_try_insert_with(key, || build(key)).unwrap();
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.stats().evictions, 0);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        let cache: Arc<SharedCache<u64, u64>> = Arc::new(SharedCache::new(64));
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    barrier.wait();
                    *cache.get_or_try_insert_with(42, || build(42)).unwrap()
                })
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), 420);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "the build must happen exactly once");
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn stats_display_and_merge() {
        let a = CacheStats { hits: 3, misses: 1, evictions: 0, entries: 1, capacity: 4 };
        let b = CacheStats { hits: 1, misses: 1, evictions: 1, entries: 1, capacity: 0 };
        let m = a.merged(b);
        assert_eq!((m.hits, m.misses, m.evictions, m.entries), (4, 2, 1, 2));
        let line = format!("{a}");
        assert!(line.contains("hits 3") && line.contains("entries 1/4"), "{line}");
        let unbounded = format!("{}", CacheStats::default());
        assert!(unbounded.contains("0/∞"), "{unbounded}");
    }
}
