//! Extensions the paper flags as future work (Section 5.1), implemented so
//! the library covers the model's natural next steps:
//!
//! * **Visit costs** — a fixed cost `t(x)` for traveling to site `x`
//!   (energy, time). Payoffs become `I(x, ℓ) − t(x)`; the IFD machinery
//!   carries over because the site value `ν_p(x) = f(x)·g_C(p(x)) − t(x)`
//!   is still strictly decreasing in `p(x)`.
//! * **Capacity-limited coverage** — a single player can consume at most
//!   `cap` units, so a site with `ℓ` visitors yields `min(ℓ·cap, f(x))` to
//!   the group. The paper's coverage is the `cap → ∞` limit.

use crate::error::{Error, Result};
use crate::numerics::binomial_pmf_vector;
use crate::payoff::PayoffContext;
use crate::policy::Congestion;
use crate::strategy::Strategy;
use crate::value::ValueProfile;
use serde::{Deserialize, Serialize};

/// An IFD solution for the visit-cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostIfd {
    /// Equilibrium strategy.
    pub strategy: Strategy,
    /// Common net value on the support.
    pub value: f64,
    /// Support size.
    pub support: usize,
}

/// Solve the IFD when visiting site `x` costs `costs[x]` in addition to
/// the congestion payoff: net payoff `f(x)·C(ℓ) − t(x)`.
///
/// Requires a non-degenerate policy and non-negative finite costs. Note
/// that with costs, the most *valuable* site need not be the most
/// *attractive*; the solver handles arbitrary orderings of net value.
pub fn solve_ifd_with_costs(
    c: &dyn Congestion,
    f: &ValueProfile,
    costs: &[f64],
    k: usize,
) -> Result<CostIfd> {
    if costs.len() != f.len() {
        return Err(Error::DimensionMismatch { strategy: costs.len(), profile: f.len() });
    }
    for (i, &t) in costs.iter().enumerate() {
        if !t.is_finite() || t < 0.0 {
            return Err(Error::InvalidArgument(format!(
                "cost {t} at site {i} must be finite and >= 0"
            )));
        }
    }
    let ctx = PayoffContext::new(c, k)?;
    if k > 1 && ctx.is_degenerate() {
        return Err(Error::DegeneratePolicy);
    }
    if k == 1 {
        // Single player: best net-value site.
        let best = (0..f.len())
            .max_by(|&a, &b| {
                let va = f.value(a) - costs[a];
                let vb = f.value(b) - costs[b];
                va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .ok_or(Error::EmptyProfile)?;
        return Ok(CostIfd {
            strategy: Strategy::delta(f.len(), best)?,
            value: f.value(best) - costs[best],
            support: 1,
        });
    }
    // Water-filling on the common net value nu: occupancy q_x solves
    // f(x)·g(q) − t(x) = nu, used only when the solo net value exceeds nu.
    // All g evaluations run through the batched kernel with one reused
    // scratch (the inner bisection is 64 evaluations per site per step).
    let kernel = ctx.kernel();
    let mut scratch = kernel.scratch();
    let mut occupancy = |nu: f64| -> Vec<f64> {
        let scratch = &mut scratch;
        (0..f.len())
            .map(|x| {
                let solo = f.value(x) * kernel.at_zero() - costs[x];
                if solo <= nu {
                    0.0
                } else {
                    let target = (nu + costs[x]) / f.value(x);
                    if target <= kernel.at_one() {
                        1.0
                    } else {
                        crate::numerics::bisect_decreasing(
                            |q| kernel.eval_with(scratch, q),
                            0.0,
                            1.0,
                            target,
                            64,
                        )
                    }
                }
            })
            .collect()
    };
    let g1 = kernel.at_one();
    let mut hi = (0..f.len()).map(|x| f.value(x) - costs[x]).fold(f64::NEG_INFINITY, f64::max);
    let mut lo = (0..f.len()).map(|x| f.value(x) * g1 - costs[x]).fold(f64::INFINITY, f64::min);
    let pad = 1e-12 * (1.0 + hi.abs() + lo.abs());
    hi += pad;
    lo -= pad;
    for _ in 0..90 {
        let mid = 0.5 * (lo + hi);
        let s: f64 = occupancy(mid).iter().sum();
        if s >= 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let nu = 0.5 * (lo + hi);
    let mut probs = occupancy(nu);
    let sum: f64 = probs.iter().sum();
    if sum <= 0.0 {
        return Err(Error::NoConvergence { what: "cost-ifd water-filling", residual: 1.0 });
    }
    for p in probs.iter_mut() {
        *p /= sum;
    }
    let strategy = Strategy::new(probs)?;
    let support = strategy.support_size(1e-12);
    Ok(CostIfd { strategy, value: nu, support })
}

/// Capacity-limited coverage: each player consumes at most `cap` units, so
/// a site visited by `ℓ` players contributes `min(ℓ·cap, f(x))`:
///
/// `Cover_cap(p) = Σ_x E[min(L_x·cap, f(x))]`, `L_x ~ Bin(k, p(x))`.
///
/// As `cap → ∞` this recovers the paper's coverage (Eq. 1).
pub fn capacity_coverage(f: &ValueProfile, p: &Strategy, k: usize, cap: f64) -> Result<f64> {
    if f.len() != p.len() {
        return Err(Error::DimensionMismatch { strategy: p.len(), profile: f.len() });
    }
    if k == 0 {
        return Err(Error::InvalidPlayerCount { k });
    }
    if !(cap.is_finite() && cap > 0.0) {
        return Err(Error::InvalidArgument(format!(
            "capacity must be positive and finite, got {cap}"
        )));
    }
    let mut total = 0.0;
    for (x, &fx) in f.values().iter().enumerate() {
        let pmf = binomial_pmf_vector(k, p.prob(x));
        let mut site = 0.0;
        for (ell, &prob) in pmf.iter().enumerate() {
            site += prob * (ell as f64 * cap).min(fx);
        }
        total += site;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::coverage;
    use crate::ifd::solve_ifd;
    use crate::policy::{Exclusive, Sharing};

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn zero_costs_recover_plain_ifd() {
        let f = ValueProfile::new(vec![1.0, 0.5, 0.25]).unwrap();
        let k = 3;
        for c in [&Exclusive as &dyn Congestion, &Sharing] {
            let plain = solve_ifd(c, &f, k).unwrap();
            let with_costs = solve_ifd_with_costs(c, &f, &[0.0; 3], k).unwrap();
            let d = plain.strategy.linf_distance(&with_costs.strategy).unwrap();
            assert!(d < 1e-8, "{}: distance {d}", c.name());
            close(plain.value, with_costs.value, 1e-8);
        }
    }

    #[test]
    fn costly_site_loses_visitors() {
        let f = ValueProfile::new(vec![1.0, 1.0]).unwrap();
        let k = 2;
        let free = solve_ifd_with_costs(&Exclusive, &f, &[0.0, 0.0], k).unwrap();
        close(free.strategy.prob(0), 0.5, 1e-9);
        let taxed = solve_ifd_with_costs(&Exclusive, &f, &[0.0, 0.3], k).unwrap();
        assert!(taxed.strategy.prob(1) < 0.5, "taxed site kept {}", taxed.strategy.prob(1));
        assert!(taxed.strategy.prob(0) > 0.5);
    }

    #[test]
    fn prohibitive_cost_empties_a_site() {
        let f = ValueProfile::new(vec![1.0, 0.9]).unwrap();
        let k = 2;
        let ifd = solve_ifd_with_costs(&Exclusive, &f, &[0.0, 5.0], k).unwrap();
        assert_eq!(ifd.support, 1);
        close(ifd.strategy.prob(0), 1.0, 1e-9);
    }

    #[test]
    fn costs_can_reverse_attractiveness() {
        // Site 1 is more valuable but so expensive that site 2 dominates.
        let f = ValueProfile::new(vec![1.0, 0.8]).unwrap();
        let ifd = solve_ifd_with_costs(&Exclusive, &f, &[0.9, 0.0], 1).unwrap();
        assert_eq!(ifd.strategy.prob(1), 1.0);
        close(ifd.value, 0.8, 1e-12);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn equilibrium_equalizes_net_values() {
        let f = ValueProfile::new(vec![1.0, 0.7, 0.4]).unwrap();
        let costs = [0.05, 0.02, 0.0];
        let k = 4;
        let ifd = solve_ifd_with_costs(&Sharing, &f, &costs, k).unwrap();
        let ctx = PayoffContext::new(&Sharing, k).unwrap();
        for x in 0..3 {
            if ifd.strategy.prob(x) > 1e-9 {
                let net = f.value(x) * ctx.g(ifd.strategy.prob(x)).unwrap() - costs[x];
                close(net, ifd.value, 1e-7);
            }
        }
    }

    #[test]
    fn cost_solver_validates_inputs() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        assert!(solve_ifd_with_costs(&Sharing, &f, &[0.0], 2).is_err());
        assert!(solve_ifd_with_costs(&Sharing, &f, &[0.0, -1.0], 2).is_err());
        assert!(solve_ifd_with_costs(&Sharing, &f, &[0.0, f64::NAN], 2).is_err());
        assert!(solve_ifd_with_costs(&crate::policy::Constant, &f, &[0.0, 0.0], 2).is_err());
    }

    #[test]
    fn huge_capacity_recovers_plain_coverage() {
        let f = ValueProfile::new(vec![1.0, 0.6, 0.2]).unwrap();
        let p = Strategy::new(vec![0.5, 0.3, 0.2]).unwrap();
        let k = 4;
        let plain = coverage(&f, &p, k).unwrap();
        let capped = capacity_coverage(&f, &p, k, 1e6).unwrap();
        close(plain, capped, 1e-9);
    }

    #[test]
    fn capacity_coverage_monotone_in_cap() {
        let f = ValueProfile::new(vec![1.0, 0.6]).unwrap();
        let p = Strategy::new(vec![0.6, 0.4]).unwrap();
        let k = 3;
        let mut prev = 0.0;
        for cap in [0.05, 0.1, 0.25, 0.5, 1.0] {
            let cov = capacity_coverage(&f, &p, k, cap).unwrap();
            assert!(cov >= prev - 1e-12, "cap {cap}: {cov} < {prev}");
            prev = cov;
        }
    }

    #[test]
    fn tiny_capacity_makes_spreading_less_valuable() {
        // With a tiny per-player capacity the group extracts ~ell*cap per
        // site, so coverage ~ k*cap regardless of the strategy.
        let f = ValueProfile::new(vec![1.0, 1.0]).unwrap();
        let k = 2;
        let cap = 0.01;
        let spread = capacity_coverage(&f, &Strategy::uniform(2).unwrap(), k, cap).unwrap();
        let stacked = capacity_coverage(&f, &Strategy::delta(2, 0).unwrap(), k, cap).unwrap();
        close(spread, k as f64 * cap, 1e-9);
        close(stacked, k as f64 * cap, 1e-9);
    }

    #[test]
    fn capacity_changes_the_optimal_spread() {
        // Under tight capacity, stacking players on the top site stops
        // paying off sooner: coverage of the point mass saturates at cap*k
        // vs f(1).
        let f = ValueProfile::new(vec![1.0, 0.9]).unwrap();
        let k = 4;
        let cap = 0.25; // 4 players can just consume site 1
        let stacked = capacity_coverage(&f, &Strategy::delta(2, 0).unwrap(), k, cap).unwrap();
        let spread = capacity_coverage(&f, &Strategy::uniform(2).unwrap(), k, cap).unwrap();
        assert!(spread < stacked, "with cap*k = f(1), stacking is safe: {spread} vs {stacked}");
    }

    #[test]
    fn capacity_coverage_validates() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let p3 = Strategy::uniform(3).unwrap();
        let p2 = Strategy::uniform(2).unwrap();
        assert!(capacity_coverage(&f, &p3, 2, 1.0).is_err());
        assert!(capacity_coverage(&f, &p2, 0, 1.0).is_err());
        assert!(capacity_coverage(&f, &p2, 2, 0.0).is_err());
        assert!(capacity_coverage(&f, &p2, 2, f64::INFINITY).is_err());
    }
}
