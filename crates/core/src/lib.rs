//! # dispersal-core
//!
//! A faithful implementation of the dispersal game of Collet & Korman,
//! *"Intense Competition can Drive Selfish Explorers to Optimize Coverage"*
//! (SPAA 2018, arXiv:1805.01319).
//!
//! `k` selfish players simultaneously choose among `M` sites of values
//! `f(1) ≥ … ≥ f(M)` without coordination. A *congestion reward policy*
//! `I(x, ℓ) = f(x)·C(ℓ)` determines the payoff of each of the `ℓ` players
//! landing on site `x`. The group-level performance of a symmetric strategy
//! `p` is its expected *coverage* `Cover(p) = Σ_x f(x)(1 − (1 − p(x))^k)`.
//!
//! The paper's central findings, all of which this crate lets you verify
//! numerically:
//!
//! * the **exclusive policy** (`C(1) = 1`, `C(ℓ) = 0` for `ℓ ≥ 2`) has a
//!   unique symmetric equilibrium [`sigma_star::sigma_star`] which is an
//!   ESS ([`ess`]) **and** is the unique coverage-optimal symmetric
//!   strategy ([`optimal`]), so its price of anarchy is exactly 1
//!   ([`spoa`]);
//! * every other congestion policy has `SPoA > 1` (Theorem 6).
//!
//! ## Quick example
//!
//! ```
//! use dispersal_core::prelude::*;
//!
//! // Two players over two sites of values (1.0, 0.3) — the left panel of
//! // the paper's Figure 1.
//! let f = ValueProfile::new(vec![1.0, 0.3])?;
//! let k = 2;
//!
//! // The ESS / equilibrium of the exclusive policy ...
//! let star = sigma_star(&f, k)?;
//! // ... is exactly the coverage-optimal symmetric strategy (Theorem 4):
//! let opt = optimal_coverage(&f, k)?;
//! let gap = (coverage(&f, &star.strategy, k)? - opt.coverage).abs();
//! assert!(gap < 1e-9);
//!
//! // The sharing policy's equilibrium covers strictly less (Theorem 6):
//! let ifd_share = solve_ifd(&Sharing, &f, k)?;
//! assert!(coverage(&f, &ifd_share.strategy, k)? < opt.coverage);
//! # Ok::<(), dispersal_core::Error>(())
//! ```

#![warn(missing_docs)]

pub mod coverage;
pub mod error;
pub mod ess;
pub mod extensions;
pub mod ifd;
pub mod kernel;
pub mod numerics;
pub mod optimal;
pub mod payoff;
pub mod policy;
pub mod pure;
pub mod sigma_star;
pub mod simd;
pub mod simplex;
pub mod spoa;
pub mod strategy;
pub mod two_by_two;
pub mod value;
pub mod welfare;

pub use error::{Error, Result};

/// One-line imports for the common workflow.
pub mod prelude {
    pub use crate::coverage::{
        coverage, coverage_many, coverage_probs, coverage_profile, miss_mass, observation1_bound,
    };
    pub use crate::error::{Error, Result};
    pub use crate::ess::{check_mutant, invasion_barrier, probe_ess_k, EssReport, MutantVerdict};
    pub use crate::extensions::{capacity_coverage, solve_ifd_with_costs, CostIfd};
    pub use crate::ifd::{solve_ifd, solve_ifd_allow_degenerate, Ifd};
    pub use crate::kernel::{GScratch, GTable, GridSpec};
    pub use crate::optimal::{optimal_coverage, optimal_coverage_gradient, OptimalCoverage};
    pub use crate::payoff::PayoffContext;
    pub use crate::policy::{
        Congestion, Constant, Cooperative, Exclusive, LinearDecay, PowerLaw, Sharing,
        TableCongestion, TwoLevel,
    };
    pub use crate::pure::{
        best_response_dynamics, enumerate_pure_equilibria, is_pure_nash, rosenthal_potential,
        PureEquilibria, PureProfile,
    };
    pub use crate::sigma_star::{sigma_star, SigmaStar};
    pub use crate::spoa::{spoa, spoa_supremum_search, SpoaPoint};
    pub use crate::strategy::{Strategy, StrategySampler};
    pub use crate::two_by_two::{solve_two_by_two, TwoByTwo};
    pub use crate::value::ValueProfile;
    pub use crate::welfare::{welfare_optimum, WelfareOptimum};
}
