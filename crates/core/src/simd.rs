//! Runtime-dispatched SIMD kernels for the evaluation hot loops.
//!
//! The 4-wide *scalar* unrolls that [`crate::kernel`] has always run —
//! the `GEMM_BLOCK` policy-major matvec, the fused Bernstein basis
//! walk, and the Poisson–binomial rank-update convolution — graduate
//! here to explicit x86-64 AVX2/FMA intrinsics. The scalar paths are
//! kept as always-compiled fallbacks (they *are* the original kernels,
//! moved verbatim) and every AVX2 path is reachable only through
//! runtime feature detection, so the same binary runs everywhere.
//!
//! ## Lane selection
//!
//! [`active_lane`] decides once per process, in order:
//!
//! 1. the `force-scalar` cargo feature, if compiled in, pins
//!    [`Lane::Scalar`];
//! 2. the `DISPERSAL_FORCE_SCALAR=1` environment variable (read once)
//!    pins [`Lane::Scalar`] — the debugging/CI switch;
//! 3. `is_x86_feature_detected!("avx2") && ("fma")` picks
//!    [`Lane::Avx2`];
//! 4. anything else (non-x86-64 targets, Miri, older CPUs) runs
//!    [`Lane::Scalar`].
//!
//! ## Numerical contracts
//!
//! * [`convolve_step`] is **bit-identical** across lanes: the scalar
//!   recurrence `pmf[j]·(1−p) + pmf[j−1]·p` is elementwise over the
//!   *previous* values, so a plain (non-FMA) vectorization performs the
//!   exact same two roundings per element. Every bitwise `PbTable`
//!   contract therefore holds on either lane, and `simd_seam` tests
//!   assert the lanes agree bit-for-bit.
//! * [`gemv_block4`], [`fused_fill`], and [`fused_dot`] feed only the
//!   *fused* evaluation paths, whose documented contract is agreement
//!   with the scalar reference to ≤ 1e-13 × scale — FMA contraction and
//!   blocked re-association stay far inside that bound (`O(k·ε)`), and
//!   the seam tests enforce it directly. The bit-identical *reference*
//!   paths (`fill_pmf`, the Kahan dots, the contractive `PbTable`
//!   removes) never dispatch through this module at all.
//!
//! Determinism caveat: lane choice is per-process state, like a build
//! flag — a fused-path result archived on an AVX2 host differs from a
//! scalar host's in the last bits (within contract). Reference-path
//! outputs are identical everywhere.

use std::sync::OnceLock;

/// Width shared by the blocked GEMV and `GBatch`'s row padding (4 f64
/// lanes = one 256-bit AVX2 register per accumulator).
pub const GEMV_BLOCK: usize = 4;

/// Instruction lane the dispatched kernels run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Always-compiled scalar fallback (the original 4-wide unrolls).
    Scalar,
    /// x86-64 AVX2 + FMA intrinsics, runtime-detected.
    Avx2,
}

impl Lane {
    /// Stable name for logs and bench labels.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Scalar => "scalar",
            Lane::Avx2 => "avx2",
        }
    }
}

/// Whether the `DISPERSAL_FORCE_SCALAR` environment variable (or the
/// `force-scalar` cargo feature) pins the scalar lane. Read once.
pub fn force_scalar() -> bool {
    if cfg!(feature = "force-scalar") {
        return true;
    }
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| {
        std::env::var("DISPERSAL_FORCE_SCALAR")
            .map(|v| matches!(v.trim(), "1" | "true" | "yes" | "on"))
            .unwrap_or(false)
    })
}

/// Whether this host can run the AVX2 lane (detection only — ignores
/// [`force_scalar`]; use [`active_lane`] for the dispatch decision).
pub fn avx2_available() -> bool {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    {
        false
    }
}

/// The lane the dispatched kernels use, decided once per process.
pub fn active_lane() -> Lane {
    static LANE: OnceLock<Lane> = OnceLock::new();
    *LANE.get_or_init(
        || {
            if force_scalar() || !avx2_available() {
                Lane::Scalar
            } else {
                Lane::Avx2
            }
        },
    )
}

// ---------------------------------------------------------------------------
// Blocked GEMV (GBatch's policy-major matvec)
// ---------------------------------------------------------------------------

/// `out[r] = factor · Σ_j basis[j] · matrix[r·cols + j]` for `r <
/// rows`, over a row-major matrix zero-padded to a multiple of
/// [`GEMV_BLOCK`] rows. Dispatched on [`active_lane`]; fused-path
/// contract (≤ 1e-13 × scale vs the scalar lane).
pub fn gemv_block4(
    matrix: &[f64],
    cols: usize,
    rows: usize,
    basis: &[f64],
    factor: f64,
    out: &mut [f64],
) {
    match active_lane() {
        Lane::Scalar => gemv_block4_scalar(matrix, cols, rows, basis, factor, out),
        Lane::Avx2 => gemv_block4_avx2(matrix, cols, rows, basis, factor, out),
    }
}

/// Scalar lane of [`gemv_block4`]: the original `GEMM_BLOCK` unroll —
/// four independent accumulator chains per row block.
pub fn gemv_block4_scalar(
    matrix: &[f64],
    cols: usize,
    rows: usize,
    basis: &[f64],
    factor: f64,
    out: &mut [f64],
) {
    debug_assert_eq!(basis.len(), cols);
    let mut r = 0;
    while r < rows {
        let base = r * cols;
        let block = &matrix[base..base + GEMV_BLOCK * cols];
        let (r0, rest) = block.split_at(cols);
        let (r1, rest) = rest.split_at(cols);
        let (r2, r3) = rest.split_at(cols);
        let mut acc = [0.0f64; GEMV_BLOCK];
        for (j, &b) in basis.iter().enumerate() {
            acc[0] += b * r0[j];
            acc[1] += b * r1[j];
            acc[2] += b * r2[j];
            acc[3] += b * r3[j];
        }
        for (lane, &a) in acc.iter().enumerate() {
            if r + lane < rows {
                out[r + lane] = factor * a;
            }
        }
        r += GEMV_BLOCK;
    }
}

/// AVX2 + FMA lane of [`gemv_block4`] (one 256-bit accumulator per row
/// of the block, shared basis load). Falls back to the scalar lane when
/// the host lacks AVX2/FMA, so it is always safe to call — seam tests
/// use it to compare lanes directly regardless of the dispatch choice.
pub fn gemv_block4_avx2(
    matrix: &[f64],
    cols: usize,
    rows: usize,
    basis: &[f64],
    factor: f64,
    out: &mut [f64],
) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if avx2_available() {
        debug_assert_eq!(basis.len(), cols);
        debug_assert!(matrix.len() >= rows.div_ceil(GEMV_BLOCK) * GEMV_BLOCK * cols);
        // SAFETY: AVX2 + FMA presence was runtime-checked above; slice
        // bounds are asserted by the debug checks and upheld by the
        // callers' padded layouts (checked indexing inside on release
        // paths would defeat the kernel, so the unsafe block's contract
        // is the padded `rows.div_ceil(4)·4 × cols` matrix shape).
        unsafe { avx2::gemv_block4(matrix, cols, rows, basis, factor, out) };
        return;
    }
    gemv_block4_scalar(matrix, cols, rows, basis, factor, out);
}

// ---------------------------------------------------------------------------
// Fused Bernstein basis walk (fill and fused dot)
// ---------------------------------------------------------------------------

/// Fill `basis` with the fused-path Bernstein column: `basis[mode] =
/// b_mode`, then the pre-divided two-sided ratio walk (`up[j]·ratio`
/// upward, `down[j]·inv_ratio` downward). Dispatched on
/// [`active_lane`]; fused-path contract.
pub fn fused_fill(
    basis: &mut [f64],
    up: &[f64],
    down: &[f64],
    mode: usize,
    b_mode: f64,
    ratio: f64,
    inv_ratio: f64,
) {
    match active_lane() {
        Lane::Scalar => fused_fill_scalar(basis, up, down, mode, b_mode, ratio, inv_ratio),
        Lane::Avx2 => fused_fill_avx2(basis, up, down, mode, b_mode, ratio, inv_ratio),
    }
}

/// Scalar lane of [`fused_fill`]: the original serial walk.
pub fn fused_fill_scalar(
    basis: &mut [f64],
    up: &[f64],
    down: &[f64],
    mode: usize,
    b_mode: f64,
    ratio: f64,
    inv_ratio: f64,
) {
    let n = basis.len() - 1;
    basis[mode] = b_mode;
    for j in mode..n {
        basis[j + 1] = basis[j] * up[j] * ratio;
    }
    for j in (0..mode).rev() {
        basis[j] = basis[j + 1] * down[j] * inv_ratio;
    }
}

/// AVX2 + FMA lane of [`fused_fill`]: 4-step factor chunks turned into
/// in-register prefix products. Falls back to scalar off-AVX2 hosts.
pub fn fused_fill_avx2(
    basis: &mut [f64],
    up: &[f64],
    down: &[f64],
    mode: usize,
    b_mode: f64,
    ratio: f64,
    inv_ratio: f64,
) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if avx2_available() {
        // SAFETY: AVX2 + FMA runtime-checked; `up`/`down` have length
        // ≥ n and `basis` length n + 1 by the kernel layouts.
        unsafe { avx2::fused_fill(basis, up, down, mode, b_mode, ratio, inv_ratio) };
        return;
    }
    fused_fill_scalar(basis, up, down, mode, b_mode, ratio, inv_ratio);
}

/// The fused evaluation walk with the dot product fused in: returns
/// `Σ_j b_j · coeffs[j]` where `b` is the column [`fused_fill`] would
/// write, without materializing it. Dispatched on [`active_lane`];
/// fused-path contract.
pub fn fused_dot(
    coeffs: &[f64],
    up: &[f64],
    down: &[f64],
    mode: usize,
    b_mode: f64,
    ratio: f64,
    inv_ratio: f64,
) -> f64 {
    match active_lane() {
        Lane::Scalar => fused_dot_scalar(coeffs, up, down, mode, b_mode, ratio, inv_ratio),
        Lane::Avx2 => fused_dot_avx2(coeffs, up, down, mode, b_mode, ratio, inv_ratio),
    }
}

/// Scalar lane of [`fused_dot`]: the original `GTable::eval_fused`
/// two-sided walk with plain summation.
pub fn fused_dot_scalar(
    coeffs: &[f64],
    up: &[f64],
    down: &[f64],
    mode: usize,
    b_mode: f64,
    ratio: f64,
    inv_ratio: f64,
) -> f64 {
    let n = coeffs.len() - 1;
    let mut sum = b_mode * coeffs[mode];
    let mut b = b_mode;
    for j in mode..n {
        b = b * up[j] * ratio;
        sum += b * coeffs[j + 1];
    }
    b = b_mode;
    for j in (0..mode).rev() {
        b = b * down[j] * inv_ratio;
        sum += b * coeffs[j];
    }
    sum
}

/// AVX2 + FMA lane of [`fused_dot`]: prefix-product chunks with an FMA
/// dot accumulator. Falls back to scalar off-AVX2 hosts.
pub fn fused_dot_avx2(
    coeffs: &[f64],
    up: &[f64],
    down: &[f64],
    mode: usize,
    b_mode: f64,
    ratio: f64,
    inv_ratio: f64,
) -> f64 {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if avx2_available() {
        // SAFETY: AVX2 + FMA runtime-checked; `up`/`down` have length
        // ≥ n = coeffs.len() − 1 by the kernel layouts.
        return unsafe { avx2::fused_dot(coeffs, up, down, mode, b_mode, ratio, inv_ratio) };
    }
    fused_dot_scalar(coeffs, up, down, mode, b_mode, ratio, inv_ratio)
}

// ---------------------------------------------------------------------------
// Poisson–binomial convolution step (bit-identical lanes)
// ---------------------------------------------------------------------------

/// One in-place Bernoulli convolution step (fold `Bernoulli(p)` into a
/// `count`-coin PMF). Dispatched on [`active_lane`]; **bit-identical**
/// across lanes — see the module docs.
pub fn convolve_step(pmf: &mut [f64], count: usize, p: f64) {
    match active_lane() {
        Lane::Scalar => convolve_step_scalar(pmf, count, p),
        Lane::Avx2 => convolve_step_avx2(pmf, count, p),
    }
}

/// Scalar lane of [`convolve_step`]: the original downward recurrence.
pub fn convolve_step_scalar(pmf: &mut [f64], count: usize, p: f64) {
    debug_assert!(pmf.len() >= count + 2);
    for j in (0..=count + 1).rev() {
        let stay = if j <= count { pmf[j] * (1.0 - p) } else { 0.0 };
        let step = if j > 0 { pmf[j - 1] * p } else { 0.0 };
        pmf[j] = stay + step;
    }
}

/// AVX2 lane of [`convolve_step`]. Deliberately **without FMA**: each
/// element is `pmf[j]·(1−p) + pmf[j−1]·p` with the same two roundings
/// as the scalar lane, so the lanes agree bit-for-bit (asserted by the
/// seam tests). Falls back to scalar off-AVX2 hosts.
pub fn convolve_step_avx2(pmf: &mut [f64], count: usize, p: f64) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if avx2_available() {
        debug_assert!(pmf.len() >= count + 2);
        // SAFETY: AVX2 runtime-checked; buffer length asserted above
        // (callers guarantee `pmf.len() ≥ count + 2`).
        unsafe { avx2::convolve_step(pmf, count, p) };
        return;
    }
    convolve_step_scalar(pmf, count, p);
}

// ---------------------------------------------------------------------------
// AVX2 + FMA implementations
// ---------------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", not(miri)))]
mod avx2 {
    use super::GEMV_BLOCK;
    use core::arch::x86_64::*;

    /// In-register prefix product of a 4-lane factor vector:
    /// `[f0, f0·f1, f0·f1·f2, f0·f1·f2·f3]`.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn cumprod4(f: __m256d) -> __m256d {
        let ones = _mm256_set1_pd(1.0);
        // [1, f0, f1, f2]
        let shifted = _mm256_permute4x64_pd(f, 0b10_01_00_00);
        let s1 = _mm256_blend_pd(shifted, ones, 0b0001);
        // [f0, f0f1, f1f2, f2f3]
        let p1 = _mm256_mul_pd(f, s1);
        // [1, 1, f0, f0f1]
        let s2 = _mm256_permute2f128_pd(ones, p1, 0x20);
        _mm256_mul_pd(p1, s2)
    }

    /// Reverse the four lanes: `[v3, v2, v1, v0]`.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn reverse4(v: __m256d) -> __m256d {
        _mm256_permute4x64_pd(v, 0b00_01_10_11)
    }

    /// Spill a vector to an array (lane extraction / ordered horizontal
    /// reduction without shuffle gymnastics).
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn to_array(v: __m256d) -> [f64; 4] {
        let mut out = [0.0f64; 4];
        _mm256_storeu_pd(out.as_mut_ptr(), v);
        out
    }

    /// # Safety
    /// AVX2 + FMA must be available; `matrix` holds
    /// `rows.div_ceil(4)·4 × cols` elements, `basis` holds `cols`,
    /// `out` holds ≥ `rows`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn gemv_block4(
        matrix: &[f64],
        cols: usize,
        rows: usize,
        basis: &[f64],
        factor: f64,
        out: &mut [f64],
    ) {
        let bp = basis.as_ptr();
        let mut r = 0;
        while r < rows {
            let row0 = matrix.as_ptr().add(r * cols);
            let row1 = row0.add(cols);
            let row2 = row1.add(cols);
            let row3 = row2.add(cols);
            let mut acc0 = _mm256_setzero_pd();
            let mut acc1 = _mm256_setzero_pd();
            let mut acc2 = _mm256_setzero_pd();
            let mut acc3 = _mm256_setzero_pd();
            let mut j = 0;
            while j + 4 <= cols {
                let b = _mm256_loadu_pd(bp.add(j));
                acc0 = _mm256_fmadd_pd(b, _mm256_loadu_pd(row0.add(j)), acc0);
                acc1 = _mm256_fmadd_pd(b, _mm256_loadu_pd(row1.add(j)), acc1);
                acc2 = _mm256_fmadd_pd(b, _mm256_loadu_pd(row2.add(j)), acc2);
                acc3 = _mm256_fmadd_pd(b, _mm256_loadu_pd(row3.add(j)), acc3);
                j += 4;
            }
            let mut sums = [0.0f64; GEMV_BLOCK];
            for (lane, acc) in [acc0, acc1, acc2, acc3].into_iter().enumerate() {
                let t = to_array(acc);
                sums[lane] = (t[0] + t[1]) + (t[2] + t[3]);
            }
            for jj in j..cols {
                let b = *bp.add(jj);
                sums[0] += b * *row0.add(jj);
                sums[1] += b * *row1.add(jj);
                sums[2] += b * *row2.add(jj);
                sums[3] += b * *row3.add(jj);
            }
            for (lane, &s) in sums.iter().enumerate() {
                if r + lane < rows {
                    out[r + lane] = factor * s;
                }
            }
            r += GEMV_BLOCK;
        }
    }

    /// # Safety
    /// AVX2 + FMA must be available; `up`/`down` hold ≥ `basis.len()−1`
    /// factors.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn fused_fill(
        basis: &mut [f64],
        up: &[f64],
        down: &[f64],
        mode: usize,
        b_mode: f64,
        ratio: f64,
        inv_ratio: f64,
    ) {
        let n = basis.len() - 1;
        basis[mode] = b_mode;
        // Upward: basis[j+1] = basis[j] · up[j] · ratio, j = mode..n.
        let rv = _mm256_set1_pd(ratio);
        let mut b = b_mode;
        let mut j = mode;
        while j + 4 <= n {
            let f = _mm256_mul_pd(_mm256_loadu_pd(up.as_ptr().add(j)), rv);
            let c = cumprod4(f);
            let bv = _mm256_mul_pd(_mm256_set1_pd(b), c);
            _mm256_storeu_pd(basis.as_mut_ptr().add(j + 1), bv);
            b = to_array(bv)[3];
            j += 4;
        }
        while j < n {
            b = b * up[j] * ratio;
            basis[j + 1] = b;
            j += 1;
        }
        // Downward: basis[j] = basis[j+1] · down[j] · inv_ratio,
        // j = mode−1..0, processed in descending 4-chunks.
        let iv = _mm256_set1_pd(inv_ratio);
        b = b_mode;
        let mut hi = mode; // next write is basis[hi - 1]
        while hi >= 4 {
            // Factors for indices hi−1, hi−2, hi−3, hi−4 in walk order.
            let f_mem = _mm256_mul_pd(_mm256_loadu_pd(down.as_ptr().add(hi - 4)), iv);
            let c = cumprod4(reverse4(f_mem));
            let bv_desc = _mm256_mul_pd(_mm256_set1_pd(b), c);
            // Back to memory order for the store at basis[hi−4..hi].
            _mm256_storeu_pd(basis.as_mut_ptr().add(hi - 4), reverse4(bv_desc));
            b = to_array(bv_desc)[3];
            hi -= 4;
        }
        while hi > 0 {
            b = b * down[hi - 1] * inv_ratio;
            basis[hi - 1] = b;
            hi -= 1;
        }
    }

    /// # Safety
    /// AVX2 + FMA must be available; `up`/`down` hold ≥
    /// `coeffs.len()−1` factors.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn fused_dot(
        coeffs: &[f64],
        up: &[f64],
        down: &[f64],
        mode: usize,
        b_mode: f64,
        ratio: f64,
        inv_ratio: f64,
    ) -> f64 {
        let n = coeffs.len() - 1;
        let mut sum = b_mode * coeffs[mode];
        // Upward walk with the dot fused in.
        let rv = _mm256_set1_pd(ratio);
        let mut acc = _mm256_setzero_pd();
        let mut b = b_mode;
        let mut j = mode;
        while j + 4 <= n {
            let f = _mm256_mul_pd(_mm256_loadu_pd(up.as_ptr().add(j)), rv);
            let c = cumprod4(f);
            let bv = _mm256_mul_pd(_mm256_set1_pd(b), c);
            acc = _mm256_fmadd_pd(bv, _mm256_loadu_pd(coeffs.as_ptr().add(j + 1)), acc);
            b = to_array(bv)[3];
            j += 4;
        }
        while j < n {
            b = b * up[j] * ratio;
            sum += b * coeffs[j + 1];
            j += 1;
        }
        // Downward walk.
        let iv = _mm256_set1_pd(inv_ratio);
        b = b_mode;
        let mut hi = mode;
        while hi >= 4 {
            let f_mem = _mm256_mul_pd(_mm256_loadu_pd(down.as_ptr().add(hi - 4)), iv);
            let c = cumprod4(reverse4(f_mem));
            let bv_desc = _mm256_mul_pd(_mm256_set1_pd(b), c);
            acc = _mm256_fmadd_pd(
                reverse4(bv_desc),
                _mm256_loadu_pd(coeffs.as_ptr().add(hi - 4)),
                acc,
            );
            b = to_array(bv_desc)[3];
            hi -= 4;
        }
        while hi > 0 {
            b = b * down[hi - 1] * inv_ratio;
            sum += b * coeffs[hi - 1];
            hi -= 1;
        }
        let t = to_array(acc);
        sum + ((t[0] + t[1]) + (t[2] + t[3]))
    }

    /// # Safety
    /// AVX2 must be available; `pmf.len() ≥ count + 2`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn convolve_step(pmf: &mut [f64], count: usize, p: f64) {
        // Top boundary (j = count + 1): stay term is zero.
        let mut j = count + 1;
        pmf[j] = pmf[j - 1] * p;
        j -= 1;
        // Vector middle: elements [j−3 ..= j] need j ≤ count (stay term
        // reads pmf[j]) and j ≥ 4 (step term reads pmf[j−4] for the
        // lowest lane). Plain mul/mul/add — NOT fmadd — so each element
        // gets the scalar lane's exact two roundings.
        let pv = _mm256_set1_pd(p);
        let sv = _mm256_set1_pd(1.0 - p);
        let base = pmf.as_mut_ptr();
        while j >= 4 {
            let stay = _mm256_loadu_pd(base.add(j - 3));
            let step = _mm256_loadu_pd(base.add(j - 4));
            let res = _mm256_add_pd(_mm256_mul_pd(stay, sv), _mm256_mul_pd(step, pv));
            _mm256_storeu_pd(base.add(j - 3), res);
            j -= 4;
        }
        // Scalar bottom (j ..= 0), including the j = 0 no-step boundary.
        loop {
            let stay = pmf[j] * (1.0 - p);
            let step = if j > 0 { pmf[j - 1] * p } else { 0.0 };
            pmf[j] = stay + step;
            if j == 0 {
                return;
            }
            j -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_name_is_stable() {
        assert_eq!(Lane::Scalar.name(), "scalar");
        assert_eq!(Lane::Avx2.name(), "avx2");
        // Whatever the host picks, the choice is cached and consistent.
        assert_eq!(active_lane(), active_lane());
    }

    #[test]
    fn convolve_lanes_are_bit_identical() {
        // Deterministic ugly probabilities; bitwise comparison per step.
        let mut a = vec![0.0f64; 34];
        let mut b = vec![0.0f64; 34];
        a[0] = 1.0;
        b[0] = 1.0;
        for i in 0..32usize {
            let p = ((i as f64) * 0.619_f64).fract();
            convolve_step_scalar(&mut a, i, p);
            convolve_step_avx2(&mut b, i, p);
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "coin {i}");
            }
        }
    }

    #[test]
    fn gemv_lanes_agree_within_contract() {
        let rows = 7usize;
        let cols = 19usize;
        let padded = rows.div_ceil(GEMV_BLOCK) * GEMV_BLOCK;
        let mut matrix = vec![0.0f64; padded * cols];
        for (i, m) in matrix.iter_mut().enumerate().take(rows * cols) {
            *m = ((i as f64) * 0.37).sin();
        }
        let basis: Vec<f64> = (0..cols).map(|j| ((j as f64) * 0.51).cos()).collect();
        let mut out_s = vec![0.0f64; rows];
        let mut out_v = vec![0.0f64; rows];
        gemv_block4_scalar(&matrix, cols, rows, &basis, 2.0, &mut out_s);
        gemv_block4_avx2(&matrix, cols, rows, &basis, 2.0, &mut out_v);
        for (s, v) in out_s.iter().zip(out_v.iter()) {
            assert!((s - v).abs() <= 1e-13 * s.abs().max(1.0), "{s} vs {v}");
        }
    }
}
