//! The closed-form strategy σ⋆ of Section 2.1: the IFD of the exclusive
//! policy, which is simultaneously the unique coverage-optimal symmetric
//! strategy (Theorem 4) and an ESS (Theorem 3).
//!
//! ```text
//! σ⋆(x) = 1 − α / f(x)^{1/(k−1)}   for x ≤ W,   0 otherwise
//! W     = largest y with Σ_{x≤y} (1 − (f(y)/f(x))^{1/(k−1)}) ≤ 1
//! α     = (W − 1) / Σ_{x≤W} f(x)^{−1/(k−1)}
//! ```
//!
//! The paper notes σ⋆ coincides with the first round of the Bayesian-search
//! algorithm A⋆ of Korman–Rodeh; the `dispersal-search` crate builds on
//! this identity.

use crate::error::{Error, Result};
use crate::strategy::Strategy;
use crate::value::ValueProfile;
use serde::{Deserialize, Serialize};

/// The σ⋆ strategy together with its defining constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SigmaStar {
    /// The strategy itself.
    pub strategy: Strategy,
    /// Support size `W` (σ⋆ explores exactly sites `1..=W`, 1-based).
    pub support: usize,
    /// The normalization constant `α = (W − 1) / Σ_{x≤W} f(x)^{−1/(k−1)}`;
    /// the common equilibrium value is `ν = α^{k−1}` for `k ≥ 2`. For
    /// `k = 1` the formula degenerates to `α = 0` (single-site support
    /// makes the numerator `W − 1` vanish) and `α` carries no information.
    pub alpha: f64,
    /// The best site's value `f(1)` — the equilibrium value of the
    /// single-player game.
    pub top_value: f64,
    /// Player count the strategy was computed for.
    pub k: usize,
}

impl SigmaStar {
    /// The common equilibrium value received on the support: `ν = α^{k−1}`
    /// for `k ≥ 2` (each occupied site has
    /// `f(x)·(1 − σ⋆(x))^{k−1} = α^{k−1}`), and `f(1)` for `k = 1` — a
    /// lone player takes the best site outright. The `k = 1` case must
    /// *not* read `α`: the defining formula `(W − 1)/Σ…` is 0 there, so
    /// returning `α` (or `α⁰ = 1`) would report a zero/unit value instead
    /// of the best site's.
    pub fn equilibrium_value(&self) -> f64 {
        if self.k == 1 {
            return self.top_value;
        }
        self.alpha.powi(self.k as i32 - 1)
    }
}

/// Compute the support size `W`: the largest index `y` (1-based) such that
/// `Σ_{x≤y} (1 − (f(y)/f(x))^{1/(k−1)}) ≤ 1`.
///
/// Requires `k ≥ 2` (for `k = 1` the support is trivially the single best
/// site; [`sigma_star`] special-cases it).
pub fn support_size(f: &ValueProfile, k: usize) -> Result<usize> {
    if k < 2 {
        return Err(Error::InvalidPlayerCount { k });
    }
    let exponent = 1.0 / (k as f64 - 1.0);
    // Prefix sums of f(x)^{-1/(k-1)} make each candidate y an O(1) check.
    let mut prefix_inv = Vec::with_capacity(f.len());
    let mut acc = 0.0;
    for &fx in f.values() {
        acc += fx.powf(-exponent);
        prefix_inv.push(acc);
    }
    let mut best = 1usize;
    for y in 1..=f.len() {
        let fy_pow = f.value(y - 1).powf(exponent);
        let lhs = y as f64 - fy_pow * prefix_inv[y - 1];
        if lhs <= 1.0 + 1e-12 {
            best = y;
        }
    }
    Ok(best)
}

/// Compute σ⋆ for profile `f` and `k ≥ 1` players.
///
/// For `k = 1` this is the point mass on the top site (the trivially optimal
/// single-explorer strategy, also the IFD of the one-player game).
pub fn sigma_star(f: &ValueProfile, k: usize) -> Result<SigmaStar> {
    if k == 0 {
        return Err(Error::InvalidPlayerCount { k });
    }
    let m = f.len();
    if k == 1 {
        // alpha follows its defining formula (W − 1 = 0 ⇒ α = 0); the
        // equilibrium value comes from `top_value`, not α.
        return Ok(SigmaStar {
            strategy: Strategy::delta(m, 0)?,
            support: 1,
            alpha: 0.0,
            top_value: f.value(0),
            k,
        });
    }
    let w = support_size(f, k)?;
    let exponent = 1.0 / (k as f64 - 1.0);
    let inv_sum: f64 =
        crate::numerics::kahan_sum(f.values().iter().take(w).map(|&fx| fx.powf(-exponent)));
    let alpha = (w as f64 - 1.0) / inv_sum;
    let mut probs = vec![0.0; m];
    for (x, p) in probs.iter_mut().enumerate().take(w) {
        *p = 1.0 - alpha / f.value(x).powf(exponent);
    }
    // Clean tiny negative round-off on the last supported site, then
    // renormalize exactly.
    for p in probs.iter_mut() {
        if *p < 0.0 {
            debug_assert!(*p > -1e-9, "sigma-star probability significantly negative: {p}");
            *p = 0.0;
        }
    }
    let sum: f64 = crate::numerics::kahan_sum(probs.iter().copied());
    debug_assert!((sum - 1.0).abs() < 1e-9, "sigma-star not normalized: {sum}");
    for p in probs.iter_mut() {
        *p /= sum;
    }
    Ok(SigmaStar { strategy: Strategy::new(probs)?, support: w, alpha, top_value: f.value(0), k })
}

/// Verify the two IFD conditions of Claim 7 for a candidate strategy under
/// the exclusive policy: equal value `f(x)(1−p(x))^{k−1}` on the support,
/// strictly smaller value off the support. Returns the maximum violation
/// (0 means the conditions hold exactly).
pub fn ifd_residual_exclusive(f: &ValueProfile, p: &Strategy, k: usize) -> Result<f64> {
    if f.len() != p.len() {
        return Err(Error::DimensionMismatch { strategy: p.len(), profile: f.len() });
    }
    if k < 2 {
        return Err(Error::InvalidPlayerCount { k });
    }
    let values: Vec<f64> = f
        .values()
        .iter()
        .zip(p.probs().iter())
        .map(|(&fx, &px)| fx * (1.0 - px).powi(k as i32 - 1))
        .collect();
    let support_tol = 1e-12;
    let on: Vec<f64> = values
        .iter()
        .zip(p.probs().iter())
        .filter(|(_, &px)| px > support_tol)
        .map(|(&v, _)| v)
        .collect();
    if on.is_empty() {
        return Ok(f64::INFINITY);
    }
    let nu = on.iter().sum::<f64>() / on.len() as f64;
    let mut residual = on.iter().map(|v| (v - nu).abs()).fold(0.0, f64::max);
    for (v, &px) in values.iter().zip(p.probs().iter()) {
        if px <= support_tol && *v > nu {
            residual = residual.max(v - nu);
        }
    }
    Ok(residual)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn k1_is_point_mass_on_best_site() {
        let f = ValueProfile::new(vec![3.0, 2.0, 1.0]).unwrap();
        let s = sigma_star(&f, 1).unwrap();
        assert_eq!(s.strategy.probs(), &[1.0, 0.0, 0.0]);
        assert_eq!(s.support, 1);
        close(s.equilibrium_value(), 3.0, 1e-15);
    }

    #[test]
    fn k1_equilibrium_value_is_top_value_not_alpha() {
        // Regression: with single-site support the defining formula gives
        // α = (W − 1)/Σ = 0; the equilibrium value must still be f(1).
        let f = ValueProfile::new(vec![7.5, 2.0]).unwrap();
        let s = sigma_star(&f, 1).unwrap();
        assert_eq!(s.alpha, 0.0);
        close(s.equilibrium_value(), 7.5, 1e-15);
        // Even a hand-built record with the degenerate α reports f(1).
        let built = SigmaStar {
            strategy: Strategy::delta(2, 0).unwrap(),
            support: 1,
            alpha: 0.0,
            top_value: 7.5,
            k: 1,
        };
        close(built.equilibrium_value(), 7.5, 1e-15);
    }

    #[test]
    fn k0_rejected() {
        let f = ValueProfile::uniform(2, 1.0).unwrap();
        assert!(sigma_star(&f, 0).is_err());
        assert!(support_size(&f, 1).is_err());
    }

    #[test]
    fn uniform_profile_gives_uniform_sigma_star() {
        // With equal values the Pareto form is symmetric: sigma* = uniform.
        let f = ValueProfile::uniform(5, 2.0).unwrap();
        for k in 2..6usize {
            let s = sigma_star(&f, k).unwrap();
            assert_eq!(s.support, 5);
            for x in 0..5 {
                close(s.strategy.prob(x), 0.2, 1e-12);
            }
        }
    }

    #[test]
    fn two_sites_two_players_hand_computed() {
        // f = (1, 0.3), k = 2: W = 2 iff 1 - f2/f1 <= 1 (true), so W = 2.
        // alpha = 1 / (1 + 1/0.3), sigma*(x) = 1 - alpha/f(x).
        let f = ValueProfile::new(vec![1.0, 0.3]).unwrap();
        let s = sigma_star(&f, 2).unwrap();
        assert_eq!(s.support, 2);
        let alpha = 1.0 / (1.0 + 1.0 / 0.3);
        close(s.alpha, alpha, 1e-12);
        close(s.strategy.prob(0), 1.0 - alpha, 1e-12);
        close(s.strategy.prob(1), 1.0 - alpha / 0.3, 1e-12);
        // Equal equilibrium values on support:
        close(1.0 * (1.0 - s.strategy.prob(0)), 0.3 * (1.0 - s.strategy.prob(1)), 1e-12);
    }

    #[test]
    fn support_shrinks_for_steep_profiles() {
        // A very steep profile concentrates sigma* on few sites.
        let steep = ValueProfile::geometric(10, 1.0, 0.01).unwrap();
        let flat = ValueProfile::geometric(10, 1.0, 0.99).unwrap();
        let k = 3;
        let ws = sigma_star(&steep, k).unwrap().support;
        let wf = sigma_star(&flat, k).unwrap().support;
        assert!(ws < wf, "steep W = {ws}, flat W = {wf}");
    }

    #[test]
    fn support_grows_with_k() {
        let f = ValueProfile::zipf(100, 1.0, 1.0).unwrap();
        let mut prev = 0usize;
        for k in 2..12usize {
            let w = sigma_star(&f, k).unwrap().support;
            assert!(w >= prev);
            prev = w;
        }
    }

    #[test]
    fn sigma_star_satisfies_ifd_conditions_claim7() {
        for (f, k) in [
            (ValueProfile::zipf(30, 1.0, 1.0).unwrap(), 4usize),
            (ValueProfile::geometric(15, 2.0, 0.8).unwrap(), 7),
            (ValueProfile::new(vec![1.0, 0.5]).unwrap(), 2),
            (ValueProfile::linear(50, 1.0, 0.01).unwrap(), 10),
        ] {
            let s = sigma_star(&f, k).unwrap();
            let residual = ifd_residual_exclusive(&f, &s.strategy, k).unwrap();
            assert!(residual < 1e-9, "IFD residual {residual} for k = {k}");
        }
    }

    #[test]
    fn off_support_values_strictly_below_nu() {
        // Claim 7 second part: f(W+1) < alpha^{k-1}.
        let f = ValueProfile::geometric(20, 1.0, 0.5).unwrap();
        let k = 3;
        let s = sigma_star(&f, k).unwrap();
        if s.support < f.len() {
            let nu = s.equilibrium_value();
            assert!(f.value(s.support) < nu, "f(W+1) = {} >= nu = {nu}", f.value(s.support));
        }
    }

    #[test]
    fn equilibrium_value_matches_support_values() {
        let f = ValueProfile::zipf(12, 3.0, 0.7).unwrap();
        let k = 5;
        let s = sigma_star(&f, k).unwrap();
        let nu = s.equilibrium_value();
        for x in 0..s.support {
            let v = f.value(x) * (1.0 - s.strategy.prob(x)).powi(k as i32 - 1);
            close(v, nu, 1e-9);
        }
    }

    #[test]
    fn two_players_many_sites_support_formula() {
        // k = 2: W is the largest y with y - f(y) * sum_{x<=y} 1/f(x) <= 1.
        let f = ValueProfile::new(vec![1.0, 0.9, 0.2, 0.05]).unwrap();
        let w = support_size(&f, 2).unwrap();
        let mut expected = 1;
        let mut inv = 0.0;
        for y in 1..=4usize {
            inv += 1.0 / f.value(y - 1);
            if y as f64 - f.value(y - 1) * inv <= 1.0 + 1e-12 {
                expected = y;
            }
        }
        assert_eq!(w, expected);
    }

    #[test]
    fn residual_detects_non_ifd() {
        let f = ValueProfile::new(vec![1.0, 0.3]).unwrap();
        let uniform = Strategy::uniform(2).unwrap();
        let r = ifd_residual_exclusive(&f, &uniform, 2).unwrap();
        assert!(r > 0.1, "uniform should not satisfy IFD, residual = {r}");
    }

    #[test]
    fn residual_validates_inputs() {
        let f = ValueProfile::new(vec![1.0, 0.3]).unwrap();
        let p = Strategy::uniform(3).unwrap();
        assert!(ifd_residual_exclusive(&f, &p, 2).is_err());
        let p2 = Strategy::uniform(2).unwrap();
        assert!(ifd_residual_exclusive(&f, &p2, 1).is_err());
    }
}
