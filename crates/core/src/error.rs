//! Error types for model construction and solvers.

use std::fmt;

/// Errors produced when constructing model objects or running solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A value profile was empty.
    EmptyProfile,
    /// A value profile contained a non-positive or non-finite entry.
    InvalidValue {
        /// Offending site index (0-based).
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A strategy vector was empty.
    EmptyStrategy,
    /// A strategy contained a negative or non-finite probability.
    InvalidProbability {
        /// Offending site index (0-based).
        index: usize,
        /// The offending probability.
        value: f64,
    },
    /// A strategy did not sum to 1 within tolerance.
    NotNormalized {
        /// The observed sum.
        sum: f64,
    },
    /// Dimension mismatch between a strategy and a value profile.
    DimensionMismatch {
        /// Strategy dimension.
        strategy: usize,
        /// Profile dimension.
        profile: usize,
    },
    /// The number of players must be at least 1.
    InvalidPlayerCount {
        /// The rejected player count.
        k: usize,
    },
    /// A congestion function violated `C(1) = 1`.
    BadCongestionAtOne {
        /// The observed `C(1)`.
        c1: f64,
    },
    /// A congestion function was increasing somewhere on `[1, k]`.
    IncreasingCongestion {
        /// Position where the increase was detected.
        ell: usize,
        /// `C(ell)`.
        c_ell: f64,
        /// `C(ell + 1)`.
        c_next: f64,
    },
    /// The congestion function is constant on `[1, k]`, so the site value
    /// does not depend on congestion and the IFD degenerates to mass on the
    /// top-value sites. Callers that can handle this case should use
    /// [`crate::ifd::solve_ifd_allow_degenerate`].
    DegeneratePolicy,
    /// A solver failed to converge within its iteration budget.
    NoConvergence {
        /// Which solver failed.
        what: &'static str,
        /// Final residual when the budget ran out.
        residual: f64,
    },
    /// A congestion-response query `g_C(q)` (or a coverage evaluation over
    /// raw probabilities) received a `q` outside `[0, 1]` beyond numerical
    /// tolerance, or a non-finite `q`.
    ProbabilityOutOfRange {
        /// The rejected probability.
        q: f64,
    },
    /// A caller-supplied numerical tolerance was non-positive or
    /// non-finite (grid refinement bounds, agreement thresholds).
    InvalidTolerance {
        /// The rejected tolerance.
        tol: f64,
    },
    /// Two caller-supplied buffers that must be the same length (batched
    /// kernel inputs/outputs) were not.
    LengthMismatch {
        /// Which entry point detected the mismatch.
        what: &'static str,
        /// The length the call required.
        expected: usize,
        /// The length the caller supplied.
        got: usize,
    },
    /// Generic invalid argument.
    InvalidArgument(String),
    /// An internal invariant was violated — a bug in this crate, not in
    /// the caller's input. Library code carries these as typed errors
    /// instead of panicking (`no-unwrap-in-lib`): a corrupted invariant
    /// inside a worker shard surfaces as an `Err` the driver can report,
    /// not a poisoned thread pool.
    Internal {
        /// The invariant that was violated.
        what: &'static str,
    },
    /// An I/O operation failed (experiment output, result files). Stores
    /// the rendered `std::io::Error` so this enum stays `Clone`/`PartialEq`.
    Io(String),
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyProfile => write!(out, "value profile must contain at least one site"),
            Error::InvalidValue { index, value } => {
                write!(
                    out,
                    "site {index} has invalid value {value}; values must be finite and positive"
                )
            }
            Error::EmptyStrategy => write!(out, "strategy must contain at least one site"),
            Error::InvalidProbability { index, value } => {
                write!(out, "strategy entry {index} has invalid probability {value}")
            }
            Error::NotNormalized { sum } => {
                write!(out, "strategy probabilities sum to {sum}, expected 1")
            }
            Error::DimensionMismatch { strategy, profile } => {
                write!(out, "strategy over {strategy} sites used with profile of {profile} sites")
            }
            Error::InvalidPlayerCount { k } => write!(out, "invalid player count k = {k}"),
            Error::BadCongestionAtOne { c1 } => {
                write!(out, "congestion function must satisfy C(1) = 1, got {c1}")
            }
            Error::IncreasingCongestion { ell, c_ell, c_next } => {
                write!(
                    out,
                    "congestion function increases: C({ell}) = {c_ell} < C({}) = {c_next}",
                    ell + 1
                )
            }
            Error::DegeneratePolicy => {
                write!(out, "congestion function is constant on [1, k]; the IFD is degenerate")
            }
            Error::NoConvergence { what, residual } => {
                write!(out, "{what} failed to converge (residual {residual:e})")
            }
            Error::ProbabilityOutOfRange { q } => {
                write!(out, "probability {q} is outside [0, 1] beyond tolerance")
            }
            Error::InvalidTolerance { tol } => {
                write!(out, "tolerance must be positive and finite, got {tol}")
            }
            Error::LengthMismatch { what, expected, got } => {
                write!(out, "{what}: expected a slice of length {expected}, got {got}")
            }
            Error::InvalidArgument(msg) => write!(out, "invalid argument: {msg}"),
            Error::Internal { what } => {
                write!(out, "internal invariant violated (library bug): {what}")
            }
            Error::Io(msg) => write!(out, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let variants: Vec<Error> = vec![
            Error::EmptyProfile,
            Error::InvalidValue { index: 3, value: -1.0 },
            Error::EmptyStrategy,
            Error::InvalidProbability { index: 0, value: f64::NAN },
            Error::NotNormalized { sum: 0.5 },
            Error::DimensionMismatch { strategy: 2, profile: 3 },
            Error::InvalidPlayerCount { k: 0 },
            Error::BadCongestionAtOne { c1: 0.9 },
            Error::IncreasingCongestion { ell: 1, c_ell: 0.2, c_next: 0.4 },
            Error::DegeneratePolicy,
            Error::NoConvergence { what: "ifd", residual: 1e-3 },
            Error::ProbabilityOutOfRange { q: 1.5 },
            Error::InvalidTolerance { tol: -1e-9 },
            Error::LengthMismatch { what: "eval_many_with", expected: 3, got: 2 },
            Error::InvalidArgument("x".into()),
            Error::Internal { what: "cache entry missing after insert" },
            Error::Io("disk full".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::EmptyProfile);
    }
}
