//! Evolutionary stability checking (Section 1.4, Theorem 3).
//!
//! A strategy `σ` is an ESS if for every mutant `π ≠ σ` there exists
//! `0 ≤ m_π ≤ k−1` such that
//!
//! * `E(σ; σ^{k−m−1}, π^m) > E(π; σ^{k−m−1}, π^m)`, and
//! * `E(σ; σ^{k−ℓ−1}, π^ℓ) = E(π; σ^{k−ℓ−1}, π^ℓ)` for all `ℓ < m`.
//!
//! This module evaluates those conditions *exactly* (via the
//! Poisson–binomial payoff evaluator) for any finite set of candidate
//! mutants, and estimates the invasion barrier `ε_π` from the
//! population-mixture payoff of Eq. (3).

use crate::error::{Error, Result};
use crate::payoff::PayoffContext;
use crate::policy::Congestion;
use crate::strategy::Strategy;
use crate::value::ValueProfile;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Numerical tolerance distinguishing "equal" payoffs from strict
/// advantages in the ESS characterization.
pub const ESS_TOL: f64 = 1e-10;

/// Outcome of checking the ESS characterization against one mutant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MutantVerdict {
    /// The mutant is repelled at level `m` (the characterization holds with
    /// `m_π = m`); `margin` is the strict payoff advantage at that level.
    Repelled {
        /// The characterization level `m_π`.
        m: usize,
        /// Strict payoff advantage of the resident at that level.
        margin: f64,
    },
    /// The mutant ties the resident at all levels `0..=k−1` within
    /// tolerance — the candidate and mutant are payoff-indistinguishable
    /// (happens only for `π = σ` or numerically identical strategies).
    Indistinguishable,
    /// The mutant strictly beats the resident at some level before any
    /// strict advantage for the resident: the candidate is *not* an ESS.
    Invades {
        /// First level at which the mutant strictly wins.
        level: usize,
        /// The resident's payoff deficit at that level.
        deficit: f64,
    },
}

/// Per-level payoff ledger for diagnostics: `resident[ℓ]` is
/// `E(σ; σ^{k−ℓ−1}, π^ℓ)` and `mutant[ℓ]` is `E(π; σ^{k−ℓ−1}, π^ℓ)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EssLedger {
    /// Resident payoffs by number of mutant opponents.
    pub resident: Vec<f64>,
    /// Mutant payoffs by number of mutant opponents.
    pub mutant: Vec<f64>,
}

/// Compute the full ESS ledger for resident `sigma` against mutant `pi`.
pub fn ess_ledger(
    ctx: &PayoffContext,
    f: &ValueProfile,
    sigma: &Strategy,
    pi: &Strategy,
) -> Result<EssLedger> {
    let k = ctx.k();
    if k < 2 {
        return Err(Error::InvalidPlayerCount { k });
    }
    let mut resident = Vec::with_capacity(k);
    let mut mutant = Vec::with_capacity(k);
    for ell in 0..k {
        let a = k - 1 - ell; // sigma-playing opponents
        resident.push(ctx.ess_payoff(f, sigma, sigma, a, pi, ell)?);
        mutant.push(ctx.ess_payoff(f, pi, sigma, a, pi, ell)?);
    }
    Ok(EssLedger { resident, mutant })
}

/// Apply the ESS characterization to one mutant.
pub fn check_mutant(
    ctx: &PayoffContext,
    f: &ValueProfile,
    sigma: &Strategy,
    pi: &Strategy,
) -> Result<MutantVerdict> {
    let ledger = ess_ledger(ctx, f, sigma, pi)?;
    let scale = ledger
        .resident
        .iter()
        .chain(ledger.mutant.iter())
        .fold(0.0f64, |acc, v| acc.max(v.abs()))
        .max(1.0);
    for ell in 0..ctx.k() {
        let diff = ledger.resident[ell] - ledger.mutant[ell];
        if diff > ESS_TOL * scale {
            return Ok(MutantVerdict::Repelled { m: ell, margin: diff });
        }
        if diff < -ESS_TOL * scale {
            return Ok(MutantVerdict::Invades { level: ell, deficit: -diff });
        }
    }
    Ok(MutantVerdict::Indistinguishable)
}

/// Report from probing a candidate ESS with many mutants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EssReport {
    /// Number of mutants tested.
    pub mutants_tested: usize,
    /// Number repelled with a strict margin.
    pub repelled: usize,
    /// Number indistinguishable from the resident.
    pub indistinguishable: usize,
    /// Mutants that successfully invade (empty iff the candidate passed).
    pub invasions: Vec<(usize, f64)>,
    /// The smallest strict repulsion margin observed (0 if none).
    pub worst_margin: f64,
}

impl EssReport {
    /// True when no probed mutant invades.
    pub fn passed(&self) -> bool {
        self.invasions.is_empty()
    }
}

/// Probe `sigma` with a deterministic mutant family plus `random_mutants`
/// uniformly sampled ones, for the `k`-player game.
///
/// The deterministic family contains the structured deviations that break
/// non-ESS candidates in this game: point masses on each site, uniform,
/// value-proportional, top-j uniform blends, and convex blends between
/// `sigma` and each of those.
pub fn probe_ess_k<R: Rng + ?Sized>(
    c: &dyn Congestion,
    f: &ValueProfile,
    sigma: &Strategy,
    random_mutants: usize,
    rng: &mut R,
    k: usize,
) -> Result<EssReport> {
    let ctx = PayoffContext::new(c, k)?;
    let m = f.len();
    let mut mutants: Vec<Strategy> = Vec::new();
    for site in 0..m {
        mutants.push(Strategy::delta(m, site)?);
    }
    mutants.push(Strategy::uniform(m)?);
    mutants.push(Strategy::proportional(f.values())?);
    for top in 1..=m {
        mutants.push(Strategy::uniform_on_top(m, top)?);
    }
    // Blends toward structured deviations keep us near sigma, where
    // first-order ties force the second-order condition to do the work.
    let anchors: Vec<Strategy> = mutants.clone();
    for anchor in &anchors {
        for &w in &[0.1, 0.5] {
            mutants.push(sigma.mix(anchor, w)?);
        }
    }
    for _ in 0..random_mutants {
        let weights: Vec<f64> = (0..m).map(|_| rng.gen::<f64>().max(1e-12)).collect();
        mutants.push(Strategy::from_weights(weights)?);
    }
    let mut report = EssReport {
        mutants_tested: 0,
        repelled: 0,
        indistinguishable: 0,
        invasions: Vec::new(),
        worst_margin: f64::INFINITY,
    };
    for (idx, pi) in mutants.iter().enumerate() {
        if pi.linf_distance(sigma)? < 1e-12 {
            continue;
        }
        report.mutants_tested += 1;
        match check_mutant(&ctx, f, sigma, pi)? {
            MutantVerdict::Repelled { margin, .. } => {
                report.repelled += 1;
                report.worst_margin = report.worst_margin.min(margin);
            }
            MutantVerdict::Indistinguishable => report.indistinguishable += 1,
            MutantVerdict::Invades { deficit, .. } => report.invasions.push((idx, deficit)),
        }
    }
    if !report.worst_margin.is_finite() {
        report.worst_margin = 0.0;
    }
    Ok(report)
}

/// Estimate the invasion barrier `ε_π`: the largest `ε ∈ (0, 1]` such that
/// the resident strictly out-earns the mutant in every population mixture
/// with mutant share `ε' ≤ ε` (Eq. 3). Returns 0 when the mutant invades
/// immediately.
pub fn invasion_barrier(
    ctx: &PayoffContext,
    f: &ValueProfile,
    sigma: &Strategy,
    pi: &Strategy,
    grid: usize,
) -> Result<f64> {
    if grid < 2 {
        return Err(Error::InvalidArgument("invasion barrier grid must be >= 2".into()));
    }
    let advantage = |eps: f64| -> Result<f64> {
        let u_sigma = ctx.mixture_payoff(f, sigma, sigma, pi, eps)?;
        let u_pi = ctx.mixture_payoff(f, pi, sigma, pi, eps)?;
        Ok(u_sigma - u_pi)
    };
    let mut last_good = 0.0;
    for i in 1..=grid {
        let eps = i as f64 / grid as f64;
        if advantage(eps)? > 0.0 {
            last_good = eps;
        } else {
            break;
        }
    }
    Ok(last_good)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Exclusive, Sharing, TwoLevel};
    use crate::sigma_star::sigma_star;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ledger_shape() {
        let f = ValueProfile::new(vec![1.0, 0.3]).unwrap();
        let ctx = PayoffContext::new(&Exclusive, 3).unwrap();
        let s = sigma_star(&f, 3).unwrap().strategy;
        let pi = Strategy::uniform(2).unwrap();
        let ledger = ess_ledger(&ctx, &f, &s, &pi).unwrap();
        assert_eq!(ledger.resident.len(), 3);
        assert_eq!(ledger.mutant.len(), 3);
    }

    #[test]
    fn ledger_requires_k_at_least_two() {
        let f = ValueProfile::new(vec![1.0]).unwrap();
        let ctx = PayoffContext::new(&Exclusive, 1).unwrap();
        let s = Strategy::uniform(1).unwrap();
        assert!(ess_ledger(&ctx, &f, &s, &s).is_err());
    }

    #[test]
    fn sigma_star_repels_structured_mutants_theorem3() {
        for (f, k) in [
            (ValueProfile::new(vec![1.0, 0.3]).unwrap(), 2usize),
            (ValueProfile::new(vec![1.0, 0.5]).unwrap(), 3),
            (ValueProfile::zipf(6, 1.0, 1.0).unwrap(), 4),
        ] {
            let star = sigma_star(&f, k).unwrap().strategy;
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            let report = probe_ess_k(&Exclusive, &f, &star, 50, &mut rng, k).unwrap();
            assert!(report.passed(), "k = {k}: invasions {:?}", report.invasions);
            assert!(report.repelled > 0);
        }
    }

    #[test]
    fn off_support_mutant_repelled_at_level_zero() {
        // Any mutant weighting sites beyond W loses already against pure
        // sigma* opponents (m_pi = 0 in the paper's case analysis).
        let f = ValueProfile::geometric(10, 1.0, 0.3).unwrap();
        let k = 2;
        let star = sigma_star(&f, k).unwrap();
        assert!(star.support < 10, "need off-support sites for this test");
        let ctx = PayoffContext::new(&Exclusive, k).unwrap();
        let pi = Strategy::delta(10, 9).unwrap();
        match check_mutant(&ctx, &f, &star.strategy, &pi).unwrap() {
            MutantVerdict::Repelled { m, .. } => assert_eq!(m, 0),
            other => panic!("expected repulsion at level 0, got {other:?}"),
        }
    }

    #[test]
    fn on_support_mutant_ties_level_zero_repelled_at_one() {
        // A mutant inside the support earns the same against pure sigma*
        // (nu is constant on the support) but loses at level 1 (Eq. 10/11).
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let k = 3;
        let star = sigma_star(&f, k).unwrap();
        assert_eq!(star.support, 2);
        let ctx = PayoffContext::new(&Exclusive, k).unwrap();
        let pi = Strategy::new(vec![0.7, 0.3]).unwrap();
        match check_mutant(&ctx, &f, &star.strategy, &pi).unwrap() {
            MutantVerdict::Repelled { m, margin } => {
                assert_eq!(m, 1, "expected repulsion exactly at level 1");
                assert!(margin > 0.0);
            }
            other => panic!("expected repulsion at level 1, got {other:?}"),
        }
    }

    #[test]
    fn non_equilibrium_candidate_is_invaded() {
        // Uniform is not the IFD for a decreasing f, so some mutant invades.
        let f = ValueProfile::new(vec![1.0, 0.2]).unwrap();
        let k = 2;
        let uniform = Strategy::uniform(2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let report = probe_ess_k(&Exclusive, &f, &uniform, 20, &mut rng, k).unwrap();
        assert!(!report.passed(), "uniform should be invadable");
    }

    #[test]
    fn sharing_ifd_is_ess_for_its_own_policy() {
        // Under sharing, the IFD is also evolutionarily stable (classical
        // result); our checker should agree on small instances.
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let k = 3;
        let ifd = crate::ifd::solve_ifd(&Sharing, &f, k).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let report = probe_ess_k(&Sharing, &f, &ifd.strategy, 40, &mut rng, k).unwrap();
        assert!(report.passed(), "invasions: {:?}", report.invasions);
    }

    #[test]
    fn invasion_barrier_positive_for_sigma_star() {
        let f = ValueProfile::new(vec![1.0, 0.4]).unwrap();
        let k = 2;
        let ctx = PayoffContext::new(&Exclusive, k).unwrap();
        let star = sigma_star(&f, k).unwrap().strategy;
        let pi = Strategy::uniform(2).unwrap();
        let barrier = invasion_barrier(&ctx, &f, &star, &pi, 100).unwrap();
        assert!(barrier > 0.0, "barrier = {barrier}");
    }

    #[test]
    fn invasion_barrier_zero_when_mutant_dominates() {
        // Resident = bad strategy (mass on worst site); best-response mutant
        // invades at every epsilon.
        let f = ValueProfile::new(vec![1.0, 0.1]).unwrap();
        let k = 2;
        let ctx = PayoffContext::new(&Exclusive, k).unwrap();
        let resident = Strategy::delta(2, 1).unwrap();
        let mutant = Strategy::delta(2, 0).unwrap();
        let barrier = invasion_barrier(&ctx, &f, &resident, &mutant, 50).unwrap();
        assert_eq!(barrier, 0.0);
    }

    #[test]
    fn invasion_barrier_validates_grid() {
        let f = ValueProfile::new(vec![1.0, 0.4]).unwrap();
        let ctx = PayoffContext::new(&Exclusive, 2).unwrap();
        let s = Strategy::uniform(2).unwrap();
        assert!(invasion_barrier(&ctx, &f, &s, &s, 1).is_err());
    }

    #[test]
    fn aggressive_two_level_ifd_still_ess() {
        // The IFD of any strictly-decreasing congestion function is an ESS
        // candidate; verify no structured mutant invades for c = -0.4.
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let k = 2;
        let pol = TwoLevel { c: -0.4 };
        let ifd = crate::ifd::solve_ifd(&pol, &f, k).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let report = probe_ess_k(&pol, &f, &ifd.strategy, 40, &mut rng, k).unwrap();
        assert!(report.passed(), "invasions: {:?}", report.invasions);
    }
}
