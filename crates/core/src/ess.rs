//! Evolutionary stability checking (Section 1.4, Theorem 3).
//!
//! A strategy `σ` is an ESS if for every mutant `π ≠ σ` there exists
//! `0 ≤ m_π ≤ k−1` such that
//!
//! * `E(σ; σ^{k−m−1}, π^m) > E(π; σ^{k−m−1}, π^m)`, and
//! * `E(σ; σ^{k−ℓ−1}, π^ℓ) = E(π; σ^{k−ℓ−1}, π^ℓ)` for all `ℓ < m`.
//!
//! This module evaluates those conditions *exactly* (via the
//! Poisson–binomial payoff evaluator) for any finite set of candidate
//! mutants, and estimates the invasion barrier `ε_π` from the
//! population-mixture payoff of Eq. (3).
//!
//! ## Kernel-backed evaluation
//!
//! The ledger payoffs `E(·; σ^{k−ℓ−1}, π^ℓ)` only ever differ between
//! levels by *one opponent switching strategies*, so the per-site
//! Poisson–binomial law at level `ℓ+1` is a rank-one update of the one at
//! level `ℓ`. [`LedgerEvaluator`] exploits this through
//! [`crate::kernel::PbTable`]: the all-resident baseline tables are built
//! once (shared across equal-`σ(x)` sites via
//! [`crate::kernel::PbCache`], and across *every mutant probed*), and
//! each ledger level is one `O(k)` [`crate::kernel::PbTable::replace`]
//! per site instead of a fresh `O(k²)` DP — an `O(k)` total speedup that
//! is what makes the tier-2 large-`k` theorem tests affordable. Level 0
//! remains bit-identical to the pre-kernel per-site DP path; rank-updated
//! levels agree to `O(k·ε)` (≈ 1e-13 at `k = 256`, checked in CI).

use crate::error::{Error, Result};
use crate::kernel::{PbCache, PbTable};
use crate::payoff::PayoffContext;
use crate::policy::Congestion;
use crate::strategy::Strategy;
use crate::value::ValueProfile;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Numerical tolerance distinguishing "equal" payoffs from strict
/// advantages in the ESS characterization.
pub const ESS_TOL: f64 = 1e-10;

/// Outcome of checking the ESS characterization against one mutant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MutantVerdict {
    /// The mutant is repelled at level `m` (the characterization holds with
    /// `m_π = m`); `margin` is the strict payoff advantage at that level.
    Repelled {
        /// The characterization level `m_π`.
        m: usize,
        /// Strict payoff advantage of the resident at that level.
        margin: f64,
    },
    /// The mutant ties the resident at all levels `0..=k−1` within
    /// tolerance — the candidate and mutant are payoff-indistinguishable
    /// (happens only for `π = σ` or numerically identical strategies).
    Indistinguishable,
    /// The mutant strictly beats the resident at some level before any
    /// strict advantage for the resident: the candidate is *not* an ESS.
    Invades {
        /// First level at which the mutant strictly wins.
        level: usize,
        /// The resident's payoff deficit at that level.
        deficit: f64,
    },
}

/// Per-level payoff ledger for diagnostics: `resident[ℓ]` is
/// `E(σ; σ^{k−ℓ−1}, π^ℓ)` and `mutant[ℓ]` is `E(π; σ^{k−ℓ−1}, π^ℓ)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EssLedger {
    /// Resident payoffs by number of mutant opponents.
    pub resident: Vec<f64>,
    /// Mutant payoffs by number of mutant opponents.
    pub mutant: Vec<f64>,
}

/// Resident-anchored ledger evaluator: owns the per-site Poisson–binomial
/// tables for the all-resident opponent profile `{σ(x)}^{k−1}` and walks
/// ledger levels by `O(k)` rank updates ([`PbTable::replace`]) instead of
/// rebuilding the `O(k²)` DP per site per level.
///
/// Construction costs one DP per *distinct* `σ(x)` value (shared via
/// [`PbCache`]); [`Self::ledger`] then costs `O(M·k²)` total for a full
/// `k`-level ledger — the pre-kernel path paid `O(M·k³)`. Build one
/// evaluator per resident and reuse it across every mutant probed
/// ([`probe_ess_k`] does exactly this).
#[derive(Debug, Clone)]
pub struct LedgerEvaluator<'a> {
    ctx: &'a PayoffContext,
    f: &'a ValueProfile,
    sigma: &'a Strategy,
    /// Per-site baseline tables for the profile `{σ(x)}^{k−1}`.
    base: Vec<PbTable>,
}

impl<'a> LedgerEvaluator<'a> {
    /// Build the baseline tables for resident `sigma` (requires `k ≥ 2`).
    pub fn new(ctx: &'a PayoffContext, f: &'a ValueProfile, sigma: &'a Strategy) -> Result<Self> {
        let k = ctx.k();
        if k < 2 {
            return Err(Error::InvalidPlayerCount { k });
        }
        if f.len() != sigma.len() {
            return Err(Error::DimensionMismatch { strategy: sigma.len(), profile: f.len() });
        }
        let cache = PbCache::new();
        let mut profile = vec![0.0; k - 1];
        let mut base = Vec::with_capacity(f.len());
        for x in 0..f.len() {
            profile.fill(sigma.prob(x));
            base.push(cache.table(&profile)?.as_ref().clone());
        }
        Ok(Self { ctx, f, sigma, base })
    }

    /// The resident this evaluator is anchored on.
    #[inline]
    pub fn resident(&self) -> &Strategy {
        self.sigma
    }

    /// Compute the full per-level payoff ledger against mutant `pi`.
    ///
    /// Level 0 is evaluated on the cloned baseline tables (bit-identical
    /// to the exact per-site DP); each subsequent level replaces one
    /// `σ(x)` factor with `π(x)` per site. Both ledger columns share the
    /// per-site expectation `E[C(1 + N_x)]` — the resident and mutant
    /// face the *same* opponent law, they only weight sites differently.
    pub fn ledger(&self, pi: &Strategy) -> Result<EssLedger> {
        if pi.len() != self.f.len() {
            return Err(Error::DimensionMismatch { strategy: pi.len(), profile: self.f.len() });
        }
        let k = self.ctx.k();
        let c_table = self.ctx.c_table();
        let mut tables = self.base.clone();
        let mut resident = Vec::with_capacity(k);
        let mut mutant = Vec::with_capacity(k);
        for ell in 0..k {
            if ell > 0 {
                for (x, table) in tables.iter_mut().enumerate() {
                    table.replace(self.sigma.prob(x), pi.prob(x))?;
                }
            }
            let mut res_acc = 0.0;
            let mut mut_acc = 0.0;
            for (x, table) in tables.iter().enumerate() {
                let sx = self.sigma.prob(x);
                let px = pi.prob(x);
                if sx == 0.0 && px == 0.0 {
                    continue;
                }
                let expected_c = table.expectation(c_table);
                if sx != 0.0 {
                    res_acc += sx * self.f.value(x) * expected_c;
                }
                if px != 0.0 {
                    mut_acc += px * self.f.value(x) * expected_c;
                }
            }
            resident.push(res_acc);
            mutant.push(mut_acc);
        }
        Ok(EssLedger { resident, mutant })
    }

    /// Apply the ESS characterization to one mutant (ledger + verdict).
    pub fn check(&self, pi: &Strategy) -> Result<MutantVerdict> {
        Ok(verdict_from_ledger(&self.ledger(pi)?))
    }
}

/// Compute the full ESS ledger for resident `sigma` against mutant `pi`.
///
/// One-shot convenience over [`LedgerEvaluator`]; probing many mutants
/// against one resident should build the evaluator once instead.
pub fn ess_ledger(
    ctx: &PayoffContext,
    f: &ValueProfile,
    sigma: &Strategy,
    pi: &Strategy,
) -> Result<EssLedger> {
    LedgerEvaluator::new(ctx, f, sigma)?.ledger(pi)
}

/// The pre-kernel scalar ledger: a fresh per-site Poisson–binomial DP
/// per level per column, `O(M·k³)` total. Kept as the single equivalence
/// baseline shared by the core tests, the `kernel_equivalence` CI smoke,
/// and `benches/ess.rs` (the `BENCH_ess.json` speedups are measured
/// against exactly this); hidden because production callers should use
/// [`ess_ledger`].
#[doc(hidden)]
pub fn reference_ledger(
    ctx: &PayoffContext,
    f: &ValueProfile,
    sigma: &Strategy,
    pi: &Strategy,
) -> Result<EssLedger> {
    let k = ctx.k();
    if k < 2 {
        return Err(Error::InvalidPlayerCount { k });
    }
    if f.len() != sigma.len() {
        return Err(Error::DimensionMismatch { strategy: sigma.len(), profile: f.len() });
    }
    if f.len() != pi.len() {
        return Err(Error::DimensionMismatch { strategy: pi.len(), profile: f.len() });
    }
    let payoff = |rho: &Strategy, ell: usize| {
        let mut total = 0.0;
        for x in 0..f.len() {
            let rx = rho.prob(x);
            if rx == 0.0 {
                continue;
            }
            let mut profile = vec![sigma.prob(x); k - 1 - ell];
            profile.extend(std::iter::repeat_n(pi.prob(x), ell));
            let pmf = crate::numerics::poisson_binomial_pmf(&profile);
            let expected_c = crate::numerics::kahan_sum(
                pmf.iter().zip(ctx.c_table().iter()).map(|(p, c)| p * c),
            );
            total += rx * f.value(x) * expected_c;
        }
        total
    };
    Ok(EssLedger {
        resident: (0..k).map(|ell| payoff(sigma, ell)).collect(),
        mutant: (0..k).map(|ell| payoff(pi, ell)).collect(),
    })
}

/// Derive the characterization verdict from a computed ledger.
fn verdict_from_ledger(ledger: &EssLedger) -> MutantVerdict {
    let scale = ledger
        .resident
        .iter()
        .chain(ledger.mutant.iter())
        .fold(0.0f64, |acc, v| acc.max(v.abs()))
        .max(1.0);
    for (ell, (res, mu)) in ledger.resident.iter().zip(ledger.mutant.iter()).enumerate() {
        let diff = res - mu;
        if diff > ESS_TOL * scale {
            return MutantVerdict::Repelled { m: ell, margin: diff };
        }
        if diff < -ESS_TOL * scale {
            return MutantVerdict::Invades { level: ell, deficit: -diff };
        }
    }
    MutantVerdict::Indistinguishable
}

/// Apply the ESS characterization to one mutant.
pub fn check_mutant(
    ctx: &PayoffContext,
    f: &ValueProfile,
    sigma: &Strategy,
    pi: &Strategy,
) -> Result<MutantVerdict> {
    Ok(verdict_from_ledger(&ess_ledger(ctx, f, sigma, pi)?))
}

/// Report from probing a candidate ESS with many mutants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EssReport {
    /// Number of mutants tested.
    pub mutants_tested: usize,
    /// Number repelled with a strict margin.
    pub repelled: usize,
    /// Number indistinguishable from the resident.
    pub indistinguishable: usize,
    /// Mutants that successfully invade (empty iff the candidate passed).
    pub invasions: Vec<(usize, f64)>,
    /// The smallest strict repulsion margin observed (0 if none).
    pub worst_margin: f64,
}

impl EssReport {
    /// True when no probed mutant invades.
    pub fn passed(&self) -> bool {
        self.invasions.is_empty()
    }
}

/// Probe `sigma` with a deterministic mutant family plus `random_mutants`
/// uniformly sampled ones, for the `k`-player game.
///
/// The deterministic family contains the structured deviations that break
/// non-ESS candidates in this game: point masses on each site, uniform,
/// value-proportional, top-j uniform blends, and convex blends between
/// `sigma` and each of those.
pub fn probe_ess_k<R: Rng + ?Sized>(
    c: &dyn Congestion,
    f: &ValueProfile,
    sigma: &Strategy,
    random_mutants: usize,
    rng: &mut R,
    k: usize,
) -> Result<EssReport> {
    let ctx = PayoffContext::new(c, k)?;
    let m = f.len();
    let mut mutants: Vec<Strategy> = Vec::new();
    for site in 0..m {
        mutants.push(Strategy::delta(m, site)?);
    }
    mutants.push(Strategy::uniform(m)?);
    mutants.push(Strategy::proportional(f.values())?);
    for top in 1..=m {
        mutants.push(Strategy::uniform_on_top(m, top)?);
    }
    // Blends toward structured deviations keep us near sigma, where
    // first-order ties force the second-order condition to do the work.
    let anchors: Vec<Strategy> = mutants.clone();
    for anchor in &anchors {
        for &w in &[0.1, 0.5] {
            mutants.push(sigma.mix(anchor, w)?);
        }
    }
    for _ in 0..random_mutants {
        let weights: Vec<f64> = (0..m).map(|_| rng.gen::<f64>().max(1e-12)).collect();
        mutants.push(Strategy::from_weights(weights)?);
    }
    let mut report = EssReport {
        mutants_tested: 0,
        repelled: 0,
        indistinguishable: 0,
        invasions: Vec::new(),
        worst_margin: f64::INFINITY,
    };
    // One evaluator for the whole probe: the resident-only baseline DP
    // tables are built once and shared across every mutant below.
    let evaluator = LedgerEvaluator::new(&ctx, f, sigma)?;
    for (idx, pi) in mutants.iter().enumerate() {
        if pi.linf_distance(sigma)? < 1e-12 {
            continue;
        }
        report.mutants_tested += 1;
        match evaluator.check(pi)? {
            MutantVerdict::Repelled { margin, .. } => {
                report.repelled += 1;
                report.worst_margin = report.worst_margin.min(margin);
            }
            MutantVerdict::Indistinguishable => report.indistinguishable += 1,
            MutantVerdict::Invades { deficit, .. } => report.invasions.push((idx, deficit)),
        }
    }
    if !report.worst_margin.is_finite() {
        report.worst_margin = 0.0;
    }
    Ok(report)
}

/// Estimate the invasion barrier `ε_π`: the largest `ε ∈ (0, 1]` such that
/// the resident strictly out-earns the mutant in every population mixture
/// with mutant share `ε' ≤ ε` (Eq. 3). Returns 0 when the mutant invades
/// immediately.
///
/// Each grid point evaluates the mixture field **once** through
/// [`PayoffContext::mixture_advantage`] (both payoffs dot the same
/// `ν_μ` vector) — bit-identical to the two-`mixture_payoff`
/// formulation at less than half its work.
pub fn invasion_barrier(
    ctx: &PayoffContext,
    f: &ValueProfile,
    sigma: &Strategy,
    pi: &Strategy,
    grid: usize,
) -> Result<f64> {
    if grid < 2 {
        return Err(Error::InvalidArgument("invasion barrier grid must be >= 2".into()));
    }
    if sigma.len() != f.len() {
        return Err(Error::DimensionMismatch { strategy: sigma.len(), profile: f.len() });
    }
    if pi.len() != f.len() {
        return Err(Error::DimensionMismatch { strategy: pi.len(), profile: f.len() });
    }
    let mut last_good = 0.0;
    for i in 1..=grid {
        let eps = i as f64 / grid as f64;
        if ctx.mixture_advantage(f, sigma, pi, eps)? > 0.0 {
            last_good = eps;
        } else {
            break;
        }
    }
    Ok(last_good)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Exclusive, Sharing, TwoLevel};
    use crate::sigma_star::sigma_star;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ledger_shape() {
        let f = ValueProfile::new(vec![1.0, 0.3]).unwrap();
        let ctx = PayoffContext::new(&Exclusive, 3).unwrap();
        let s = sigma_star(&f, 3).unwrap().strategy;
        let pi = Strategy::uniform(2).unwrap();
        let ledger = ess_ledger(&ctx, &f, &s, &pi).unwrap();
        assert_eq!(ledger.resident.len(), 3);
        assert_eq!(ledger.mutant.len(), 3);
    }

    #[test]
    fn ledger_matches_pre_kernel_reference() {
        for (f, k) in [
            (ValueProfile::new(vec![1.0, 0.5]).unwrap(), 2usize),
            (ValueProfile::zipf(6, 1.0, 1.0).unwrap(), 5),
            (ValueProfile::geometric(8, 1.0, 0.6).unwrap(), 9),
        ] {
            let ctx = PayoffContext::new(&Exclusive, k).unwrap();
            let sigma = sigma_star(&f, k).unwrap().strategy;
            let pi = Strategy::uniform(f.len()).unwrap();
            let fast = ess_ledger(&ctx, &f, &sigma, &pi).unwrap();
            let reference = reference_ledger(&ctx, &f, &sigma, &pi).unwrap();
            // Level 0 runs on the exact DP tables: bit-identical.
            assert_eq!(fast.resident[0].to_bits(), reference.resident[0].to_bits(), "k = {k}");
            assert_eq!(fast.mutant[0].to_bits(), reference.mutant[0].to_bits(), "k = {k}");
            // Rank-updated levels: within the 1e-12 agreement contract.
            for ell in 0..k {
                assert!(
                    (fast.resident[ell] - reference.resident[ell]).abs() <= 1e-12,
                    "k = {k} resident level {ell}: {} vs {}",
                    fast.resident[ell],
                    reference.resident[ell]
                );
                assert!(
                    (fast.mutant[ell] - reference.mutant[ell]).abs() <= 1e-12,
                    "k = {k} mutant level {ell}: {} vs {}",
                    fast.mutant[ell],
                    reference.mutant[ell]
                );
            }
        }
    }

    #[test]
    fn evaluator_reuse_matches_one_shot_path() {
        let f = ValueProfile::zipf(5, 1.0, 1.0).unwrap();
        let k = 4;
        let ctx = PayoffContext::new(&Exclusive, k).unwrap();
        let sigma = sigma_star(&f, k).unwrap().strategy;
        let evaluator = LedgerEvaluator::new(&ctx, &f, &sigma).unwrap();
        assert_eq!(evaluator.resident().probs(), sigma.probs());
        for pi in [
            Strategy::uniform(5).unwrap(),
            Strategy::delta(5, 2).unwrap(),
            Strategy::proportional(f.values()).unwrap(),
        ] {
            let a = evaluator.ledger(&pi).unwrap();
            let b = ess_ledger(&ctx, &f, &sigma, &pi).unwrap();
            for (x, y) in a.resident.iter().zip(b.resident.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in a.mutant.iter().zip(b.mutant.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(evaluator.check(&pi).unwrap(), check_mutant(&ctx, &f, &sigma, &pi).unwrap());
        }
        // Dimension mismatches are rejected at both entry points.
        let wrong = Strategy::uniform(3).unwrap();
        assert!(evaluator.ledger(&wrong).is_err());
        assert!(LedgerEvaluator::new(&ctx, &f, &wrong).is_err());
    }

    #[test]
    fn invasion_barrier_matches_mixture_payoff_formulation() {
        let f = ValueProfile::new(vec![1.0, 0.6, 0.2]).unwrap();
        let k = 3;
        let ctx = PayoffContext::new(&Exclusive, k).unwrap();
        let star = sigma_star(&f, k).unwrap().strategy;
        let pi = Strategy::uniform(3).unwrap();
        let grid = 64;
        let fast = invasion_barrier(&ctx, &f, &star, &pi, grid).unwrap();
        // Pre-kernel formulation: two mixture payoffs per grid point.
        let mut reference = 0.0;
        for i in 1..=grid {
            let eps = i as f64 / grid as f64;
            let u_sigma = ctx.mixture_payoff(&f, &star, &star, &pi, eps).unwrap();
            let u_pi = ctx.mixture_payoff(&f, &pi, &star, &pi, eps).unwrap();
            if u_sigma - u_pi > 0.0 {
                reference = eps;
            } else {
                break;
            }
        }
        assert_eq!(fast.to_bits(), reference.to_bits());
    }

    #[test]
    fn ledger_requires_k_at_least_two() {
        let f = ValueProfile::new(vec![1.0]).unwrap();
        let ctx = PayoffContext::new(&Exclusive, 1).unwrap();
        let s = Strategy::uniform(1).unwrap();
        assert!(ess_ledger(&ctx, &f, &s, &s).is_err());
    }

    #[test]
    fn sigma_star_repels_structured_mutants_theorem3() {
        for (f, k) in [
            (ValueProfile::new(vec![1.0, 0.3]).unwrap(), 2usize),
            (ValueProfile::new(vec![1.0, 0.5]).unwrap(), 3),
            (ValueProfile::zipf(6, 1.0, 1.0).unwrap(), 4),
        ] {
            let star = sigma_star(&f, k).unwrap().strategy;
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            let report = probe_ess_k(&Exclusive, &f, &star, 50, &mut rng, k).unwrap();
            assert!(report.passed(), "k = {k}: invasions {:?}", report.invasions);
            assert!(report.repelled > 0);
        }
    }

    #[test]
    fn off_support_mutant_repelled_at_level_zero() {
        // Any mutant weighting sites beyond W loses already against pure
        // sigma* opponents (m_pi = 0 in the paper's case analysis).
        let f = ValueProfile::geometric(10, 1.0, 0.3).unwrap();
        let k = 2;
        let star = sigma_star(&f, k).unwrap();
        assert!(star.support < 10, "need off-support sites for this test");
        let ctx = PayoffContext::new(&Exclusive, k).unwrap();
        let pi = Strategy::delta(10, 9).unwrap();
        match check_mutant(&ctx, &f, &star.strategy, &pi).unwrap() {
            MutantVerdict::Repelled { m, .. } => assert_eq!(m, 0),
            other => panic!("expected repulsion at level 0, got {other:?}"),
        }
    }

    #[test]
    fn on_support_mutant_ties_level_zero_repelled_at_one() {
        // A mutant inside the support earns the same against pure sigma*
        // (nu is constant on the support) but loses at level 1 (Eq. 10/11).
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let k = 3;
        let star = sigma_star(&f, k).unwrap();
        assert_eq!(star.support, 2);
        let ctx = PayoffContext::new(&Exclusive, k).unwrap();
        let pi = Strategy::new(vec![0.7, 0.3]).unwrap();
        match check_mutant(&ctx, &f, &star.strategy, &pi).unwrap() {
            MutantVerdict::Repelled { m, margin } => {
                assert_eq!(m, 1, "expected repulsion exactly at level 1");
                assert!(margin > 0.0);
            }
            other => panic!("expected repulsion at level 1, got {other:?}"),
        }
    }

    #[test]
    fn non_equilibrium_candidate_is_invaded() {
        // Uniform is not the IFD for a decreasing f, so some mutant invades.
        let f = ValueProfile::new(vec![1.0, 0.2]).unwrap();
        let k = 2;
        let uniform = Strategy::uniform(2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let report = probe_ess_k(&Exclusive, &f, &uniform, 20, &mut rng, k).unwrap();
        assert!(!report.passed(), "uniform should be invadable");
    }

    #[test]
    fn sharing_ifd_is_ess_for_its_own_policy() {
        // Under sharing, the IFD is also evolutionarily stable (classical
        // result); our checker should agree on small instances.
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let k = 3;
        let ifd = crate::ifd::solve_ifd(&Sharing, &f, k).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let report = probe_ess_k(&Sharing, &f, &ifd.strategy, 40, &mut rng, k).unwrap();
        assert!(report.passed(), "invasions: {:?}", report.invasions);
    }

    #[test]
    fn invasion_barrier_positive_for_sigma_star() {
        let f = ValueProfile::new(vec![1.0, 0.4]).unwrap();
        let k = 2;
        let ctx = PayoffContext::new(&Exclusive, k).unwrap();
        let star = sigma_star(&f, k).unwrap().strategy;
        let pi = Strategy::uniform(2).unwrap();
        let barrier = invasion_barrier(&ctx, &f, &star, &pi, 100).unwrap();
        assert!(barrier > 0.0, "barrier = {barrier}");
    }

    #[test]
    fn invasion_barrier_zero_when_mutant_dominates() {
        // Resident = bad strategy (mass on worst site); best-response mutant
        // invades at every epsilon.
        let f = ValueProfile::new(vec![1.0, 0.1]).unwrap();
        let k = 2;
        let ctx = PayoffContext::new(&Exclusive, k).unwrap();
        let resident = Strategy::delta(2, 1).unwrap();
        let mutant = Strategy::delta(2, 0).unwrap();
        let barrier = invasion_barrier(&ctx, &f, &resident, &mutant, 50).unwrap();
        assert_eq!(barrier, 0.0);
    }

    #[test]
    fn invasion_barrier_validates_grid() {
        let f = ValueProfile::new(vec![1.0, 0.4]).unwrap();
        let ctx = PayoffContext::new(&Exclusive, 2).unwrap();
        let s = Strategy::uniform(2).unwrap();
        assert!(invasion_barrier(&ctx, &f, &s, &s, 1).is_err());
    }

    #[test]
    fn aggressive_two_level_ifd_still_ess() {
        // The IFD of any strictly-decreasing congestion function is an ESS
        // candidate; verify no structured mutant invades for c = -0.4.
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let k = 2;
        let pol = TwoLevel { c: -0.4 };
        let ifd = crate::ifd::solve_ifd(&pol, &f, k).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let report = probe_ess_k(&pol, &f, &ifd.strategy, 40, &mut rng, k).unwrap();
        assert!(report.passed(), "invasions: {:?}", report.invasions);
    }
}
