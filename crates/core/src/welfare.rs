//! The individual-welfare optimum: the symmetric strategy maximizing the
//! expected per-player payoff `U(p) = Σ_x p(x)·f(x)·g_C(p(x))`.
//!
//! This is the blue curve of Figure 1 ("the symmetric strategy that
//! maximizes the individual payoffs"). Unlike coverage, `U` need not be
//! concave for arbitrary congestion functions, so we use multistart
//! projected-gradient ascent, plus an exact golden-section scan for the
//! two-site case (where the simplex is one-dimensional) used by both the
//! Figure 1 harness and the cross-check tests.

use crate::error::{Error, Result};
use crate::payoff::PayoffContext;
use crate::policy::Congestion;
use crate::simplex::{projected_gradient_ascent, AscentConfig};
use crate::strategy::Strategy;
use crate::value::ValueProfile;

/// A welfare-optimal solution.
#[derive(Debug, Clone)]
pub struct WelfareOptimum {
    /// The maximizing symmetric strategy.
    pub strategy: Strategy,
    /// The maximal symmetric expected payoff `U`.
    pub payoff: f64,
}

/// Maximize `U(p)` by multistart projected-gradient ascent.
pub fn welfare_optimum(c: &dyn Congestion, f: &ValueProfile, k: usize) -> Result<WelfareOptimum> {
    let ctx = PayoffContext::new(c, k)?;
    welfare_optimum_with_context(&ctx, f)
}

/// Maximize `U(p)` using a prebuilt payoff context.
pub fn welfare_optimum_with_context(
    ctx: &PayoffContext,
    f: &ValueProfile,
) -> Result<WelfareOptimum> {
    let m = f.len();
    let k = ctx.k();
    if m == 2 {
        // Exact 1-D optimization for the Figure 1 geometry.
        return welfare_optimum_two_sites(ctx, f);
    }
    let mut starts =
        vec![Strategy::uniform(m)?, Strategy::proportional(f.values())?, Strategy::delta(m, 0)?];
    if k >= 2 {
        if let Ok(star) = crate::sigma_star::sigma_star(f, k) {
            starts.push(star.strategy);
        }
    }
    // Both closures share one kernel scratch (RefCell because the ascent
    // driver takes them as plain `Fn`), so every g/g' evaluation is the
    // allocation-free batched path instead of a per-call PMF rebuild.
    let kernel = ctx.kernel();
    let scratch = std::cell::RefCell::new(kernel.scratch());
    let objective = |p: &[f64]| -> f64 {
        let mut s = scratch.borrow_mut();
        p.iter()
            .zip(f.values().iter())
            .map(|(&px, &fx)| px * fx * kernel.eval_with(&mut s, px.clamp(0.0, 1.0)))
            .sum()
    };
    let gradient = |p: &[f64]| -> Vec<f64> {
        let mut s = scratch.borrow_mut();
        p.iter()
            .zip(f.values().iter())
            .map(|(&px, &fx)| {
                let q = px.clamp(0.0, 1.0);
                fx * (kernel.eval_with(&mut s, q) + px * kernel.eval_prime_with(&mut s, q))
            })
            .collect()
    };
    let mut best: Option<WelfareOptimum> = None;
    for start in starts {
        let run = projected_gradient_ascent(&start, objective, gradient, AscentConfig::default())?;
        let u = ctx.symmetric_payoff(f, &run.point)?;
        if best.as_ref().is_none_or(|b| u > b.payoff) {
            best = Some(WelfareOptimum { strategy: run.point, payoff: u });
        }
    }
    best.ok_or(Error::Internal { what: "welfare ascent ran zero starts" })
}

/// Exact welfare optimum for `M = 2` by golden-section search on
/// `p₁ ∈ [0, 1]` (with a coarse bracketing scan first, since `U` may be
/// multimodal for exotic policies).
pub fn welfare_optimum_two_sites(ctx: &PayoffContext, f: &ValueProfile) -> Result<WelfareOptimum> {
    if f.len() != 2 {
        return Err(Error::InvalidArgument(format!(
            "two-site optimizer called with M = {}",
            f.len()
        )));
    }
    // One reused kernel scratch across the ~800 evaluations of the scan
    // plus golden-section refinement.
    let kernel = ctx.kernel();
    let mut scratch = kernel.scratch();
    let mut u_of = |p1: f64| -> f64 {
        let p2 = 1.0 - p1;
        p1 * f.value(0) * kernel.eval_with(&mut scratch, p1.clamp(0.0, 1.0))
            + p2 * f.value(1) * kernel.eval_with(&mut scratch, p2.clamp(0.0, 1.0))
    };
    // Coarse scan to bracket the global maximum.
    let grid = 400usize;
    let mut best_i = 0usize;
    let mut best_u = f64::NEG_INFINITY;
    for i in 0..=grid {
        let p = i as f64 / grid as f64;
        let u = u_of(p);
        if u > best_u {
            best_u = u;
            best_i = i;
        }
    }
    let lo = if best_i == 0 { 0.0 } else { (best_i - 1) as f64 / grid as f64 };
    let hi = if best_i == grid { 1.0 } else { (best_i + 1) as f64 / grid as f64 };
    // Golden-section refinement.
    let gr = (5f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - gr * (b - a);
    let mut d = a + gr * (b - a);
    let (mut uc, mut ud) = (u_of(c), u_of(d));
    for _ in 0..200 {
        if uc > ud {
            b = d;
            d = c;
            ud = uc;
            c = b - gr * (b - a);
            uc = u_of(c);
        } else {
            a = c;
            c = d;
            uc = ud;
            d = a + gr * (b - a);
            ud = u_of(d);
        }
    }
    let p1 = 0.5 * (a + b);
    let strategy = Strategy::new(vec![p1, 1.0 - p1])?;
    let payoff = u_of(p1);
    Ok(WelfareOptimum { strategy, payoff })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ifd::solve_ifd;
    use crate::policy::{Exclusive, Sharing, TwoLevel};

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn two_site_optimizer_rejects_wrong_dimension() {
        let f = ValueProfile::uniform(3, 1.0).unwrap();
        let ctx = PayoffContext::new(&Sharing, 2).unwrap();
        assert!(welfare_optimum_two_sites(&ctx, &f).is_err());
    }

    #[test]
    fn welfare_beats_ifd_payoff() {
        // The IFD equalizes values but does not maximize group payoff; the
        // welfare optimum must weakly dominate it in U.
        let f = ValueProfile::new(vec![1.0, 0.3]).unwrap();
        for c in [&Exclusive as &dyn Congestion, &Sharing, &TwoLevel { c: -0.3 }] {
            let ctx = PayoffContext::new(c, 2).unwrap();
            let ifd = solve_ifd(c, &f, 2).unwrap();
            let u_ifd = ctx.symmetric_payoff(&f, &ifd.strategy).unwrap();
            let opt = welfare_optimum(c, &f, 2).unwrap();
            assert!(
                opt.payoff >= u_ifd - 1e-10,
                "{}: welfare {} < IFD payoff {u_ifd}",
                c.name(),
                opt.payoff
            );
        }
    }

    #[test]
    fn exclusive_two_players_two_sites_known_solution() {
        // U(p) = p f1 (1-p) + (1-p) f2 p = p(1-p)(f1+f2): maximized at 1/2.
        let f = ValueProfile::new(vec![1.0, 0.4]).unwrap();
        let opt = welfare_optimum(&Exclusive, &f, 2).unwrap();
        close(opt.strategy.prob(0), 0.5, 1e-6);
        close(opt.payoff, 0.25 * 1.4, 1e-9);
    }

    #[test]
    fn constant_like_gentle_policy_prefers_top_site() {
        // With c = 1 collisions are free: everyone should sit on site 1.
        // TwoLevel(c = 0.99) is nearly free; the optimum leans heavily to
        // the top site.
        let f = ValueProfile::new(vec![1.0, 0.3]).unwrap();
        let opt = welfare_optimum(&TwoLevel { c: 0.99 }, &f, 2).unwrap();
        assert!(opt.strategy.prob(0) > 0.9, "p1 = {}", opt.strategy.prob(0));
    }

    #[test]
    fn multistart_path_used_for_three_sites() {
        let f = ValueProfile::new(vec![1.0, 0.6, 0.2]).unwrap();
        let opt = welfare_optimum(&Sharing, &f, 3).unwrap();
        // Sanity: a valid strategy with payoff at least that of uniform.
        let ctx = PayoffContext::new(&Sharing, 3).unwrap();
        let u_uniform = ctx.symmetric_payoff(&f, &Strategy::uniform(3).unwrap()).unwrap();
        assert!(opt.payoff >= u_uniform - 1e-9);
    }

    #[test]
    fn grid_crosscheck_two_sites() {
        // Brute-force grid agrees with golden-section result.
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let ctx = PayoffContext::new(&TwoLevel { c: -0.25 }, 2).unwrap();
        let opt = welfare_optimum_two_sites(&ctx, &f).unwrap();
        let mut best = f64::NEG_INFINITY;
        for i in 0..=10_000 {
            let p = i as f64 / 10_000.0;
            let u = p * 1.0 * ctx.g_clamped(p) + (1.0 - p) * 0.5 * ctx.g_clamped(1.0 - p);
            best = best.max(u);
        }
        close(opt.payoff, best, 1e-7);
    }

    #[test]
    fn single_player_welfare_is_best_site() {
        let f = ValueProfile::new(vec![2.0, 1.0, 0.5]).unwrap();
        let opt = welfare_optimum(&Sharing, &f, 1).unwrap();
        close(opt.payoff, 2.0, 1e-9);
        assert!(opt.strategy.prob(0) > 1.0 - 1e-6);
    }
}
