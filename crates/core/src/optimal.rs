//! The optimal-coverage symmetric strategy `p⋆` (Theorem 4).
//!
//! Maximizing `Cover(p)` is minimizing the convex miss mass
//! `T(p) = Σ_x f(x)(1 − p(x))^k`. The KKT conditions give the same Pareto
//! form as σ⋆ — that is precisely Theorem 4 — but this module solves the
//! problem *independently* of the σ⋆ construction so the theorem can be
//! *checked* rather than assumed:
//!
//! * [`optimal_coverage_waterfill`] — bisection on the KKT multiplier `λ`
//!   with occupancies `p(x) = max(0, 1 − (λ/(k f(x)))^{1/(k−1)})`;
//! * [`optimal_coverage_gradient`] — projected-gradient ascent on `Cover`
//!   from multiple starting points (no structural knowledge at all).

use crate::coverage::{coverage, coverage_gradient};
use crate::error::{Error, Result};
use crate::simplex::{projected_gradient_ascent, AscentConfig};
use crate::strategy::Strategy;
use crate::value::ValueProfile;

/// An optimal-coverage solution with diagnostics.
#[derive(Debug, Clone)]
pub struct OptimalCoverage {
    /// The maximizing strategy.
    pub strategy: Strategy,
    /// Its coverage value.
    pub coverage: f64,
    /// KKT multiplier (water level) if produced by the water-filling solver.
    pub lambda: Option<f64>,
}

/// KKT water-filling solver: exact up to bisection precision.
///
/// Stationarity for supported sites reads
/// `k f(x) (1 − p(x))^{k−1} = λ`, so
/// `p(x; λ) = max(0, 1 − (λ / (k f(x)))^{1/(k−1)})`, and `Σ_x p(x; λ)` is
/// continuous and decreasing in `λ`; bisection finds `Σ = 1`.
pub fn optimal_coverage_waterfill(f: &ValueProfile, k: usize) -> Result<OptimalCoverage> {
    if k == 0 {
        return Err(Error::InvalidPlayerCount { k });
    }
    if k == 1 {
        let strategy = Strategy::delta(f.len(), 0)?;
        let cov = coverage(f, &strategy, 1)?;
        return Ok(OptimalCoverage { strategy, coverage: cov, lambda: None });
    }
    let kf = k as f64;
    let exponent = 1.0 / (kf - 1.0);
    let occupancy = |lambda: f64| -> Vec<f64> {
        f.values()
            .iter()
            .map(|&fx| {
                let ratio = lambda / (kf * fx);
                if ratio >= 1.0 {
                    0.0
                } else {
                    1.0 - ratio.powf(exponent)
                }
            })
            .collect()
    };
    // lambda in (0, k·f(1)]: at the top the sum is 0, at lambda -> 0 the sum
    // approaches M >= 1.
    let mut lo = 0.0;
    let mut hi = kf * f.value(0);
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        let s: f64 = occupancy(mid).iter().sum();
        if s >= 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let lambda = 0.5 * (lo + hi);
    let mut probs = occupancy(lambda);
    let sum: f64 = probs.iter().sum();
    if sum <= 0.0 {
        return Err(Error::NoConvergence { what: "coverage water-filling", residual: 1.0 });
    }
    for p in probs.iter_mut() {
        *p /= sum;
    }
    let strategy = Strategy::new(probs)?;
    let cov = coverage(f, &strategy, k)?;
    Ok(OptimalCoverage { strategy, coverage: cov, lambda: Some(lambda) })
}

/// Structure-free optimizer: projected-gradient ascent on `Cover` from
/// several deterministic starts (uniform, proportional, top-k uniform).
/// `Cover` is concave (T is convex), so any accepted run reaches the global
/// optimum; multistart guards against slow boundary creep.
pub fn optimal_coverage_gradient(f: &ValueProfile, k: usize) -> Result<OptimalCoverage> {
    if k == 0 {
        return Err(Error::InvalidPlayerCount { k });
    }
    let m = f.len();
    let starts = vec![
        Strategy::uniform(m)?,
        Strategy::proportional(f.values())?,
        Strategy::uniform_on_top(m, k.min(m))?,
    ];
    let objective = |p: &[f64]| -> f64 {
        f.values()
            .iter()
            .zip(p.iter())
            .map(|(&fx, &px)| fx * (1.0 - (1.0 - px).powi(k as i32)))
            .sum()
    };
    let gradient = |p: &[f64]| -> Vec<f64> {
        f.values()
            .iter()
            .zip(p.iter())
            .map(|(&fx, &px)| k as f64 * fx * (1.0 - px.min(1.0)).max(0.0).powi(k as i32 - 1))
            .collect()
    };
    let mut best: Option<OptimalCoverage> = None;
    for start in starts {
        let run = projected_gradient_ascent(&start, objective, gradient, AscentConfig::default())?;
        let cov = coverage(f, &run.point, k)?;
        if best.as_ref().is_none_or(|b| cov > b.coverage) {
            best = Some(OptimalCoverage { strategy: run.point, coverage: cov, lambda: None });
        }
    }
    best.ok_or(Error::Internal { what: "gradient ascent ran zero starts" })
}

/// Convenience: compute `p⋆` by water-filling (the fast exact path).
pub fn optimal_coverage(f: &ValueProfile, k: usize) -> Result<OptimalCoverage> {
    optimal_coverage_waterfill(f, k)
}

/// First-order optimality residual of a candidate maximizer: on the
/// support, the coverage gradient must be constant; off the support it must
/// not exceed that constant. Returns the worst violation.
pub fn optimality_residual(f: &ValueProfile, p: &Strategy, k: usize) -> Result<f64> {
    let grad = coverage_gradient(f, p, k)?;
    let support_tol = 1e-10;
    let on: Vec<f64> = grad
        .iter()
        .zip(p.probs().iter())
        .filter(|(_, &px)| px > support_tol)
        .map(|(&g, _)| g)
        .collect();
    if on.is_empty() {
        return Ok(f64::INFINITY);
    }
    let level = on.iter().sum::<f64>() / on.len() as f64;
    let mut residual = on.iter().map(|g| (g - level).abs()).fold(0.0, f64::max);
    for (g, &px) in grad.iter().zip(p.probs().iter()) {
        if px <= support_tol && *g > level {
            residual = residual.max(g - level);
        }
    }
    Ok(residual / level.max(1e-300))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sigma_star::sigma_star;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn k_zero_rejected() {
        let f = ValueProfile::uniform(3, 1.0).unwrap();
        assert!(optimal_coverage_waterfill(&f, 0).is_err());
        assert!(optimal_coverage_gradient(&f, 0).is_err());
    }

    #[test]
    fn single_player_takes_best_site() {
        let f = ValueProfile::new(vec![2.0, 1.0]).unwrap();
        let opt = optimal_coverage(&f, 1).unwrap();
        assert_eq!(opt.strategy.probs(), &[1.0, 0.0]);
        close(opt.coverage, 2.0, 1e-12);
    }

    #[test]
    fn waterfill_matches_sigma_star_theorem4() {
        // Theorem 4: p* = sigma*.
        for (f, k) in [
            (ValueProfile::new(vec![1.0, 0.3]).unwrap(), 2usize),
            (ValueProfile::zipf(30, 1.0, 1.0).unwrap(), 5),
            (ValueProfile::geometric(12, 1.0, 0.8).unwrap(), 4),
            (ValueProfile::linear(40, 1.0, 0.05).unwrap(), 8),
        ] {
            let opt = optimal_coverage_waterfill(&f, k).unwrap();
            let star = sigma_star(&f, k).unwrap();
            let d = opt.strategy.linf_distance(&star.strategy).unwrap();
            assert!(d < 1e-8, "k = {k}: distance {d}");
        }
    }

    #[test]
    fn gradient_optimizer_agrees_with_waterfill() {
        for (f, k) in [
            (ValueProfile::new(vec![1.0, 0.5]).unwrap(), 2usize),
            (ValueProfile::zipf(8, 1.0, 1.0).unwrap(), 3),
            (ValueProfile::geometric(6, 1.0, 0.5).unwrap(), 4),
        ] {
            let wf = optimal_coverage_waterfill(&f, k).unwrap();
            let gd = optimal_coverage_gradient(&f, k).unwrap();
            close(wf.coverage, gd.coverage, 1e-7);
        }
    }

    #[test]
    fn optimum_dominates_heuristics() {
        let f = ValueProfile::zipf(20, 1.0, 0.7).unwrap();
        let k = 6;
        let opt = optimal_coverage(&f, k).unwrap();
        for alt in [
            Strategy::uniform(20).unwrap(),
            Strategy::proportional(f.values()).unwrap(),
            Strategy::uniform_on_top(20, k).unwrap(),
            Strategy::delta(20, 0).unwrap(),
        ] {
            let c = coverage(&f, &alt, k).unwrap();
            assert!(opt.coverage >= c - 1e-10, "{} < {c}", opt.coverage);
        }
    }

    #[test]
    fn observation1_bound_holds_at_optimum() {
        for (f, k) in [
            (ValueProfile::zipf(50, 1.0, 1.0).unwrap(), 7usize),
            (ValueProfile::uniform(10, 1.0).unwrap(), 3),
            (ValueProfile::geometric(25, 2.0, 0.9).unwrap(), 5),
        ] {
            let opt = optimal_coverage(&f, k).unwrap();
            let bound = crate::coverage::observation1_bound(&f, k);
            assert!(opt.coverage > bound, "coverage {} <= bound {bound}", opt.coverage);
        }
    }

    #[test]
    fn optimality_residual_near_zero_at_optimum() {
        let f = ValueProfile::zipf(15, 1.0, 0.9).unwrap();
        let k = 4;
        let opt = optimal_coverage(&f, k).unwrap();
        let r = optimality_residual(&f, &opt.strategy, k).unwrap();
        assert!(r < 1e-8, "residual {r}");
    }

    #[test]
    fn optimality_residual_positive_for_suboptimal() {
        let f = ValueProfile::new(vec![1.0, 0.1]).unwrap();
        let uniform = Strategy::uniform(2).unwrap();
        let r = optimality_residual(&f, &uniform, 2).unwrap();
        assert!(r > 0.1, "residual {r}");
    }

    #[test]
    fn more_players_cover_more() {
        let f = ValueProfile::zipf(30, 1.0, 0.8).unwrap();
        let mut prev = 0.0;
        for k in 1..12usize {
            let c = optimal_coverage(&f, k).unwrap().coverage;
            assert!(c > prev, "k = {k}: {c} <= {prev}");
            prev = c;
        }
        assert!(prev < f.total());
    }
}
