//! Mixed strategies: probability distributions over sites.
//!
//! A [`Strategy`] is a point of the `M`-simplex. It is the object every
//! player commits to in the one-shot dispersal game, and — via symmetric
//! profiles — the object whose coverage, equilibrium, and stability
//! properties the paper studies.

use crate::error::{Error, Result};
use rand::distributions::Distribution;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Tolerance used when validating that probabilities sum to one.
pub const NORMALIZATION_TOL: f64 = 1e-9;

/// A mixed strategy over `M` sites (0-based site indices).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Strategy {
    probs: Vec<f64>,
}

impl Strategy {
    /// Build a strategy from raw probabilities.
    ///
    /// # Errors
    /// Fails if empty, if any entry is negative/non-finite, or if the sum
    /// deviates from 1 by more than [`NORMALIZATION_TOL`].
    pub fn new(probs: Vec<f64>) -> Result<Self> {
        if probs.is_empty() {
            return Err(Error::EmptyStrategy);
        }
        for (i, &p) in probs.iter().enumerate() {
            if !p.is_finite() || p < 0.0 {
                return Err(Error::InvalidProbability { index: i, value: p });
            }
        }
        let sum = crate::numerics::kahan_sum(probs.iter().copied());
        if (sum - 1.0).abs() > NORMALIZATION_TOL {
            return Err(Error::NotNormalized { sum });
        }
        Ok(Self { probs })
    }

    /// Build from non-negative weights, normalizing them to sum to 1.
    pub fn from_weights(weights: Vec<f64>) -> Result<Self> {
        if weights.is_empty() {
            return Err(Error::EmptyStrategy);
        }
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(Error::InvalidProbability { index: i, value: w });
            }
        }
        let sum: f64 = crate::numerics::kahan_sum(weights.iter().copied());
        if sum <= 0.0 {
            return Err(Error::NotNormalized { sum });
        }
        Self::new(weights.into_iter().map(|w| w / sum).collect())
    }

    /// The uniform distribution over all `m` sites.
    pub fn uniform(m: usize) -> Result<Self> {
        if m == 0 {
            return Err(Error::EmptyStrategy);
        }
        Self::new(vec![1.0 / m as f64; m])
    }

    /// The strategy `p̂` from Observation 1: uniform over the top `n` sites
    /// of an `m`-site world (`p̂(x) = 1/n` for `x ≤ n`).
    pub fn uniform_on_top(m: usize, n: usize) -> Result<Self> {
        if m == 0 || n == 0 || n > m {
            return Err(Error::InvalidArgument(format!(
                "uniform_on_top requires 0 < n <= m, got n = {n}, m = {m}"
            )));
        }
        let mut probs = vec![0.0; m];
        for p in probs.iter_mut().take(n) {
            *p = 1.0 / n as f64;
        }
        Self::new(probs)
    }

    /// Point mass on a single site.
    pub fn delta(m: usize, site: usize) -> Result<Self> {
        if site >= m {
            return Err(Error::InvalidArgument(format!("site {site} out of range for m = {m}")));
        }
        let mut probs = vec![0.0; m];
        probs[site] = 1.0;
        Self::new(probs)
    }

    /// Probability proportional to site values (`p(x) ∝ f(x)`), a natural
    /// "matching" heuristic baseline.
    pub fn proportional(values: &[f64]) -> Result<Self> {
        Self::from_weights(values.to_vec())
    }

    /// Softmax over site values with inverse temperature `beta ≥ 0`
    /// (`beta = 0` is uniform; large `beta` approaches a point mass on the
    /// best site).
    pub fn softmax(values: &[f64], beta: f64) -> Result<Self> {
        if values.is_empty() {
            return Err(Error::EmptyStrategy);
        }
        if !beta.is_finite() || beta < 0.0 {
            return Err(Error::InvalidArgument(format!("softmax beta must be >= 0, got {beta}")));
        }
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Self::from_weights(values.iter().map(|v| ((v - max) * beta).exp()).collect())
    }

    /// Number of sites `M`.
    #[inline]
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True when the strategy covers no sites (not constructible).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Probability of selecting `site` (0-based).
    #[inline]
    pub fn prob(&self, site: usize) -> f64 {
        self.probs[site]
    }

    /// Borrow the probability vector.
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// The support: sites with probability above `tol`.
    pub fn support(&self, tol: f64) -> Vec<usize> {
        self.probs.iter().enumerate().filter(|(_, &p)| p > tol).map(|(i, _)| i).collect()
    }

    /// Size of the support at tolerance `tol`.
    pub fn support_size(&self, tol: f64) -> usize {
        self.probs.iter().filter(|&&p| p > tol).count()
    }

    /// Shannon entropy (nats). Zero-probability sites contribute zero.
    pub fn entropy(&self) -> f64 {
        -crate::numerics::kahan_sum(self.probs.iter().filter(|&&p| p > 0.0).map(|&p| p * p.ln()))
    }

    /// Total-variation distance to another strategy of the same dimension.
    pub fn tv_distance(&self, other: &Strategy) -> Result<f64> {
        if self.len() != other.len() {
            return Err(Error::DimensionMismatch { strategy: self.len(), profile: other.len() });
        }
        Ok(0.5
            * crate::numerics::kahan_sum(
                self.probs.iter().zip(other.probs.iter()).map(|(a, b)| (a - b).abs()),
            ))
    }

    /// L∞ distance to another strategy of the same dimension.
    pub fn linf_distance(&self, other: &Strategy) -> Result<f64> {
        if self.len() != other.len() {
            return Err(Error::DimensionMismatch { strategy: self.len(), profile: other.len() });
        }
        Ok(self
            .probs
            .iter()
            .zip(other.probs.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }

    /// The convex mixture `(1−eps)·self + eps·other`, the population state
    /// of the ESS invasion setting (Section 1.4).
    pub fn mix(&self, other: &Strategy, eps: f64) -> Result<Strategy> {
        if self.len() != other.len() {
            return Err(Error::DimensionMismatch { strategy: self.len(), profile: other.len() });
        }
        if !(0.0..=1.0).contains(&eps) {
            return Err(Error::InvalidArgument(format!(
                "mixture weight must be in [0,1], got {eps}"
            )));
        }
        Strategy::new(
            self.probs
                .iter()
                .zip(other.probs.iter())
                .map(|(a, b)| (1.0 - eps) * a + eps * b)
                .collect(),
        )
    }

    /// Sample a site index from this strategy.
    ///
    /// Uses inverse-CDF sampling; for hot loops prefer [`StrategySampler`],
    /// which precomputes the alias table once.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, &p) in self.probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return i;
            }
        }
        self.probs.len() - 1
    }
}

/// O(1) alias-method sampler for repeated draws from a fixed [`Strategy`].
///
/// Building the table is O(M); each draw is O(1). This is the sampler the
/// Monte-Carlo engine uses for millions of one-shot trials.
#[derive(Debug, Clone)]
pub struct StrategySampler {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl StrategySampler {
    /// Precompute the alias table (Vose's algorithm).
    pub fn new(strategy: &Strategy) -> Self {
        let n = strategy.len();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let scaled: Vec<f64> = strategy.probs().iter().map(|&p| p * n as f64).collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        let mut work = scaled.clone();
        for (i, &w) in work.iter().enumerate() {
            if w < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s] = work[s];
            alias[s] = l;
            work[l] = (work[l] + work[s]) - 1.0;
            if work[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for &l in &large {
            prob[l] = 1.0;
        }
        for &s in &small {
            prob[s] = 1.0;
        }
        Self { prob, alias }
    }

    /// Draw one site index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let n = self.prob.len();
        let i = rng.gen_range(0..n);
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

impl Distribution<usize> for StrategySampler {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        StrategySampler::sample(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn new_validates() {
        assert!(Strategy::new(vec![0.5, 0.5]).is_ok());
        assert_eq!(Strategy::new(vec![]).unwrap_err(), Error::EmptyStrategy);
        assert!(matches!(Strategy::new(vec![0.5, -0.5]), Err(Error::InvalidProbability { .. })));
        assert!(matches!(Strategy::new(vec![0.5, 0.4]), Err(Error::NotNormalized { .. })));
        assert!(matches!(
            Strategy::new(vec![f64::NAN, 1.0]),
            Err(Error::InvalidProbability { .. })
        ));
    }

    #[test]
    fn from_weights_normalizes() {
        let s = Strategy::from_weights(vec![2.0, 6.0]).unwrap();
        assert!((s.prob(0) - 0.25).abs() < 1e-15);
        assert!((s.prob(1) - 0.75).abs() < 1e-15);
        assert!(Strategy::from_weights(vec![0.0, 0.0]).is_err());
        assert!(Strategy::from_weights(vec![]).is_err());
    }

    #[test]
    fn uniform_and_top() {
        let u = Strategy::uniform(4).unwrap();
        assert_eq!(u.probs(), &[0.25; 4]);
        assert!(Strategy::uniform(0).is_err());
        let t = Strategy::uniform_on_top(5, 2).unwrap();
        assert_eq!(t.probs(), &[0.5, 0.5, 0.0, 0.0, 0.0]);
        assert!(Strategy::uniform_on_top(3, 0).is_err());
        assert!(Strategy::uniform_on_top(3, 4).is_err());
    }

    #[test]
    fn delta_strategy() {
        let d = Strategy::delta(3, 1).unwrap();
        assert_eq!(d.probs(), &[0.0, 1.0, 0.0]);
        assert!(Strategy::delta(3, 3).is_err());
    }

    #[test]
    fn proportional_and_softmax() {
        let p = Strategy::proportional(&[1.0, 3.0]).unwrap();
        assert!((p.prob(1) - 0.75).abs() < 1e-15);
        let s0 = Strategy::softmax(&[5.0, 1.0], 0.0).unwrap();
        assert!((s0.prob(0) - 0.5).abs() < 1e-15);
        let sk = Strategy::softmax(&[5.0, 1.0], 50.0).unwrap();
        assert!(sk.prob(0) > 0.999999);
        assert!(Strategy::softmax(&[], 1.0).is_err());
        assert!(Strategy::softmax(&[1.0], -1.0).is_err());
    }

    #[test]
    fn support_and_entropy() {
        let s = Strategy::new(vec![0.5, 0.5, 0.0]).unwrap();
        assert_eq!(s.support(1e-12), vec![0, 1]);
        assert_eq!(s.support_size(1e-12), 2);
        assert!((s.entropy() - std::f64::consts::LN_2).abs() < 1e-12);
        let d = Strategy::delta(3, 0).unwrap();
        assert_eq!(d.entropy(), 0.0);
    }

    #[test]
    fn distances() {
        let a = Strategy::new(vec![1.0, 0.0]).unwrap();
        let b = Strategy::new(vec![0.0, 1.0]).unwrap();
        assert!((a.tv_distance(&b).unwrap() - 1.0).abs() < 1e-15);
        assert!((a.linf_distance(&b).unwrap() - 1.0).abs() < 1e-15);
        let c = Strategy::uniform(3).unwrap();
        assert!(a.tv_distance(&c).is_err());
        assert!(a.linf_distance(&c).is_err());
    }

    #[test]
    fn mixture() {
        let a = Strategy::new(vec![1.0, 0.0]).unwrap();
        let b = Strategy::new(vec![0.0, 1.0]).unwrap();
        let m = a.mix(&b, 0.25).unwrap();
        assert!((m.prob(0) - 0.75).abs() < 1e-15);
        assert!(a.mix(&b, 1.5).is_err());
        let c = Strategy::uniform(3).unwrap();
        assert!(a.mix(&c, 0.5).is_err());
    }

    #[test]
    fn inverse_cdf_sampling_hits_support_only() {
        let s = Strategy::new(vec![0.0, 1.0, 0.0]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), 1);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn alias_sampler_matches_distribution() {
        let s = Strategy::new(vec![0.2, 0.5, 0.3]).unwrap();
        let sampler = StrategySampler::new(&s);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let n = 200_000usize;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for i in 0..3 {
            let freq = counts[i] as f64 / n as f64;
            assert!((freq - s.prob(i)).abs() < 0.01, "site {i}: {freq} vs {}", s.prob(i));
        }
    }

    #[test]
    fn alias_sampler_handles_point_mass() {
        let s = Strategy::delta(5, 3).unwrap();
        let sampler = StrategySampler::new(&s);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(sampler.sample(&mut rng), 3);
        }
    }

    #[test]
    fn alias_sampler_single_site() {
        let s = Strategy::uniform(1).unwrap();
        let sampler = StrategySampler::new(&s);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(sampler.sample(&mut rng), 0);
    }

    #[test]
    fn serde_roundtrip() {
        let s = Strategy::new(vec![0.25, 0.75]).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: Strategy = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
