//! Expected payoffs under a congestion policy (Eq. 2–3).
//!
//! The central quantity is the *congestion response*
//! `g_C(q) = E[C(1 + Bin(k−1, q))] = Σ_{j=0}^{k−1} C(j+1)·b_{j,k−1}(q)`,
//! the expected per-unit-value payoff of a player at a site where every one
//! of the other `k−1` players shows up independently with probability `q`.
//! Then `ν_p(x) = f(x)·g_C(p(x))` (the paper's value of a site), and the
//! expected payoff of playing `ρ` against a symmetric field `p` is
//! `Σ_x ρ(x)·ν_p(x)`.
//!
//! For heterogeneous opponent profiles (the ESS conditions need
//! `E(ρ; σ^a, π^b)`), the number of opponents at a site follows a
//! Poisson–binomial law, evaluated exactly by [`crate::numerics`].

use crate::error::{Error, Result};
use crate::numerics::{binomial_pmf_vector, kahan_sum, poisson_binomial_pmf};
use crate::policy::Congestion;
use crate::strategy::Strategy;
use crate::value::ValueProfile;

/// Precomputed evaluation context for a `(C, k)` pair: caches the table
/// `C(1..=k)` so hot loops avoid virtual dispatch per term.
#[derive(Debug, Clone)]
pub struct PayoffContext {
    /// `c_table[j] = C(j + 1)` for `j = 0..k`.
    c_table: Vec<f64>,
    k: usize,
}

impl PayoffContext {
    /// Build a context for `k ≥ 1` players, validating the policy axioms.
    pub fn new(c: &dyn Congestion, k: usize) -> Result<Self> {
        let c_table = crate::policy::validate_congestion(c, k)?;
        Ok(Self { c_table, k })
    }

    /// Number of players `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The cached table `C(1..=k)`.
    #[inline]
    pub fn c_table(&self) -> &[f64] {
        &self.c_table
    }

    /// Whether the policy is degenerate (constant on `[1, k]`), in which
    /// case `g_C` is constant and site values do not react to congestion.
    pub fn is_degenerate(&self) -> bool {
        let first = self.c_table[0];
        self.c_table.iter().all(|&v| (v - first).abs() <= 1e-12)
    }

    /// The congestion response `g_C(q) = Σ_j C(j+1)·b_{j,k−1}(q)`.
    ///
    /// `g_C(0) = C(1) = 1` and `g_C(1) = C(k)`; for a non-constant
    /// non-increasing `C` it is strictly decreasing on `[0, 1]`.
    pub fn g(&self, q: f64) -> f64 {
        debug_assert!((-1e-12..=1.0 + 1e-12).contains(&q), "q out of range: {q}");
        let q = q.clamp(0.0, 1.0);
        let pmf = binomial_pmf_vector(self.k - 1, q);
        kahan_sum(pmf.iter().zip(self.c_table.iter()).map(|(p, c)| p * c))
    }

    /// Derivative `g_C'(q)`, via the Bernstein derivative identity
    /// `d/dq b_{j,n}(q) = n·(b_{j−1,n−1}(q) − b_{j,n−1}(q))`.
    pub fn g_prime(&self, q: f64) -> f64 {
        let n = self.k - 1;
        if n == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let pmf = binomial_pmf_vector(n - 1, q);
        // g'(q) = n Σ_j C(j+1) [b_{j-1,n-1} - b_{j,n-1}]
        //       = n Σ_i b_{i,n-1} (C(i+2) - C(i+1))
        let mut acc = 0.0;
        for (i, &b) in pmf.iter().enumerate() {
            acc += b * (self.c_table[i + 1] - self.c_table[i]);
        }
        n as f64 * acc
    }

    /// The site value `ν_p(x) = f(x)·g_C(p(x))` (Eq. 2).
    pub fn site_value(&self, fx: f64, px: f64) -> f64 {
        fx * self.g(px)
    }

    /// All site values `ν_p(·)` for a symmetric field `p`.
    pub fn site_values(&self, f: &ValueProfile, p: &Strategy) -> Result<Vec<f64>> {
        if f.len() != p.len() {
            return Err(Error::DimensionMismatch { strategy: p.len(), profile: f.len() });
        }
        Ok(f.values()
            .iter()
            .zip(p.probs().iter())
            .map(|(&fx, &px)| self.site_value(fx, px))
            .collect())
    }

    /// Expected payoff of playing `rho` when all `k − 1` opponents play `p`:
    /// `E(ρ; p^{k−1}) = Σ_x ρ(x)·f(x)·g_C(p(x))`.
    pub fn expected_payoff(&self, f: &ValueProfile, rho: &Strategy, p: &Strategy) -> Result<f64> {
        if f.len() != rho.len() {
            return Err(Error::DimensionMismatch { strategy: rho.len(), profile: f.len() });
        }
        let nu = self.site_values(f, p)?;
        Ok(kahan_sum(rho.probs().iter().zip(nu.iter()).map(|(r, v)| r * v)))
    }

    /// Symmetric expected payoff `U(p) = E(p; p^{k−1}) = Σ_x p(x)·ν_p(x)` —
    /// the individual welfare objective of Figure 1's blue curve.
    pub fn symmetric_payoff(&self, f: &ValueProfile, p: &Strategy) -> Result<f64> {
        self.expected_payoff(f, p, p)
    }

    /// Gradient of `U(p)` w.r.t. `p`:
    /// `∂U/∂p(x) = f(x)·(g_C(p(x)) + p(x)·g_C'(p(x)))`.
    pub fn symmetric_payoff_gradient(&self, f: &ValueProfile, p: &Strategy) -> Result<Vec<f64>> {
        if f.len() != p.len() {
            return Err(Error::DimensionMismatch { strategy: p.len(), profile: f.len() });
        }
        Ok(f.values()
            .iter()
            .zip(p.probs().iter())
            .map(|(&fx, &px)| fx * (self.g(px) + px * self.g_prime(px)))
            .collect())
    }

    /// Exact multi-opponent payoff `E(ρ; σ₁, …, σ_{k−1})` where each
    /// opponent may play a different strategy. At each site the number of
    /// opponents present is Poisson–binomial distributed.
    pub fn heterogeneous_payoff(
        &self,
        f: &ValueProfile,
        rho: &Strategy,
        opponents: &[&Strategy],
    ) -> Result<f64> {
        if opponents.len() != self.k - 1 {
            return Err(Error::InvalidArgument(format!(
                "expected {} opponents for k = {}, got {}",
                self.k - 1,
                self.k,
                opponents.len()
            )));
        }
        if f.len() != rho.len() {
            return Err(Error::DimensionMismatch { strategy: rho.len(), profile: f.len() });
        }
        for o in opponents {
            if o.len() != f.len() {
                return Err(Error::DimensionMismatch { strategy: o.len(), profile: f.len() });
            }
        }
        let mut total = 0.0;
        let mut probs_at_site = vec![0.0; self.k - 1];
        for x in 0..f.len() {
            let rx = rho.prob(x);
            if rx == 0.0 {
                continue;
            }
            for (slot, o) in probs_at_site.iter_mut().zip(opponents.iter()) {
                *slot = o.prob(x);
            }
            let pmf = poisson_binomial_pmf(&probs_at_site);
            let expected_c: f64 =
                kahan_sum(pmf.iter().zip(self.c_table.iter()).map(|(p, c)| p * c));
            total += rx * f.value(x) * expected_c;
        }
        Ok(total)
    }

    /// The ESS-characterization payoff `E(ρ; σ^{a}, π^{b})` with `a + b =
    /// k − 1`: `a` opponents play `σ` and `b` play `π`.
    pub fn ess_payoff(
        &self,
        f: &ValueProfile,
        rho: &Strategy,
        sigma: &Strategy,
        a: usize,
        pi: &Strategy,
        b: usize,
    ) -> Result<f64> {
        if a + b != self.k - 1 {
            return Err(Error::InvalidArgument(format!(
                "opponent counts must satisfy a + b = k - 1, got {a} + {b} != {}",
                self.k - 1
            )));
        }
        let mut opponents: Vec<&Strategy> = Vec::with_capacity(self.k - 1);
        opponents.extend(std::iter::repeat_n(sigma, a));
        opponents.extend(std::iter::repeat_n(pi, b));
        self.heterogeneous_payoff(f, rho, &opponents)
    }

    /// Population-mixture payoff `U[ρ; (1−ε)σ + επ]` (Eq. 3). Because the
    /// `k − 1` opponents are drawn i.i.d. from the mixed population, this
    /// equals `E(ρ; μ^{k−1})` for the mixture strategy `μ = (1−ε)σ + επ`.
    pub fn mixture_payoff(
        &self,
        f: &ValueProfile,
        rho: &Strategy,
        sigma: &Strategy,
        pi: &Strategy,
        eps: f64,
    ) -> Result<f64> {
        let mu = sigma.mix(pi, eps)?;
        self.expected_payoff(f, rho, &mu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Constant, Exclusive, Sharing, TwoLevel};

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn context_validates_policy_and_k() {
        assert!(PayoffContext::new(&Exclusive, 0).is_err());
        assert!(PayoffContext::new(&Exclusive, 1).is_ok());
        assert!(PayoffContext::new(&Sharing, 5).is_ok());
    }

    #[test]
    fn g_endpoints() {
        let ctx = PayoffContext::new(&Sharing, 4).unwrap();
        close(ctx.g(0.0), 1.0, 1e-14); // C(1)
        close(ctx.g(1.0), 0.25, 1e-14); // C(4)
    }

    #[test]
    fn g_exclusive_closed_form() {
        // g_exc(q) = (1-q)^{k-1}
        let k = 6;
        let ctx = PayoffContext::new(&Exclusive, k).unwrap();
        for &q in &[0.0, 0.1, 0.37, 0.9, 1.0] {
            close(ctx.g(q), (1.0 - q).powi(k as i32 - 1), 1e-13);
        }
    }

    #[test]
    fn g_sharing_closed_form() {
        // For sharing, E[1/(1+Bin(n,q))] = (1-(1-q)^{n+1})/((n+1) q).
        let k = 5;
        let n = k - 1;
        let ctx = PayoffContext::new(&Sharing, k).unwrap();
        for &q in &[0.1, 0.5, 0.9] {
            let expect = (1.0 - (1.0f64 - q).powi(n as i32 + 1)) / ((n as f64 + 1.0) * q);
            close(ctx.g(q), expect, 1e-13);
        }
    }

    #[test]
    fn g_single_player_is_always_one() {
        let ctx = PayoffContext::new(&Sharing, 1).unwrap();
        for &q in &[0.0, 0.5, 1.0] {
            close(ctx.g(q), 1.0, 1e-15);
        }
        close(ctx.g_prime(0.3), 0.0, 1e-15);
    }

    #[test]
    fn g_is_strictly_decreasing_for_nonconstant_policies() {
        for c in [&Exclusive as &dyn Congestion, &Sharing, &TwoLevel { c: -0.4 }] {
            let ctx = PayoffContext::new(c, 5).unwrap();
            let mut prev = ctx.g(0.0);
            for i in 1..=20 {
                let q = i as f64 / 20.0;
                let cur = ctx.g(q);
                assert!(cur < prev, "{}: g({q}) = {cur} >= {prev}", c.name());
                prev = cur;
            }
        }
    }

    #[test]
    fn degenerate_detection() {
        assert!(PayoffContext::new(&Constant, 4).unwrap().is_degenerate());
        assert!(!PayoffContext::new(&Sharing, 4).unwrap().is_degenerate());
        // Every policy is degenerate for k = 1 (only C(1) matters).
        assert!(PayoffContext::new(&Sharing, 1).unwrap().is_degenerate());
    }

    #[test]
    fn g_prime_matches_finite_difference() {
        for c in [&Exclusive as &dyn Congestion, &Sharing, &TwoLevel { c: -0.25 }] {
            let ctx = PayoffContext::new(c, 7).unwrap();
            let h = 1e-6;
            for &q in &[0.1, 0.4, 0.8] {
                let fd = (ctx.g(q + h) - ctx.g(q - h)) / (2.0 * h);
                close(ctx.g_prime(q), fd, 1e-6);
            }
        }
    }

    #[test]
    fn site_values_and_expected_payoff() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let p = Strategy::new(vec![0.6, 0.4]).unwrap();
        let ctx = PayoffContext::new(&Exclusive, 2).unwrap();
        let nu = ctx.site_values(&f, &p).unwrap();
        close(nu[0], 1.0 * 0.4, 1e-14);
        close(nu[1], 0.5 * 0.6, 1e-14);
        let u = ctx.symmetric_payoff(&f, &p).unwrap();
        close(u, 0.6 * 0.4 + 0.4 * 0.3, 1e-14);
    }

    #[test]
    fn heterogeneous_matches_symmetric_when_identical() {
        let f = ValueProfile::zipf(6, 1.0, 1.0).unwrap();
        let p = Strategy::proportional(f.values()).unwrap();
        let rho = Strategy::uniform(6).unwrap();
        for c in [&Exclusive as &dyn Congestion, &Sharing, &TwoLevel { c: -0.2 }] {
            let ctx = PayoffContext::new(c, 4).unwrap();
            let sym = ctx.expected_payoff(&f, &rho, &p).unwrap();
            let het = ctx.heterogeneous_payoff(&f, &rho, &[&p, &p, &p]).unwrap();
            close(sym, het, 1e-12);
        }
    }

    #[test]
    fn ess_payoff_validates_counts() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let s = Strategy::uniform(2).unwrap();
        let ctx = PayoffContext::new(&Exclusive, 3).unwrap();
        assert!(ctx.ess_payoff(&f, &s, &s, 1, &s, 1).is_ok());
        assert!(ctx.ess_payoff(&f, &s, &s, 2, &s, 1).is_err());
    }

    #[test]
    fn ess_payoff_exclusive_closed_form() {
        // Under exclusive policy: E(rho; sigma^a, pi^b)
        //   = sum_x rho(x) f(x) (1-sigma(x))^a (1-pi(x))^b.
        let f = ValueProfile::new(vec![1.0, 0.6, 0.2]).unwrap();
        let sigma = Strategy::new(vec![0.5, 0.3, 0.2]).unwrap();
        let pi = Strategy::new(vec![0.1, 0.2, 0.7]).unwrap();
        let rho = Strategy::new(vec![0.2, 0.5, 0.3]).unwrap();
        let k = 5;
        let (a, b) = (3usize, 1usize);
        let ctx = PayoffContext::new(&Exclusive, k).unwrap();
        let got = ctx.ess_payoff(&f, &rho, &sigma, a, &pi, b).unwrap();
        let expect: f64 = (0..3)
            .map(|x| {
                rho.prob(x)
                    * f.value(x)
                    * (1.0 - sigma.prob(x)).powi(a as i32)
                    * (1.0 - pi.prob(x)).powi(b as i32)
            })
            .sum();
        close(got, expect, 1e-13);
    }

    #[test]
    fn mixture_payoff_interpolates() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let sigma = Strategy::new(vec![0.8, 0.2]).unwrap();
        let pi = Strategy::new(vec![0.2, 0.8]).unwrap();
        let rho = Strategy::uniform(2).unwrap();
        let ctx = PayoffContext::new(&Sharing, 3).unwrap();
        let at0 = ctx.mixture_payoff(&f, &rho, &sigma, &pi, 0.0).unwrap();
        let vs_sigma = ctx.expected_payoff(&f, &rho, &sigma).unwrap();
        close(at0, vs_sigma, 1e-14);
        let at1 = ctx.mixture_payoff(&f, &rho, &sigma, &pi, 1.0).unwrap();
        let vs_pi = ctx.expected_payoff(&f, &rho, &pi).unwrap();
        close(at1, vs_pi, 1e-14);
    }

    #[test]
    fn mixture_payoff_equals_binomial_mixture_of_ess_payoffs() {
        // Eq. (3): U[rho; (1-eps)sigma + eps pi]
        //   = sum_l binom(k-1, l) (1-eps)^l eps^{k-1-l} E(rho; sigma^l, pi^{k-1-l}).
        let f = ValueProfile::new(vec![1.0, 0.7, 0.3]).unwrap();
        let sigma = Strategy::new(vec![0.6, 0.3, 0.1]).unwrap();
        let pi = Strategy::new(vec![0.1, 0.1, 0.8]).unwrap();
        let rho = Strategy::new(vec![0.3, 0.3, 0.4]).unwrap();
        let k = 4usize;
        let eps = 0.3;
        let ctx = PayoffContext::new(&Sharing, k).unwrap();
        let direct = ctx.mixture_payoff(&f, &rho, &sigma, &pi, eps).unwrap();
        let mut series = 0.0;
        for l in 0..k {
            let w = crate::numerics::binomial_pmf(k - 1, l, 1.0 - eps);
            let e = ctx.ess_payoff(&f, &rho, &sigma, l, &pi, k - 1 - l).unwrap();
            series += w * e;
        }
        close(direct, series, 1e-12);
    }

    #[test]
    fn dimension_checks() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let p2 = Strategy::uniform(2).unwrap();
        let p3 = Strategy::uniform(3).unwrap();
        let ctx = PayoffContext::new(&Sharing, 2).unwrap();
        assert!(ctx.site_values(&f, &p3).is_err());
        assert!(ctx.expected_payoff(&f, &p3, &p2).is_err());
        assert!(ctx.symmetric_payoff_gradient(&f, &p3).is_err());
        assert!(ctx.heterogeneous_payoff(&f, &p2, &[&p3]).is_err());
    }
}
